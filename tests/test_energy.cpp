// EnergyModel: linear radio cost accounting and battery death.
#include <gtest/gtest.h>

#include "net/energy.hpp"

namespace {

using p2p::net::EnergyModel;
using p2p::net::EnergyParams;

TEST(Energy, DefaultBatteryIsInfinite) {
  EnergyModel model;
  for (int i = 0; i < 1000; ++i) model.consume_tx(1500);
  EXPECT_TRUE(model.alive());
  EXPECT_DOUBLE_EQ(model.remaining_fraction(), 1.0);
}

TEST(Energy, LinearCostModel) {
  EnergyParams params;
  params.tx_base_j = 1.0;
  params.tx_per_byte_j = 0.5;
  params.rx_base_j = 0.25;
  params.rx_per_byte_j = 0.125;
  EnergyModel model(params);
  model.consume_tx(100);  // 1 + 50
  EXPECT_DOUBLE_EQ(model.consumed_j(), 51.0);
  model.consume_rx(8);  // 0.25 + 1
  EXPECT_DOUBLE_EQ(model.consumed_j(), 52.25);
}

TEST(Energy, DiesWhenBatteryEmpty) {
  EnergyParams params;
  params.battery_j = 10.0;
  params.tx_base_j = 3.0;
  params.tx_per_byte_j = 0.0;
  EnergyModel model(params);
  EXPECT_TRUE(model.alive());
  model.consume_tx(0);
  model.consume_tx(0);
  model.consume_tx(0);
  EXPECT_TRUE(model.alive());  // 9 < 10
  model.consume_tx(0);
  EXPECT_FALSE(model.alive());  // 12 >= 10
}

TEST(Energy, RemainingFractionClampsToZero) {
  EnergyParams params;
  params.battery_j = 1.0;
  params.tx_base_j = 2.0;
  EnergyModel model(params);
  model.consume_tx(0);
  EXPECT_DOUBLE_EQ(model.remaining_fraction(), 0.0);
  EXPECT_LT(model.remaining_j(), 0.0);
}

TEST(Energy, CountsFramesAndBytes) {
  EnergyModel model;
  model.consume_tx(100);
  model.consume_tx(50);
  model.consume_rx(25);
  EXPECT_EQ(model.frames_sent(), 2U);
  EXPECT_EQ(model.frames_received(), 1U);
  EXPECT_EQ(model.bytes_sent(), 150U);
  EXPECT_EQ(model.bytes_received(), 25U);
}

TEST(Energy, RxAndTxCostsAreIndependent) {
  EnergyParams params;
  params.tx_base_j = 5.0;
  params.tx_per_byte_j = 0.0;
  params.rx_base_j = 1.0;
  params.rx_per_byte_j = 0.0;
  EnergyModel model(params);
  model.consume_rx(1000);
  EXPECT_DOUBLE_EQ(model.consumed_j(), 1.0);
  model.consume_tx(1000);
  EXPECT_DOUBLE_EQ(model.consumed_j(), 6.0);
}

}  // namespace
