// Lock-in tests for the cross-layer invariant checker (src/fault):
// deliberately corrupt state and assert every violation class is reported
// with node/time context; prove the checker is observational (zero
// violations and bit-identical traffic on the golden fig07 run); prove
// registered faults (crash + rebirth announced through the note hooks) do
// not count as violations.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "fault/invariants.hpp"
#include "net/dup_cache.hpp"
#include "p2p_test_world.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;
using fault::InvariantChecker;
using fault::InvariantKind;
using fault::Violation;

std::size_t count_kind(const InvariantChecker& checker, InvariantKind kind) {
  std::size_t n = 0;
  for (const Violation& v : checker.violations()) {
    if (v.kind == kind) ++n;
  }
  return n;
}

const Violation* first_of_kind(const InvariantChecker& checker,
                               InvariantKind kind) {
  for (const Violation& v : checker.violations()) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

// ------------------------------------------------ 1: delivery to dead node

TEST(Invariants, ReportsDeliveryToDeadNode) {
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  world.add_node(15.0, 10.0);
  InvariantChecker checker(world.network());

  world.network().set_failed(1, true);
  checker.on_deliver(5.0, /*node=*/1, /*sender=*/0, 100);

  ASSERT_EQ(checker.violations_total(), 1U);
  const Violation& v = checker.violations()[0];
  EXPECT_EQ(v.kind, InvariantKind::kDeliveryToDeadNode);
  EXPECT_EQ(v.node, 1U);
  EXPECT_EQ(v.time, 5.0);
  EXPECT_NE(v.detail.find("dead"), std::string::npos);

  // Deliveries to live nodes are fine.
  checker.on_deliver(6.0, /*node=*/0, /*sender=*/1, 100);
  EXPECT_EQ(checker.violations_total(), 1U);
}

// ------------------------------------------------ 2: overlay asymmetry

TEST(Invariants, ReportsAsymmetricOverlayEdge) {
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  world.add_node(15.0, 10.0);
  world.add_servent(0, core::AlgorithmKind::kRegular);
  world.add_servent(1, core::AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(100.0);
  ASSERT_TRUE(world.symmetric(0, 1));

  InvariantChecker checker(world.network());
  checker.add_servent(&world.servent(0));
  checker.add_servent(&world.servent(1));

  // Unregistered silent state loss: node 1 forgets the connection but no
  // fault is announced to the checker — exactly the class of protocol bug
  // the asymmetry invariant exists to catch.
  world.servent(1).crash();
  const double t0 = world.sim().now();
  checker.sweep(t0);  // starts the one-sidedness clock (grace window)
  EXPECT_EQ(count_kind(checker, InvariantKind::kAsymmetricOverlayEdge), 0U);
  checker.sweep(t0 + 301.0);  // past the 300 s grace
  ASSERT_EQ(count_kind(checker, InvariantKind::kAsymmetricOverlayEdge), 1U);
  const Violation* v =
      first_of_kind(checker, InvariantKind::kAsymmetricOverlayEdge);
  EXPECT_EQ(v->node, 0U);  // the stale-edge holder
  EXPECT_EQ(v->time, t0 + 301.0);
  EXPECT_NE(v->detail.find("1"), std::string::npos);  // names the peer
}

TEST(Invariants, RegisteredRebirthExplainsOneSidedEdge) {
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  world.add_node(15.0, 10.0);
  world.add_servent(0, core::AlgorithmKind::kRegular);
  world.add_servent(1, core::AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(100.0);
  ASSERT_TRUE(world.symmetric(0, 1));

  InvariantChecker checker(world.network());
  checker.add_servent(&world.servent(0));
  checker.add_servent(&world.servent(1));

  // Same one-sided edge, but the crash and rebirth went through the fault
  // hooks: node 0's edge predates node 1's last rebirth, so the reborn
  // peer legitimately forgot it (it still answers pings, so node 0 can
  // never notice). Not a violation.
  world.servent(1).crash();
  const double t0 = world.sim().now();
  checker.note_node_down(1, t0);
  checker.note_node_up(1, t0 + 40.0);
  checker.sweep(t0 + 50.0);
  checker.sweep(t0 + 400.0);
  EXPECT_EQ(count_kind(checker, InvariantKind::kAsymmetricOverlayEdge), 0U);
}

// ------------------------------------------------ 3: stale route

TEST(Invariants, ReportsStaleRouteToDeadNeighbor) {
  p2ptest::World world;
  p2ptest::make_line(world, 3);
  InvariantChecker checker(world.network());
  checker.add_aodv(&world.aodv(0));
  checker.add_aodv(&world.aodv(1));
  checker.add_aodv(&world.aodv(2));

  const double t0 = 10.0;
  // Node 0 routes to 2 via neighbor 1; then node 1 dies.
  world.aodv(0).table().update(/*dst=*/2, /*next_hop=*/1, /*hops=*/2,
                               /*seq=*/1, /*seq_valid=*/true,
                               /*expires=*/t0 + 1000.0);
  world.network().set_failed(1, true);

  checker.sweep(t0);  // observes the death, starts its clock
  EXPECT_EQ(count_kind(checker, InvariantKind::kStaleRouteToDeadNeighbor), 0U);
  checker.sweep(t0 + 26.0);  // past the 25 s grace: the route leaked
  ASSERT_EQ(count_kind(checker, InvariantKind::kStaleRouteToDeadNeighbor), 1U);
  const Violation* v =
      first_of_kind(checker, InvariantKind::kStaleRouteToDeadNeighbor);
  EXPECT_EQ(v->node, 0U);
  EXPECT_EQ(v->time, t0 + 26.0);
  EXPECT_NE(v->detail.find("via 1"), std::string::npos);

  // Recovery clears the clock: no further reports.
  world.network().set_failed(1, false);
  const std::uint64_t before = checker.violations_total();
  checker.sweep(t0 + 60.0);
  EXPECT_EQ(checker.violations_total(), before);
}

// ------------------------------------------------ 4: dup-cache corruption

TEST(Invariants, ReportsDupCacheCorruption) {
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  InvariantChecker checker(world.network());

  net::DupCache cache;
  cache.insert(0, 1, 100.0);  // insertion recorded "in the future"
  checker.check_dup_cache(/*node=*/3, cache, /*now=*/50.0);

  ASSERT_EQ(count_kind(checker, InvariantKind::kDupCacheCorrupt), 1U);
  const Violation* v = first_of_kind(checker, InvariantKind::kDupCacheCorrupt);
  EXPECT_EQ(v->node, 3U);
  EXPECT_EQ(v->time, 50.0);
  EXPECT_FALSE(v->detail.empty());

  // The same cache checked at a sane time is consistent.
  checker.check_dup_cache(3, cache, 150.0);
  EXPECT_EQ(count_kind(checker, InvariantKind::kDupCacheCorrupt), 1U);
}

// ------------------------------------------------ 5: energy monotonicity

TEST(Invariants, ReportsEnergyDecrease) {
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  InvariantChecker checker(world.network());

  checker.check_energy(/*node=*/2, 5.0, 10.0);
  EXPECT_EQ(checker.violations_total(), 0U);
  checker.check_energy(2, 4.0, 20.0);  // consumed energy fell
  ASSERT_EQ(count_kind(checker, InvariantKind::kEnergyDecreased), 1U);
  const Violation* v = first_of_kind(checker, InvariantKind::kEnergyDecreased);
  EXPECT_EQ(v->node, 2U);
  EXPECT_EQ(v->time, 20.0);
  // The high-water mark survives the dip: one report, and a later climb
  // back above it is fine.
  checker.check_energy(2, 6.0, 30.0);
  EXPECT_EQ(count_kind(checker, InvariantKind::kEnergyDecreased), 1U);
}

// -------------------------------------------- clean on the golden fig07 run

// The checker is observational: running the golden fig07 workload with the
// sweep enabled reports zero violations AND reproduces the golden traffic
// and energy totals bit-for-bit (constants from test_golden_metrics.cpp —
// the sweep adds events but no frames, no RNG draws, no state changes).
TEST(Invariants, CleanAndObservationalOnGoldenFig07Run) {
  scenario::Parameters params;
  params.num_nodes = 50;
  params.duration_s = 600.0;
  params.seed = 1;
  params.algorithm = core::AlgorithmKind::kRegular;
  params.invariant_check_interval_s = 30.0;
  scenario::SimulationRun run(params);
  const scenario::RunResult r = run.run();

  EXPECT_EQ(r.invariant_violations, 0U);
  EXPECT_EQ(r.frames_transmitted, 38690U);
  EXPECT_EQ(r.frames_delivered, 62203U);
  EXPECT_EQ(r.frames_lost, 0U);
  EXPECT_EQ(r.data_delivered, 1119U);
  EXPECT_EQ(r.energy_consumed_j, 6.1527955000001038);
}

}  // namespace
