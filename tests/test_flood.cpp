// FloodService: hop-limited reach, duplicate suppression, hop accounting,
// and the cross-layer route hint.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/model.hpp"
#include "net/network.hpp"
#include "routing/aodv.hpp"
#include "routing/flood.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using net::NodeId;
using routing::FloodService;

struct AppMsg final : net::AppPayload {
  int tag = 0;
  explicit AppMsg(int t) : tag(t) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Received {
  NodeId origin;
  int tag;
  int hops;
};

// Line of nodes 8 m apart (range 10): hop distance == index distance.
struct FloodWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<routing::AodvAgent>> aodv;
  std::vector<std::unique_ptr<FloodService>> floods;
  std::vector<std::vector<Received>> received;

  explicit FloodWorld(std::size_t n, bool with_aodv = true) {
    net::NetworkParams params;
    params.region = {8.0 * static_cast<double>(n) + 10.0, 20.0};
    params.mac.jitter_max_s = 0.001;
    net = std::make_unique<net::Network>(sim, params, sim::RngStream(1));
    received.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<mobility::StaticModel>(
          geo::Vec2{8.0 * static_cast<double>(i) + 1.0, 10.0}));
      if (with_aodv) {
        aodv.push_back(std::make_unique<routing::AodvAgent>(
            sim, *net, id, routing::AodvParams{}));
      }
      floods.push_back(std::make_unique<FloodService>(
          sim, *net, id, with_aodv ? aodv.back().get() : nullptr));
      floods.back()->set_receive_handler(
          [this, i](NodeId origin, net::AppPayloadPtr app, int hops) {
            const auto* msg = dynamic_cast<const AppMsg*>(app.get());
            received[i].push_back({origin, msg ? msg->tag : -1, hops});
          });
    }
  }
};

TEST(Flood, MaxHopsOneReachesDirectNeighborsOnly) {
  FloodWorld world(5);
  world.floods[1]->flood(net::make_payload<const AppMsg>(1), 1);
  world.sim.run();
  EXPECT_EQ(world.received[0].size(), 1U);
  EXPECT_EQ(world.received[2].size(), 1U);
  EXPECT_TRUE(world.received[3].empty());
  EXPECT_TRUE(world.received[4].empty());
  EXPECT_TRUE(world.received[1].empty());  // no self-delivery
}

TEST(Flood, HopLimitBoundsReach) {
  FloodWorld world(6);
  world.floods[0]->flood(net::make_payload<const AppMsg>(1), 3);
  world.sim.run();
  EXPECT_EQ(world.received[1].size(), 1U);
  EXPECT_EQ(world.received[2].size(), 1U);
  EXPECT_EQ(world.received[3].size(), 1U);
  EXPECT_TRUE(world.received[4].empty());
  EXPECT_TRUE(world.received[5].empty());
}

TEST(Flood, HopsTraveledMatchesLineDistance) {
  FloodWorld world(5);
  world.floods[0]->flood(net::make_payload<const AppMsg>(9), 4);
  world.sim.run();
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_EQ(world.received[i].size(), 1U) << "node " << i;
    EXPECT_EQ(world.received[i][0].hops, static_cast<int>(i));
    EXPECT_EQ(world.received[i][0].origin, 0U);
    EXPECT_EQ(world.received[i][0].tag, 9);
  }
}

TEST(Flood, EachNodeDeliversEachFloodOnce) {
  // Dense cluster: everyone hears everyone; dedup must keep deliveries at 1.
  sim::Simulator sim;
  net::NetworkParams params;
  params.region = {20.0, 20.0};
  net::Network network(sim, params, sim::RngStream(1));
  std::vector<std::unique_ptr<FloodService>> floods;
  std::vector<int> count(6, 0);
  for (std::size_t i = 0; i < 6; ++i) {
    const NodeId id = network.add_node(std::make_unique<mobility::StaticModel>(
        geo::Vec2{5.0 + static_cast<double>(i), 10.0}));
    floods.push_back(
        std::make_unique<FloodService>(sim, network, id, nullptr));
    floods.back()->set_receive_handler(
        [&count, i](NodeId, net::AppPayloadPtr, int) { ++count[i]; });
  }
  floods[0]->flood(net::make_payload<const AppMsg>(1), 6);
  sim.run();
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(count[i], 1) << "node " << i;
  EXPECT_EQ(count[0], 0);
  EXPECT_GT(floods[2]->stats().duplicates, 0U);
}

TEST(Flood, SeparateFloodsDeliverSeparately) {
  FloodWorld world(3);
  world.floods[0]->flood(net::make_payload<const AppMsg>(1), 2);
  world.floods[0]->flood(net::make_payload<const AppMsg>(2), 2);
  world.sim.run();
  ASSERT_EQ(world.received[1].size(), 2U);
  EXPECT_NE(world.received[1][0].tag, world.received[1][1].tag);
}

TEST(Flood, InstallsReverseRouteViaAodvHint) {
  FloodWorld world(5);
  world.floods[0]->flood(net::make_payload<const AppMsg>(1), 4);
  world.sim.run();
  // Node 4 can now answer node 0 without any route discovery.
  EXPECT_TRUE(world.aodv[4]->has_route(0));
  EXPECT_EQ(world.aodv[4]->route_hops(0), 4);
  world.aodv[4]->send(0, net::make_payload<const AppMsg>(2));
  world.sim.run_until(world.sim.now() + 10.0);
  EXPECT_EQ(world.aodv[4]->stats().rreq_originated, 0U);
}

TEST(Flood, WorksWithoutAodv) {
  FloodWorld world(3, /*with_aodv=*/false);
  world.floods[0]->flood(net::make_payload<const AppMsg>(1), 2);
  world.sim.run();
  EXPECT_EQ(world.received[1].size(), 1U);
  EXPECT_EQ(world.received[2].size(), 1U);
}

TEST(Flood, StatsAccounting) {
  FloodWorld world(4);
  world.floods[0]->flood(net::make_payload<const AppMsg>(1), 3);
  world.sim.run();
  EXPECT_EQ(world.floods[0]->stats().originated, 1U);
  EXPECT_EQ(world.floods[1]->stats().delivered, 1U);
  EXPECT_EQ(world.floods[1]->stats().forwarded, 1U);
  // Last hop receiver does not forward (budget exhausted).
  EXPECT_EQ(world.floods[3]->stats().forwarded, 0U);
}

}  // namespace
