// Random algorithm (§6.1.4): the reserved long-link slot, farthest-
// responder selection, and replacement after loss.
#include <gtest/gtest.h>

#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::core::AlgorithmKind;
using p2p::core::ConnKind;

TEST(RandomAlg, EstablishesARandomConnection) {
  World world;
  const auto ids = make_line(world, 5);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(300.0);
  std::size_t random_links = 0;
  for (const auto id : ids) {
    random_links += world.servent(id).connections().count(ConnKind::kRandom);
  }
  EXPECT_GT(random_links, 0U);
}

TEST(RandomAlg, RandomLinkPrefersTheFarthestResponder) {
  // One seeker at the head of a line; responders at 1..4 hops. The random
  // probe radius always covers the whole line (nhops_initial=2 ->
  // randhops in [2, 12]), and the farthest responder must win the slot.
  p2p::core::P2pParams params;
  params.maxnconn = 1;  // only the random slot exists (maxnconn-1 == 0)
  World world(params);
  const auto ids = make_line(world, 5);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kRandom);
  // Only the head actively starts; others respond but never probe (they
  // start too, but with maxnconn=1 every node only wants a random link).
  world.start_all();
  world.sim().run_until(120.0);
  const auto& head = world.servent(ids[0]).connections();
  ASSERT_GE(head.size(), 1U);
  // The head's random link must span more than one hop: with everyone
  // answering, a 1-hop neighbor can only win if nothing farther answered.
  bool has_multi_hop_link = false;
  for (const auto peer : head.peers()) {
    if (peer != ids[1]) has_multi_hop_link = true;
  }
  EXPECT_TRUE(has_multi_hop_link)
      << "random link stuck at the nearest neighbor";
}

TEST(RandomAlg, RegularSlotsAreCappedAtMaxnconnMinusOne) {
  World world;  // maxnconn = 3 -> at most 2 regular links initiated
  const auto ids = make_cluster(world, 8);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(400.0);
  for (const auto id : ids) {
    const auto& conns = world.servent(id).connections();
    EXPECT_LE(conns.size(), 3U);
    EXPECT_LE(conns.count(ConnKind::kRandom), 1U) << "node " << id;
  }
}

TEST(RandomAlg, ReplacesLostRandomConnection) {
  p2p::core::P2pParams params;
  params.maxnconn = 1;
  World world(params);
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(56, 50);
  const auto c = world.add_node(50, 56);
  for (const auto id : {a, b, c}) {
    world.add_servent(id, AlgorithmKind::kRandom);
  }
  world.start_all();
  world.sim().run_until(120.0);
  ASSERT_GE(world.servent(a).connections().size(), 1U);
  const auto first_peer = world.servent(a).connections().peers()[0];
  world.network().set_failed(first_peer, true);
  world.sim().run_until(800.0);
  // "whenever it goes down, it must be replaced by another random
  // connection": a found the other node.
  const auto peers = world.servent(a).connections().peers();
  ASSERT_EQ(peers.size(), 1U);
  EXPECT_NE(peers[0], first_peer);
  EXPECT_EQ(world.servent(a).connections().find(peers[0])->kind,
            ConnKind::kRandom);
}

TEST(RandomAlg, RandomLinkToleratesTwiceMaxdist) {
  // A random link at distance d (maxdist < d <= 2*maxdist) must survive,
  // while a regular link at that distance would die.
  p2p::core::P2pParams params;
  params.maxdist = 2;
  params.maxnconn = 1;  // random slot only
  params.ping_interval = 10.0;
  World world(params);
  const auto ids = make_line(world, 5);  // head to tail: 4 hops
  world.add_servent(ids[0], AlgorithmKind::kRandom);
  world.add_servent(ids[4], AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(300.0);
  // 4 hops > maxdist(2) but <= 2*maxdist(4): the link survives pings.
  EXPECT_TRUE(world.connected(ids[0], ids[4]) ||
              world.connected(ids[4], ids[0]));
}

TEST(RandomAlg, NodeWithFullSlotsStopsProbingForRandomLink) {
  // Regression: a node whose MAXNCONN slots are occupied (possibly by
  // inbound links, which the responder stores as regular) must not keep
  // flooding random probes it can never act on.
  p2p::core::P2pParams params;
  params.maxnconn = 1;
  World world(params);
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRandom);
  world.add_servent(b, AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(300.0);
  ASSERT_TRUE(world.symmetric(a, b));
  // Both nodes are at capacity; probing must cease on both sides.
  const auto probes_a_300 =
      world.servent(a).counters().sent_of(p2p::core::MsgType::kConnectProbe);
  const auto probes_b_300 =
      world.servent(b).counters().sent_of(p2p::core::MsgType::kConnectProbe);
  world.sim().run_until(1500.0);
  const auto probes_a_late =
      world.servent(a).counters().sent_of(p2p::core::MsgType::kConnectProbe);
  const auto probes_b_late =
      world.servent(b).counters().sent_of(p2p::core::MsgType::kConnectProbe);
  EXPECT_LE(probes_a_late - probes_a_300, 3U);
  EXPECT_LE(probes_b_late - probes_b_300, 3U);
}

TEST(RandomAlg, FallsBackToRegularBehaviorForFirstSlots) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRandom);
  world.add_servent(b, AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(120.0);
  // With only one potential peer, the pair connects (regular or random
  // slot, depending on which phase won) and stays symmetric.
  EXPECT_TRUE(world.symmetric(a, b));
}

}  // namespace
