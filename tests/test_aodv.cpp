// AODV: routing table semantics, on-demand discovery, multi-hop delivery,
// route reuse, link-break handling, and the cross-layer learn_route hint.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/model.hpp"
#include "mobility/trace.hpp"
#include "net/network.hpp"
#include "routing/aodv.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using net::NodeId;
using routing::AodvAgent;
using routing::AodvParams;
using routing::Route;
using routing::RoutingTable;

struct AppMsg final : net::AppPayload {
  int tag = 0;
  explicit AppMsg(int t) : tag(t) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Delivery {
  NodeId src;
  int tag;
  int hops;
};

// A line of nodes spaced 8 m apart (range 10 m): node i talks to i±1 only.
struct LineWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<AodvAgent>> agents;
  std::vector<std::vector<Delivery>> delivered;

  explicit LineWorld(std::size_t n, AodvParams params = {}) {
    net::NetworkParams net_params;
    net_params.region = {8.0 * static_cast<double>(n) + 10.0, 20.0};
    net_params.mac.jitter_max_s = 0.001;
    net = std::make_unique<net::Network>(sim, net_params, sim::RngStream(1));
    delivered.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<mobility::StaticModel>(
          geo::Vec2{8.0 * static_cast<double>(i) + 1.0, 10.0}));
      agents.push_back(std::make_unique<AodvAgent>(sim, *net, id, params));
      agents.back()->set_deliver_handler(
          [this, i](NodeId src, net::AppPayloadPtr app, int hops) {
            const auto* msg = dynamic_cast<const AppMsg*>(app.get());
            delivered[i].push_back({src, msg != nullptr ? msg->tag : -1, hops});
          });
    }
  }
};

TEST(RoutingTable, FindActiveRespectsValidityAndExpiry) {
  RoutingTable table;
  EXPECT_EQ(table.find_active(7, 0.0), nullptr);
  table.update(7, 3, 2, 10, true, 100.0);
  ASSERT_NE(table.find_active(7, 50.0), nullptr);
  EXPECT_EQ(table.find_active(7, 100.0), nullptr);  // expired
  // Expiry invalidates but keeps the entry (and its sequence number).
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(7)->dst_seq, 10U);
}

TEST(RoutingTable, IsBetterPrefersNewerSequence) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  EXPECT_TRUE(table.is_better(7, 11, true, 9, 0.0));    // newer seq
  EXPECT_FALSE(table.is_better(7, 9, true, 1, 0.0));    // older seq
  EXPECT_TRUE(table.is_better(7, 10, true, 1, 0.0));    // same seq, fewer hops
  EXPECT_FALSE(table.is_better(7, 10, true, 2, 0.0));   // same seq, same hops
  EXPECT_FALSE(table.is_better(7, 10, false, 1, 0.0));  // unknown seq loses
  EXPECT_TRUE(table.is_better(99, 0, false, 9, 0.0));   // no route yet
}

TEST(RoutingTable, InvalidateBumpsSequence) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  EXPECT_TRUE(table.invalidate(7));
  EXPECT_EQ(table.find_active(7, 0.0), nullptr);
  EXPECT_EQ(table.find(7)->dst_seq, 11U);
  EXPECT_FALSE(table.invalidate(12345));  // unknown destination
}

TEST(RoutingTable, DestinationsViaFindsDependentRoutes) {
  RoutingTable table;
  table.update(7, 3, 2, 1, true, 100.0);
  table.update(8, 3, 3, 1, true, 100.0);
  table.update(9, 4, 1, 1, true, 100.0);
  const auto via3 = table.destinations_via(3, 0.0);
  EXPECT_EQ(via3.size(), 2U);
  EXPECT_EQ(table.destinations_via(5, 0.0).size(), 0U);
}

TEST(RoutingTable, RefreshExtendsLifetimeOnly) {
  RoutingTable table;
  table.update(7, 3, 2, 1, true, 100.0);
  table.refresh(7, 50.0);  // shorter: ignored
  EXPECT_NE(table.find_active(7, 99.0), nullptr);
  table.refresh(7, 200.0);
  EXPECT_NE(table.find_active(7, 150.0), nullptr);
  table.refresh(999, 100.0);  // unknown: no-op
}

TEST(Aodv, DeliversOverMultipleHops) {
  LineWorld world(5);
  world.agents[0]->send(4, net::make_payload<const AppMsg>(7));
  world.sim.run_until(30.0);
  ASSERT_EQ(world.delivered[4].size(), 1U);
  EXPECT_EQ(world.delivered[4][0].src, 0U);
  EXPECT_EQ(world.delivered[4][0].tag, 7);
  EXPECT_EQ(world.delivered[4][0].hops, 4);
  EXPECT_GE(world.agents[0]->stats().rreq_originated, 1U);
}

TEST(Aodv, SecondSendReusesRoute) {
  LineWorld world(4);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  // Stay inside ACTIVE_ROUTE_TIMEOUT so the route is still fresh.
  world.sim.run_until(3.0);
  ASSERT_EQ(world.delivered[3].size(), 1U);
  const auto rreqs_after_first = world.agents[0]->stats().rreq_originated;
  world.agents[0]->send(3, net::make_payload<const AppMsg>(2));
  world.sim.run_until(6.0);
  EXPECT_EQ(world.agents[0]->stats().rreq_originated, rreqs_after_first);
  ASSERT_EQ(world.delivered[3].size(), 2U);
}

TEST(Aodv, RouteExpiresAfterActiveRouteTimeout) {
  AodvParams params;
  params.active_route_timeout = 5.0;
  params.my_route_timeout = 5.0;  // RREP-granted lifetime
  LineWorld world(4, params);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(3.0);
  EXPECT_TRUE(world.agents[0]->has_route(3));
  world.sim.run_until(20.0);  // idle past the lifetime
  EXPECT_FALSE(world.agents[0]->has_route(3));
  // A later send transparently rediscovers.
  const auto rreqs = world.agents[0]->stats().rreq_originated;
  world.agents[0]->send(3, net::make_payload<const AppMsg>(2));
  world.sim.run_until(25.0);
  EXPECT_GT(world.agents[0]->stats().rreq_originated, rreqs);
  EXPECT_EQ(world.delivered[3].size(), 2U);
}

TEST(Aodv, ReverseRouteInstalledAtDestination) {
  LineWorld world(4);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(3.0);
  // The RREQ flood gave node 3 a route back to node 0 (checked while the
  // reverse-route lifetime is still running).
  EXPECT_TRUE(world.agents[3]->has_route(0));
  EXPECT_EQ(world.agents[3]->route_hops(0), 3);
}

TEST(Aodv, ExpandingRingEventuallyReachesFarNodes) {
  AodvParams params;
  params.ttl_start = 1;
  params.ttl_increment = 2;
  params.ttl_threshold = 3;
  LineWorld world(8, params);  // 7 hops away: beyond the threshold rings
  world.agents[0]->send(7, net::make_payload<const AppMsg>(5));
  world.sim.run_until(60.0);
  ASSERT_EQ(world.delivered[7].size(), 1U);
  // Needed several rings: more than one RREQ originated.
  EXPECT_GT(world.agents[0]->stats().rreq_originated, 1U);
}

TEST(Aodv, DiscoveryForUnreachableNodeFailsAndDropsPacket) {
  LineWorld world(3);
  // Add an isolated island node far away.
  const NodeId island = world.net->add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{5000.0, 10.0}));
  AodvParams params;
  AodvAgent island_agent(world.sim, *world.net, island, params);
  world.agents[0]->send(island, net::make_payload<const AppMsg>(9));
  world.sim.run_until(120.0);
  EXPECT_GE(world.agents[0]->stats().discoveries_failed, 1U);
  EXPECT_GE(world.agents[0]->stats().data_dropped, 1U);
}

TEST(Aodv, LearnRouteEnablesSendWithoutDiscovery) {
  LineWorld world(3);
  // Teach every hop manually: 0 -> 1 -> 2.
  world.agents[0]->learn_route(2, 1, 2);
  world.agents[1]->learn_route(2, 2, 1);
  world.agents[0]->send(2, net::make_payload<const AppMsg>(3));
  world.sim.run_until(5.0);
  ASSERT_EQ(world.delivered[2].size(), 1U);
  EXPECT_EQ(world.agents[0]->stats().rreq_originated, 0U);
}

TEST(Aodv, LinkBreakTriggersRediscoveryOnNextSend) {
  // 0-1-2 line where node 1 walks away after the route forms.
  sim::Simulator sim;
  net::NetworkParams net_params;
  net_params.region = {200.0, 40.0};
  net_params.mac.jitter_max_s = 0.001;
  net::Network network(sim, net_params, sim::RngStream(1));
  std::vector<std::unique_ptr<AodvAgent>> agents;
  std::vector<int> delivered_tags;

  const NodeId n0 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{1.0, 10.0}));
  const NodeId n1 = network.add_node(std::make_unique<mobility::TraceModel>(
      geo::Vec2{9.0, 10.0},
      std::vector<mobility::TraceStep>{{10.0, {9.0, 150.0}, 50.0}}));
  const NodeId n2 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{17.0, 10.0}));
  // A stationary alternative relay just off the line.
  const NodeId n3 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{9.0, 16.0}));

  for (const NodeId id : {n0, n1, n2, n3}) {
    agents.push_back(std::make_unique<AodvAgent>(sim, network, id,
                                                 AodvParams{}));
  }
  agents[n2]->set_deliver_handler(
      [&](NodeId, net::AppPayloadPtr app, int) {
        delivered_tags.push_back(dynamic_cast<const AppMsg*>(app.get())->tag);
      });

  agents[n0]->send(n2, net::make_payload<const AppMsg>(1));
  sim.run_until(5.0);
  ASSERT_EQ(delivered_tags.size(), 1U);

  // n1 teleports away at t=10; send again afterwards: AODV must detect the
  // broken next hop and rediscover via n3.
  sim.run_until(20.0);
  agents[n0]->send(n2, net::make_payload<const AppMsg>(2));
  sim.run_until(60.0);
  ASSERT_EQ(delivered_tags.size(), 2U);
  EXPECT_EQ(delivered_tags[1], 2);
}

TEST(Aodv, QueueLimitDropsOldest) {
  AodvParams params;
  params.send_queue_limit = 2;
  LineWorld world(2, params);
  // Make the destination unreachable so packets stay queued.
  world.net->set_failed(1, true);
  for (int i = 0; i < 5; ++i) {
    world.agents[0]->send(1, net::make_payload<const AppMsg>(i));
  }
  EXPECT_EQ(world.agents[0]->stats().data_dropped, 3U);
}

TEST(Aodv, StatsCountForwarding) {
  LineWorld world(4);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(30.0);
  EXPECT_EQ(world.agents[1]->stats().data_forwarded +
                world.agents[2]->stats().data_forwarded,
            2U);
  EXPECT_EQ(world.agents[3]->stats().data_delivered, 1U);
}

}  // namespace
