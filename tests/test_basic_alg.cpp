// Basic algorithm (§6.1.1): unilateral asymmetric references, fixed-radius
// probing at a fixed interval, pong-only maintenance.
#include <gtest/gtest.h>

#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::core::AlgorithmKind;
using p2p::core::ConnKind;
using p2p::core::MsgType;

TEST(BasicAlg, TwoNodesReferenceEachOther) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.add_servent(b, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(30.0);
  // Both probed, both answered: each holds a reference to the other.
  EXPECT_TRUE(world.connected(a, b));
  EXPECT_TRUE(world.connected(b, a));
  EXPECT_EQ(world.servent(a).connections().find(b)->kind, ConnKind::kBasic);
}

TEST(BasicAlg, RespectsMaxnconn) {
  p2p::core::P2pParams params;
  params.maxnconn = 2;
  World world(params);
  const auto ids = make_cluster(world, 6);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(120.0);
  for (const auto id : ids) {
    EXPECT_LE(world.servent(id).connections().size(), 2U) << "node " << id;
  }
}

TEST(BasicAlg, EveryListenerAnswersProbes) {
  World world;
  const auto ids = make_cluster(world, 4);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(20.0);
  // With everyone in range and probing, everyone received probes AND
  // offers (offers even beyond capacity, since Basic answers blindly).
  for (const auto id : ids) {
    const auto& counters = world.servent(id).counters();
    EXPECT_GT(counters.received_of(MsgType::kConnectProbe), 0U);
    EXPECT_GT(counters.received_of(MsgType::kConnectOffer), 0U);
  }
}

TEST(BasicAlg, KeepsProbingAtFixedIntervalWhileUnsatisfied) {
  p2p::core::P2pParams params;
  params.timer_initial = 10.0;
  World world(params);
  // A lone node can never fill its slots: it must keep probing forever at
  // the fixed interval (no backoff in Basic).
  const auto a = world.add_node(50, 50);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(101.0);
  const auto sent = world.servent(a).counters().sent_of(MsgType::kConnectProbe);
  // One probe at start + one every 10 s.
  EXPECT_GE(sent, 9U);
  EXPECT_LE(sent, 12U);
}

TEST(BasicAlg, ProbeRadiusIsNhopsBasic) {
  p2p::core::P2pParams params;
  params.nhops_basic = 2;
  World world(params);
  const auto ids = make_line(world, 5);  // 8 m spacing: hop = index distance
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(60.0);
  // Node 0's probes travel 2 hops: nodes 1,2 hear them, 3,4 never do.
  EXPECT_GT(world.servent(ids[1]).counters().received_of(MsgType::kConnectProbe), 0U);
  // Node 3 hears probes from 1,2,4,5 but node 0's never reach node 3 or 4;
  // verify no reference to node 0 formed at distance 3+.
  EXPECT_FALSE(world.connected(ids[0], ids[3]));
  EXPECT_FALSE(world.connected(ids[0], ids[4]));
  EXPECT_FALSE(world.connected(ids[3], ids[0]));
}

TEST(BasicAlg, DropsReferenceWhenPeerDies) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.add_servent(b, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(30.0);
  ASSERT_TRUE(world.connected(a, b));
  world.network().set_failed(b, true);
  // Pings go unanswered; after the pong timeout the reference dies.
  world.sim().run_until(30.0 + world.p2p_params().ping_interval +
                        world.p2p_params().pong_timeout + 65.0);
  EXPECT_FALSE(world.connected(a, b));
}

TEST(BasicAlg, BothSidesPingTheirReferences) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.add_servent(b, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(200.0);
  // Asymmetric references: each node sends its own pings (the waste the
  // Regular algorithm's improvement #3 removes).
  EXPECT_GT(world.servent(a).counters().sent_of(MsgType::kPing), 0U);
  EXPECT_GT(world.servent(b).counters().sent_of(MsgType::kPing), 0U);
  EXPECT_GT(world.servent(a).counters().received_of(MsgType::kPong), 0U);
  EXPECT_GT(world.servent(b).counters().received_of(MsgType::kPong), 0U);
}

TEST(BasicAlg, NoDistanceCheckKeepsFarConnections) {
  // Basic has no MAXDIST rule: a reference stays alive while pongs flow,
  // no matter how far the peer drifts (within flood reach for formation).
  World world;
  const auto a = world.add_node(5, 50);
  // b starts adjacent, then walks 4 hops away (still routable via relays).
  const auto b = world.add_node(std::make_unique<p2p::mobility::TraceModel>(
      p2p::geo::Vec2{13.0, 50.0},
      std::vector<p2p::mobility::TraceStep>{{40.0, {45.0, 50.0}, 5.0}}));
  // Relay chain so AODV can still route after the move.
  for (int i = 0; i < 5; ++i) world.add_node(13.0 + 8.0 * i, 50.0);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.add_servent(b, AlgorithmKind::kBasic);
  world.start_all();
  world.sim().run_until(39.0);
  ASSERT_TRUE(world.connected(a, b));
  world.sim().run_until(400.0);
  // 32 m apart = 4+ hops > MAXDIST, but Basic does not care.
  EXPECT_TRUE(world.connected(a, b));
}

}  // namespace
