// RNG streams: determinism, independence, ranges, and distribution sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace {

using p2p::sim::fnv1a;
using p2p::sim::RngManager;
using p2p::sim::RngStream;
using p2p::sim::splitmix64;

TEST(Splitmix, IsDeterministicAndAvalanching) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Single-bit input changes flip many output bits.
  const auto diff = splitmix64(0x1000) ^ splitmix64(0x1001);
  EXPECT_GE(__builtin_popcountll(diff), 16);
}

TEST(Fnv1a, DistinguishesStrings) {
  EXPECT_EQ(fnv1a("mobility"), fnv1a("mobility"));
  EXPECT_NE(fnv1a("mobility"), fnv1a("mac"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngStream, DifferentSeedsDiverge) {
  RngStream a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngStream, UniformRespectsBounds) {
  RngStream rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngStream, UniformIntCoversInclusiveRange) {
  RngStream rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6U);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngStream, UniformIntDegenerateRange) {
  RngStream rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngStream, Uniform01MeanIsNearHalf) {
  RngStream rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, ExponentialHasRequestedMean) {
  RngStream rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

// Portability canaries: these values must hold on every platform and
// standard library. The mt19937_64 engine is pinned bit-for-bit by the
// C++ standard, and every distribution below is implemented in-house
// (Lemire bounded ints, inverse-CDF exponential, Box-Muller normal) —
// std::*_distribution is banned precisely because its output differs
// between libstdc++ and libc++, which would invalidate the cross-library
// experiment cache. See docs/determinism.md. If one of these fails, the
// RNG changed and the cache `code-vN` tag must be bumped.
TEST(RngStreamGolden, Uniform01PinnedForSeed42) {
  RngStream rng(42);
  EXPECT_EQ(rng.uniform01(), 0.75515553295453897);
  EXPECT_EQ(rng.uniform01(), 0.63903139385469743);
  EXPECT_EQ(rng.uniform01(), 0.7521452007480266);
  EXPECT_EQ(rng.uniform01(), 0.13627268363243705);
}

TEST(RngStreamGolden, UniformIntPinnedForSeed42) {
  RngStream rng(42);
  EXPECT_EQ(rng.uniform_int(0, 99), 75);
  EXPECT_EQ(rng.uniform_int(0, 99), 63);
  EXPECT_EQ(rng.uniform_int(0, 99), 75);
  EXPECT_EQ(rng.uniform_int(0, 99), 13);
  EXPECT_EQ(rng.uniform_int(0, 99), 90);
  EXPECT_EQ(rng.uniform_int(0, 99), 9);
}

TEST(RngStreamGolden, UniformIntPinnedForWideRange) {
  RngStream rng(7);
  EXPECT_EQ(rng.uniform_int(-1000000000000LL, 1000000000000LL), 508770608306LL);
  EXPECT_EQ(rng.uniform_int(-1000000000000LL, 1000000000000LL), 898602405786LL);
  EXPECT_EQ(rng.uniform_int(-1000000000000LL, 1000000000000LL),
            -765171437931LL);
}

TEST(RngStreamGolden, ExponentialPinnedForSeed42) {
  RngStream rng(42);
  EXPECT_EQ(rng.exponential(2.0), 2.8142641968242876);
  EXPECT_EQ(rng.exponential(2.0), 2.0379285760344548);
  EXPECT_EQ(rng.exponential(2.0), 2.7898243823374731);
  EXPECT_EQ(rng.exponential(2.0), 0.292996332096431);
}

TEST(RngStreamGolden, NormalPinnedForSeed42) {
  RngStream rng(42);
  EXPECT_EQ(rng.normal(0.0, 1.0), -1.0771745442782885);
  EXPECT_EQ(rng.normal(0.0, 1.0), -1.2860634502166481);
  EXPECT_EQ(rng.normal(0.0, 1.0), 1.0945198485006107);
  EXPECT_EQ(rng.normal(0.0, 1.0), 1.2616856516484893);
}

TEST(RngStream, NormalMomentsAreSane) {
  RngStream rng(99);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngStream, UniformIntFullRangeDoesNotHang) {
  RngStream rng(3);
  // Span 2^64 (rejection-free path); just exercise it.
  std::set<std::int64_t> seen;
  for (int i = 0; i < 8; ++i) {
    seen.insert(rng.uniform_int(std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()));
  }
  EXPECT_GT(seen.size(), 1U);
}

TEST(RngStream, ChanceExtremes) {
  RngStream rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngStream, ShuffleProducesPermutation) {
  RngStream rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngStream, ShuffleOfEmptyAndSingleton) {
  RngStream rng(11);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngManager, NamedStreamsAreReproducible) {
  const RngManager manager(42);
  auto a1 = manager.stream("mobility");
  auto a2 = manager.stream("mobility");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a1.uniform01(), a2.uniform01());
  }
}

TEST(RngManager, DifferentNamesGiveIndependentStreams) {
  const RngManager manager(42);
  auto a = manager.stream("mobility");
  auto b = manager.stream("mac");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngManager, IndexedStreamsDifferPerIndex) {
  const RngManager manager(42);
  auto a = manager.stream("mobility", 0);
  auto b = manager.stream("mobility", 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngManager, MasterSeedChangesEverything) {
  auto a = RngManager(1).stream("x");
  auto b = RngManager(2).stream("x");
  EXPECT_NE(a.uniform01(), b.uniform01());
}

// Property: adding a new named consumer must not perturb existing streams
// (the reason we derive streams by name instead of sharing one engine).
class RngIsolationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngIsolationTest, StreamsAreIsolatedFromEachOther) {
  const RngManager manager(GetParam());
  auto reference = manager.stream("workload");
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(reference.uniform01());

  // Interleave draws from other streams; the "workload" stream re-derived
  // afterwards must produce the identical sequence.
  auto noise1 = manager.stream("noise1");
  auto noise2 = manager.stream("noise2", 17);
  for (int i = 0; i < 1000; ++i) {
    noise1.uniform01();
    noise2.uniform_int(0, 100);
  }
  auto again = manager.stream("workload");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(again.uniform01(), expected[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngIsolationTest,
                         ::testing::Values(1, 33, 2026));

}  // namespace
