// ProgressiveSearch — the nhops/timer cycle every improved algorithm
// shares (paper fig. 2/3/4 control flow).
#include <gtest/gtest.h>

#include "core/progressive.hpp"

namespace {

using p2p::core::P2pParams;
using p2p::core::ProgressiveSearch;

TEST(ProgressiveSearch, CyclesThroughNhopsValues) {
  P2pParams params;  // nhops_initial=2, maxnhops=6
  ProgressiveSearch search(params);
  // Sequence: 2, 4, 6, 0 (backoff), 2, 4, 6, 0, ...
  EXPECT_EQ(search.advance().flood_hops, 2);
  EXPECT_EQ(search.advance().flood_hops, 4);
  EXPECT_EQ(search.advance().flood_hops, 6);
  EXPECT_EQ(search.advance().flood_hops, 0);
  EXPECT_EQ(search.advance().flood_hops, 2);
}

TEST(ProgressiveSearch, ProbeStepsWaitTheCurrentTimer) {
  P2pParams params;
  params.timer_initial = 30.0;
  ProgressiveSearch search(params);
  EXPECT_DOUBLE_EQ(search.advance().wait, 30.0);  // nhops=2
  EXPECT_DOUBLE_EQ(search.advance().wait, 30.0);  // nhops=4
  EXPECT_DOUBLE_EQ(search.advance().wait, 30.0);  // nhops=6
}

TEST(ProgressiveSearch, BackoffDoublesTimerUpToMaxtimer) {
  P2pParams params;
  params.timer_initial = 10.0;
  params.maxtimer = 40.0;
  ProgressiveSearch search(params);
  for (int i = 0; i < 3; ++i) search.advance();  // 2, 4, 6
  const auto backoff1 = search.advance();        // wrap
  EXPECT_EQ(backoff1.flood_hops, 0);
  EXPECT_DOUBLE_EQ(backoff1.wait, 0.0);  // restart immediately
  EXPECT_DOUBLE_EQ(search.timer(), 20.0);
  for (int i = 0; i < 3; ++i) search.advance();
  search.advance();  // second wrap
  EXPECT_DOUBLE_EQ(search.timer(), 40.0);
  for (int i = 0; i < 3; ++i) search.advance();
  search.advance();  // third wrap: capped
  EXPECT_DOUBLE_EQ(search.timer(), 40.0);
}

TEST(ProgressiveSearch, SuccessResetsTimerButNotPhase) {
  P2pParams params;
  params.timer_initial = 10.0;
  params.maxtimer = 160.0;
  ProgressiveSearch search(params);
  for (int i = 0; i < 4; ++i) search.advance();  // one full cycle, timer 20
  EXPECT_DOUBLE_EQ(search.timer(), 20.0);
  const int nhops_before = search.nhops();
  search.on_connection_established();
  EXPECT_DOUBLE_EQ(search.timer(), 10.0);        // paper: reset on success
  EXPECT_EQ(search.nhops(), nhops_before);       // cycle position retained
}

TEST(ProgressiveSearch, ResetRestartsEverything) {
  P2pParams params;
  ProgressiveSearch search(params);
  for (int i = 0; i < 5; ++i) search.advance();
  search.reset();
  EXPECT_EQ(search.nhops(), params.nhops_initial);
  EXPECT_DOUBLE_EQ(search.timer(), params.timer_initial);
  EXPECT_EQ(search.advance().flood_hops, 2);
}

TEST(ProgressiveSearch, HonorsCustomRadiusParameters) {
  P2pParams params;
  params.nhops_initial = 1;
  params.maxnhops = 5;
  ProgressiveSearch search(params);
  // (1, 3, 5, 0, 2, ...) — the paper's formula (nhops+2) mod (MAXNHOPS+2)
  // re-enters at 2 after a wrap, regardless of an odd initial value.
  EXPECT_EQ(search.advance().flood_hops, 1);
  EXPECT_EQ(search.advance().flood_hops, 3);
  EXPECT_EQ(search.advance().flood_hops, 5);
  EXPECT_EQ(search.advance().flood_hops, 0);
  EXPECT_EQ(search.advance().flood_hops, 2);
}

}  // namespace
