// Content model: Zipf law frequencies, popularity sampling, placement.
#include <gtest/gtest.h>

#include "content/catalog.hpp"
#include "content/zipf.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2p;
using content::Placement;
using content::ZipfLaw;

TEST(Zipf, FrequenciesFollowPaperFormula) {
  const ZipfLaw law(20, 0.40);
  EXPECT_DOUBLE_EQ(law.frequency(1), 0.40);
  EXPECT_DOUBLE_EQ(law.frequency(2), 0.20);
  EXPECT_NEAR(law.frequency(3), 0.40 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(law.frequency(20), 0.02);
}

TEST(Zipf, SampleByPopularityStaysInRange) {
  const ZipfLaw law(20, 0.40);
  sim::RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto f = law.sample_by_popularity(rng);
    EXPECT_GE(f, 1U);
    EXPECT_LE(f, 20U);
  }
}

TEST(Zipf, SampleByPopularityPrefersLowRanks) {
  const ZipfLaw law(10, 1.0);
  sim::RngStream rng(3);
  int rank1 = 0, rank10 = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto f = law.sample_by_popularity(rng);
    if (f == 1) ++rank1;
    if (f == 10) ++rank10;
  }
  // P(1)/P(10) = 10 under the 1/k law.
  EXPECT_GT(rank1, 5 * rank10);
}

TEST(Zipf, SingleFileCatalog) {
  const ZipfLaw law(1, 0.40);
  sim::RngStream rng(3);
  EXPECT_EQ(law.sample_by_popularity(rng), 1U);
  EXPECT_DOUBLE_EQ(law.frequency(1), 0.40);
}

TEST(Placement, ExactQuotaMatchesRoundedFrequencies) {
  const ZipfLaw law(20, 0.40);
  const Placement placement(law, 100, sim::RngStream(7), /*exact_quota=*/true);
  EXPECT_EQ(placement.copies_of(1), 40U);
  EXPECT_EQ(placement.copies_of(2), 20U);
  EXPECT_EQ(placement.copies_of(4), 10U);
  // Tail files still exist somewhere (quota is clamped to >= 1).
  for (std::uint32_t k = 1; k <= 20; ++k) {
    EXPECT_GE(placement.copies_of(k), 1U) << "file " << k;
  }
}

TEST(Placement, HoldsAgreesWithFilesOfAndCopies) {
  const ZipfLaw law(10, 0.40);
  const Placement placement(law, 50, sim::RngStream(9));
  std::uint32_t total_from_files_of = 0;
  for (std::uint32_t m = 0; m < 50; ++m) {
    for (const auto file : placement.files_of(m)) {
      EXPECT_TRUE(placement.holds(m, file));
      ++total_from_files_of;
    }
  }
  std::uint32_t total_from_copies = 0;
  for (std::uint32_t k = 1; k <= 10; ++k) total_from_copies += placement.copies_of(k);
  EXPECT_EQ(total_from_files_of, total_from_copies);
}

TEST(Placement, BernoulliModeIsApproximatelyCalibrated) {
  const ZipfLaw law(5, 0.40);
  const Placement placement(law, 2000, sim::RngStream(11),
                            /*exact_quota=*/false);
  // 40% of 2000 = 800; Bernoulli gives binomial spread (sd ~ 22).
  EXPECT_NEAR(placement.copies_of(1), 800U, 100U);
}

TEST(Placement, DeterministicForSameSeed) {
  const ZipfLaw law(20, 0.40);
  const Placement a(law, 80, sim::RngStream(5));
  const Placement b(law, 80, sim::RngStream(5));
  for (std::uint32_t m = 0; m < 80; ++m) {
    EXPECT_EQ(a.files_of(m), b.files_of(m));
  }
}

TEST(Placement, DifferentSeedsDiffer) {
  const ZipfLaw law(20, 0.40);
  const Placement a(law, 80, sim::RngStream(5));
  const Placement b(law, 80, sim::RngStream(6));
  bool any_difference = false;
  for (std::uint32_t m = 0; m < 80 && !any_difference; ++m) {
    any_difference = a.files_of(m) != b.files_of(m);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Placement, ZeroMembersIsEmptyButValid) {
  const ZipfLaw law(5, 0.40);
  const Placement placement(law, 0, sim::RngStream(1));
  EXPECT_EQ(placement.num_members(), 0U);
  EXPECT_EQ(placement.copies_of(1), 0U);
}

}  // namespace
