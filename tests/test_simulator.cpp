// Simulator: time advance, scheduling semantics, stop, cancellation from
// inside handlers, and the Timer helper.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace {

using p2p::sim::kTimeNever;
using p2p::sim::Simulator;
using p2p::sim::Timer;

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_processed(), 0U);
}

TEST(Simulator, AdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(2.5, [&] { seen.push_back(sim.now()); });
  sim.at(1.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] { sim.after(5.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] { sim.at(3.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, RunUntilStopsAtHorizonButIncludesBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(2.0 + 1e-9, [&] { ++fired; });
  const auto processed = sim.run_until(2.0);
  EXPECT_EQ(processed, 2U);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.events_pending(), 1U);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, StopFromHandlerHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_pending(), 1U);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, HandlerCanCancelLaterEvent) {
  Simulator sim;
  bool fired = false;
  const auto victim = sim.at(2.0, [&] { fired = true; });
  sim.at(1.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsScheduledAtSameTimeAsNowStillFire) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] {
    sim.after(0.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5U);
  EXPECT_EQ(sim.events_scheduled(), 5U);
}

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.restart(5.0);
  EXPECT_TRUE(timer.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(Timer, RestartSupersedesPreviousSchedule) {
  Simulator sim;
  std::vector<double> fire_times;
  Timer timer(sim, [&] { fire_times.push_back(sim.now()); });
  timer.restart(5.0);
  sim.at(1.0, [&] { timer.restart(10.0); });
  sim.run();
  ASSERT_EQ(fire_times.size(), 1U);
  EXPECT_DOUBLE_EQ(fire_times[0], 11.0);
}

TEST(Timer, StopCancels) {
  Simulator sim;
  int fired = 0;
  Timer timer(sim, [&] { ++fired; });
  timer.restart(5.0);
  timer.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructorCancelsPendingFiring) {
  Simulator sim;
  int fired = 0;
  {
    Timer timer(sim, [&] { ++fired; });
    timer.restart(1.0);
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRestartItselfFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer* self = nullptr;
  Timer timer(sim, [&] {
    if (++fired < 3) self->restart(1.0);
  });
  self = &timer;
  timer.restart(1.0);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

}  // namespace
