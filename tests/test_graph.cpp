// Graph + small-world metrics against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace {

using namespace p2p::graph;

Graph ring_lattice(std::size_t n, std::size_t k_each_side) {
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t d = 1; d <= k_each_side; ++d) {
      g.add_edge(v, static_cast<Vertex>((v + d) % n));
    }
  }
  return g;
}

TEST(Graph, AddEdgeIgnoresDuplicatesSelfLoopsAndOutOfRange) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 0);
  g.add_edge(0, 9);
  EXPECT_EQ(g.edge_count(), 1U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(5);
  for (Vertex v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1);
  const auto dist = g.bfs_distances(0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(dist[v], static_cast<int>(v));
}

TEST(Graph, BfsMarksUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  // 2 and 3 disconnected.
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Graph, PairDistance) {
  Graph g(6);
  for (Vertex v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, 5);  // shortcut
  EXPECT_EQ(g.distance(0, 3), 3);
  EXPECT_EQ(g.distance(0, 5), 1);
  EXPECT_EQ(g.distance(1, 5), 2);
  EXPECT_EQ(g.distance(2, 2), 0);
}

TEST(Graph, DistanceUnreachableAndInvalid) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.distance(0, 2), kUnreachable);
  EXPECT_EQ(g.distance(0, 99), kUnreachable);
}

TEST(Graph, Components) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  std::size_t count = 0;
  const auto labels = g.components(&count);
  EXPECT_EQ(count, 3U);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[5]);
}

TEST(Metrics, TriangleHasClusteringOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(Metrics, StarHasClusteringZero) {
  Graph g(5);
  for (Vertex v = 1; v < 5; ++v) g.add_edge(0, v);
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 0.0);
  // Leaves have degree 1 -> excluded; the center contributes 0.
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 0.0);
}

TEST(Metrics, PaperDefinitionRealOverPossible) {
  // Node 0 with neighbors 1,2,3; only (1,2) connected: 1 of 3 pairs.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  EXPECT_NEAR(local_clustering(g, 0), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, PathLengthOfTriangleAndPath) {
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(characteristic_path_length(triangle), 1.0);

  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  // Distances: (0,1)=1 (0,2)=2 (1,2)=1 -> mean 4/3.
  EXPECT_NEAR(characteristic_path_length(path), 4.0 / 3.0, 1e-12);
}

TEST(Metrics, RingLatticeValues) {
  // Ring lattice n=20, k=4 (2 each side): C = 0.5 (Watts-Strogatz).
  const Graph g = ring_lattice(20, 2);
  EXPECT_EQ(g.edge_count(), 40U);
  EXPECT_NEAR(clustering_coefficient(g), 0.5, 1e-9);
}

TEST(Metrics, RewiringShortensPathLength) {
  const Graph lattice = ring_lattice(40, 2);
  Graph rewired = ring_lattice(40, 2);
  // Add a few long chords (the Watts-Strogatz "bridges").
  rewired.add_edge(0, 20);
  rewired.add_edge(10, 30);
  rewired.add_edge(5, 25);
  const double l0 = characteristic_path_length(lattice);
  const double l1 = characteristic_path_length(rewired);
  EXPECT_LT(l1, l0);
  // Clustering barely moves.
  EXPECT_NEAR(clustering_coefficient(rewired), clustering_coefficient(lattice),
              0.05);
}

TEST(Metrics, AnalyzeSummarizesStructure) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  const auto m = analyze(g);
  EXPECT_EQ(m.vertices, 7U);
  EXPECT_EQ(m.edges, 4U);
  EXPECT_EQ(m.components, 4U);  // triangle, pair, 2 singletons
  EXPECT_EQ(m.largest_component, 3U);
  // Connected ordered pairs: 3*2 + 2*1 = 8 of 42.
  EXPECT_NEAR(m.connected_pair_fraction, 8.0 / 42.0, 1e-12);
}

TEST(Metrics, ReferencePathLengths) {
  EXPECT_DOUBLE_EQ(regular_lattice_path_length(100, 4), 12.5);
  EXPECT_NEAR(random_graph_path_length(100, 4),
              std::log(100.0) / std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(regular_lattice_path_length(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(random_graph_path_length(1, 4), 0.0);
}

TEST(Metrics, EmptyGraphIsSafe) {
  const Graph g(0);
  const auto m = analyze(g);
  EXPECT_EQ(m.vertices, 0U);
  EXPECT_DOUBLE_EQ(m.clustering, 0.0);
  EXPECT_DOUBLE_EQ(m.path_length, 0.0);
}

}  // namespace
