// ConnectionTable bookkeeping and message classification.
#include <gtest/gtest.h>

#include "core/connection.hpp"
#include "core/counters.hpp"
#include "core/hybrid.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"

namespace {

using namespace p2p::core;

TEST(ConnectionTable, AddFindRemove) {
  ConnectionTable table;
  Connection& conn = table.add(7, ConnKind::kRegular, true, 1.5);
  EXPECT_EQ(conn.peer, 7U);
  EXPECT_TRUE(conn.initiator);
  EXPECT_DOUBLE_EQ(conn.established, 1.5);
  EXPECT_TRUE(table.connected(7));
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(7)->kind, ConnKind::kRegular);
  EXPECT_TRUE(table.remove(7));
  EXPECT_FALSE(table.connected(7));
  EXPECT_FALSE(table.remove(7));
}

TEST(ConnectionTable, CountsByKind) {
  ConnectionTable table;
  table.add(1, ConnKind::kRegular, true, 0.0);
  table.add(2, ConnKind::kRegular, false, 0.0);
  table.add(3, ConnKind::kRandom, true, 0.0);
  table.add(4, ConnKind::kSlave, false, 0.0);
  EXPECT_EQ(table.size(), 4U);
  EXPECT_EQ(table.count(ConnKind::kRegular), 2U);
  EXPECT_EQ(table.count(ConnKind::kRandom), 1U);
  EXPECT_EQ(table.count(ConnKind::kMaster), 0U);
  EXPECT_TRUE(table.has(ConnKind::kSlave));
  EXPECT_FALSE(table.has(ConnKind::kBasic));
}

TEST(ConnectionTable, PeersAreSortedById) {
  ConnectionTable table;
  table.add(9, ConnKind::kRegular, true, 0.0);
  table.add(2, ConnKind::kRandom, true, 0.0);
  table.add(5, ConnKind::kRegular, true, 0.0);
  EXPECT_EQ(table.peers(), (std::vector<p2p::net::NodeId>{2, 5, 9}));
  EXPECT_EQ(table.peers_of_kind(ConnKind::kRegular),
            (std::vector<p2p::net::NodeId>{5, 9}));
}

TEST(ConnectionTable, ConstFind) {
  ConnectionTable table;
  table.add(1, ConnKind::kBasic, true, 0.0);
  const ConnectionTable& view = table;
  EXPECT_NE(view.find(1), nullptr);
  EXPECT_EQ(view.find(2), nullptr);
}

TEST(Names, EnumsHaveReadableNames) {
  EXPECT_STREQ(conn_kind_name(ConnKind::kBasic), "basic");
  EXPECT_STREQ(conn_kind_name(ConnKind::kRandom), "random");
  EXPECT_STREQ(close_reason_name(CloseReason::kTooFar), "too-far");
  EXPECT_STREQ(close_reason_name(CloseReason::kPeerClosed), "peer-closed");
  EXPECT_STREQ(algorithm_name(AlgorithmKind::kHybrid), "Hybrid");
  EXPECT_STREQ(msg_type_name(MsgType::kQueryHit), "query-hit");
  EXPECT_STREQ(hybrid_state_name(HybridState::kReserved), "reserved");
}

TEST(Messages, ConnectClassificationMatchesFigure7) {
  EXPECT_TRUE(is_connect_message(MsgType::kConnectProbe));
  EXPECT_TRUE(is_connect_message(MsgType::kConnectOffer));
  EXPECT_TRUE(is_connect_message(MsgType::kConnectRequest));
  EXPECT_TRUE(is_connect_message(MsgType::kConnectAck));
  EXPECT_TRUE(is_connect_message(MsgType::kCapture));
  EXPECT_TRUE(is_connect_message(MsgType::kSlaveRequest));
  EXPECT_FALSE(is_connect_message(MsgType::kPing));
  EXPECT_FALSE(is_connect_message(MsgType::kQuery));
  EXPECT_FALSE(is_connect_message(MsgType::kBye));
}

TEST(Messages, PingClassificationMatchesFigure9) {
  EXPECT_TRUE(is_ping_message(MsgType::kPing));
  EXPECT_TRUE(is_ping_message(MsgType::kPong));
  EXPECT_FALSE(is_ping_message(MsgType::kQuery));
  EXPECT_FALSE(is_ping_message(MsgType::kConnectProbe));
}

TEST(Counters, AggregatesByCategory) {
  MessageCounters counters;
  counters.count_received(MsgType::kConnectProbe);
  counters.count_received(MsgType::kConnectOffer);
  counters.count_received(MsgType::kPing);
  counters.count_received(MsgType::kPong);
  counters.count_received(MsgType::kPong);
  counters.count_received(MsgType::kQuery);
  counters.count_sent(MsgType::kQuery);
  EXPECT_EQ(counters.connect_received(), 2U);
  EXPECT_EQ(counters.ping_received(), 3U);
  EXPECT_EQ(counters.query_received(), 1U);
  EXPECT_EQ(counters.received_of(MsgType::kPong), 2U);
  EXPECT_EQ(counters.sent_of(MsgType::kQuery), 1U);
  EXPECT_EQ(counters.sent_of(MsgType::kPing), 0U);
}

TEST(Messages, SizesAreGnutellaLike) {
  // Gnutella 0.4: 22-byte header + small bodies; pong carries more.
  EXPECT_EQ(Ping{}.size_bytes(), 23U);
  EXPECT_GT(Pong{}.size_bytes(), Ping{}.size_bytes());
  EXPECT_GT(QueryHit{}.size_bytes(), Query{}.size_bytes());
}

}  // namespace
