// Property-based sweeps (parameterized gtest): invariants that must hold
// for every seed / algorithm combination.
#include <gtest/gtest.h>

#include <tuple>

#include "core/hybrid.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;
using core::AlgorithmKind;
using scenario::Parameters;
using scenario::SimulationRun;

// ------------------------------------------------------------------
// Full-run invariants over (algorithm x seed).

using AlgoSeed = std::tuple<AlgorithmKind, std::uint64_t>;

class RunProperty : public ::testing::TestWithParam<AlgoSeed> {};

TEST_P(RunProperty, InvariantsHoldUnderChurnAndMobility) {
  const auto [kind, seed] = GetParam();
  Parameters params;
  params.num_nodes = 30;
  params.duration_s = 600.0;
  params.algorithm = kind;
  params.seed = seed;
  params.max_speed = 2.0;  // faster than the paper: more link churn
  SimulationRun run(params);
  const auto result = run.run();

  // 1. Capacity: nobody exceeds MAXNCONN overlay links (Hybrid masters may
  //    additionally hold up to MAXNSLAVES slave links).
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& conns = run.servent(i).connections();
    const std::size_t cap =
        kind == AlgorithmKind::kHybrid
            ? static_cast<std::size_t>(params.p2p.maxnconn +
                                       params.p2p.maxnslaves)
            : static_cast<std::size_t>(params.p2p.maxnconn);
    EXPECT_LE(conns.size(), cap) << "member " << i;
  }

  // 2. Message conservation: frames delivered never exceed transmitted
  //    times the possible receiver count.
  EXPECT_LE(result.frames_delivered,
            result.frames_transmitted * params.num_nodes);

  // 3. Per-file accounting is internally consistent.
  for (const auto& f : result.per_file) {
    EXPECT_LE(f.answered, f.requests);
    EXPECT_GE(f.answers_total, f.answered);
    EXPECT_LE(f.physical_samples, f.answered);
    EXPECT_LE(f.p2p_samples, f.answered);
  }

  // 4. Overlay graph is restricted to members and has no self-loops: by
  //    construction of overlay_graph, order == member count.
  EXPECT_EQ(result.overlay_final.vertices, run.member_count());

  // 5. Energy strictly positive and finite.
  EXPECT_GT(result.energy_consumed_j, 0.0);
  EXPECT_TRUE(std::isfinite(result.energy_consumed_j));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunProperty,
    ::testing::Combine(::testing::Values(AlgorithmKind::kBasic,
                                         AlgorithmKind::kRegular,
                                         AlgorithmKind::kRandom,
                                         AlgorithmKind::kHybrid),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(core::algorithm_name(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// Determinism across the whole stack, per algorithm.

class DeterminismProperty : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(DeterminismProperty, IdenticalSeedsProduceIdenticalWorlds) {
  Parameters params;
  params.num_nodes = 25;
  params.duration_s = 400.0;
  params.algorithm = GetParam();
  params.seed = 99;

  const auto a = SimulationRun(params).run();
  const auto b = SimulationRun(params).run();
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.masters, b.masters);
  EXPECT_EQ(a.slaves, b.slaves);
  ASSERT_EQ(a.per_file.size(), b.per_file.size());
  for (std::size_t k = 0; k < a.per_file.size(); ++k) {
    EXPECT_EQ(a.per_file[k].requests, b.per_file[k].requests);
    EXPECT_EQ(a.per_file[k].answers_total, b.per_file[k].answers_total);
  }
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].received, b.counters[i].received);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DeterminismProperty,
                         ::testing::Values(AlgorithmKind::kBasic,
                                           AlgorithmKind::kRegular,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kHybrid),
                         [](const auto& info) {
                           return core::algorithm_name(info.param);
                         });

// ------------------------------------------------------------------
// Lossy-channel robustness: the protocols must degrade, not wedge.

class LossProperty : public ::testing::TestWithParam<double> {};

TEST_P(LossProperty, SurvivesFrameLoss) {
  Parameters params;
  params.num_nodes = 30;
  params.duration_s = 600.0;
  params.algorithm = AlgorithmKind::kRegular;
  params.mac.loss_probability = GetParam();
  SimulationRun run(params);
  const auto result = run.run();
  // Invariants hold even with heavy loss.
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    EXPECT_LE(run.servent(i).connections().size(),
              static_cast<std::size_t>(params.p2p.maxnconn));
  }
  if (GetParam() > 0.0) {
    EXPECT_GT(result.frames_lost, 0U);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossProperty,
                         ::testing::Values(0.0, 0.05, 0.25, 0.6));

// ------------------------------------------------------------------
// Hybrid role-consistency sweep.

class HybridProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridProperty, SlaveMasterRelationsAreConsistent) {
  Parameters params;
  params.num_nodes = 30;
  params.duration_s = 700.0;
  params.algorithm = AlgorithmKind::kHybrid;
  params.seed = GetParam();
  SimulationRun run(params);
  run.run();
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& hybrid =
        static_cast<const core::HybridServent&>(run.servent(i));
    if (hybrid.state() != core::HybridState::kSlave) continue;
    // A slave has exactly one link, of slave kind.
    const auto& conns = hybrid.connections();
    ASSERT_EQ(conns.size(), 1U) << "slave " << i;
    EXPECT_EQ(conns.count(core::ConnKind::kSlave), 1U);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridProperty,
                         ::testing::Values(1, 5, 9, 13));

}  // namespace
