// Base-servent machinery shared by all algorithms: factory, parameter
// derivation, start semantics, counters, and cross-algorithm behaviors.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::core::AlgorithmKind;
using p2p::core::MsgType;
using p2p::core::P2pParams;
using p2p::core::parse_algorithm;

TEST(Factory, CreatesEveryAlgorithm) {
  World world;
  const auto a = world.add_node(10, 10);
  const auto b = world.add_node(20, 10);
  const auto c = world.add_node(30, 10);
  const auto d = world.add_node(40, 10);
  EXPECT_EQ(world.add_servent(a, AlgorithmKind::kBasic).algorithm(),
            AlgorithmKind::kBasic);
  EXPECT_EQ(world.add_servent(b, AlgorithmKind::kRegular).algorithm(),
            AlgorithmKind::kRegular);
  EXPECT_EQ(world.add_servent(c, AlgorithmKind::kRandom).algorithm(),
            AlgorithmKind::kRandom);
  EXPECT_EQ(world.add_servent(d, AlgorithmKind::kHybrid).algorithm(),
            AlgorithmKind::kHybrid);
}

TEST(Factory, ParseAlgorithmNames) {
  EXPECT_EQ(parse_algorithm("basic"), AlgorithmKind::kBasic);
  EXPECT_EQ(parse_algorithm("Regular"), AlgorithmKind::kRegular);
  EXPECT_EQ(parse_algorithm("RANDOM"), AlgorithmKind::kRandom);
  EXPECT_EQ(parse_algorithm("hybrid"), AlgorithmKind::kHybrid);
  EXPECT_FALSE(parse_algorithm("gnutella"));
  EXPECT_FALSE(parse_algorithm(""));
}

TEST(Params, DerivedValuesFollowThePaper) {
  P2pParams params;
  EXPECT_EQ(params.random_max_hops(), 2 * params.maxnhops);
  EXPECT_EQ(params.random_maxdist(), 2 * params.maxdist);
  // Table 2 defaults.
  EXPECT_EQ(params.maxnconn, 3);
  EXPECT_EQ(params.nhops_initial, 2);
  EXPECT_EQ(params.maxnhops, 6);
  EXPECT_EQ(params.maxdist, 6);
  EXPECT_EQ(params.maxnslaves, 3);
  EXPECT_EQ(params.query_ttl, 6);
}

TEST(Servent, SelfAndParamsAccessors) {
  World world;
  const auto a = world.add_node(10, 10);
  auto& servent = world.add_servent(a, AlgorithmKind::kRegular);
  EXPECT_EQ(servent.self(), a);
  EXPECT_EQ(servent.params().maxnconn, 3);
  EXPECT_EQ(servent.connections().size(), 0U);
  EXPECT_EQ(servent.queries_sent(), 0U);
}

TEST(Servent, HoldsIsFalseWithoutPlacement) {
  World world;
  const auto a = world.add_node(10, 10);
  auto& servent = world.add_servent(a, AlgorithmKind::kRegular);
  EXPECT_FALSE(servent.holds(1));
}

TEST(Servent, CountersTrackSentProbes) {
  World world;
  const auto a = world.add_node(10, 10);
  auto& servent = world.add_servent(a, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(5.0);
  EXPECT_GE(servent.counters().sent_of(MsgType::kConnectProbe), 1U);
}

TEST(Servent, EstablishedAndClosedTelemetry) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(60.0);
  ASSERT_TRUE(world.symmetric(a, b));
  EXPECT_EQ(world.servent(a).connections_established(), 1U);
  EXPECT_EQ(world.servent(a).connections_closed(), 0U);
  world.network().set_failed(b, true);
  world.sim().run_until(600.0);
  EXPECT_GE(world.servent(a).connections_closed(), 1U);
}

TEST(Servent, MixedAlgorithmsDoNotCrashTogether) {
  // Deployments can mix: a Basic node's blind offers must not corrupt a
  // Regular node's handshake state, and vice versa.
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(54, 50);
  const auto c = world.add_node(52, 54);
  world.add_servent(a, AlgorithmKind::kBasic);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.add_servent(c, AlgorithmKind::kRandom);
  world.start_all();
  world.sim().run_until(300.0);
  // Everyone stays within capacity; no assertion fired.
  for (const auto id : {a, b, c}) {
    EXPECT_LE(world.servent(id).connections().size(), 3U);
  }
}

TEST(Servent, PingTrafficHalvedVsBasicPair) {
  // Quantifies improvement #3 on an isolated pair: over the same horizon
  // a Basic pair moves ~2x the ping+pong volume of a Regular pair.
  const auto run_pair = [](AlgorithmKind kind) {
    World world;
    const auto a = world.add_node(50, 50);
    const auto b = world.add_node(55, 50);
    world.add_servent(a, kind);
    world.add_servent(b, kind);
    world.start_all();
    world.sim().run_until(2000.0);
    return world.servent(a).counters().ping_received() +
           world.servent(b).counters().ping_received();
  };
  const auto basic = run_pair(AlgorithmKind::kBasic);
  const auto regular = run_pair(AlgorithmKind::kRegular);
  ASSERT_GT(regular, 0U);
  const double ratio =
      static_cast<double>(basic) / static_cast<double>(regular);
  EXPECT_GT(ratio, 1.5) << "basic=" << basic << " regular=" << regular;
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
