// DSDV: proactive convergence, sequence-number semantics, link-break
// handling, and interchangeability with AODV behind RoutingService.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/model.hpp"
#include "mobility/trace.hpp"
#include "net/network.hpp"
#include "routing/dsdv.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using net::NodeId;
using routing::DsdvAgent;
using routing::DsdvParams;

struct AppMsg final : net::AppPayload {
  int tag = 0;
  explicit AppMsg(int t) : tag(t) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct LineWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<DsdvAgent>> agents;
  std::vector<std::vector<std::pair<NodeId, int>>> delivered;  // (src, hops)

  explicit LineWorld(std::size_t n, DsdvParams params = {}) {
    net::NetworkParams net_params;
    net_params.region = {8.0 * static_cast<double>(n) + 10.0, 20.0};
    net_params.mac.jitter_max_s = 0.001;
    net = std::make_unique<net::Network>(sim, net_params, sim::RngStream(1));
    delivered.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<mobility::StaticModel>(
          geo::Vec2{8.0 * static_cast<double>(i) + 1.0, 10.0}));
      agents.push_back(std::make_unique<DsdvAgent>(sim, *net, id, params));
      agents.back()->set_deliver_handler(
          [this, i](NodeId src, net::AppPayloadPtr, int hops) {
            delivered[i].emplace_back(src, hops);
          });
    }
  }
};

TEST(Dsdv, TablesConvergeAfterAFewUpdateRounds) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  LineWorld world(5, params);
  // Routes propagate one hop per dump round: 4 rounds to cross the line.
  world.sim.run_until(40.0);
  EXPECT_TRUE(world.agents[0]->has_route(4));
  EXPECT_EQ(world.agents[0]->route_hops(4), 4);
  EXPECT_TRUE(world.agents[4]->has_route(0));
  EXPECT_EQ(world.agents[2]->route_hops(0), 2);
  EXPECT_EQ(world.agents[0]->table_size(), 4U);
}

TEST(Dsdv, DeliversMultiHopOnceConverged) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  LineWorld world(4, params);
  world.sim.run_until(30.0);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(7));
  world.sim.run_until(35.0);
  ASSERT_EQ(world.delivered[3].size(), 1U);
  EXPECT_EQ(world.delivered[3][0].first, 0U);
  EXPECT_EQ(world.delivered[3][0].second, 3);
}

TEST(Dsdv, DropsWhenNotYetConverged) {
  DsdvParams params;
  params.periodic_update_interval = 50.0;  // no dump yet
  LineWorld world(4, params);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(5.0);
  EXPECT_TRUE(world.delivered[3].empty());
  EXPECT_EQ(world.agents[0]->stats().data_dropped, 1U);
}

TEST(Dsdv, SequenceNumbersPreferFresherInformation) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  LineWorld world(3, params);
  world.sim.run_until(30.0);
  // Node 1 sits between 0 and 2: its route to 2 is direct (metric 1),
  // never the stale 2-hop detour through 0.
  EXPECT_EQ(world.agents[1]->route_hops(2), 1);
  EXPECT_EQ(world.agents[1]->route_hops(0), 1);
}

TEST(Dsdv, LinkBreakMarksRoutesAndRecoves) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  params.route_stale_timeout = 20.0;
  // 0-1-2 line plus an alternative relay 3 near the middle.
  sim::Simulator sim;
  net::NetworkParams net_params;
  net_params.region = {200.0, 40.0};
  net_params.mac.jitter_max_s = 0.001;
  net::Network network(sim, net_params, sim::RngStream(1));
  std::vector<std::unique_ptr<DsdvAgent>> agents;
  std::vector<int> delivered;
  const NodeId n0 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{1.0, 10.0}));
  const NodeId n1 = network.add_node(std::make_unique<mobility::TraceModel>(
      geo::Vec2{9.0, 10.0},
      std::vector<mobility::TraceStep>{{30.0, {9.0, 180.0}, 60.0}}));
  const NodeId n2 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{17.0, 10.0}));
  const NodeId n3 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{9.0, 15.0}));
  for (const NodeId id : {n0, n1, n2, n3}) {
    agents.push_back(std::make_unique<DsdvAgent>(sim, network, id, params));
  }
  agents[n2]->set_deliver_handler(
      [&](NodeId, net::AppPayloadPtr app, int) {
        delivered.push_back(dynamic_cast<const AppMsg*>(app.get())->tag);
      });
  sim.run_until(25.0);
  agents[n0]->send(n2, net::make_payload<const AppMsg>(1));
  sim.run_until(29.0);
  ASSERT_EQ(delivered.size(), 1U);
  // n1 leaves at t=30. After stale timeouts + new dumps, n0 must reach n2
  // through n3.
  sim.run_until(120.0);
  agents[n0]->send(n2, net::make_payload<const AppMsg>(2));
  sim.run_until(130.0);
  ASSERT_EQ(delivered.size(), 2U);
  EXPECT_EQ(delivered[1], 2);
}

TEST(Dsdv, CountsControlTraffic) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  params.update_jitter = 0.5;
  LineWorld world(3, params);
  world.sim.run_until(51.0);
  // ~10 periodic dumps per node (plus a few triggered ones early on).
  const auto updates = world.agents[0]->stats().updates_sent;
  EXPECT_GE(updates, 8U);
  EXPECT_LE(updates, 20U);
  const auto telemetry = world.agents[0]->telemetry();
  EXPECT_EQ(telemetry.control_messages_sent, updates);
}

TEST(Dsdv, LearnRouteIsAnHonestNoop) {
  LineWorld world(3);
  world.agents[0]->learn_route(2, 1, 2);
  EXPECT_FALSE(world.agents[0]->has_route(2));  // tables stay pure
}

TEST(Dsdv, StaleRoutesExpire) {
  DsdvParams params;
  params.periodic_update_interval = 5.0;
  params.route_stale_timeout = 15.0;
  LineWorld world(2, params);
  world.sim.run_until(20.0);
  ASSERT_TRUE(world.agents[0]->has_route(1));
  // Kill node 1: no more dumps; after the stale timeout the route dies.
  world.net->set_failed(1, true);
  world.sim.run_until(60.0);
  EXPECT_FALSE(world.agents[0]->has_route(1));
}

}  // namespace
