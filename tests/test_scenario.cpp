// Scenario layer: parameter overrides, run construction, result
// extraction, determinism, and the experiment cache round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "scenario/cache.hpp"
#include "scenario/experiment.hpp"
#include "scenario/run.hpp"
#include "util/config.hpp"

namespace {

using namespace p2p;
using scenario::Parameters;
using scenario::SimulationRun;

Parameters tiny_scenario(core::AlgorithmKind kind, std::uint64_t seed = 1) {
  Parameters params;
  params.num_nodes = 20;
  params.duration_s = 300.0;
  params.algorithm = kind;
  params.seed = seed;
  params.overlay_sample_interval_s = 100.0;
  return params;
}

TEST(Parameters, DefaultsMatchPaperTable2) {
  const Parameters params;
  EXPECT_EQ(params.num_nodes, 50U);
  EXPECT_DOUBLE_EQ(params.p2p_fraction, 0.75);
  EXPECT_DOUBLE_EQ(params.radio_range, 10.0);
  EXPECT_DOUBLE_EQ(params.area_width, 100.0);
  EXPECT_DOUBLE_EQ(params.duration_s, 3600.0);
  EXPECT_EQ(params.num_files, 20U);
  EXPECT_DOUBLE_EQ(params.max_frequency, 0.40);
  EXPECT_DOUBLE_EQ(params.max_speed, 1.0);
  EXPECT_DOUBLE_EQ(params.max_pause, 100.0);
}

TEST(Parameters, NumMembersRounds) {
  Parameters params;
  params.num_nodes = 50;
  EXPECT_EQ(params.num_members(), 38U);  // round(37.5)
  params.num_nodes = 150;
  EXPECT_EQ(params.num_members(), 113U);  // round(112.5)
  params.p2p_fraction = 1.0;
  EXPECT_EQ(params.num_members(), 150U);
}

TEST(Parameters, ApplyOverrides) {
  Parameters params;
  util::Config config;
  config.set("num_nodes", "150");
  config.set("algorithm", "hybrid");
  config.set("maxnconn", "5");
  config.set("timer_initial", "12.5");
  config.set("mobile", "false");
  EXPECT_EQ(params.apply(config), "");
  EXPECT_EQ(params.num_nodes, 150U);
  EXPECT_EQ(params.algorithm, core::AlgorithmKind::kHybrid);
  EXPECT_EQ(params.p2p.maxnconn, 5);
  EXPECT_DOUBLE_EQ(params.p2p.timer_initial, 12.5);
  EXPECT_FALSE(params.mobile);
}

TEST(Parameters, ApplyRejectsBadValues) {
  Parameters params;
  util::Config config;
  config.set("algorithm", "bittorrent");
  EXPECT_NE(params.apply(config), "");

  util::Config config2;
  config2.set("num_nodes", "0");
  EXPECT_NE(Parameters{}.apply(config2), "");

  util::Config config3;
  config3.set("p2p_fraction", "1.5");
  EXPECT_NE(Parameters{}.apply(config3), "");
}

TEST(Parameters, ApplyRejectsUnknownKeys) {
  // Daemon hardening: a typo'd key used to silently keep the default —
  // the worst failure mode for network-supplied configs. It must be a
  // named error now, and the message must point at the offending key.
  util::Config config;
  config.set("num_nodez", "150");
  const std::string err = Parameters{}.apply(config);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("num_nodez"), std::string::npos) << err;
}

TEST(Parameters, ApplyRejectsUnparsableValues) {
  // Same rationale: "fifty" used to parse as "keep the default". Every
  // typed getter must report the key and the rejected text.
  const auto expect_rejects = [](const char* key, const char* value) {
    util::Config config;
    config.set(key, value);
    const std::string err = Parameters{}.apply(config);
    ASSERT_NE(err, "") << key << "=" << value << " was accepted";
    EXPECT_NE(err.find(key), std::string::npos) << err;
    EXPECT_NE(err.find(value), std::string::npos) << err;
  };
  expect_rejects("num_nodes", "fifty");
  expect_rejects("duration_s", "1h");
  expect_rejects("seed", "-3");
  expect_rejects("mobile", "maybe");
  expect_rejects("maxnconn", "3.5");
}

TEST(Parameters, ApplyRejectsOutOfRangeValues) {
  const auto expect_rejects = [](const char* key, const char* value) {
    util::Config config;
    config.set(key, value);
    EXPECT_NE(Parameters{}.apply(config), "")
        << key << "=" << value << " was accepted";
  };
  expect_rejects("area_width", "0");
  expect_rejects("radio_range", "-5");
  expect_rejects("duration_s", "0");
  expect_rejects("max_frequency", "0");
  expect_rejects("mac_loss_probability", "1.01");
  expect_rejects("mac_bandwidth_bps", "0");
  expect_rejects("battery_j", "-1");
  expect_rejects("loss_burst_loss", "2");
  expect_rejects("num_files", "0");
  expect_rejects("sim_threads", "0");
  expect_rejects("churn_rate", "-0.5");
  // min_speed > max_speed (default max_speed = 1.0).
  expect_rejects("min_speed", "5");
}

TEST(Parameters, ApplyReportsFirstProblemAndAppliesNothingAfter) {
  // A config with both a bad value and a later unknown key reports the
  // parse problem (getters run first), not a misleading unknown-key
  // message for something it never got to.
  util::Config config;
  config.set("num_nodes", "abc");
  config.set("zzz_unknown", "1");
  const std::string err = Parameters{}.apply(config);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("num_nodes"), std::string::npos) << err;
}

TEST(Parameters, CrashRunAtRequiresSequentialExecution) {
  util::Config config;
  config.set("crash_run_at", "10");
  config.set("sim_shards", "4");
  EXPECT_NE(Parameters{}.apply(config), "");

  util::Config sequential;
  sequential.set("crash_run_at", "10");
  Parameters params;
  EXPECT_EQ(params.apply(sequential), "");
  EXPECT_TRUE(params.fault.crash_run_enabled());
}

TEST(Parameters, SummaryMentionsKeyFacts) {
  const Parameters params;
  const std::string s = params.summary();
  EXPECT_NE(s.find("50 nodes"), std::string::npos);
  EXPECT_NE(s.find("Regular"), std::string::npos);
}

TEST(SimulationRun, BuildCreatesMembersAndPlacement) {
  const Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  SimulationRun run(params);
  run.build();
  EXPECT_EQ(run.member_count(), params.num_members());
  EXPECT_EQ(run.placement().num_members(), params.num_members());
  EXPECT_EQ(run.placement().num_files(), params.num_files);
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    EXPECT_EQ(run.servent(i).algorithm(), core::AlgorithmKind::kRegular);
    EXPECT_LT(run.member_node(i), params.num_nodes);
  }
}

TEST(SimulationRun, ProducesPlausibleResults) {
  const Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  SimulationRun run(params);
  const auto result = run.run();
  EXPECT_EQ(result.num_nodes, 20U);
  EXPECT_EQ(result.num_members, 15U);
  EXPECT_EQ(result.counters.size(), 15U);
  EXPECT_EQ(result.per_file.size(), 20U);
  EXPECT_GT(result.frames_transmitted, 0U);
  EXPECT_GT(result.energy_consumed_j, 0.0);
  EXPECT_GT(result.events_processed, 0U);
  EXPECT_FALSE(result.overlay_samples.empty());
  // Extract helpers match counters.
  const auto connect = result.connect_received_per_member();
  ASSERT_EQ(connect.size(), 15U);
  for (std::size_t i = 0; i < connect.size(); ++i) {
    EXPECT_DOUBLE_EQ(connect[i],
                     static_cast<double>(result.counters[i].connect_received()));
  }
}

TEST(SimulationRun, DeterministicForSameSeed) {
  const Parameters params = tiny_scenario(core::AlgorithmKind::kRandom, 7);
  const auto a = SimulationRun(params).run();
  const auto b = SimulationRun(params).run();
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].received, b.counters[i].received);
    EXPECT_EQ(a.counters[i].sent, b.counters[i].sent);
  }
}

TEST(SimulationRun, DifferentSeedsDiffer) {
  const auto a =
      SimulationRun(tiny_scenario(core::AlgorithmKind::kRegular, 1)).run();
  const auto b =
      SimulationRun(tiny_scenario(core::AlgorithmKind::kRegular, 2)).run();
  EXPECT_NE(a.frames_transmitted, b.frames_transmitted);
}

TEST(SimulationRun, HybridCensusCountsRoles) {
  const auto result =
      SimulationRun(tiny_scenario(core::AlgorithmKind::kHybrid)).run();
  EXPECT_GT(result.masters + result.slaves, 0U);
  EXPECT_LE(result.masters + result.slaves, result.num_members);
}

TEST(SimulationRun, RunsOverDsdv) {
  Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  params.routing_protocol = scenario::RoutingProtocol::kDsdv;
  params.dsdv.periodic_update_interval = 5.0;
  SimulationRun run(params);
  const auto result = run.run();
  // The overlay still forms and queries still flow over proactive routing.
  EXPECT_GT(result.frames_transmitted, 0U);
  EXPECT_GT(result.routing_control_messages, 0U);
  std::uint64_t queries = 0;
  for (const auto& f : result.per_file) queries += f.requests;
  EXPECT_GT(queries, 0U);
}

TEST(SimulationRun, RunsUnderEveryMobilityModel) {
  for (const auto kind :
       {scenario::MobilityKind::kRandomWaypoint,
        scenario::MobilityKind::kRandomDirection,
        scenario::MobilityKind::kGaussMarkov}) {
    Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
    params.mobility_kind = kind;
    const auto result = SimulationRun(params).run();
    EXPECT_GT(result.frames_transmitted, 0U)
        << "mobility kind " << static_cast<int>(kind);
  }
}

TEST(SimulationRun, ChurnKillsAndRevivesNodes) {
  Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  params.churn_death_rate_per_hour = 30.0;  // ~2.5 deaths/node over 300 s
  params.churn_down_time = 20.0;
  const auto result = SimulationRun(params).run();
  EXPECT_GT(result.churn_deaths, 0U);
  // The network survives: frames still flow and invariants held (no
  // assertion fired during the run).
  EXPECT_GT(result.frames_transmitted, 0U);
}

TEST(Parameters, MobilityAndRoutingOverrides) {
  Parameters params;
  util::Config config;
  config.set("mobility", "gauss_markov");
  config.set("routing_protocol", "dsdv");
  config.set("churn_death_rate_per_hour", "5");
  EXPECT_EQ(params.apply(config), "");
  EXPECT_EQ(params.mobility_kind, scenario::MobilityKind::kGaussMarkov);
  EXPECT_EQ(params.routing_protocol, scenario::RoutingProtocol::kDsdv);
  EXPECT_DOUBLE_EQ(params.churn_death_rate_per_hour, 5.0);

  util::Config bad;
  bad.set("mobility", "teleport");
  EXPECT_NE(Parameters{}.apply(bad), "");
  util::Config bad2;
  bad2.set("routing_protocol", "olsr");
  EXPECT_NE(Parameters{}.apply(bad2), "");
}

TEST(Cache, KeyChangesWithNewKnobs) {
  Parameters a = tiny_scenario(core::AlgorithmKind::kRegular);
  Parameters b = a;
  b.routing_protocol = scenario::RoutingProtocol::kDsdv;
  EXPECT_NE(scenario::cache_key(a, 3), scenario::cache_key(b, 3));
  Parameters c = a;
  c.mobility_kind = scenario::MobilityKind::kGaussMarkov;
  EXPECT_NE(scenario::cache_key(a, 3), scenario::cache_key(c, 3));
  Parameters d = a;
  d.churn_death_rate_per_hour = 1.0;
  EXPECT_NE(scenario::cache_key(a, 3), scenario::cache_key(d, 3));
}

TEST(Experiment, AggregatesAcrossSeeds) {
  Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  const auto result = scenario::run_experiment(params, 3, /*threads=*/2);
  EXPECT_EQ(result.runs, 3U);
  EXPECT_EQ(result.connect_curve.runs(), 3U);
  EXPECT_EQ(result.connect_curve.points(), params.num_members());
  EXPECT_EQ(result.ranks.size(), 20U);
  EXPECT_EQ(result.frames_transmitted.count(), 3U);
  EXPECT_GT(result.frames_transmitted.mean(), 0.0);
}

TEST(Experiment, ParallelMatchesSequential) {
  Parameters params = tiny_scenario(core::AlgorithmKind::kBasic);
  const auto seq = scenario::run_experiment(params, 3, 1);
  const auto par = scenario::run_experiment(params, 3, 3);
  EXPECT_EQ(seq.runs, par.runs);
  // Aggregation happens in seed order regardless of thread count, so
  // results are bit-identical — exact ==, not DOUBLE_EQ. The exhaustive
  // all-fields version of this check lives in test_determinism.cpp.
  ASSERT_EQ(seq.connect_curve.points(), par.connect_curve.points());
  for (std::size_t i = 0; i < seq.connect_curve.points(); ++i) {
    EXPECT_EQ(seq.connect_curve.mean_at(i), par.connect_curve.mean_at(i));
    EXPECT_EQ(seq.connect_curve.ci95_at(i), par.connect_curve.ci95_at(i));
  }
  EXPECT_EQ(seq.frames_transmitted.mean(), par.frames_transmitted.mean());
  EXPECT_EQ(seq.frames_transmitted.variance(),
            par.frames_transmitted.variance());
}

TEST(Cache, RoundTripsExperimentResults) {
  const std::string dir = ::testing::TempDir() + "/p2p_cache_test";
  std::filesystem::remove_all(dir);  // stale entries from earlier test runs
  ::setenv("P2P_BENCH_CACHE", dir.c_str(), 1);
  Parameters params = tiny_scenario(core::AlgorithmKind::kRegular);
  params.duration_s = 120.0;

  scenario::ExperimentResult miss;
  EXPECT_FALSE(scenario::load_cached(params, 2, &miss));

  const auto computed = scenario::run_experiment_cached(params, 2);
  scenario::ExperimentResult loaded;
  ASSERT_TRUE(scenario::load_cached(params, 2, &loaded));
  EXPECT_EQ(loaded.runs, computed.runs);
  ASSERT_EQ(loaded.connect_curve.points(), computed.connect_curve.points());
  for (std::size_t i = 0; i < loaded.connect_curve.points(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.connect_curve.mean_at(i),
                     computed.connect_curve.mean_at(i));
  }
  EXPECT_NEAR(loaded.ranks[0].answers_per_request.mean(),
              computed.ranks[0].answers_per_request.mean(), 1e-9);
  EXPECT_NEAR(loaded.frames_transmitted.ci95_halfwidth(),
              computed.frames_transmitted.ci95_halfwidth(), 1e-6);
  ::unsetenv("P2P_BENCH_CACHE");
}

TEST(Cache, KeyChangesWithParameters) {
  Parameters a = tiny_scenario(core::AlgorithmKind::kRegular);
  Parameters b = a;
  b.p2p.timer_initial += 1.0;
  EXPECT_NE(scenario::cache_key(a, 5), scenario::cache_key(b, 5));
  EXPECT_NE(scenario::cache_key(a, 5), scenario::cache_key(a, 6));
  EXPECT_EQ(scenario::cache_key(a, 5), scenario::cache_key(a, 5));
}

TEST(Experiment, BenchSeedCountReadsEnvironment) {
  ::setenv("P2P_BENCH_SEEDS", "7", 1);
  EXPECT_EQ(scenario::bench_seed_count(), 7U);
  ::setenv("P2P_BENCH_SEEDS", "garbage", 1);
  EXPECT_EQ(scenario::bench_seed_count(), scenario::kPaperSeeds);
  ::unsetenv("P2P_BENCH_SEEDS");
  EXPECT_EQ(scenario::bench_seed_count(), scenario::kPaperSeeds);
}

}  // namespace
