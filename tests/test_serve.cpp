// Black-box protocol test for the p2pd experiment-serving daemon.
//
// Each test forks the real daemon binary ($P2PD_BIN, injected by ctest)
// with a fresh result-cache directory, drives it through an actual
// AF_UNIX socket, and asserts on the bytes that come back — the same
// surface a production client sees. Covers: byte-identity of served
// results with the batch path, exactly-once cache fill under duplicate
// concurrent requests, structured errors for malformed/oversized/
// truncated input, and crash isolation (an injected worker crash answers
// one seed with an error and leaves the daemon serving).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/parameters.hpp"
#include "scenario/telemetry.hpp"

namespace {

using namespace p2p;

// Small scenario so every test seed simulates in well under a second.
const char* kTinyConfig =
    "{\"num_nodes\":20,\"duration_s\":120,\"overlay_sample_interval_s\":50}";

scenario::Parameters tiny_params(std::uint64_t seed) {
  scenario::Parameters p;
  p.num_nodes = 20;
  p.duration_s = 120.0;
  p.overlay_sample_interval_s = 50.0;
  p.seed = seed;
  return p;
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("P2PD_BIN");
    ASSERT_NE(bin, nullptr) << "P2PD_BIN not set (run via ctest)";
    bin_ = bin;

    char tmpl[] = "/tmp/p2pd_cache_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    cache_dir_ = tmpl;
    // Keep the socket path short: sun_path caps out around 107 bytes.
    socket_path_ = cache_dir_ + "/s";

    daemon_pid_ = ::fork();
    ASSERT_GE(daemon_pid_, 0);
    if (daemon_pid_ == 0) {
      ::setenv("P2P_BENCH_CACHE", (cache_dir_ + "/cache").c_str(), 1);
      ::execl(bin_.c_str(), "p2pd", "--socket", socket_path_.c_str(),
              "--workers", "1", nullptr);
      _exit(127);  // exec failed
    }
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      // The daemon must still be alive at the end of every test — a crash
      // mid-test would otherwise just look like connection errors.
      EXPECT_EQ(::waitpid(daemon_pid_, nullptr, WNOHANG), 0)
          << "daemon died during the test";
      ::kill(daemon_pid_, SIGKILL);
      ::waitpid(daemon_pid_, nullptr, 0);
    }
    std::error_code ec;
    std::filesystem::remove_all(cache_dir_, ec);
  }

  /// Connect, retrying while the daemon starts up. Returns fd >= 0.
  int connect_daemon() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_.c_str(),
                socket_path_.size() + 1);
    for (int attempt = 0; attempt < 200; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return -1;
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        timeval tv{60, 0};  // a stuck daemon fails the test, not ctest
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        return fd;
      }
      ::close(fd);
      ::usleep(50 * 1000);
    }
    return -1;
  }

  static bool send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Read exactly `count` newline-terminated lines (without newlines).
  static std::vector<std::string> read_lines(int fd, std::size_t count) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < count) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF or timeout — return what we have
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0, nl;
      while (lines.size() < count &&
             (nl = buffer.find('\n', start)) != std::string::npos) {
        lines.push_back(buffer.substr(start, nl - start));
        start = nl + 1;
      }
      buffer.erase(0, start);
    }
    return lines;
  }

  /// One request on a fresh connection; expect `expect` response lines.
  std::vector<std::string> request(const std::string& line,
                                   std::size_t expect) {
    const int fd = connect_daemon();
    EXPECT_GE(fd, 0) << "cannot connect to daemon";
    if (fd < 0) return {};
    EXPECT_TRUE(send_all(fd, line + "\n"));
    auto lines = read_lines(fd, expect);
    ::close(fd);
    return lines;
  }

  /// Counter value out of a STATS response line (-1 when absent).
  static long long stat_value(const std::string& stats_line,
                              const std::string& name) {
    const std::string needle = "\"" + name + "\":";
    const auto pos = stats_line.find(needle);
    if (pos == std::string::npos) return -1;
    return std::atoll(stats_line.c_str() + pos + needle.size());
  }

  std::string bin_;
  std::string cache_dir_;
  std::string socket_path_;
  pid_t daemon_pid_ = -1;
};

TEST_F(DaemonTest, ServedResultMatchesBatchByteForByte) {
  const std::string req =
      std::string("{\"config\":") + kTinyConfig + ",\"seeds\":[3,4]}";
  const auto lines = request(req, 3);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[2],
            "{\"type\":\"done\",\"requested\":2,\"served\":2,\"errors\":0}");

  // Batch path: the same (config, seed) through run_experiment, one seed
  // per experiment (the daemon's unit), serialized with timing off. The
  // served line must be these exact bytes.
  const std::uint64_t seeds[] = {3, 4};
  for (std::size_t i = 0; i < 2; ++i) {
    scenario::RunTelemetry telemetry;
    scenario::run_experiment(tiny_params(seeds[i]), 1, 1, {}, &telemetry);
    ASSERT_EQ(telemetry.per_seed().size(), 1U);
    EXPECT_EQ(lines[i], scenario::seed_line_json(telemetry.per_seed()[0],
                                                 /*include_timing=*/false))
        << "seed " << seeds[i];
  }

  // Replay from cache: still the same bytes.
  const auto replay = request(req, 3);
  ASSERT_EQ(replay.size(), 3U);
  EXPECT_EQ(replay[0], lines[0]);
  EXPECT_EQ(replay[1], lines[1]);
}

TEST_F(DaemonTest, DuplicateConcurrentRequestsFillCacheOnce) {
  const std::string req =
      std::string("{\"config\":") + kTinyConfig + ",\"seeds\":[9]}";

  // Two clients race the same (config, seed). Whatever the interleaving —
  // in-flight join, disk hit, or fully serialized — the miss that computes
  // must happen exactly once.
  std::vector<std::string> a, b;
  std::thread ta([&] { a = request(req, 2); });
  std::thread tb([&] { b = request(req, 2); });
  ta.join();
  tb.join();
  ASSERT_EQ(a.size(), 2U);
  ASSERT_EQ(b.size(), 2U);
  EXPECT_EQ(a[0], b[0]) << "duplicate requests served different bytes";

  const auto stats = request("STATS", 1);
  ASSERT_EQ(stats.size(), 1U);
  EXPECT_EQ(stat_value(stats[0], "cache_misses"), 1);
  EXPECT_EQ(stat_value(stats[0], "runs_completed"), 1);
  EXPECT_EQ(stat_value(stats[0], "cache_hits") +
                stat_value(stats[0], "dedup_joins"),
            1);
}

TEST_F(DaemonTest, MalformedRequestsGetStructuredErrors) {
  struct Case {
    const char* request;
    const char* code;
  };
  const Case cases[] = {
      {"this is not json", "\"code\":\"bad_json\""},
      {"[1,2,3]", "\"code\":\"bad_request\""},
      {"{\"config\":{},\"bogus\":1}", "\"code\":\"bad_request\""},
      {"{\"seeds\":\"7\"}", "\"code\":\"bad_request\""},
      {"{\"seeds\":[-1]}", "\"code\":\"bad_request\""},
      {"{\"config\":{\"no_such_key\":1}}", "\"code\":\"bad_config\""},
      {"{\"config\":{\"num_nodes\":\"fifty\"}}", "\"code\":\"bad_config\""},
      {"{\"config\":{\"num_nodes\":0}}", "\"code\":\"bad_config\""},
      {"{\"config\":{\"mac_loss_probability\":1.5}}",
       "\"code\":\"bad_config\""},
      {"{\"config\":{\"num_nodes\":[5]}}", "\"code\":\"bad_request\""},
  };

  // All on ONE connection: every error must leave the session usable.
  const int fd = connect_daemon();
  ASSERT_GE(fd, 0);
  for (const Case& c : cases) {
    ASSERT_TRUE(send_all(fd, std::string(c.request) + "\n"));
    const auto lines = read_lines(fd, 1);
    ASSERT_EQ(lines.size(), 1U) << c.request;
    EXPECT_NE(lines[0].find("\"type\":\"error\""), std::string::npos)
        << c.request << " -> " << lines[0];
    EXPECT_NE(lines[0].find(c.code), std::string::npos)
        << c.request << " -> " << lines[0];
  }
  // The same connection still serves real work afterwards.
  ASSERT_TRUE(send_all(
      fd, std::string("{\"config\":") + kTinyConfig + ",\"seeds\":[1]}\n"));
  const auto lines = read_lines(fd, 2);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[0].find("\"type\":\"seed\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"served\":1"), std::string::npos);
  ::close(fd);
}

TEST_F(DaemonTest, OversizedAndTruncatedRequestsDoNotKillTheDaemon) {
  // Oversized: a line longer than the daemon's limit (default 1 MiB) gets
  // a structured error, the tail is drained, and the NEXT line on the
  // same connection is served normally.
  const int fd = connect_daemon();
  ASSERT_GE(fd, 0);
  const std::string huge(2u << 20, 'x');
  ASSERT_TRUE(send_all(fd, huge + "\n"));
  auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"code\":\"too_large\""), std::string::npos)
      << lines[0];
  ASSERT_TRUE(send_all(fd, "STATS\n"));
  lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("\"type\":\"stats\""), std::string::npos);
  ::close(fd);

  // Truncated: half a request then an abrupt close. The daemon must shrug
  // and keep accepting.
  const int fd2 = connect_daemon();
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(send_all(fd2, "{\"config\":{\"num_no"));
  ::close(fd2);
  const auto stats = request("STATS", 1);
  ASSERT_EQ(stats.size(), 1U);
  EXPECT_NE(stats[0].find("\"type\":\"stats\""), std::string::npos);
}

TEST_F(DaemonTest, WorkerCrashAnswersSeedAndDaemonKeepsServing) {
  // crash_run_at injects a thrown exception inside the simulation run —
  // the worker catches it via the batch path's crash isolation and the
  // session reports a per-seed error instead of dying.
  const std::string req =
      "{\"config\":{\"num_nodes\":20,\"duration_s\":120,"
      "\"crash_run_at\":10},\"seeds\":[5]}";
  const auto lines = request(req, 2);
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_NE(lines[0].find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seed\":5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"code\":\"run_failed\""), std::string::npos);
  EXPECT_NE(lines[0].find("injected worker crash"), std::string::npos);
  EXPECT_EQ(lines[1],
            "{\"type\":\"done\",\"requested\":1,\"served\":0,\"errors\":1}");

  // Failed runs are not cached: a second attempt recomputes (and fails
  // again), and a healthy request is served by the same worker after.
  const auto again = request(req, 2);
  ASSERT_EQ(again.size(), 2U);
  EXPECT_NE(again[0].find("\"code\":\"run_failed\""), std::string::npos);

  const auto ok = request(
      std::string("{\"config\":") + kTinyConfig + ",\"seeds\":[5]}", 2);
  ASSERT_EQ(ok.size(), 2U);
  EXPECT_NE(ok[0].find("\"type\":\"seed\""), std::string::npos);

  const auto stats = request("STATS", 1);
  ASSERT_EQ(stats.size(), 1U);
  EXPECT_EQ(stat_value(stats[0], "worker_crashes"), 2);
  EXPECT_EQ(stat_value(stats[0], "cache_misses"), 3);
  EXPECT_EQ(stat_value(stats[0], "runs_completed"), 1);
}

TEST_F(DaemonTest, StatsVerbExposesTheCounterRegistry) {
  const auto stats = request("STATS", 1);
  ASSERT_EQ(stats.size(), 1U);
  for (const char* name :
       {"requests", "stats_requests", "cache_hits", "cache_misses",
        "dedup_joins", "queue_depth", "in_flight", "worker_crashes",
        "runs_completed", "seed_results", "request_errors", "connections"}) {
    EXPECT_GE(stat_value(stats[0], name), 0) << "missing counter " << name;
  }
}

TEST_F(DaemonTest, FieldProjectionSplicesRequestedFields) {
  const std::string req = std::string("{\"config\":") + kTinyConfig +
                          ",\"seeds\":[2],\"fields\":[\"seed\",\"events\"]}";
  const auto lines = request(req, 2);
  ASSERT_EQ(lines.size(), 2U);

  scenario::SeedTelemetry telemetry;
  scenario::run_single_seed(tiny_params(2), &telemetry);
  EXPECT_EQ(lines[0], "{\"seed\":2,\"events\":" +
                          std::to_string(telemetry.events_processed) + "}");
}

}  // namespace
