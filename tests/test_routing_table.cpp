// RoutingTable freshness edge cases (RFC 3561 §6.2, §6.11).
//
// These tests pin the exact sequence-number/hop-count replacement rules
// and the lifecycle corners (expiry invalidates but keeps the sequence
// number, precursors survive updates, slots reset across clear()) so any
// representation change underneath — the table is population-gated
// dual-backend today: dense per-NodeId slots at paper scale, an
// open-addressed hash map at mega-scale — is verified against the same
// observable semantics. BackendEquivalence drives both backends through
// one scripted history and asserts every observable output matches.
#include <gtest/gtest.h>

#include <vector>

#include "routing/routing_table.hpp"

namespace {

using p2p::net::NodeId;
using p2p::routing::Route;
using p2p::routing::RoutingTable;

// ------------------------------------------------------- §6.2 freshness --

TEST(RoutingTableFreshness, EqualSeqFewerHopsReplaces) {
  RoutingTable table;
  table.update(7, /*next_hop=*/3, /*hops=*/4, /*seq=*/10, true, 100.0);
  // Same sequence number: strictly fewer hops wins, ties and worse lose.
  EXPECT_TRUE(table.is_better(7, 10, true, 3, 0.0));
  EXPECT_FALSE(table.is_better(7, 10, true, 4, 0.0));
  EXPECT_FALSE(table.is_better(7, 10, true, 5, 0.0));
}

TEST(RoutingTableFreshness, SequenceComparisonIsSigned32) {
  RoutingTable table;
  // Near the wrap point: 0x7fffffff + 1 is "newer" under signed rollover
  // arithmetic even though it is numerically smaller modulo 2^32.
  table.update(7, 3, 2, 0x7fffffffU, true, 100.0);
  EXPECT_TRUE(table.is_better(7, 0x80000000U, true, 9, 0.0));
  table.update(7, 3, 2, 0xffffffffU, true, 100.0);
  EXPECT_TRUE(table.is_better(7, 0U, true, 9, 0.0));   // wraps to newer
  EXPECT_FALSE(table.is_better(7, 0xfffffff0U, true, 1, 0.0));
}

TEST(RoutingTableFreshness, InvalidSeqOnOfferLosesToValidRoute) {
  RoutingTable table;
  table.update(7, 3, 2, 10, /*seq_valid=*/true, 100.0);
  // An offer with no sequence information never displaces a valid,
  // sequence-numbered route — even with fewer hops.
  EXPECT_FALSE(table.is_better(7, 0, /*seq_valid=*/false, 1, 0.0));
}

TEST(RoutingTableFreshness, InvalidSeqOnOwnRouteAlwaysLoses) {
  RoutingTable table;
  // Our route has no sequence info (hello-derived): any offer wins.
  table.update(7, 3, 1, 0, /*seq_valid=*/false, 100.0);
  EXPECT_TRUE(table.is_better(7, 0, false, 9, 0.0));
  EXPECT_TRUE(table.is_better(7, 1, true, 9, 0.0));
}

TEST(RoutingTableFreshness, InvalidOrExpiredRouteIsAlwaysReplaceable) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  EXPECT_FALSE(table.is_better(7, 9, true, 1, 50.0));  // valid: older seq loses
  EXPECT_TRUE(table.is_better(7, 9, true, 9, 100.0));  // expired: anything wins
  table.invalidate(7);
  EXPECT_TRUE(table.is_better(7, 1, true, 9, 0.0));    // invalid: anything wins
}

// --------------------------------------------------------- expiry corner --

TEST(RoutingTableExpiry, ExpiryInvalidatesButKeepsSeq) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  // find_active at/past the expiry invalidates as a side effect …
  EXPECT_EQ(table.find_active(7, 100.0), nullptr);
  const Route* r = table.find(7);
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->valid);
  // … but the sequence number survives for future freshness comparisons
  // (it was NOT bumped — that only happens on invalidate()).
  EXPECT_EQ(r->dst_seq, 10U);
  EXPECT_TRUE(r->seq_valid);
  EXPECT_FALSE(table.is_better(7, 9, true, 1, 100.0) == false);  // replaceable
}

TEST(RoutingTableExpiry, InvalidateBumpsSeqOnceAndOnlyWhileValid) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  EXPECT_TRUE(table.invalidate(7));
  EXPECT_EQ(table.find(7)->dst_seq, 11U);  // §6.11 increment
  EXPECT_TRUE(table.invalidate(7));        // already invalid: entry exists …
  EXPECT_EQ(table.find(7)->dst_seq, 11U);  // … but no double bump
}

TEST(RoutingTableExpiry, UpdateOnlyExtendsLifetime) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  // A re-install with a shorter lifetime must not shorten the route's life
  // (update() keeps the max expiry).
  table.update(7, 4, 1, 11, true, 50.0);
  EXPECT_NE(table.find_active(7, 99.0), nullptr);
  EXPECT_EQ(table.find_active(7, 99.0)->next_hop, 4U);
}

// ------------------------------------------------------------ precursors --

TEST(RoutingTablePrecursors, SurviveUpdate) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  table.add_precursor(7, 5);
  table.add_precursor(7, 6);
  // A fresher install to the same destination keeps the precursor list:
  // the downstream nodes still route through us.
  table.update(7, 4, 1, 11, true, 200.0);
  const Route* r = table.find(7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->precursors.size(), 2U);
  EXPECT_EQ(r->precursors.count(5), 1U);
  EXPECT_EQ(r->precursors.count(6), 1U);
}

TEST(RoutingTablePrecursors, AddToUnknownDestinationIsNoOp) {
  RoutingTable table;
  table.add_precursor(42, 5);
  EXPECT_EQ(table.find(42), nullptr);
  EXPECT_EQ(table.size(), 0U);
}

// ------------------------------------------------------- slot lifecycle --

TEST(RoutingTableLifecycle, ClearResetsSlotStateForReuse) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  table.add_precursor(7, 5);
  table.clear();
  EXPECT_EQ(table.size(), 0U);
  EXPECT_EQ(table.find(7), nullptr);
  // Re-installing the same destination after a crash wipe must start from
  // a pristine slot: no leftover precursors, and a lifetime shorter than
  // the pre-crash one must stick (no stale max-expiry carryover).
  Route& r = table.update(7, 4, 1, 2, true, 30.0);
  EXPECT_TRUE(r.precursors.empty());
  EXPECT_EQ(r.expires, 30.0);
  EXPECT_EQ(table.find_active(7, 50.0), nullptr);  // 30 s lifetime, not 100
}

TEST(RoutingTableLifecycle, SizeCountsEntriesNotValidity) {
  RoutingTable table;
  table.update(7, 3, 2, 10, true, 100.0);
  table.update(9, 3, 1, 1, true, 100.0);
  EXPECT_EQ(table.size(), 2U);
  table.invalidate(7);
  EXPECT_EQ(table.size(), 2U);  // invalid entries are still entries
}

TEST(RoutingTableLifecycle, AllViewSeesEveryEntry) {
  RoutingTable table;
  table.update(2, 3, 2, 10, true, 100.0);
  table.update(40, 3, 1, 1, true, 100.0);
  table.invalidate(40);
  std::size_t seen = 0;
  bool saw_invalid = false;
  for (const auto& [dst, route] : table.all()) {
    ++seen;
    if (dst == 40) saw_invalid = !route.valid;
  }
  EXPECT_EQ(seen, 2U);
  EXPECT_EQ(table.all().size(), 2U);
  EXPECT_TRUE(saw_invalid);
}

// ------------------------------------------------------ destinations_via --

TEST(RoutingTableVia, BufferOverloadMatchesAndSkipsInactive) {
  RoutingTable table;
  table.update(7, 3, 2, 1, true, 100.0);
  table.update(8, 3, 3, 1, true, 100.0);
  table.update(9, 4, 1, 1, true, 100.0);
  table.update(10, 3, 2, 1, true, 100.0);
  table.invalidate(10);                    // invalid: not "via" anymore
  table.update(11, 3, 2, 1, true, 20.0);   // expires before the query time

  std::vector<NodeId> buf{99, 99};         // stale contents must be cleared
  table.destinations_via(3, 50.0, &buf);
  EXPECT_EQ(buf, (std::vector<NodeId>{7, 8}));
  EXPECT_EQ(table.destinations_via(3, 50.0), buf);  // allocating overload agrees

  table.destinations_via(5, 50.0, &buf);
  EXPECT_TRUE(buf.empty());
}

// --------------------------------------------------- backend equivalence --

// Every observable output of the two backends must match: find, size,
// destinations_via order, and all() iteration. One scripted pseudo-random
// history (updates, refreshes, invalidations, expiries, a mid-run clear)
// is applied to a dense-backed table (universe hint inside
// kDenseUniverseMax) and a hash-backed table (no hint), comparing after
// every step.
TEST(RoutingTableBackends, ObservablyIdenticalUnderSameHistory) {
  RoutingTable dense;
  dense.set_universe_hint(64);  // <= kDenseUniverseMax: dense backend
  RoutingTable hashed;          // no hint: hash backend

  const auto expect_same = [&](double now) {
    ASSERT_EQ(dense.size(), hashed.size());
    for (NodeId dst = 0; dst < 64; ++dst) {
      const Route* a = dense.find(dst);
      const Route* b = hashed.find(dst);
      ASSERT_EQ(a == nullptr, b == nullptr) << "dst " << dst;
      if (a == nullptr) continue;
      EXPECT_EQ(a->next_hop, b->next_hop);
      EXPECT_EQ(a->hop_count, b->hop_count);
      EXPECT_EQ(a->dst_seq, b->dst_seq);
      EXPECT_EQ(a->seq_valid, b->seq_valid);
      EXPECT_EQ(a->valid, b->valid);
      EXPECT_EQ(a->expires, b->expires);
      EXPECT_EQ(a->precursors, b->precursors);
    }
    for (NodeId via = 0; via < 8; ++via) {
      EXPECT_EQ(dense.destinations_via(via, now),
                hashed.destinations_via(via, now));
    }
    const auto view_a = dense.all();  // views must outlive their iterators
    const auto view_b = hashed.all();
    auto it_a = view_a.begin();
    auto it_b = view_b.begin();
    for (; it_a != view_a.end(); ++it_a, ++it_b) {
      EXPECT_EQ((*it_a).dst, (*it_b).dst);
    }
  };

  std::uint64_t x = 12345;  // deterministic LCG-driven op script
  const auto next = [&x](std::uint64_t mod) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint64_t>((x >> 33) % mod);
  };
  for (int step = 0; step < 800; ++step) {
    const double now = static_cast<double>(step);
    const auto dst = static_cast<NodeId>(next(64));
    switch (next(6)) {
      case 0:
      case 1: {
        const auto via = static_cast<NodeId>(next(8));
        const auto hops = static_cast<std::uint8_t>(1 + next(4));
        const auto seq = static_cast<std::uint32_t>(next(32));
        const double expires = now + static_cast<double>(1 + next(40));
        if (dense.is_better(dst, seq, true, hops, now)) {
          ASSERT_TRUE(hashed.is_better(dst, seq, true, hops, now));
          dense.update(dst, via, hops, seq, true, expires);
          hashed.update(dst, via, hops, seq, true, expires);
        } else {
          ASSERT_FALSE(hashed.is_better(dst, seq, true, hops, now));
        }
        break;
      }
      case 2:
        dense.refresh(dst, now + 30.0);
        hashed.refresh(dst, now + 30.0);
        break;
      case 3:
        ASSERT_EQ(dense.invalidate(dst), hashed.invalidate(dst));
        break;
      case 4: {
        const auto pre = static_cast<NodeId>(next(8));
        dense.add_precursor(dst, pre);
        hashed.add_precursor(dst, pre);
        break;
      }
      case 5:
        // find_active has the lazy-expiry side effect; exercise it.
        ASSERT_EQ(dense.find_active(dst, now) == nullptr,
                  hashed.find_active(dst, now) == nullptr);
        break;
    }
    if (step == 400) {  // crash/rebirth mid-history
      dense.clear();
      hashed.clear();
    }
    if (step % 97 == 0) expect_same(now);
  }
  expect_same(800.0);
  EXPECT_GT(dense.size(), 0U);  // the script actually exercised the table
}

}  // namespace
