// geo: Vec2 arithmetic and Region semantics.
#include <gtest/gtest.h>

#include "geo/vec2.hpp"

namespace {

using p2p::geo::distance;
using p2p::geo::distance2;
using p2p::geo::Region;
using p2p::geo::Vec2;

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec2, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2{}.norm(), 0.0);
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1, 1}, {2, 2}), 2.0);
  EXPECT_DOUBLE_EQ(distance({5, 5}, {5, 5}), 0.0);
}

TEST(Region, Contains) {
  const Region r{100.0, 50.0};
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({100.0, 50.0}));
  EXPECT_TRUE(r.contains({50.0, 25.0}));
  EXPECT_FALSE(r.contains({-0.1, 10.0}));
  EXPECT_FALSE(r.contains({10.0, 50.1}));
  EXPECT_FALSE(r.contains({100.1, 0.0}));
}

TEST(Region, Area) {
  EXPECT_DOUBLE_EQ((Region{100.0, 100.0}).area(), 10000.0);
  EXPECT_DOUBLE_EQ((Region{0.0, 5.0}).area(), 0.0);
}

TEST(Region, ClampPullsPointsInside) {
  const Region r{100.0, 50.0};
  EXPECT_EQ(r.clamp({-5.0, 25.0}), (Vec2{0.0, 25.0}));
  EXPECT_EQ(r.clamp({120.0, 60.0}), (Vec2{100.0, 50.0}));
  EXPECT_EQ(r.clamp({30.0, 20.0}), (Vec2{30.0, 20.0}));
}

}  // namespace
