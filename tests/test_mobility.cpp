// Mobility models: random waypoint invariants (in-bounds, speed-bounded,
// actually moves) and the scripted trace model incl. preemption.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/vec2.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2p;
using mobility::RandomWaypoint;
using mobility::RandomWaypointParams;
using mobility::StaticModel;
using mobility::TraceModel;
using mobility::TraceStep;

TEST(StaticModel, NeverMoves) {
  StaticModel model({3.0, 4.0});
  EXPECT_EQ(model.position_at(0.0), (geo::Vec2{3.0, 4.0}));
  EXPECT_EQ(model.position_at(1e6), (geo::Vec2{3.0, 4.0}));
  model.set_position({1.0, 1.0});
  EXPECT_EQ(model.position_at(1e6), (geo::Vec2{1.0, 1.0}));
}

class RandomWaypointSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWaypointSeeded, StaysInsideRegion) {
  RandomWaypointParams params;
  params.region = {100.0, 100.0};
  RandomWaypoint model(params, sim::RngStream(GetParam()));
  for (double t = 0.0; t <= 7200.0; t += 1.7) {
    const geo::Vec2 p = model.position_at(t);
    EXPECT_TRUE(params.region.contains(p))
        << "escaped at t=" << t << " -> (" << p.x << ", " << p.y << ")";
  }
}

TEST_P(RandomWaypointSeeded, SpeedNeverExceedsMax) {
  RandomWaypointParams params;
  params.max_speed = 1.0;
  RandomWaypoint model(params, sim::RngStream(GetParam()));
  geo::Vec2 prev = model.position_at(0.0);
  for (double t = 0.5; t <= 3600.0; t += 0.5) {
    const geo::Vec2 cur = model.position_at(t);
    const double speed = geo::distance(prev, cur) / 0.5;
    EXPECT_LE(speed, params.max_speed + 1e-9);
    prev = cur;
  }
}

TEST_P(RandomWaypointSeeded, EventuallyMoves) {
  RandomWaypointParams params;
  params.max_pause = 10.0;
  RandomWaypoint model(params, sim::RngStream(GetParam()));
  const geo::Vec2 start = model.position_at(0.0);
  double moved = 0.0;
  for (double t = 0.0; t <= 600.0; t += 5.0) {
    moved = std::max(moved, geo::distance(start, model.position_at(t)));
  }
  EXPECT_GT(moved, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWaypointSeeded,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(RandomWaypoint, InitialPositionIsInsideAndReported) {
  RandomWaypointParams params;
  params.region = {40.0, 20.0};
  RandomWaypoint model(params, sim::RngStream(5));
  EXPECT_TRUE(params.region.contains(model.initial_position()));
  EXPECT_EQ(model.position_at(0.0), model.initial_position());
}

class RandomDirectionSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDirectionSeeded, StaysInsideAndMoves) {
  mobility::RandomDirectionParams params;
  params.region = {80.0, 60.0};
  params.max_pause = 10.0;
  mobility::RandomDirection model(params, sim::RngStream(GetParam()));
  const geo::Vec2 start = model.position_at(0.0);
  double moved = 0.0;
  for (double t = 0.0; t <= 2000.0; t += 2.3) {
    const geo::Vec2 p = model.position_at(t);
    ASSERT_TRUE(params.region.contains(p)) << "escaped at t=" << t;
    moved = std::max(moved, geo::distance(start, p));
  }
  EXPECT_GT(moved, 5.0);
}

TEST_P(RandomDirectionSeeded, LegsEndOnTheBoundary) {
  // Sample densely: random-direction nodes must repeatedly touch an edge
  // (the model's defining property vs random waypoint).
  mobility::RandomDirectionParams params;
  params.region = {50.0, 50.0};
  params.max_pause = 1.0;
  mobility::RandomDirection model(params, sim::RngStream(GetParam()));
  int boundary_visits = 0;
  for (double t = 0.0; t <= 2000.0; t += 0.5) {
    const geo::Vec2 p = model.position_at(t);
    const bool on_edge = p.x < 0.5 || p.x > 49.5 || p.y < 0.5 || p.y > 49.5;
    if (on_edge) ++boundary_visits;
  }
  EXPECT_GT(boundary_visits, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDirectionSeeded,
                         ::testing::Values(1, 7, 23));

class GaussMarkovSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaussMarkovSeeded, StaysInsideAndMovesSmoothly) {
  mobility::GaussMarkovParams params;
  params.region = {100.0, 100.0};
  mobility::GaussMarkov model(params, sim::RngStream(GetParam()));
  geo::Vec2 prev = model.position_at(0.0);
  double moved = 0.0;
  for (double t = 0.5; t <= 1000.0; t += 0.5) {
    const geo::Vec2 p = model.position_at(t);
    ASSERT_TRUE(params.region.contains(p)) << "escaped at t=" << t;
    // Smoothness: per half-second displacement bounded by a few sigma of
    // the speed process.
    EXPECT_LT(geo::distance(prev, p), 3.0);
    moved = std::max(moved, geo::distance(model.position_at(0.0), p));
    prev = p;
  }
  EXPECT_GT(moved, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussMarkovSeeded,
                         ::testing::Values(2, 11, 31));

TEST(GaussMarkov, AlphaOneIsBallistic) {
  // With alpha = 1 and zero noise influence, speed and heading never
  // change: displacement grows linearly until the boundary clamp.
  mobility::GaussMarkovParams params;
  params.alpha = 1.0;
  mobility::GaussMarkov model(params, sim::RngStream(3));
  const geo::Vec2 p1 = model.position_at(1.0);
  const geo::Vec2 p2 = model.position_at(2.0);
  const geo::Vec2 p3 = model.position_at(3.0);
  const geo::Vec2 d1 = p2 - p1;
  const geo::Vec2 d2 = p3 - p2;
  EXPECT_NEAR(d1.x, d2.x, 1e-9);
  EXPECT_NEAR(d1.y, d2.y, 1e-9);
}

TEST(TraceModel, HoldsInitialPositionBeforeFirstStep) {
  TraceModel model({5.0, 5.0}, {{10.0, {20.0, 5.0}, 1.0}});
  EXPECT_EQ(model.position_at(0.0), (geo::Vec2{5.0, 5.0}));
  EXPECT_EQ(model.position_at(9.99), (geo::Vec2{5.0, 5.0}));
}

TEST(TraceModel, MovesLinearlyAtGivenSpeed) {
  TraceModel model({0.0, 0.0}, {{0.0, {10.0, 0.0}, 2.0}});
  EXPECT_NEAR(model.position_at(1.0).x, 2.0, 1e-9);
  EXPECT_NEAR(model.position_at(2.5).x, 5.0, 1e-9);
  EXPECT_NEAR(model.position_at(5.0).x, 10.0, 1e-9);
  EXPECT_NEAR(model.position_at(100.0).x, 10.0, 1e-9);  // stays at target
}

TEST(TraceModel, SpeedZeroTeleports) {
  TraceModel model({0.0, 0.0}, {{5.0, {30.0, 40.0}, 0.0}});
  EXPECT_EQ(model.position_at(4.9), (geo::Vec2{0.0, 0.0}));
  EXPECT_EQ(model.position_at(5.0), (geo::Vec2{30.0, 40.0}));
}

TEST(TraceModel, LaterStepPreemptsUnfinishedMove) {
  // Move toward (10,0) at 1 m/s from t=0; at t=4 divert to (4, 10).
  TraceModel model({0.0, 0.0},
                   {{0.0, {10.0, 0.0}, 1.0}, {4.0, {4.0, 10.0}, 1.0}});
  EXPECT_NEAR(model.position_at(4.0).x, 4.0, 1e-9);
  const geo::Vec2 later = model.position_at(9.0);  // 5 s toward (4,10)
  EXPECT_NEAR(later.x, 4.0, 1e-9);
  EXPECT_NEAR(later.y, 5.0, 1e-9);
}

TEST(TraceModel, ParseValidInput) {
  std::vector<TraceStep> steps;
  std::string error;
  ASSERT_TRUE(TraceModel::parse("# comment\n0 1 2 0.5\n\n10 3 4 1\n", &steps,
                                &error))
      << error;
  ASSERT_EQ(steps.size(), 2U);
  EXPECT_DOUBLE_EQ(steps[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(steps[0].target.x, 1.0);
  EXPECT_DOUBLE_EQ(steps[0].target.y, 2.0);
  EXPECT_DOUBLE_EQ(steps[0].speed, 0.5);
  EXPECT_DOUBLE_EQ(steps[1].start_time, 10.0);
}

TEST(TraceModel, ParseRejectsGarbageAndDisorder) {
  std::vector<TraceStep> steps;
  std::string error;
  EXPECT_FALSE(TraceModel::parse("0 1 2\n", &steps, &error));  // missing field
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(TraceModel::parse("5 1 1 1\n2 0 0 1\n", &steps, &error));
  EXPECT_NE(error.find("order"), std::string::npos);
}

}  // namespace
