// Statistics: RunningStat (incl. merge & restore), confidence intervals,
// SortedCurve aggregation, Histogram, Table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/rng.hpp"
#include "stats/fairness.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stat.hpp"
#include "stats/sorted_curve.hpp"
#include "stats/table.hpp"

namespace {

using namespace p2p::stats;

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MatchesNaiveComputation) {
  p2p::sim::RngStream rng(17);
  RunningStat s;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    values.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : values) mean += x;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double x : values) var += (x - mean) * (x - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RunningStat, MergeEqualsSequential) {
  p2p::sim::RngStream rng(23);
  RunningStat all, first, second;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    all.add(x);
    (i < 400 ? first : second).add(x);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), all.count());
  EXPECT_NEAR(first.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(first.min(), all.min());
  EXPECT_DOUBLE_EQ(first.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.add(3.0);
  b.merge(a);  // empty.merge(non-empty)
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  RunningStat c;
  b.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(b.count(), 1U);
}

TEST(RunningStat, RestoreRoundTrips) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.5, 9.0}) s.add(x);
  const auto r = RunningStat::restore(s.count(), s.mean(), s.variance(),
                                      s.min(), s.max());
  EXPECT_EQ(r.count(), s.count());
  EXPECT_NEAR(r.mean(), s.mean(), 1e-12);
  EXPECT_NEAR(r.variance(), s.variance(), 1e-12);
  EXPECT_NEAR(r.ci95_halfwidth(), s.ci95_halfwidth(), 1e-12);
}

TEST(TCritical, TableValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(32), 2.021, 1e-2);  // 33 runs -> dof 32
  EXPECT_NEAR(t_critical_95(1000), 1.960, 1e-3);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(RunningStat, CiShrinksWithSamples) {
  RunningStat small, large;
  p2p::sim::RngStream rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform(0.0, 1.0));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SortedCurve, SortsWithinRunAndAveragesAcrossRuns) {
  SortedCurve curve;
  curve.add_run({1.0, 5.0, 3.0});  // sorted: 5 3 1
  curve.add_run({7.0, 1.0, 1.0});  // sorted: 7 1 1
  EXPECT_EQ(curve.runs(), 2U);
  ASSERT_EQ(curve.points(), 3U);
  EXPECT_DOUBLE_EQ(curve.mean_at(0), 6.0);
  EXPECT_DOUBLE_EQ(curve.mean_at(1), 2.0);
  EXPECT_DOUBLE_EQ(curve.mean_at(2), 1.0);
}

TEST(SortedCurve, HandlesRunsOfDifferentSizes) {
  SortedCurve curve;
  curve.add_run({4.0, 2.0});
  curve.add_run({9.0, 6.0, 3.0});
  ASSERT_EQ(curve.points(), 3U);
  EXPECT_DOUBLE_EQ(curve.mean_at(0), 6.5);
  EXPECT_DOUBLE_EQ(curve.mean_at(2), 3.0);  // only one run contributes
}

TEST(SortedCurve, MeansVectorMatchesPositions) {
  SortedCurve curve;
  curve.add_run({2.0, 1.0});
  const auto means = curve.means();
  ASSERT_EQ(means.size(), 2U);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 1.0);
}

TEST(SortedCurve, RestoreRoundTrips) {
  SortedCurve curve;
  curve.add_run({3.0, 1.0});
  curve.add_run({5.0, 2.0});
  auto restored = SortedCurve::restore(curve.positions(), curve.runs());
  EXPECT_EQ(restored.runs(), 2U);
  EXPECT_DOUBLE_EQ(restored.mean_at(0), 4.0);
  EXPECT_DOUBLE_EQ(restored.ci95_at(0), curve.ci95_at(0));
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.5);
  h.add(1.0);   // falls in bin [1,2)
  h.add(4.99);
  h.add(5.0);   // overflow
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.count(), 5U);
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(1), 1U);
  EXPECT_EQ(h.bin_count(4), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 3.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.6);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1e-9);
  EXPECT_GE(h.quantile(1.0), 9.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("##########"), std::string::npos);
  EXPECT_NE(text.find(" 2"), std::string::npos);
}

TEST(Table, PrintAligned) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "multi\nline"});
  std::ostringstream os;
  table.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, AddRowValuesFormatsDoubles) {
  Table table({"x", "y"});
  table.add_row_values({1.23456, 2.0}, 2);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("1.23,2.00"), std::string::npos);
}

TEST(Fairness, JainIndexKnownValues) {
  const std::vector<double> even{5.0, 5.0, 5.0, 5.0};
  EXPECT_NEAR(jain_fairness(even), 1.0, 1e-12);
  const std::vector<double> one_hog{10.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(jain_fairness(one_hog), 0.25, 1e-12);  // 1/n
  const std::vector<double> half{1.0, 1.0, 0.0, 0.0};
  EXPECT_NEAR(jain_fairness(half), 0.5, 1e-12);
}

TEST(Fairness, JainIndexEdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
  const std::vector<double> single{7.0};
  EXPECT_DOUBLE_EQ(jain_fairness(single), 1.0);
}

TEST(Fairness, JainIndexIsScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b;
  for (const double v : a) b.push_back(v * 100.0);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(Fairness, MoreSkewMeansLowerIndex) {
  const std::vector<double> mild{4.0, 5.0, 6.0};
  const std::vector<double> harsh{1.0, 1.0, 13.0};
  EXPECT_GT(jain_fairness(mild), jain_fairness(harsh));
}

TEST(Table, WriteCsvCreatesFile) {
  Table table({"k"});
  table.add_row({"v"});
  const std::string path = ::testing::TempDir() + "/p2p_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
}

}  // namespace
