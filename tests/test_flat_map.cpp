// util::FlatMap — the open-addressed map under every O(touched) per-node
// structure. These tests target the three spots where linear probing with
// backward-shift deletion actually goes wrong: erases whose shift chain
// crosses the wrap boundary of the slot array, iteration-order stability
// across growth rehashes (the determinism contract), and sustained
// insert/erase churn near the load-factor ceiling checked against a
// reference map.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/flat_map.hpp"

namespace {

using Map = p2p::util::FlatMap<std::uint32_t, int, 0xFFFFFFFFu>;

/// Home slot of `key` in a table of `cap` slots — mirrors FlatMap's
/// Fibonacci hash so tests can construct colliding/wrapping layouts.
std::size_t home(std::uint32_t key, std::size_t cap) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(h >> 32) & (cap - 1);
}

/// First `count` keys (ascending from 1) whose home slot in a `cap`-slot
/// table is exactly `slot`.
std::vector<std::uint32_t> keys_with_home(std::size_t slot, std::size_t cap,
                                          std::size_t count) {
  std::vector<std::uint32_t> keys;
  for (std::uint32_t k = 1; keys.size() < count; ++k) {
    if (home(k, cap) == slot) keys.push_back(k);
  }
  return keys;
}

std::vector<std::pair<std::uint32_t, int>> entries_in_slot_order(
    const Map& map) {
  std::vector<std::pair<std::uint32_t, int>> out;
  map.for_each([&](std::uint32_t k, const int& v) { out.emplace_back(k, v); });
  return out;
}

TEST(FlatMap, BackwardShiftEraseAcrossWrapBoundary) {
  // Initial capacity is 16. Three keys homed at the LAST slot (15) probe
  // to slots 15, 0, 1 — the collision chain wraps. Erasing the head at
  // slot 15 must backward-shift the wrapped tail into place; the naive
  // shift condition (without the modular `(j - h) & mask` arithmetic)
  // breaks exactly here and strands keys unreachable.
  const auto keys = keys_with_home(15, 16, 3);
  Map map;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map.get_or_insert(keys[i]) = static_cast<int>(i + 100);
  }
  ASSERT_EQ(map.size(), 3U);

  EXPECT_TRUE(map.erase(keys[0]));
  EXPECT_EQ(map.find(keys[0]), nullptr);
  ASSERT_NE(map.find(keys[1]), nullptr) << "wrapped key stranded by erase";
  EXPECT_EQ(*map.find(keys[1]), 101);
  ASSERT_NE(map.find(keys[2]), nullptr) << "wrapped key stranded by erase";
  EXPECT_EQ(*map.find(keys[2]), 102);

  // Erase from the middle of the wrapped chain too.
  EXPECT_TRUE(map.erase(keys[1]));
  ASSERT_NE(map.find(keys[2]), nullptr);
  EXPECT_EQ(*map.find(keys[2]), 102);
  EXPECT_EQ(map.size(), 1U);
}

TEST(FlatMap, EraseDoesNotStrandKeyHomedJustBeforeWrap) {
  // A key homed at slot 15 displaced past the boundary (to slot 0 or 1)
  // must NOT be shifted into a hole opened at slot 0 or 1 by a key homed
  // there — and conversely a key homed at 0 sitting at 1 must move back.
  // Exercise both directions of the wrap comparison.
  const auto tail = keys_with_home(15, 16, 2);  // occupy 15, 0
  const auto front = keys_with_home(0, 16, 1);  // displaced to 1
  Map map;
  map.get_or_insert(tail[0]) = 1;
  map.get_or_insert(tail[1]) = 2;
  map.get_or_insert(front[0]) = 3;
  ASSERT_EQ(map.size(), 3U);

  // Hole at slot 0 (tail[1]): front[0] (home 0, at slot 1) must shift in;
  // afterwards every surviving key is still reachable.
  EXPECT_TRUE(map.erase(tail[1]));
  ASSERT_NE(map.find(tail[0]), nullptr);
  EXPECT_EQ(*map.find(tail[0]), 1);
  ASSERT_NE(map.find(front[0]), nullptr);
  EXPECT_EQ(*map.find(front[0]), 3);
}

TEST(FlatMap, GrowthRehashKeepsIterationOrderDeterministic) {
  // Iteration (slot) order must be a pure function of the insert/erase
  // history — bit-identical across runs, platforms, and replays. Build
  // the same history twice, crossing the 16→32 and 32→64 growth
  // thresholds, and demand identical for_each sequences.
  const auto build = [] {
    Map map;
    for (std::uint32_t k = 1; k <= 40; ++k) {
      map.get_or_insert(k * 7919u) = static_cast<int>(k);
    }
    for (std::uint32_t k = 1; k <= 40; k += 3) {
      map.erase(k * 7919u);
    }
    for (std::uint32_t k = 100; k <= 110; ++k) {
      map.get_or_insert(k * 7919u) = static_cast<int>(k);
    }
    return map;
  };
  const Map a = build();
  const Map b = build();
  const auto ea = entries_in_slot_order(a);
  const auto eb = entries_in_slot_order(b);
  ASSERT_EQ(ea.size(), a.size());
  EXPECT_EQ(ea, eb) << "slot layout diverged for identical histories";

  // And the layout survives value mutation (values must not affect order).
  Map c = build();
  c.for_each([](std::uint32_t, int& v) { v += 1000; });
  const auto ec = entries_in_slot_order(c);
  for (std::size_t i = 0; i < ec.size(); ++i) {
    EXPECT_EQ(ec[i].first, ea[i].first);
    EXPECT_EQ(ec[i].second, ea[i].second + 1000);
  }
}

TEST(FlatMap, ChurnNearLoadCeilingMatchesReferenceMap) {
  // Sustained insert/erase/find churn with the map sitting near its 5/8
  // growth threshold, validated op-for-op against std::map. The key
  // universe (192 keys) is small enough that erase chains get long and
  // collide often — the regime where backward-shift bugs surface.
  Map map;
  std::map<std::uint32_t, int> ref;
  std::uint64_t rng = 0x243F6A8885A308D3ULL;  // fixed seed: deterministic
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng >> 33);
  };

  for (int op = 0; op < 20000; ++op) {
    const std::uint32_t key = 1 + next() % 192;
    switch (next() % 3) {
      case 0: {  // insert/overwrite
        const int value = static_cast<int>(next());
        map.get_or_insert(key) = value;
        ref[key] = value;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(map.erase(key), ref.erase(key) == 1) << "op " << op;
        break;
      }
      default: {  // find
        const int* found = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end()) << "op " << op;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second) << "op " << op;
        }
      }
    }
    ASSERT_EQ(map.size(), ref.size()) << "op " << op;
  }

  // Full-content check: every entry present, none stranded or duplicated.
  std::map<std::uint32_t, int> seen;
  map.for_each([&](std::uint32_t k, const int& v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate key " << k;
  });
  EXPECT_EQ(seen, ref);
}

TEST(FlatMap, ClearRetainsCapacityAndMapStaysUsable) {
  Map map;
  for (std::uint32_t k = 1; k <= 50; ++k) map.get_or_insert(k) = 1;
  const std::size_t bytes = map.memory_bytes();
  map.clear();
  EXPECT_EQ(map.size(), 0U);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.memory_bytes(), bytes);  // slots retained
  for (std::uint32_t k = 1; k <= 50; ++k) EXPECT_EQ(map.find(k), nullptr);
  map.get_or_insert(7) = 42;
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 42);
}

}  // namespace
