// Gnutella-like query engine (§7.2): TTL, forward-once, never-to-sender/
// origin, direct answers, and the request lifecycle.
#include <gtest/gtest.h>

#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::content::Placement;
using p2p::content::ZipfLaw;
using p2p::core::AlgorithmKind;
using p2p::core::MsgType;

// A placement where every member holds file 1 (ZipfLaw(1, 1.0)).
Placement full_placement(std::uint32_t members) {
  return Placement(ZipfLaw(1, 1.0), members, p2p::sim::RngStream(1));
}

struct QueryWorld {
  p2p::core::P2pParams params;
  std::unique_ptr<World> world;
  std::vector<p2p::net::NodeId> ids;
  Placement placement;
  TestRecorder recorder;

  explicit QueryWorld(std::size_t n, int ttl = 6, double spacing = 8.0)
      : placement(full_placement(static_cast<std::uint32_t>(n))) {
    params.enable_queries = true;
    params.query_ttl = ttl;
    params.query_gap_min = 30.0;
    params.query_gap_max = 40.0;
    world = std::make_unique<World>(params);
    ids = make_line(*world, n, spacing);
    for (std::size_t i = 0; i < n; ++i) {
      auto& servent = world->add_servent(ids[i], AlgorithmKind::kRegular);
      servent.set_placement(&placement, static_cast<std::uint32_t>(i));
      servent.set_query_recorder(&recorder);
    }
  }
};

TEST(Query, AnswersArriveAndAreRecorded) {
  QueryWorld qw(3);
  qw.world->start_all();
  // Let the overlay form and queries fire (first query within ~45 s + 30 s
  // response window).
  qw.world->sim().run_until(400.0);
  ASSERT_FALSE(qw.recorder.requests.empty());
  bool any_answered = false;
  for (const auto& request : qw.recorder.requests) {
    EXPECT_EQ(request.file, 1U);
    if (request.answers > 0) {
      any_answered = true;
      EXPECT_GE(request.min_physical, 1);
      EXPECT_GE(request.min_p2p, 1);
    }
  }
  EXPECT_TRUE(any_answered);
}

TEST(Query, EveryHolderOnPathAnswersOnce) {
  QueryWorld qw(4);
  qw.world->start_all();
  qw.world->sim().run_until(500.0);
  // Each member issued >= 1 query on a line overlay of 4 nodes where
  // everyone holds the file: answered requests see <= 3 answers (each
  // node answers a given query at most once — the forward-once rule).
  for (const auto& request : qw.recorder.requests) {
    EXPECT_LE(request.answers, 3);
  }
}

TEST(Query, TtlOneRestrictsToDirectOverlayNeighbors) {
  QueryWorld qw(5, /*ttl=*/1);
  qw.world->start_all();
  qw.world->sim().run_until(500.0);
  // With TTL 1 a query never travels past the first overlay hop, so every
  // answer reports a 1-hop overlay path.
  bool any = false;
  for (const auto& request : qw.recorder.requests) {
    if (request.answers > 0) {
      any = true;
      EXPECT_EQ(request.min_p2p, 1);
    }
  }
  EXPECT_TRUE(any);
}

TEST(Query, UnansweredRequestsAreRecordedAsSuch) {
  // Nobody holds rank-2 files in a 1-file catalog... instead: two isolated
  // nodes out of radio range never get answers.
  p2p::core::P2pParams params;
  params.enable_queries = true;
  params.query_gap_min = 30.0;
  params.query_gap_max = 40.0;
  World world(params);
  const auto a = world.add_node(10, 10);
  const auto b = world.add_node(300, 300);  // unreachable
  const Placement placement = full_placement(2);
  TestRecorder recorder;
  for (const auto [id, idx] :
       {std::pair{a, 0U}, std::pair{b, 1U}}) {
    auto& servent = world.add_servent(id, AlgorithmKind::kRegular);
    servent.set_placement(&placement, idx);
    servent.set_query_recorder(&recorder);
  }
  world.start_all();
  world.sim().run_until(300.0);
  ASSERT_FALSE(recorder.requests.empty());
  for (const auto& request : recorder.requests) {
    EXPECT_EQ(request.answers, 0);
    EXPECT_EQ(request.min_physical, -1);
  }
}

TEST(Query, QueryCountsAppearInCounters) {
  QueryWorld qw(3);
  qw.world->start_all();
  qw.world->sim().run_until(400.0);
  std::uint64_t queries_rx = 0, hits_rx = 0;
  for (const auto id : qw.ids) {
    queries_rx += qw.world->servent(id).counters().query_received();
    hits_rx +=
        qw.world->servent(id).counters().received_of(MsgType::kQueryHit);
  }
  EXPECT_GT(queries_rx, 0U);
  EXPECT_GT(hits_rx, 0U);
}

TEST(Query, RequestCadenceFollowsThinkTime) {
  // With gap in [30, 40] and a 30 s response window, a member completes
  // roughly one request per 60-70 s.
  p2p::core::P2pParams params;
  params.enable_queries = true;
  params.query_gap_min = 30.0;
  params.query_gap_max = 40.0;
  World world(params);
  const auto a = world.add_node(10, 10);
  const Placement placement = full_placement(1);
  TestRecorder recorder;
  auto& servent = world.add_servent(a, AlgorithmKind::kRegular);
  servent.set_placement(&placement, 0);
  servent.set_query_recorder(&recorder);
  world.start_all();
  world.sim().run_until(700.0);
  EXPECT_GE(recorder.requests.size(), 8U);
  EXPECT_LE(recorder.requests.size(), 12U);
}

TEST(Query, DisabledQueriesIssueNothing) {
  p2p::core::P2pParams params;
  params.enable_queries = false;
  World world(params);
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  const Placement placement = full_placement(2);
  TestRecorder recorder;
  for (const auto [id, idx] : {std::pair{a, 0U}, std::pair{b, 1U}}) {
    auto& servent = world.add_servent(id, AlgorithmKind::kRegular);
    servent.set_placement(&placement, idx);
    servent.set_query_recorder(&recorder);
  }
  world.start_all();
  world.sim().run_until(300.0);
  EXPECT_TRUE(recorder.requests.empty());
  EXPECT_EQ(world.servent(a).counters().query_received(), 0U);
}

TEST(Query, HoldsReflectsPlacement) {
  p2p::core::P2pParams params;
  World world(params);
  const auto a = world.add_node(50, 50);
  const ZipfLaw law(4, 0.5);
  const Placement placement(law, 10, p2p::sim::RngStream(3));
  auto& servent = world.add_servent(a, AlgorithmKind::kRegular);
  servent.set_placement(&placement, 4);
  for (p2p::content::FileId f = 1; f <= 4; ++f) {
    EXPECT_EQ(servent.holds(f), placement.holds(4, f));
  }
}

}  // namespace
