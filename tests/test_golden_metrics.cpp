// Golden fixed-seed metrics for the fig07 (connect messages, 50 nodes)
// workload: a determinism tripwire for the batched-delivery / event-kernel
// hot-path work.
//
// The constants below were captured from the per-receiver-event baseline
// (before the batched-broadcast rewrite); the batched path must reproduce
// them bit-for-bit because it preserves RNG draw order and observable
// event ordering. Deliberately NOT covered: kernel telemetry
// (events_processed, peak_queue_depth) — batching one arrival event per
// broadcast legitimately changes those (see docs/performance.md).
//
// Regenerate after an intentional behavior change with:
//   P2P_PRINT_GOLDEN=1 ./tests/test_golden_metrics
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>

#include "core/factory.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;

struct GoldenMetrics {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t routing_control_messages = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t connections_established = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connect_received_sum = 0;
  std::uint64_t ping_received_sum = 0;
  std::uint64_t query_received_sum = 0;
  double energy_consumed_j = 0.0;
};

GoldenMetrics run_workload(core::AlgorithmKind kind, double loss,
                           double gray_zone) {
  scenario::Parameters params;
  params.num_nodes = 50;        // fig07 scenario
  params.duration_s = 600.0;    // shortened from the paper's 3600 s
  params.seed = 1;
  params.algorithm = kind;
  params.mac.loss_probability = loss;
  params.mac.gray_zone_fraction = gray_zone;
  scenario::SimulationRun run(params);
  const scenario::RunResult r = run.run();

  GoldenMetrics g;
  g.frames_transmitted = r.frames_transmitted;
  g.frames_delivered = r.frames_delivered;
  g.frames_lost = r.frames_lost;
  g.routing_control_messages = r.routing_control_messages;
  g.data_delivered = r.data_delivered;
  g.data_dropped = r.data_dropped;
  g.connections_established = r.connections_established;
  g.connections_closed = r.connections_closed;
  for (const auto& c : r.counters) {
    g.connect_received_sum += c.connect_received();
    g.ping_received_sum += c.ping_received();
    g.query_received_sum += c.query_received();
  }
  g.energy_consumed_j = r.energy_consumed_j;
  return g;
}

void check(const GoldenMetrics& got, const GoldenMetrics& want) {
  if (std::getenv("P2P_PRINT_GOLDEN") != nullptr) {
    std::printf(
        "{%lluU, %lluU, %lluU, %lluU, %lluU, %lluU, %lluU, %lluU, %lluU, "
        "%lluU, %lluU, %.17g}\n",
        (unsigned long long)got.frames_transmitted,
        (unsigned long long)got.frames_delivered,
        (unsigned long long)got.frames_lost,
        (unsigned long long)got.routing_control_messages,
        (unsigned long long)got.data_delivered,
        (unsigned long long)got.data_dropped,
        (unsigned long long)got.connections_established,
        (unsigned long long)got.connections_closed,
        (unsigned long long)got.connect_received_sum,
        (unsigned long long)got.ping_received_sum,
        (unsigned long long)got.query_received_sum, got.energy_consumed_j);
    return;  // capture mode: print, skip assertions
  }
  EXPECT_EQ(got.frames_transmitted, want.frames_transmitted);
  EXPECT_EQ(got.frames_delivered, want.frames_delivered);
  EXPECT_EQ(got.frames_lost, want.frames_lost);
  EXPECT_EQ(got.routing_control_messages, want.routing_control_messages);
  EXPECT_EQ(got.data_delivered, want.data_delivered);
  EXPECT_EQ(got.data_dropped, want.data_dropped);
  EXPECT_EQ(got.connections_established, want.connections_established);
  EXPECT_EQ(got.connections_closed, want.connections_closed);
  EXPECT_EQ(got.connect_received_sum, want.connect_received_sum);
  EXPECT_EQ(got.ping_received_sum, want.ping_received_sum);
  EXPECT_EQ(got.query_received_sum, want.query_received_sum);
  // Bit-identical double: summed in fixed order from deterministic draws.
  EXPECT_EQ(got.energy_consumed_j, want.energy_consumed_j);
}

// Regular algorithm, ideal channel: the fig07 configuration.
TEST(GoldenFig07, RegularIdealChannel) {
  check(run_workload(core::AlgorithmKind::kRegular, 0.0, 0.0),
        GoldenMetrics{38690U, 62203U, 0U, 17870U, 1119U, 651U, 268U, 193U,
                      845U, 118U, 510U, 6.1527955000001038});
}

// Basic algorithm (heaviest flooding) under loss + gray zone, which
// exercises the per-receiver RNG draws whose order batching must preserve.
//
// Re-pinned when RoutingTable went dense: destinations_via now sweeps
// entries in ascending destination order (stable across standard-library
// implementations), where the old representation iterated an
// unordered_map — a libstdc++-internal order. Under loss, link breaks
// fire RERRs whose unicast order follows that sweep, so the draw
// attribution (and these counters) legitimately shifted once. The
// ideal-channel scenario above is unaffected and still matches the
// original per-receiver-event baseline bit-for-bit.
TEST(GoldenFig07, BasicLossyGrayZone) {
  check(run_workload(core::AlgorithmKind::kBasic, 0.05, 0.2),
        GoldenMetrics{21509U, 36494U, 8965U, 16365U, 1462U, 877U, 446U, 385U,
                      1733U, 204U, 477U, 3.0914069999999998});
}

}  // namespace
