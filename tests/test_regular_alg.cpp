// Regular algorithm (§6.1.3): symmetric 3-way handshake, capacity limits,
// one-sided pinging, MAXDIST maintenance, and exponential backoff.
#include <gtest/gtest.h>

#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::core::AlgorithmKind;
using p2p::core::ConnKind;
using p2p::core::MsgType;

TEST(RegularAlg, EstablishesSymmetricConnection) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(30.0);
  ASSERT_TRUE(world.symmetric(a, b));
  const auto* conn_a = world.servent(a).connections().find(b);
  const auto* conn_b = world.servent(b).connections().find(a);
  EXPECT_EQ(conn_a->kind, ConnKind::kRegular);
  EXPECT_EQ(conn_b->kind, ConnKind::kRegular);
  // Exactly one side initiated.
  EXPECT_NE(conn_a->initiator, conn_b->initiator);
}

TEST(RegularAlg, OnlyInitiatorSendsPings) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(400.0);
  ASSERT_TRUE(world.symmetric(a, b));
  const auto pings_a = world.servent(a).counters().sent_of(MsgType::kPing);
  const auto pings_b = world.servent(b).counters().sent_of(MsgType::kPing);
  // One side pings, the other only pongs (improvement #3: traffic halved).
  EXPECT_TRUE((pings_a == 0) != (pings_b == 0))
      << "pings a=" << pings_a << " b=" << pings_b;
  EXPECT_GT(pings_a + pings_b, 2U);
}

TEST(RegularAlg, RespectsMaxnconnUnderContention) {
  p2p::core::P2pParams params;
  params.maxnconn = 2;
  World world(params);
  const auto ids = make_cluster(world, 7);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(300.0);
  for (const auto id : ids) {
    EXPECT_LE(world.servent(id).connections().size(), 2U) << "node " << id;
  }
  // And the overlay actually formed.
  std::size_t total = 0;
  for (const auto id : ids) total += world.servent(id).connections().size();
  EXPECT_GE(total, 6U);
}

TEST(RegularAlg, SymmetryHoldsAcrossTheClusterEventually) {
  World world;
  const auto ids = make_cluster(world, 5);
  for (const auto id : ids) world.add_servent(id, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(300.0);
  for (const auto a : ids) {
    for (const auto peer : world.servent(a).connections().peers()) {
      EXPECT_TRUE(world.connected(peer, a))
          << "asymmetric: " << a << " -> " << peer;
    }
  }
}

TEST(RegularAlg, ProgressiveRadiusFindsFarNodes) {
  // Two nodes 3 hops apart plus relays: NHOPS_INITIAL=2 fails, the widened
  // probe (nhops=4) succeeds.
  World world;
  const auto ids = make_line(world, 4);
  world.add_servent(ids[0], AlgorithmKind::kRegular);
  world.add_servent(ids[3], AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(200.0);
  EXPECT_TRUE(world.symmetric(ids[0], ids[3]));
}

TEST(RegularAlg, ClosesConnectionBeyondMaxdist) {
  p2p::core::P2pParams params;
  params.maxdist = 2;
  params.ping_interval = 5.0;
  World world(params);
  // b walks from 1 hop to 4 hops away along a relay line.
  const auto a = world.add_node(5, 50);
  const auto b = world.add_node(std::make_unique<p2p::mobility::TraceModel>(
      p2p::geo::Vec2{13.0, 50.0},
      std::vector<p2p::mobility::TraceStep>{{30.0, {42.0, 50.0}, 3.0}}));
  for (int i = 1; i <= 5; ++i) world.add_node(5.0 + 8.0 * i, 58.0);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(25.0);
  ASSERT_TRUE(world.symmetric(a, b));
  world.sim().run_until(200.0);
  // 37 m apart: > 2 hops; the distance check killed the connection.
  EXPECT_FALSE(world.connected(a, b) && world.connected(b, a));
}

TEST(RegularAlg, BackoffSlowsProbingWhenAlone) {
  p2p::core::P2pParams params;
  params.timer_initial = 10.0;
  params.maxtimer = 160.0;
  World world(params);
  const auto a = world.add_node(50, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.start_all();

  world.sim().run_until(100.0);
  const auto early = world.servent(a).counters().sent_of(MsgType::kConnectProbe);
  world.sim().run_until(1000.0);
  const auto total = world.servent(a).counters().sent_of(MsgType::kConnectProbe);
  const auto late = total - early;
  // First 100 s: cycle of 3 probes per ~30 s -> ~9-10 probes. The last
  // 900 s run at backed-off timers, so the rate must have collapsed
  // (Basic in the same interval would send ~90).
  EXPECT_GE(early, 6U);
  EXPECT_LT(late, early * 5);
  EXPECT_LT(total, 40U);
}

TEST(RegularAlg, TimerResetsAfterSuccessfulConnection) {
  // A node alone backs off; when a partner appears and connects, the timer
  // resets so subsequent probing is fast again. We detect the reset via
  // the probe cadence after the partner joins.
  p2p::core::P2pParams params;
  params.timer_initial = 5.0;
  params.maxtimer = 320.0;
  params.maxnconn = 2;
  World world(params);
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(54, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  auto& sb = world.add_servent(b, AlgorithmKind::kRegular);
  // a starts immediately; b joins late, after a has backed off hard.
  world.sim().after(0.0, [&] { world.servent(a).start(); });
  world.sim().after(600.0, [&sb] { sb.start(); });
  world.sim().run_until(700.0);
  EXPECT_TRUE(world.symmetric(a, b));
}

TEST(RegularAlg, ReconnectsAfterPeerFailure) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  const auto c = world.add_node(50, 55);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.add_servent(c, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(60.0);
  ASSERT_TRUE(world.symmetric(a, b));
  ASSERT_TRUE(world.symmetric(a, c));
  world.network().set_failed(b, true);
  world.sim().run_until(600.0);
  EXPECT_FALSE(world.connected(a, b));
  EXPECT_TRUE(world.symmetric(a, c));  // unaffected connection survives
}

TEST(RegularAlg, CrossedHandshakesSettleToOnePinger) {
  // Force the simultaneous-handshake race: both nodes start at the same
  // instant and probe immediately. Whatever interleaving occurs, a
  // symmetric connection must settle with exactly one initiator.
  p2p::core::P2pParams params;
  World world(params);
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.sim().at(0.0, [&] { world.servent(a).start(); });
  world.sim().at(0.0, [&] { world.servent(b).start(); });
  world.sim().run_until(300.0);
  ASSERT_TRUE(world.symmetric(a, b));
  const auto* conn_a = world.servent(a).connections().find(b);
  const auto* conn_b = world.servent(b).connections().find(a);
  EXPECT_NE(conn_a->initiator, conn_b->initiator)
      << "both or neither side maintains the connection";
  // And maintenance actually works: pings flow one way for a while.
  world.sim().run_until(600.0);
  EXPECT_TRUE(world.symmetric(a, b));
}

TEST(RegularAlg, ByeFreesBothSides) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kRegular);
  world.add_servent(b, AlgorithmKind::kRegular);
  world.start_all();
  world.sim().run_until(30.0);
  ASSERT_TRUE(world.symmetric(a, b));
  // No Bye is exchanged during healthy operation.
  EXPECT_EQ(world.servent(a).counters().received_of(MsgType::kBye), 0U);
  EXPECT_EQ(world.servent(b).counters().received_of(MsgType::kBye), 0U);
}

}  // namespace
