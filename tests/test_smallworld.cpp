// Watts-Strogatz generator and the small-world transition the paper's
// Random algorithm targets (§6.1.2).
#include <gtest/gtest.h>

#include "graph/metrics.hpp"
#include "graph/watts_strogatz.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2p::graph;

TEST(WattsStrogatz, LatticeStructure) {
  const Graph g = ring_lattice(20, 4);
  EXPECT_EQ(g.order(), 20U);
  EXPECT_EQ(g.edge_count(), 40U);  // n*k/2
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 19));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(WattsStrogatz, LatticeClusteringMatchesTheory) {
  // C(lattice, k) = 3(k-2) / 4(k-1).
  const Graph g = ring_lattice(60, 6);
  EXPECT_NEAR(clustering_coefficient(g), 3.0 * 4.0 / (4.0 * 5.0), 1e-9);
}

TEST(WattsStrogatz, BetaZeroIsTheLattice) {
  p2p::sim::RngStream rng(1);
  const Graph lattice = ring_lattice(30, 4);
  const Graph ws = watts_strogatz(30, 4, 0.0, rng);
  EXPECT_EQ(ws.edge_count(), lattice.edge_count());
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_EQ(ws.degree(v), lattice.degree(v));
  }
}

TEST(WattsStrogatz, EdgeCountIsPreservedUnderRewiring) {
  p2p::sim::RngStream rng(7);
  for (const double beta : {0.05, 0.3, 1.0}) {
    const Graph ws = watts_strogatz(50, 4, beta, rng);
    EXPECT_EQ(ws.edge_count(), 100U) << "beta " << beta;
  }
}

TEST(WattsStrogatz, SmallBetaShortensPathsButKeepsClustering) {
  // The defining small-world transition: at beta ~ 0.1 the path length has
  // collapsed toward the random-graph value while clustering is still
  // close to the lattice's ("little changes ... are sufficient to achieve
  // short global pathlengths", paper §6.1.2).
  p2p::sim::RngStream rng(42);
  const std::size_t n = 200, k = 6;
  const Graph lattice = ring_lattice(n, k);
  const Graph ws = watts_strogatz(n, k, 0.1, rng);

  const double l_lattice = characteristic_path_length(lattice);
  const double l_ws = characteristic_path_length(ws);
  const double c_lattice = clustering_coefficient(lattice);
  const double c_ws = clustering_coefficient(ws);

  EXPECT_LT(l_ws, 0.6 * l_lattice);         // paths collapsed
  EXPECT_GT(c_ws, 0.6 * c_lattice);         // clustering largely intact
}

TEST(WattsStrogatz, FullRewireApproachesRandomGraphPathLength) {
  p2p::sim::RngStream rng(11);
  const std::size_t n = 200, k = 6;
  const Graph ws = watts_strogatz(n, k, 1.0, rng);
  const auto m = analyze(ws);
  // log n / log k ≈ 2.96 for (200, 6); allow slack for finite size and the
  // surviving lattice edges.
  EXPECT_LT(m.path_length, 1.6 * random_graph_path_length(n, k));
  EXPECT_LT(m.clustering, 0.2);
}

TEST(WattsStrogatz, DeterministicPerSeed) {
  p2p::sim::RngStream rng1(5), rng2(5);
  const Graph a = watts_strogatz(40, 4, 0.3, rng1);
  const Graph b = watts_strogatz(40, 4, 0.3, rng2);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

class BetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweep, MetricsAreMonotoneInExpectation) {
  // Property over beta: both C and L lie between the random and lattice
  // extremes (sanity envelope; exact monotonicity needs averaging).
  p2p::sim::RngStream rng(99);
  const std::size_t n = 150, k = 6;
  const Graph lattice = ring_lattice(n, k);
  const Graph ws = watts_strogatz(n, k, GetParam(), rng);
  const double c = clustering_coefficient(ws);
  const double l = characteristic_path_length(ws);
  EXPECT_LE(c, clustering_coefficient(lattice) + 1e-9);
  EXPECT_GE(l, 1.0);
  EXPECT_LE(l, characteristic_path_length(lattice) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0));

}  // namespace
