// End-to-end integration: full paper-style runs (scaled down) for every
// algorithm, checking cross-module invariants and the paper's headline
// qualitative claims.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;
using core::AlgorithmKind;
using scenario::Parameters;
using scenario::SimulationRun;

Parameters small_paper_scenario(AlgorithmKind kind, std::uint64_t seed = 3) {
  Parameters params;
  params.num_nodes = 40;
  params.duration_s = 900.0;
  params.algorithm = kind;
  params.seed = seed;
  return params;
}

class AlgorithmIntegration
    : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(AlgorithmIntegration, FullRunSatisfiesInvariants) {
  const Parameters params = small_paper_scenario(GetParam());
  SimulationRun run(params);
  const auto result = run.run();

  // Capacity invariants per algorithm.
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& servent = run.servent(i);
    const auto& conns = servent.connections();
    if (GetParam() == AlgorithmKind::kHybrid) {
      const auto& hybrid = static_cast<const core::HybridServent&>(servent);
      EXPECT_LE(conns.count(core::ConnKind::kMaster),
                static_cast<std::size_t>(params.p2p.maxnconn));
      EXPECT_LE(conns.count(core::ConnKind::kSlave),
                hybrid.state() == core::HybridState::kSlave
                    ? 1U
                    : static_cast<std::size_t>(params.p2p.maxnslaves));
      if (hybrid.state() == core::HybridState::kSlave) {
        EXPECT_EQ(conns.size(), conns.count(core::ConnKind::kSlave));
      }
    } else {
      EXPECT_LE(conns.size(), static_cast<std::size_t>(params.p2p.maxnconn))
          << "member " << i;
      if (GetParam() == AlgorithmKind::kRandom) {
        EXPECT_LE(conns.count(core::ConnKind::kRandom), 1U);
      }
    }
    // Connections point at p2p members only, never at self.
    for (const auto peer : conns.peers()) {
      EXPECT_NE(peer, servent.self());
      bool is_member = false;
      for (std::size_t j = 0; j < run.member_count(); ++j) {
        if (run.member_node(j) == peer) is_member = true;
      }
      EXPECT_TRUE(is_member) << "connection to non-member " << peer;
    }
  }

  // Global accounting.
  EXPECT_GT(result.frames_transmitted, 0U);
  EXPECT_GE(result.frames_transmitted, result.frames_lost);
  EXPECT_GT(result.energy_consumed_j, 0.0);
  std::uint64_t queries = 0;
  for (const auto& f : result.per_file) queries += f.requests;
  EXPECT_GT(queries, 0U);

  // Every answered request reported sane distances.
  for (const auto& f : result.per_file) {
    EXPECT_LE(f.answered, f.requests);
    EXPECT_LE(f.physical_samples, f.answered);
    if (f.physical_samples > 0) {
      EXPECT_GE(f.mean_min_physical(), 0.0);
      EXPECT_LT(f.mean_min_physical(), 40.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmIntegration,
                         ::testing::Values(AlgorithmKind::kBasic,
                                           AlgorithmKind::kRegular,
                                           AlgorithmKind::kRandom,
                                           AlgorithmKind::kHybrid),
                         [](const auto& info) {
                           return core::algorithm_name(info.param);
                         });

TEST(PaperClaims, BasicGeneratesMostConnectTraffic) {
  // §7.4: "the Basic algorithm, which uses broadcasts indiscriminately,
  // presents greater values for all nodes".
  std::uint64_t basic = 0, regular = 0;
  {
    SimulationRun run(small_paper_scenario(AlgorithmKind::kBasic));
    for (const auto& c : run.run().counters) basic += c.connect_received();
  }
  {
    SimulationRun run(small_paper_scenario(AlgorithmKind::kRegular));
    for (const auto& c : run.run().counters) regular += c.connect_received();
  }
  EXPECT_GT(basic, 2 * regular)
      << "basic=" << basic << " regular=" << regular;
}

TEST(PaperClaims, BasicGeneratesMorePingTraffic) {
  // §7.4: symmetric connections + one-sided pinging cut ping volume.
  std::uint64_t basic = 0, regular = 0;
  {
    SimulationRun run(small_paper_scenario(AlgorithmKind::kBasic));
    for (const auto& c : run.run().counters) basic += c.ping_received();
  }
  {
    SimulationRun run(small_paper_scenario(AlgorithmKind::kRegular));
    for (const auto& c : run.run().counters) regular += c.ping_received();
  }
  EXPECT_GT(basic, regular) << "basic=" << basic << " regular=" << regular;
}

TEST(PaperClaims, HybridConcentratesLoadOnMasters) {
  // §7.4: "masters get more ping and query messages".
  SimulationRun run(small_paper_scenario(AlgorithmKind::kHybrid, 5));
  const auto result = run.run();
  std::uint64_t master_load = 0, master_count = 0;
  std::uint64_t slave_load = 0, slave_count = 0;
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& hybrid =
        static_cast<const core::HybridServent&>(run.servent(i));
    const auto load = hybrid.counters().query_received() +
                      hybrid.counters().ping_received();
    if (hybrid.state() == core::HybridState::kMaster) {
      master_load += load;
      ++master_count;
    } else if (hybrid.state() == core::HybridState::kSlave) {
      slave_load += load;
      ++slave_count;
    }
  }
  ASSERT_GT(master_count, 0U);
  ASSERT_GT(slave_count, 0U);
  const double per_master =
      static_cast<double>(master_load) / static_cast<double>(master_count);
  const double per_slave =
      static_cast<double>(slave_load) / static_cast<double>(slave_count);
  EXPECT_GT(per_master, per_slave);
  (void)result;
}

TEST(PaperClaims, AnswersDecayWithFileRank) {
  // Figures 5/6: "the number of answers decreases as the requested file
  // becomes unpopular, reflecting the Zipf distribution".
  Parameters params = small_paper_scenario(AlgorithmKind::kRegular);
  params.num_nodes = 60;  // denser => enough answered requests
  SimulationRun run(params);
  const auto result = run.run();
  const double head = result.per_file[0].answers_per_request() +
                      result.per_file[1].answers_per_request();
  const double tail = result.per_file[18].answers_per_request() +
                      result.per_file[19].answers_per_request();
  EXPECT_GT(head, tail);
}

}  // namespace
