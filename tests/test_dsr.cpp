// DSR: source-route discovery, cache reuse, link-break route errors, and
// the RoutingService contract.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/model.hpp"
#include "mobility/trace.hpp"
#include "net/network.hpp"
#include "routing/dsr.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using net::NodeId;
using routing::DsrAgent;
using routing::DsrParams;

struct AppMsg final : net::AppPayload {
  int tag = 0;
  explicit AppMsg(int t) : tag(t) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct LineWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<DsrAgent>> agents;
  std::vector<std::vector<std::pair<NodeId, int>>> delivered;  // (src, hops)

  explicit LineWorld(std::size_t n, DsrParams params = {}) {
    net::NetworkParams net_params;
    net_params.region = {8.0 * static_cast<double>(n) + 10.0, 20.0};
    net_params.mac.jitter_max_s = 0.001;
    net = std::make_unique<net::Network>(sim, net_params, sim::RngStream(1));
    delivered.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = net->add_node(std::make_unique<mobility::StaticModel>(
          geo::Vec2{8.0 * static_cast<double>(i) + 1.0, 10.0}));
      agents.push_back(std::make_unique<DsrAgent>(sim, *net, id, params));
      agents.back()->set_deliver_handler(
          [this, i](NodeId src, net::AppPayloadPtr, int hops) {
            delivered[i].emplace_back(src, hops);
          });
    }
  }
};

TEST(Dsr, DiscoversAndDeliversOverMultipleHops) {
  LineWorld world(5);
  world.agents[0]->send(4, net::make_payload<const AppMsg>(7));
  world.sim.run_until(10.0);
  ASSERT_EQ(world.delivered[4].size(), 1U);
  EXPECT_EQ(world.delivered[4][0].first, 0U);
  EXPECT_EQ(world.delivered[4][0].second, 4);  // full source-route length
  EXPECT_GE(world.agents[0]->stats().rreq_originated, 1U);
  EXPECT_TRUE(world.agents[0]->has_route(4));
  EXPECT_EQ(world.agents[0]->route_hops(4), 4);
}

TEST(Dsr, TargetLearnsReversePath) {
  LineWorld world(4);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(10.0);
  // The target cached the reverse source route when replying.
  EXPECT_TRUE(world.agents[3]->has_route(0));
  EXPECT_EQ(world.agents[3]->route_hops(0), 3);
}

TEST(Dsr, CacheAvoidsSecondDiscovery) {
  LineWorld world(4);
  world.agents[0]->send(3, net::make_payload<const AppMsg>(1));
  world.sim.run_until(5.0);
  const auto rreqs = world.agents[0]->stats().rreq_originated;
  world.agents[0]->send(3, net::make_payload<const AppMsg>(2));
  world.sim.run_until(8.0);
  EXPECT_EQ(world.agents[0]->stats().rreq_originated, rreqs);
  EXPECT_GE(world.agents[0]->stats().cache_hits, 1U);
  ASSERT_EQ(world.delivered[3].size(), 2U);
}

TEST(Dsr, CachedRouteExpires) {
  DsrParams params;
  params.route_lifetime = 5.0;
  LineWorld world(3, params);
  world.agents[0]->send(2, net::make_payload<const AppMsg>(1));
  world.sim.run_until(3.0);
  EXPECT_TRUE(world.agents[0]->has_route(2));
  world.sim.run_until(20.0);
  EXPECT_FALSE(world.agents[0]->has_route(2));
}

TEST(Dsr, LearnRouteCachesDirectNeighborsOnly) {
  LineWorld world(3);
  world.agents[0]->learn_route(1, 1, 1);  // 1-hop: cached
  EXPECT_TRUE(world.agents[0]->has_route(1));
  world.agents[0]->learn_route(2, 1, 2);  // multi-hop hint: ignored
  EXPECT_FALSE(world.agents[0]->has_route(2));
}

TEST(Dsr, LinkBreakSendsRerrAndPurgesCaches) {
  // 0-1-2 where node 1 walks away after the route forms; a relay 3 offers
  // an alternative path.
  sim::Simulator sim;
  net::NetworkParams net_params;
  net_params.region = {200.0, 40.0};
  net_params.mac.jitter_max_s = 0.001;
  net::Network network(sim, net_params, sim::RngStream(1));
  std::vector<std::unique_ptr<DsrAgent>> agents;
  std::vector<int> delivered;
  const NodeId n0 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{1.0, 10.0}));
  const NodeId n1 = network.add_node(std::make_unique<mobility::TraceModel>(
      geo::Vec2{9.0, 10.0},
      std::vector<mobility::TraceStep>{{10.0, {9.0, 180.0}, 60.0}}));
  const NodeId n2 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{17.0, 10.0}));
  const NodeId n3 = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{9.0, 15.0}));
  for (const NodeId id : {n0, n1, n2, n3}) {
    agents.push_back(std::make_unique<DsrAgent>(sim, network, id, DsrParams{}));
  }
  agents[n2]->set_deliver_handler(
      [&](NodeId, net::AppPayloadPtr app, int) {
        delivered.push_back(dynamic_cast<const AppMsg*>(app.get())->tag);
      });
  agents[n0]->send(n2, net::make_payload<const AppMsg>(1));
  sim.run_until(5.0);
  ASSERT_EQ(delivered.size(), 1U);
  // n1 leaves at t=10; the stale cached route breaks at its first hop or
  // mid-route; DSR purges and rediscovers via n3.
  sim.run_until(20.0);
  agents[n0]->send(n2, net::make_payload<const AppMsg>(2));
  sim.run_until(40.0);
  agents[n0]->send(n2, net::make_payload<const AppMsg>(3));
  sim.run_until(60.0);
  ASSERT_GE(delivered.size(), 2U);
  EXPECT_EQ(delivered.back(), 3);
}

TEST(Dsr, DiscoveryFailureDropsQueuedPackets) {
  LineWorld world(2);
  world.net->set_failed(1, true);
  world.agents[0]->send(1, net::make_payload<const AppMsg>(1));
  world.sim.run_until(30.0);
  EXPECT_GE(world.agents[0]->stats().discoveries_failed, 1U);
  EXPECT_GE(world.agents[0]->stats().data_dropped, 1U);
  EXPECT_TRUE(world.delivered[1].empty());
}

TEST(Dsr, MaxRouteLenBoundsDiscovery) {
  DsrParams params;
  params.max_route_len = 2;  // at most 2 intermediate hops accumulate
  LineWorld world(6, params);
  world.agents[0]->send(5, net::make_payload<const AppMsg>(1));
  world.sim.run_until(30.0);
  // 5 hops away needs 4 intermediates: unreachable under the bound.
  EXPECT_TRUE(world.delivered[5].empty());
  // 3 hops away (2 intermediates) still works.
  world.agents[0]->send(3, net::make_payload<const AppMsg>(2));
  world.sim.run_until(60.0);
  EXPECT_EQ(world.delivered[3].size(), 1U);
}

TEST(Dsr, TelemetryContract) {
  LineWorld world(3);
  world.agents[0]->send(2, net::make_payload<const AppMsg>(1));
  world.sim.run_until(10.0);
  const auto telemetry = world.agents[0]->telemetry();
  EXPECT_GT(telemetry.control_messages_sent, 0U);
  EXPECT_EQ(world.agents[2]->telemetry().data_delivered, 1U);
}

}  // namespace
