// Payload pool unit and lifetime tests (see DESIGN.md "Overlay payload
// ownership"). The unit tests pin the Ref/Pool contract — non-atomic
// refcounts, slot recycling to the default-constructed state, rc-neutral
// copies, pools that outlive their owning registry. The scenario test at
// the bottom is the lifetime stress: a churning overlay floods queries
// while origins crash and rejoin, so pooled slots are recycled and refilled
// under in-flight traffic; run under the asan preset this proves slot reuse
// never touches a payload something still references.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/payload.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;

struct Blob : net::RefCountBase {
  int value = 0;
  std::vector<int> data;
};

// A payload holding a Ref to another payload (the flood path keeps the
// original query inside forwarded wrappers like this).
struct Wrapper : net::RefCountBase {
  net::Ref<const Blob> inner;
};

TEST(PayloadPool, MakeGivesExclusiveDefaultConstructedPayload) {
  net::PayloadPools pools;
  net::Ref<Blob> ref = pools.make<Blob>();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref.use_count(), 1U);
  EXPECT_EQ(ref->value, 0);
  EXPECT_TRUE(ref->data.empty());
  const net::PayloadPools::Stats stats = pools.stats();
  EXPECT_EQ(stats.acquires, 1U);
  EXPECT_EQ(stats.peak_live, 1U);
}

TEST(PayloadPool, CopiesShareTheObjectAndCountNonAtomically) {
  net::PayloadPools pools;
  net::Ref<Blob> a = pools.make<Blob>();
  a.edit()->value = 42;
  net::Ref<Blob> b = a;
  net::Ref<const Blob> c = b;  // converting copy
  EXPECT_EQ(a.use_count(), 3U);
  EXPECT_EQ(c->value, 42);
  EXPECT_EQ(a.get(), c.get());
  b.reset();
  EXPECT_EQ(a.use_count(), 2U);
}

TEST(PayloadPool, LastDropRecyclesTheSlotBackToDefaultState) {
  net::PayloadPools pools;
  net::Ref<Blob> a = pools.make<Blob>();
  a.edit()->value = 7;
  a.edit()->data = {1, 2, 3};
  const Blob* slot = a.get();
  a.reset();
  // LIFO freelist: the next acquisition reuses the same slot, reset to
  // the default-constructed state — no stale fields leak through.
  net::Ref<Blob> b = pools.make<Blob>();
  EXPECT_EQ(b.get(), slot);
  EXPECT_EQ(b->value, 0);
  EXPECT_TRUE(b->data.empty());
  EXPECT_EQ(b.use_count(), 1U);
  EXPECT_EQ(pools.stats().peak_live, 1U);
}

TEST(PayloadPool, SlabGrowsOnlyOnFreelistMiss) {
  net::PayloadPools pools;
  std::vector<net::Ref<Blob>> live;
  for (int i = 0; i < 100; ++i) live.push_back(pools.make<Blob>());
  const net::PayloadPools::Stats grown = pools.stats();
  EXPECT_EQ(grown.acquires, 100U);
  EXPECT_EQ(grown.slab_allocs, 100U);  // every first-touch is a miss
  EXPECT_EQ(grown.peak_live, 100U);
  live.clear();
  for (int i = 0; i < 100; ++i) live.push_back(pools.make<Blob>());
  const net::PayloadPools::Stats steady = pools.stats();
  EXPECT_EQ(steady.acquires, 200U);
  EXPECT_EQ(steady.slab_allocs, 100U);  // steady state: all freelist hits
  EXPECT_EQ(steady.peak_live, 100U);
}

TEST(PayloadPool, MakeFromFillsASlotWithoutClobberingOwnership) {
  net::PayloadPools pools;
  Blob plain;
  plain.value = 9;
  plain.data = {4, 5};
  net::Ref<Blob> ref = pools.make_from(plain);
  EXPECT_EQ(ref->value, 9);
  EXPECT_EQ(ref->data, (std::vector<int>{4, 5}));
  EXPECT_EQ(ref.use_count(), 1U);  // assignment did not copy the count
  ref.reset();
  EXPECT_EQ(pools.stats().acquires, 1U);
}

TEST(PayloadPool, RecycleDropsNestedRefsPromptly) {
  net::PayloadPools pools;
  net::Ref<const Blob> inner = pools.make<Blob>();
  net::Ref<Wrapper> outer = pools.make<Wrapper>();
  outer.edit()->inner = inner;
  EXPECT_EQ(inner.use_count(), 2U);
  outer.reset();  // recycling assigns Wrapper{} — the nested Ref releases
  EXPECT_EQ(inner.use_count(), 1U);
}

TEST(PayloadPool, PoolOutlivesItsOwningRegistry) {
  // The Network (and its PayloadPools) is destroyed before the Simulator,
  // while queued frames may still hold Refs. The pool must stay alive
  // until the last payload releases. asan turns a violation into a
  // use-after-free here.
  auto pools = std::make_unique<net::PayloadPools>();
  net::Ref<Blob> survivor = pools->make<Blob>();
  survivor.edit()->value = 11;
  net::Ref<Blob> copy = survivor;
  pools.reset();  // registry gone; payload + pool must survive
  EXPECT_EQ(survivor->value, 11);
  survivor.reset();
  EXPECT_EQ(copy->value, 11);
  copy.reset();  // last drop frees the orphaned pool itself
}

TEST(PayloadPool, HeapFallbackWorksWithoutAnyPool) {
  net::Ref<Blob> ref = net::make_payload<Blob>();
  ref.edit()->value = 3;
  net::Ref<const Blob> shared = ref;
  EXPECT_EQ(ref.use_count(), 2U);
  ref.reset();
  EXPECT_EQ(shared->value, 3);
}

// ------------------------------------------------- lifetime under churn

// Flood traffic in flight while origins crash and rejoin: crashes tear
// down servent state (dropping Refs mid-flood), rebirth re-acquires
// recycled slots, and forwarded queries alias the original payload across
// many nodes. Two same-seed runs must agree bit-for-bit — including the
// pool counters — and the asan preset verifies no recycled slot is ever
// read through a stale reference.
TEST(PayloadPool, SlotReuseUnderChurnIsCleanAndDeterministic) {
  scenario::Parameters params;
  params.num_nodes = 30;
  params.duration_s = 400.0;
  params.seed = 7;
  params.algorithm = core::AlgorithmKind::kHybrid;
  params.fault.churn_rate_per_hour = 40.0;
  params.fault.mean_downtime_s = 30.0;
  params.invariant_check_interval_s = 20.0;

  scenario::SimulationRun first(params);
  const scenario::RunResult a = first.run();
  EXPECT_EQ(a.invariant_violations, 0U);
  EXPECT_GT(a.churn_deaths, 0U);  // the stress actually exercised churn
  EXPECT_GT(a.payload_acquires, 0U);
  EXPECT_GT(a.payload_peak_live, 0U);
  EXPECT_LE(a.payload_slab_allocs, a.payload_acquires);

  scenario::SimulationRun second(params);
  const scenario::RunResult b = second.run();
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.payload_acquires, b.payload_acquires);
  EXPECT_EQ(a.payload_slab_allocs, b.payload_slab_allocs);
  EXPECT_EQ(a.payload_peak_live, b.payload_peak_live);
}

}  // namespace
