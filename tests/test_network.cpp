// Network: unit-disk delivery, unicast/broadcast semantics, loss, energy
// charging, node failure, half-duplex serialization, and snapshots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "mobility/model.hpp"
#include "mobility/trace.hpp"
#include "net/mac.hpp"
#include "net/neighbor_index.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using net::Frame;
using net::FramePayload;
using net::Network;
using net::NetworkParams;
using net::NodeId;

struct TestPayload final : FramePayload {
  int tag = 0;
  explicit TestPayload(int t) : tag(t) {}
};

struct Recorder final : net::LinkListener {
  std::vector<Frame> frames;
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
};

struct Fixture {
  sim::Simulator sim;
  NetworkParams params;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<Recorder>> recorders;

  explicit Fixture(double range = 10.0) {
    params.range = range;
    params.mac.jitter_max_s = 0.0;  // deterministic timing for tests
    net = std::make_unique<Network>(sim, params, sim::RngStream(1));
  }

  NodeId add(double x, double y) {
    const NodeId id =
        net->add_node(std::make_unique<mobility::StaticModel>(geo::Vec2{x, y}));
    recorders.push_back(std::make_unique<Recorder>());
    net->attach_listener(id, recorders.back().get());
    return id;
  }

  std::size_t received(NodeId id) const {
    return recorders[id]->frames.size();
  }
};

TEST(Network, InRangeIsSymmetricAndDistanceBased) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(9.9, 0);
  const NodeId c = f.add(19.0, 0);
  EXPECT_TRUE(f.net->in_range(a, b));
  EXPECT_TRUE(f.net->in_range(b, a));
  EXPECT_FALSE(f.net->in_range(a, c));   // 19 m apart
  EXPECT_TRUE(f.net->in_range(b, c));    // 9.1 m apart
  EXPECT_TRUE(f.net->in_range(a, a));
}

TEST(Network, BroadcastReachesOnlyInRangeNodes) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  const NodeId c = f.add(9, 0);
  const NodeId d = f.add(15, 0);
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 64);
  f.sim.run();
  EXPECT_EQ(f.received(a), 0U);  // no self-delivery
  EXPECT_EQ(f.received(b), 1U);
  EXPECT_EQ(f.received(c), 1U);
  EXPECT_EQ(f.received(d), 0U);
  EXPECT_EQ(f.net->frames_transmitted(), 1U);
  EXPECT_EQ(f.net->frames_delivered(), 2U);
}

TEST(Network, BroadcastFrameCarriesSenderAndPayload) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  f.net->broadcast(a, net::make_payload<const TestPayload>(42), 64);
  f.sim.run();
  ASSERT_EQ(f.received(b), 1U);
  const Frame& frame = f.recorders[b]->frames[0];
  EXPECT_EQ(frame.sender, a);
  EXPECT_EQ(frame.link_dst, net::kBroadcast);
  EXPECT_EQ(frame.size_bytes, 64U);
  const auto* payload = dynamic_cast<const TestPayload*>(frame.payload.get());
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->tag, 42);
}

TEST(Network, UnicastReachesOnlyTheAddressee) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  const NodeId c = f.add(5, 1);
  f.net->unicast(a, b, net::make_payload<const TestPayload>(1), 32);
  f.sim.run();
  EXPECT_EQ(f.received(b), 1U);
  EXPECT_EQ(f.received(c), 0U);
  EXPECT_EQ(f.recorders[b]->frames[0].link_dst, b);
}

TEST(Network, UnicastOutOfRangeIsSilentlyLost) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(50, 0);
  f.net->unicast(a, b, net::make_payload<const TestPayload>(1), 32);
  f.sim.run();
  EXPECT_EQ(f.received(b), 0U);
  EXPECT_EQ(f.net->frames_lost(), 1U);
  // The sender still paid transmit energy (radios don't know).
  EXPECT_EQ(f.net->energy(a).frames_sent(), 1U);
}

TEST(Network, DeliveryIsDelayedNotImmediate) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 64);
  EXPECT_EQ(f.received(b), 0U);  // nothing until events run
  f.sim.run();
  EXPECT_EQ(f.received(b), 1U);
  EXPECT_GT(f.sim.now(), 0.0);
}

TEST(Network, HalfDuplexSerializesTransmissions) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  f.add(5, 0);
  // Two back-to-back broadcasts: second arrival strictly after first.
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 1500);
  f.net->broadcast(a, net::make_payload<const TestPayload>(2), 1500);
  std::vector<double> arrivals;
  // Run and capture arrival times via the simulator clock at delivery.
  f.sim.run();
  ASSERT_EQ(f.received(1), 2U);
  const double airtime = net::tx_duration(f.params.mac, 1500);
  // Second frame cannot start before the first finishes.
  EXPECT_GE(f.sim.now(), 2 * airtime);
}

TEST(Network, LossProbabilityOneDropsEverything) {
  sim::Simulator sim;
  NetworkParams params;
  params.mac.loss_probability = 1.0;
  Network network(sim, params, sim::RngStream(1));
  const NodeId a =
      network.add_node(std::make_unique<mobility::StaticModel>(geo::Vec2{0, 0}));
  const NodeId b =
      network.add_node(std::make_unique<mobility::StaticModel>(geo::Vec2{5, 0}));
  Recorder recorder;
  network.attach_listener(b, &recorder);
  network.broadcast(a, net::make_payload<const TestPayload>(1), 64);
  network.unicast(a, b, net::make_payload<const TestPayload>(2), 64);
  sim.run();
  EXPECT_TRUE(recorder.frames.empty());
  EXPECT_EQ(network.frames_lost(), 2U);
}

TEST(Network, FailedNodeNeitherSendsNorReceives) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  f.net->set_failed(b, true);
  EXPECT_FALSE(f.net->alive(b));
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 64);
  f.sim.run();
  EXPECT_EQ(f.received(b), 0U);

  f.net->broadcast(b, net::make_payload<const TestPayload>(2), 64);
  f.sim.run();
  EXPECT_EQ(f.received(a), 0U);

  f.net->set_failed(b, false);
  f.net->broadcast(a, net::make_payload<const TestPayload>(3), 64);
  f.sim.run();
  EXPECT_EQ(f.received(b), 1U);
}

TEST(Network, EnergyChargedForTxAndRx) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 100);
  f.sim.run();
  EXPECT_GT(f.net->energy(a).consumed_j(), 0.0);
  EXPECT_GT(f.net->energy(b).consumed_j(), 0.0);
  EXPECT_EQ(f.net->energy(a).bytes_sent(), 100U);
  EXPECT_EQ(f.net->energy(b).bytes_received(), 100U);
}

TEST(Network, NeighborsOfMatchesInRange) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  f.add(3, 0);
  f.add(0, 9);
  f.add(30, 30);
  std::vector<NodeId> neighbors;
  f.net->neighbors_of(a, &neighbors);
  EXPECT_EQ(neighbors.size(), 2U);
}

TEST(Network, AdjacencySnapshotIsSymmetricUnitDisk) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(6, 0);
  const NodeId c = f.add(12, 0);
  const auto adj = f.net->adjacency_snapshot();
  ASSERT_EQ(adj.size(), 3U);
  EXPECT_EQ(adj[a], std::vector<NodeId>{b});
  EXPECT_EQ(adj[c], std::vector<NodeId>{b});
  EXPECT_EQ(adj[b].size(), 2U);
}

TEST(Network, AdjacencySnapshotExcludesDeadNodes) {
  Fixture f;
  f.add(0, 0);
  const NodeId b = f.add(6, 0);
  f.net->set_failed(b, true);
  const auto adj = f.net->adjacency_snapshot();
  EXPECT_TRUE(adj[0].empty());
  EXPECT_TRUE(adj[b].empty());
}

TEST(Network, MultipleListenersAllReceive) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  const NodeId b = f.add(5, 0);
  Recorder extra;
  f.net->attach_listener(b, &extra);
  f.net->broadcast(a, net::make_payload<const TestPayload>(1), 64);
  f.sim.run();
  EXPECT_EQ(f.received(b), 1U);
  EXPECT_EQ(extra.frames.size(), 1U);
}

TEST(Network, GrayZoneProbabilityModel) {
  net::MacParams mac;
  mac.gray_zone_fraction = 0.3;  // soft edge from 7 m to 10 m
  EXPECT_DOUBLE_EQ(net::gray_zone_delivery_probability(mac, 3.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(net::gray_zone_delivery_probability(mac, 7.0, 10.0), 1.0);
  EXPECT_NEAR(net::gray_zone_delivery_probability(mac, 8.5, 10.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(net::gray_zone_delivery_probability(mac, 10.0, 10.0), 0.0);
  mac.gray_zone_fraction = 0.0;  // hard disk
  EXPECT_DOUBLE_EQ(net::gray_zone_delivery_probability(mac, 9.99, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(net::gray_zone_delivery_probability(mac, 10.01, 10.0), 0.0);
}

TEST(Network, GrayZoneDropsSomeEdgeFramesButNotInnerOnes) {
  sim::Simulator sim;
  NetworkParams params;
  params.mac.jitter_max_s = 0.0;
  params.mac.gray_zone_fraction = 0.4;  // soft edge from 6 m outward
  Network network(sim, params, sim::RngStream(3));
  const NodeId a = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{0, 0}));
  const NodeId inner = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{4, 0}));
  const NodeId edge = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{9, 0}));
  Recorder inner_rec, edge_rec;
  network.attach_listener(inner, &inner_rec);
  network.attach_listener(edge, &edge_rec);
  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    network.broadcast(a, net::make_payload<const TestPayload>(i), 32);
  }
  sim.run();
  // Inside the solid zone: everything arrives. On the edge (p = 0.25):
  // a clear minority arrives.
  EXPECT_EQ(inner_rec.frames.size(), static_cast<std::size_t>(kFrames));
  EXPECT_GT(edge_rec.frames.size(), 0U);
  EXPECT_LT(edge_rec.frames.size(), static_cast<std::size_t>(kFrames) / 2);
  EXPECT_GT(network.frames_lost(), 0U);
}

TEST(Network, MovingNodesChangeConnectivity) {
  sim::Simulator sim;
  NetworkParams params;
  params.mac.jitter_max_s = 0.0;
  params.index_tolerance_s = 0.1;
  Network network(sim, params, sim::RngStream(1));
  // b walks away from a at 1 m/s starting in range.
  const NodeId a =
      network.add_node(std::make_unique<mobility::StaticModel>(geo::Vec2{0, 0}));
  auto trace = std::make_unique<mobility::TraceModel>(
      geo::Vec2{5.0, 0.0},
      std::vector<mobility::TraceStep>{{0.0, {100.0, 0.0}, 1.0}});
  const NodeId b = network.add_node(std::move(trace));
  EXPECT_TRUE(network.in_range(a, b));
  sim.run_until(20.0);  // b is now at x=25
  EXPECT_FALSE(network.in_range(a, b));
}

// Listener that appends (receiver, payload tag) to a shared log, so tests
// can observe the *global* delivery order across all nodes.
struct OrderRecorder final : net::LinkListener {
  NodeId self = net::kInvalidNode;
  std::vector<std::pair<int, NodeId>>* log = nullptr;
  void on_frame(const Frame& frame) override {
    const auto* payload = dynamic_cast<const TestPayload*>(frame.payload.get());
    log->emplace_back(payload != nullptr ? payload->tag : -1, self);
  }
};

// The batched arrival event must be observationally identical to the old
// per-receiver-event baseline: survivors are delivered in receiver order
// (the order receivers_of() reports), one broadcast after another.
TEST(Network, BatchedBroadcastMatchesPerReceiverDeliveryOrder) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  std::vector<NodeId> listeners;
  listeners.push_back(f.add(5, 0));
  listeners.push_back(f.add(2, 2));
  listeners.push_back(f.add(9, -1));
  listeners.push_back(f.add(-4, 4));

  std::vector<NodeId> order;
  f.net->neighbors_of(a, &order);
  ASSERT_EQ(order.size(), listeners.size());

  std::vector<std::pair<int, NodeId>> log;
  std::vector<OrderRecorder> recs(listeners.size());
  for (std::size_t i = 0; i < listeners.size(); ++i) {
    recs[i].self = listeners[i];
    recs[i].log = &log;
    f.net->attach_listener(listeners[i], &recs[i]);
  }

  const std::uint64_t before = f.sim.events_scheduled();
  const int kFrames = 3;
  for (int i = 0; i < kFrames; ++i) {
    f.net->broadcast(a, net::make_payload<const TestPayload>(i), 64);
  }
  // One arrival event per transmission, regardless of receiver count.
  EXPECT_EQ(f.sim.events_scheduled() - before,
            static_cast<std::uint64_t>(kFrames));
  f.sim.run();

  std::vector<std::pair<int, NodeId>> expected;
  for (int i = 0; i < kFrames; ++i) {
    for (const NodeId r : order) expected.emplace_back(i, r);
  }
  EXPECT_EQ(log, expected);
}

// With loss and gray-zone fading enabled, the batched path must consume
// mac RNG draws in the exact order the per-receiver baseline did: one
// jitter draw per transmission, then a loss draw and a gray-zone draw per
// in-range receiver, in receiver order. A twin RngStream seeded alike
// replays that schedule and predicts every survivor.
TEST(Network, BatchedBroadcastMatchesPerReceiverChannelDraws) {
  sim::Simulator sim;
  NetworkParams params;
  params.range = 10.0;
  params.mac.loss_probability = 0.3;
  params.mac.gray_zone_fraction = 0.5;
  const std::uint64_t kSeed = 7;
  Network network(sim, params, sim::RngStream(kSeed));

  std::vector<geo::Vec2> pos = {
      {0, 0}, {2, 0}, {4, 1}, {8, 0}, {9.5, 0}, {6, -3}, {20, 20}};
  std::vector<NodeId> ids;
  for (const auto& p : pos) {
    ids.push_back(network.add_node(std::make_unique<mobility::StaticModel>(p)));
  }
  const NodeId sender = ids[0];

  std::vector<NodeId> order;
  network.neighbors_of(sender, &order);  // consumes no RNG
  ASSERT_EQ(order.size(), 5U);           // (20,20) is out of range

  std::vector<std::pair<int, NodeId>> log;
  std::vector<OrderRecorder> recs(ids.size());
  for (std::size_t i = 1; i < ids.size(); ++i) {
    recs[i].self = ids[i];
    recs[i].log = &log;
    network.attach_listener(ids[i], &recs[i]);
  }

  // Replay the baseline draw schedule on a twin stream.
  sim::RngStream twin(kSeed);
  std::vector<std::pair<int, NodeId>> expected;
  std::size_t expected_lost = 0;
  const int kFrames = 40;
  for (int i = 0; i < kFrames; ++i) {
    (void)twin.uniform(0.0, params.mac.jitter_max_s);  // schedule_tx jitter
    for (const NodeId r : order) {
      bool lost = twin.chance(params.mac.loss_probability);
      if (!lost) {
        const double dist = geo::distance(pos[sender], pos[r]);
        lost = !twin.chance(
            net::gray_zone_delivery_probability(params.mac, dist, params.range));
      }
      if (lost) {
        ++expected_lost;
      } else {
        expected.emplace_back(i, r);
      }
    }
  }

  for (int i = 0; i < kFrames; ++i) {
    network.broadcast(sender, net::make_payload<const TestPayload>(i), 64);
  }
  sim.run();

  EXPECT_EQ(log, expected);
  EXPECT_EQ(network.frames_lost(), expected_lost);
  EXPECT_EQ(network.frames_delivered(), expected.size());
}

// The buffer-reuse overload of adjacency_snapshot must agree with the
// value-returning one and must fully overwrite stale rows on reuse.
TEST(Network, AdjacencySnapshotBufferReuseMatchesFresh) {
  Fixture f;
  f.add(0, 0);
  const NodeId b = f.add(6, 0);
  f.add(12, 0);

  std::vector<std::vector<NodeId>> buffer;
  f.net->adjacency_snapshot(&buffer);
  EXPECT_EQ(buffer, f.net->adjacency_snapshot());

  // Kill the hub and snapshot into the SAME buffer: every stale mention
  // of b must be gone even though row capacity is recycled.
  f.net->set_failed(b, true);
  f.net->adjacency_snapshot(&buffer);
  EXPECT_EQ(buffer, f.net->adjacency_snapshot());
  EXPECT_TRUE(buffer[b].empty());
  for (const auto& row : buffer) {
    EXPECT_TRUE(std::find(row.begin(), row.end(), b) == row.end());
  }
}

// Regression: per-query-hit topology must be SHARED, network-level state.
// Before the shared memo each servent kept a private O(n^2) snapshot and
// rebuilt it per hit; if that ever comes back, the build counter here
// starts climbing with the number of borrows instead of the number of
// (instant, liveness-epoch) pairs.
TEST(Network, SharedAdjacencyMemoizesPerInstantAndLivenessEpoch) {
  Fixture f;
  const NodeId a = f.add(0, 0);
  f.add(6, 0);
  f.add(12, 0);

  const std::uint64_t builds0 = f.net->adjacency_builds();
  const auto* first = &f.net->shared_adjacency();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(&f.net->shared_adjacency(), first);  // same resident storage
  }
  EXPECT_EQ(f.net->adjacency_builds(), builds0 + 1);

  // Advancing simulated time invalidates the memo once...
  f.sim.after(1.0, [] {});
  f.sim.run();
  f.net->shared_adjacency();
  f.net->shared_adjacency();
  EXPECT_EQ(f.net->adjacency_builds(), builds0 + 2);

  // ...and so does a liveness flip at the same instant.
  f.net->set_failed(a, true);
  const auto& after_kill = f.net->shared_adjacency();
  EXPECT_EQ(f.net->adjacency_builds(), builds0 + 3);
  EXPECT_TRUE(after_kill[a].empty());
}

// physical_hop_distance takes a grid-BFS shortcut when the shared memo is
// stale; the answer must equal a BFS over the full snapshot in every case
// (chain, unreachable island, dead endpoint, self), and the shortcut must
// not trigger a shared-snapshot build.
TEST(Network, PhysicalHopDistanceGridPathMatchesSnapshotBfs) {
  Fixture f;
  std::vector<NodeId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(f.add(6.0 * i, 0.0));
  const NodeId island = f.add(100.0, 100.0);
  const NodeId dead = f.add(3.0, 5.0);
  f.net->set_failed(dead, true);

  const auto adj = f.net->adjacency_snapshot();
  const std::uint64_t builds0 = f.net->adjacency_builds();
  for (NodeId src = 0; src < 7; ++src) {
    for (NodeId dst = 0; dst < 7; ++dst) {
      EXPECT_EQ(f.net->physical_hop_distance(src, dst),
                graph::bfs_distance(adj, src, dst))
          << "src=" << src << " dst=" << dst;
    }
  }
  EXPECT_EQ(f.net->physical_hop_distance(chain[0], chain[4]), 4);
  EXPECT_EQ(f.net->physical_hop_distance(chain[0], island),
            graph::kUnreachable);
  EXPECT_EQ(f.net->physical_hop_distance(chain[0], dead),
            graph::kUnreachable);
  // The grid path materialized no shared snapshot.
  EXPECT_EQ(f.net->adjacency_builds(), builds0);

  // With the memo fresh, the snapshot fast path answers identically.
  f.net->shared_adjacency();
  EXPECT_EQ(f.net->physical_hop_distance(chain[0], chain[4]), 4);
  EXPECT_EQ(f.net->physical_hop_distance(chain[1], island),
            graph::kUnreachable);
  EXPECT_EQ(f.net->adjacency_builds(), builds0 + 1);
}

// ---- NeighborIndex steady-state allocation lock-in ------------------------

// Deterministic, exactly-periodic motion field: node positions repeat every
// kStepsPerCycle refresh steps (the angle is computed from the step index,
// not accumulated time, so cycle N reproduces cycle 1 bit-for-bit). One
// full cycle therefore drives every bucket to its maximum occupancy — after
// a warm-up cycle no refresh may allocate again.
struct OscillatingField {
  static constexpr int kStepsPerCycle = 50;
  std::vector<geo::Vec2> centers;
  int step = 0;
  geo::Vec2 at(NodeId id) const {
    const double phase = 0.7 * static_cast<double>(id);
    const double angle = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(step % kStepsPerCycle) /
                         static_cast<double>(kStepsPerCycle);
    // Amplitude * angular step per refresh stays under the declared
    // max_speed of 1 m/s, keeping the cell-safe deadlines honest.
    return {centers[id].x + 3.0 * std::sin(angle + phase),
            centers[id].y + 3.0 * std::cos(angle + 1.3 * phase)};
  }
  static geo::Vec2 sample(void* ctx, NodeId id) {
    return static_cast<const OscillatingField*>(ctx)->at(id);
  }
};

TEST(NeighborIndex, SteadyStateRefreshesAreAllocationFree) {
  const geo::Region region{100.0, 100.0};
  constexpr std::size_t kNodes = 200;
  OscillatingField field;
  sim::RngStream rng(42);
  field.centers.reserve(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    field.centers.push_back(
        {rng.uniform(5.0, 95.0), rng.uniform(5.0, 95.0)});
  }

  net::NeighborIndex incremental(region, 10.0, 0.25, 1.0);
  net::NeighborIndex full(region, 10.0, 0.25, 1.0);
  std::vector<geo::Vec2> positions(kNodes);
  const double dt = 0.4;  // > tolerance, so every step really refreshes

  auto advance = [&](int steps) {
    for (int k = 0; k < steps; ++k) {
      ++field.step;
      const double now = dt * static_cast<double>(field.step);
      incremental.refresh_incremental(now, kNodes, &OscillatingField::sample,
                                      &field);
      for (std::size_t i = 0; i < kNodes; ++i) {
        positions[i] = field.at(static_cast<NodeId>(i));
      }
      full.refresh(now, positions);
    }
  };

  // Warm-up: two full motion cycles grow every bucket (and the heap/due
  // scratch) to the high-water mark the workload can ever need.
  advance(2 * OscillatingField::kStepsPerCycle);
  const std::uint64_t incremental_allocs = incremental.alloc_events();
  const std::uint64_t full_allocs = full.alloc_events();
  const std::uint64_t resampled_after_warmup = incremental.nodes_resampled();

  // Steady state: two more cycles of identical motion. Any further
  // allocation is a regression in the hoisting (clear() losing capacity,
  // a scratch buffer rebuilt per refresh, ...).
  advance(2 * OscillatingField::kStepsPerCycle);
  EXPECT_EQ(incremental.alloc_events(), incremental_allocs);
  EXPECT_EQ(full.alloc_events(), full_allocs);
  // And the incremental mode kept doing real work the whole time: nodes
  // crossed cells and were resampled, without triggering an allocation.
  EXPECT_GT(incremental.nodes_resampled(), resampled_after_warmup);
}

}  // namespace
