// Sharded event-queue kernel tests (sim layer only, no Network): the
// conservative windowed executor must produce one canonical event history
// regardless of thread count, expose per-shard queue telemetry that sums
// to the sequential value, and honour cross-shard tombstone cancels.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using p2p::sim::EventId;
using p2p::sim::ShardedExecutor;
using p2p::sim::SimTime;
using p2p::sim::Simulator;

// One executed event: (shard, time, tag). Each shard appends only to its
// own log, so concurrent windows never share a vector; the barrier at
// run() exit orders every append before the final reads.
struct LogEntry {
  std::size_t shard;
  SimTime time;
  int tag;
  bool operator==(const LogEntry& o) const {
    return shard == o.shard && time == o.time && tag == o.tag;
  }
};

// A tiny cross-shard workload: every shard runs a chain of local events
// spaced `step` apart; each local event also posts a time-stamped message
// to the next shard (arrival = now + latency, latency > lookahead), which
// the after_window hook drains in fixed shard order — the same discipline
// net::Network uses for frame deliveries.
struct Workload {
  struct OutMsg {
    std::size_t dst;
    SimTime arrival;
    int tag;
  };

  explicit Workload(std::size_t num_shards)
      : shards(num_shards), logs(num_shards), outboxes(num_shards) {
    for (auto& s : shards) sims.push_back(&s);
  }

  void local_chain(std::size_t shard, SimTime start, SimTime step, int count,
                   SimTime latency) {
    shards[shard].at(start, [this, shard, step, count, latency, n = 0]() mutable {
      run_one(shard, step, count, latency, n);
    });
  }

  void run_one(std::size_t shard, SimTime step, int count, SimTime latency,
               int n) {
    Simulator& sim = shards[shard];
    logs[shard].push_back({shard, sim.now(), n});
    outboxes[shard].push_back(
        {(shard + 1) % shards.size(), sim.now() + latency, 1000 + n});
    if (n + 1 < count) {
      sim.after(step, [this, shard, step, count, latency, n]() {
        run_one(shard, step, count, latency, n + 1);
      });
    }
  }

  ShardedExecutor::Callbacks callbacks() {
    ShardedExecutor::Callbacks cb;
    cb.after_window = [this](SimTime) {
      for (std::size_t s = 0; s < outboxes.size(); ++s) {
        for (const OutMsg& msg : outboxes[s]) {
          shards[msg.dst].at(msg.arrival, [this, dst = msg.dst,
                                           tag = msg.tag]() {
            logs[dst].push_back({dst, shards[dst].now(), tag});
          });
        }
        outboxes[s].clear();
      }
    };
    return cb;
  }

  std::vector<Simulator> shards;
  std::vector<Simulator*> sims;
  std::vector<std::vector<LogEntry>> logs;
  std::vector<std::vector<OutMsg>> outboxes;
};

constexpr SimTime kLookahead = 1e-4;

TEST(ShardedSim, CrossShardInsertionOrderIsThreadCountInvariant) {
  std::vector<std::vector<LogEntry>> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    Workload w(3);
    // Deliberately misaligned chains so windows cut through the middle of
    // each shard's schedule, plus same-instant cross-shard arrivals.
    w.local_chain(0, 0.0, 3e-4, 20, 5e-4);
    w.local_chain(1, 1e-4, 2e-4, 30, 5e-4);
    w.local_chain(2, 2e-4, 7e-4, 10, 5e-4);
    Simulator global;
    ShardedExecutor exec(w.sims, &global, kLookahead, threads);
    exec.run(0.05, w.callbacks());
    ASSERT_GT(exec.windows_run(), 1u);
    if (reference.empty()) {
      reference = w.logs;
      // Sanity: logs are non-trivial and time-ordered within each shard.
      for (const auto& log : reference) {
        ASSERT_FALSE(log.empty());
        for (std::size_t i = 1; i < log.size(); ++i) {
          ASSERT_LE(log[i - 1].time, log[i].time);
        }
      }
    } else {
      EXPECT_EQ(w.logs, reference) << "threads=" << threads;
    }
  }
}

TEST(ShardedSim, SameInstantArrivalsDrainInFixedShardOrder) {
  // Shards 0..2 each post a message to shard 2 with the SAME arrival time
  // during the same window. The barrier drains outboxes in shard order
  // 0..S-1, so shard 2 must observe tags 1000 (from 0), 1000 (from 1),
  // 1000 (from 2) interleaved purely by source shard order — verified by
  // comparing against the single-thread history.
  auto run_once = [](std::size_t threads) {
    Workload w(3);
    const SimTime arrival = 4e-3;
    for (std::size_t s = 0; s < 3; ++s) {
      w.shards[s].at(1e-4 * static_cast<double>(s + 1),
                     [&w, s, arrival]() {
                       w.outboxes[s].push_back({2, arrival, 100 + static_cast<int>(s)});
                     });
    }
    Simulator global;
    ShardedExecutor exec(w.sims, &global, kLookahead, threads);
    exec.run(0.01, w.callbacks());
    return w.logs[2];
  };
  const auto seq = run_once(1);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].tag, 100);
  EXPECT_EQ(seq[1].tag, 101);
  EXPECT_EQ(seq[2].tag, 102);
  EXPECT_EQ(run_once(4), seq);
}

TEST(ShardedSim, GlobalEventsRunQuiescedAndBeforeShardTies) {
  // A global event at g must see every shard advanced exactly to g: all
  // shard events < g executed, none >= g (ties included — global first).
  auto run_once = [](std::size_t threads) {
    std::vector<Simulator> shards(2);
    std::vector<Simulator*> sims{&shards[0], &shards[1]};
    std::vector<std::vector<LogEntry>> logs(2);
    std::vector<LogEntry> global_log;
    const SimTime g = 2e-3;
    for (std::size_t s = 0; s < 2; ++s) {
      for (int i = 0; i < 8; ++i) {
        const SimTime t = 5e-4 * static_cast<double>(i + 1);
        shards[s].at(t, [&logs, &shards, s, i]() {
          logs[s].push_back({s, shards[s].now(), i});
        });
      }
    }
    Simulator global;
    global.at(g, [&]() {
      std::size_t before = 0, at_or_after = 0;
      for (const auto& log : logs) {
        for (const auto& e : log) {
          (e.time < g ? before : at_or_after) += 1;
        }
      }
      global_log.push_back({99, global.now(), static_cast<int>(before)});
      global_log.push_back({99, global.now(), static_cast<int>(at_or_after)});
    });
    ShardedExecutor exec(sims, &global, kLookahead, threads);
    exec.run(0.01, {});
    return global_log;
  };
  const auto seq = run_once(1);
  ASSERT_EQ(seq.size(), 2u);
  // Events strictly before g = 2e-3: t = 5e-4, 1e-3, 1.5e-3 per shard = 6.
  EXPECT_EQ(seq[0].tag, 6);
  EXPECT_EQ(seq[1].tag, 0);  // the t == g shard events run after the global
  EXPECT_EQ(run_once(4), seq);
}

TEST(ShardedSim, PerShardPeakQueueSumsToSequentialValue) {
  // Load the identical event set into S shard queues and into one
  // sequential Simulator; the per-shard peaks must sum to the sequential
  // high-water mark (all events are pre-loaded, so peak == initial load).
  constexpr std::size_t kShards = 4;
  constexpr int kPerShard = 17;
  std::vector<Simulator> shards(kShards);
  std::vector<Simulator*> sims;
  for (auto& s : shards) sims.push_back(&s);
  Simulator sequential;
  for (std::size_t s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      const SimTime t = 1e-4 * static_cast<double>(i + 1);
      shards[s].at(t, []() {});
      sequential.at(t, []() {});
    }
  }
  sequential.run_until(1.0);
  Simulator global;
  ShardedExecutor exec(sims, &global, kLookahead, 2);
  exec.run(1.0, {});

  std::size_t sharded_peak_sum = 0;
  std::uint64_t sharded_processed = 0;
  for (auto& s : shards) {
    sharded_peak_sum += s.peak_events_pending();
    sharded_processed += s.events_processed();
    EXPECT_EQ(s.events_pending(), 0u);
  }
  EXPECT_EQ(sharded_peak_sum, sequential.peak_events_pending());
  EXPECT_EQ(sharded_peak_sum, kShards * static_cast<std::size_t>(kPerShard));
  EXPECT_EQ(sharded_processed, sequential.events_processed());
}

TEST(ShardedSim, TombstoneCancelFromAnotherShard) {
  // Shard 0 decides (inside its window) to cancel an event pending on
  // shard 1; the cancel itself is applied at the barrier — the only safe
  // place to touch a foreign queue — and must tombstone the victim so it
  // never fires, while the rest of shard 1's schedule is untouched.
  auto run_once = [](std::size_t threads) {
    std::vector<Simulator> shards(2);
    std::vector<Simulator*> sims{&shards[0], &shards[1]};
    bool victim_fired = false;
    int survivors = 0;
    const EventId victim = shards[1].at(5e-3, [&]() { victim_fired = true; });
    shards[1].at(6e-3, [&]() { ++survivors; });

    bool cancel_requested = false;
    bool cancel_result = false;
    bool cancel_applied = false;
    shards[0].at(1e-3, [&]() { cancel_requested = true; });

    ShardedExecutor::Callbacks cb;
    cb.after_window = [&](SimTime) {
      if (cancel_requested && !cancel_applied) {
        cancel_applied = true;
        cancel_result = shards[1].cancel(victim);
        // The tombstone must not inflate shard 1's horizon: the next live
        // event is the survivor at 6e-3, and next_event_time() purges the
        // cancelled heap top to report it.
        EXPECT_DOUBLE_EQ(shards[1].next_event_time(), 6e-3);
      }
    };
    Simulator global;
    ShardedExecutor exec(sims, &global, kLookahead, threads);
    exec.run(0.01, cb);
    EXPECT_TRUE(cancel_applied);
    EXPECT_TRUE(cancel_result);
    EXPECT_FALSE(victim_fired);
    EXPECT_EQ(survivors, 1);
    // Cancelling again after the run is a stale handle: no-op.
    EXPECT_FALSE(shards[1].cancel(victim));
    return std::make_tuple(cancel_result, victim_fired, survivors);
  };
  EXPECT_EQ(run_once(1), run_once(2));
}

TEST(ShardedSim, ClocksAdvanceToEndAndRunIsRepeatable) {
  std::vector<Simulator> shards(3);
  std::vector<Simulator*> sims{&shards[0], &shards[1], &shards[2]};
  shards[1].at(2e-3, []() {});
  Simulator global;
  ShardedExecutor exec(sims, &global, kLookahead, 2);
  exec.run(0.5, {});
  for (const auto& s : shards) EXPECT_DOUBLE_EQ(s.now(), 0.5);
  EXPECT_DOUBLE_EQ(global.now(), 0.5);
  // A second leg continues from where the first stopped (multi-call use:
  // the scenario layer interleaves run() legs with overlay sampling).
  bool fired = false;
  shards[2].at(0.75, [&]() { fired = true; });
  exec.run(1.0, {});
  EXPECT_TRUE(fired);
  for (const auto& s : shards) EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

}  // namespace
