// The determinism contract of the experiment engine (docs/determinism.md):
// thread-count-independent bit-identical aggregation, crash-isolated
// workers that surface the failing seed, torn cache entries read as
// misses, and per-seed telemetry. Tier-1 runs this suite under TSan too
// (CMakePresets.json `tsan` preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "scenario/cache.hpp"
#include "scenario/experiment.hpp"
#include "scenario/run.hpp"
#include "scenario/telemetry.hpp"

namespace {

using namespace p2p;
using scenario::ExperimentError;
using scenario::ExperimentResult;
using scenario::Parameters;
using scenario::RunResult;

Parameters tiny_scenario(std::uint64_t seed = 1) {
  Parameters params;
  params.num_nodes = 16;
  params.duration_s = 200.0;
  params.algorithm = core::AlgorithmKind::kRegular;
  params.seed = seed;
  params.overlay_sample_interval_s = 100.0;
  return params;
}

// Bit-for-bit equality: the contract is exact double equality of every
// serialized moment, not EXPECT_NEAR.
void expect_stat_identical(const stats::RunningStat& a,
                           const stats::RunningStat& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_curve_identical(const stats::SortedCurve& a,
                            const stats::SortedCurve& b, const char* what) {
  EXPECT_EQ(a.runs(), b.runs()) << what;
  ASSERT_EQ(a.points(), b.points()) << what;
  for (std::size_t i = 0; i < a.points(); ++i) {
    expect_stat_identical(a.positions()[i], b.positions()[i], what);
  }
}

void expect_experiment_identical(const ExperimentResult& a,
                                 const ExperimentResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  expect_curve_identical(a.connect_curve, b.connect_curve, "connect_curve");
  expect_curve_identical(a.ping_curve, b.ping_curve, "ping_curve");
  expect_curve_identical(a.query_curve, b.query_curve, "query_curve");
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t k = 0; k < a.ranks.size(); ++k) {
    expect_stat_identical(a.ranks[k].answers_per_request,
                          b.ranks[k].answers_per_request, "answers_per_request");
    expect_stat_identical(a.ranks[k].min_distance, b.ranks[k].min_distance,
                          "min_distance");
    expect_stat_identical(a.ranks[k].min_p2p_hops, b.ranks[k].min_p2p_hops,
                          "min_p2p_hops");
    expect_stat_identical(a.ranks[k].answered_fraction,
                          b.ranks[k].answered_fraction, "answered_fraction");
  }
  expect_stat_identical(a.frames_transmitted, b.frames_transmitted,
                        "frames_transmitted");
  expect_stat_identical(a.energy_consumed_j, b.energy_consumed_j,
                        "energy_consumed_j");
  expect_stat_identical(a.routing_control, b.routing_control,
                        "routing_control");
  expect_stat_identical(a.overlay_clustering, b.overlay_clustering,
                        "overlay_clustering");
  expect_stat_identical(a.overlay_path_length, b.overlay_path_length,
                        "overlay_path_length");
  expect_stat_identical(a.overlay_components, b.overlay_components,
                        "overlay_components");
  expect_stat_identical(a.masters, b.masters, "masters");
  expect_stat_identical(a.slaves, b.slaves, "slaves");
  expect_stat_identical(a.events_processed, b.events_processed,
                        "events_processed");
  expect_stat_identical(a.connections_established, b.connections_established,
                        "connections_established");
  expect_stat_identical(a.connections_closed, b.connections_closed,
                        "connections_closed");
}

TEST(Determinism, ThreadCountDoesNotChangeResults) {
  const Parameters params = tiny_scenario(7);
  const std::size_t seeds = 8;
  const auto sequential = scenario::run_experiment(params, seeds, 1);
  const auto parallel = scenario::run_experiment(params, seeds, 4);
  expect_experiment_identical(sequential, parallel);
}

TEST(Determinism, RepeatedParallelRunsAreIdentical) {
  const Parameters params = tiny_scenario(3);
  const auto a = scenario::run_experiment(params, 6, 3);
  const auto b = scenario::run_experiment(params, 6, 3);
  expect_experiment_identical(a, b);
}

TEST(Determinism, WorkerExceptionNamesFailingSeed) {
  Parameters params = tiny_scenario();
  params.seed = 100;
  const auto run_fn = [](const Parameters& p) -> RunResult {
    if (p.seed == 102) throw std::runtime_error("injected failure");
    return scenario::SimulationRun(p).run();
  };
  try {
    scenario::run_experiment_with(params, 6, /*threads=*/3, run_fn);
    FAIL() << "expected ExperimentError";
  } catch (const ExperimentError& e) {
    EXPECT_EQ(e.seed(), 102U);
    EXPECT_EQ(e.seed_index(), 2U);
    EXPECT_NE(std::string(e.what()).find("seed 102"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos);
  }
}

TEST(Determinism, SequentialWorkerExceptionAlsoSurfaces) {
  const auto run_fn = [](const Parameters& p) -> RunResult {
    if (p.seed == 2) throw std::logic_error("boom");
    return RunResult{};
  };
  EXPECT_THROW(
      scenario::run_experiment_with(tiny_scenario(1), 4, 1, run_fn),
      ExperimentError);
}

TEST(Determinism, CallbackReportsEachSeedOnceOutsideLocks) {
  const Parameters params = tiny_scenario(5);
  std::mutex mutex;
  std::vector<std::size_t> reported;
  scenario::run_experiment(params, 5, 3,
                           [&](std::size_t seed_index, std::size_t total) {
                             EXPECT_EQ(total, 5U);
                             std::scoped_lock lock(mutex);
                             reported.push_back(seed_index);
                           });
  std::sort(reported.begin(), reported.end());
  EXPECT_EQ(reported, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Determinism, TelemetryRecordsEverySeed) {
  const Parameters params = tiny_scenario(11);
  scenario::RunTelemetry telemetry;
  scenario::run_experiment(params, 4, 2, {}, &telemetry);
  ASSERT_EQ(telemetry.per_seed().size(), 4U);
  EXPECT_EQ(telemetry.threads_used(), 2U);
  EXPECT_GT(telemetry.total_wall_seconds(), 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& t = telemetry.per_seed()[i];
    EXPECT_EQ(t.seed_index, i);
    EXPECT_EQ(t.seed, params.seed + i);
    EXPECT_GT(t.events_processed, 0U);
    EXPECT_GT(t.frames_tx, 0U);
    EXPECT_GT(t.peak_queue_depth, 0U);
    EXPECT_GE(t.events_per_sec, 0.0);
    // Memory accounting flows through the telemetry (mega-scale runs use
    // it to verify per-node state stays O(what the run touched)).
    EXPECT_GT(t.net_memory_bytes, 0U);
    EXPECT_GT(t.routing_memory_bytes, 0U);
    EXPECT_GT(t.servent_memory_bytes, 0U);
  }
  const std::string jsonl = telemetry.to_jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"experiment\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"seed\""), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            5U);  // header + 4 seeds
}

// Payload-pool counters are part of the fixed-seed contract: pools are
// per-run, so running the same seeds on 1 worker or 3 must produce the
// same acquisitions / slab growths / peak-live per seed.
TEST(Determinism, PayloadPoolStatsAreThreadCountInvariant) {
  const Parameters params = tiny_scenario(13);
  scenario::RunTelemetry serial;
  scenario::run_experiment(params, 3, 1, {}, &serial);
  scenario::RunTelemetry threaded;
  scenario::run_experiment(params, 3, 3, {}, &threaded);
  ASSERT_EQ(serial.per_seed().size(), 3U);
  ASSERT_EQ(threaded.per_seed().size(), 3U);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = serial.per_seed()[i];
    const auto& b = threaded.per_seed()[i];
    EXPECT_GT(a.payload_acquires, 0U);
    EXPECT_GT(a.payload_peak_live, 0U);
    EXPECT_EQ(a.payload_acquires, b.payload_acquires);
    EXPECT_EQ(a.payload_slab_allocs, b.payload_slab_allocs);
    EXPECT_EQ(a.payload_peak_live, b.payload_peak_live);
    // Capacity-based memory accounting is a pure function of the run's
    // allocation history, so it is thread-count invariant too.
    EXPECT_EQ(a.net_memory_bytes, b.net_memory_bytes);
    EXPECT_EQ(a.routing_memory_bytes, b.routing_memory_bytes);
    EXPECT_EQ(a.servent_memory_bytes, b.servent_memory_bytes);
  }
  // And they reach the manifest.
  const std::string jsonl = serial.to_jsonl();
  EXPECT_NE(jsonl.find("\"payload_acquires\":"), std::string::npos);
}

// Event-queue operation counters are part of the fixed-seed contract too:
// every push, pop, tombstone purge and compaction a run performs is
// model-driven, so 1 worker or 3 must report the same numbers per seed —
// on either queue backend (PR 10).
TEST(Determinism, QueueStatsAreThreadCountInvariant) {
  for (const std::size_t gate : {std::size_t(-1), std::size_t(0)}) {
    Parameters params = tiny_scenario(13);
    params.ladder_queue_min_nodes = gate;  // heap, then forced ladder
    scenario::RunTelemetry serial;
    scenario::run_experiment(params, 3, 1, {}, &serial);
    scenario::RunTelemetry threaded;
    scenario::run_experiment(params, 3, 3, {}, &threaded);
    ASSERT_EQ(serial.per_seed().size(), 3U);
    ASSERT_EQ(threaded.per_seed().size(), 3U);
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& a = serial.per_seed()[i];
      const auto& b = threaded.per_seed()[i];
      EXPECT_GT(a.queue_pushes, 0U);
      EXPECT_GT(a.queue_pops, 0U);
      EXPECT_GE(a.queue_pushes, a.queue_pops);
      EXPECT_EQ(a.queue_pushes, b.queue_pushes);
      EXPECT_EQ(a.queue_pops, b.queue_pops);
      EXPECT_EQ(a.queue_tombstones_purged, b.queue_tombstones_purged);
      EXPECT_EQ(a.queue_compactions, b.queue_compactions);
      EXPECT_EQ(a.queue_ladder_spills, b.queue_ladder_spills);
      EXPECT_EQ(a.queue_ladder_rebuckets, b.queue_ladder_rebuckets);
      EXPECT_EQ(a.queue_peak_raw, b.queue_peak_raw);
      EXPECT_GE(a.queue_peak_raw, a.peak_queue_depth);
    }
    // The block reaches the manifest (non-zero-only emission).
    EXPECT_NE(serial.to_jsonl().find("\"queue_pushes\":"), std::string::npos);
  }
}

class CacheDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/p2p_determinism_cache";
    std::filesystem::remove_all(dir_);
    ::setenv("P2P_BENCH_CACHE", dir_.c_str(), 1);
  }
  void TearDown() override { ::unsetenv("P2P_BENCH_CACHE"); }

  std::string entry_path(const Parameters& params, std::size_t seeds) {
    return scenario::cache_directory() + "/" +
           scenario::cache_key(params, seeds) + ".txt";
  }

  std::string dir_;
};

TEST_F(CacheDirTest, GarbageCacheFileIsAMiss) {
  Parameters params = tiny_scenario();
  std::filesystem::create_directories(dir_);
  std::ofstream(entry_path(params, 2)) << "not a cache entry at all\n";
  ExperimentResult result;
  EXPECT_FALSE(scenario::load_cached(params, 2, &result));
}

TEST_F(CacheDirTest, TruncatedCacheFileIsAMiss) {
  Parameters params = tiny_scenario();
  params.duration_s = 100.0;
  const auto computed = scenario::run_experiment_cached(params, 2, 2);
  ExperimentResult loaded;
  ASSERT_TRUE(scenario::load_cached(params, 2, &loaded));

  // Tear the entry: keep the header and half the payload.
  const std::string path = entry_path(params, 2);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  const std::string full = buf.str();
  std::ofstream(path, std::ios::trunc) << full.substr(0, full.size() / 2);

  EXPECT_FALSE(scenario::load_cached(params, 2, &loaded));
  // And a checksum-valid but bit-flipped payload is also a miss.
  std::string flipped = full;
  flipped[full.size() - 2] = flipped[full.size() - 2] == '1' ? '2' : '1';
  std::ofstream(path, std::ios::trunc) << flipped;
  EXPECT_FALSE(scenario::load_cached(params, 2, &loaded));
}

TEST_F(CacheDirTest, ManifestWrittenNextToCacheEntry) {
  Parameters params = tiny_scenario();
  params.duration_s = 100.0;
  scenario::RunTelemetry telemetry;
  scenario::run_experiment_cached(params, 2, 2, {}, &telemetry);
  const std::string manifest = scenario::manifest_path(params, 2);
  ASSERT_TRUE(std::filesystem::exists(manifest));
  std::ifstream in(manifest);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("\"type\":\"experiment\""), std::string::npos);
  EXPECT_NE(first_line.find(scenario::cache_key(params, 2)),
            std::string::npos);
  EXPECT_EQ(telemetry.cache_key(), scenario::cache_key(params, 2));
}

TEST_F(CacheDirTest, CachedResultRoundTripsBitIdentical) {
  Parameters params = tiny_scenario();
  params.duration_s = 100.0;
  const auto computed = scenario::run_experiment_cached(params, 3, 3);
  ExperimentResult loaded;
  ASSERT_TRUE(scenario::load_cached(params, 3, &loaded));
  EXPECT_EQ(loaded.runs, computed.runs);
  ASSERT_EQ(loaded.connect_curve.points(), computed.connect_curve.points());
  // Serialization goes through text at precision 17, which round-trips
  // IEEE doubles exactly.
  for (std::size_t i = 0; i < loaded.connect_curve.points(); ++i) {
    EXPECT_EQ(loaded.connect_curve.mean_at(i),
              computed.connect_curve.mean_at(i));
  }
  EXPECT_EQ(loaded.frames_transmitted.mean(),
            computed.frames_transmitted.mean());
  EXPECT_EQ(loaded.frames_transmitted.variance(),
            computed.frames_transmitted.variance());
}

// ---- Incremental vs full-rebuild NeighborIndex equivalence -------------
//
// The mega-scale index maintains node buckets incrementally (resampling
// only cell-boundary crossers). Its contract is bit-identical adjacency:
// over any mobility trace, the exact-filtered neighbor relation must equal
// the full-rebuild one at every queried instant. Runs under the
// tsan-determinism preset via this file's filter membership.

/// One world: n random-waypoint nodes on a paper-density square.
struct IndexWorld {
  sim::Simulator sim;
  net::Network network;

  IndexWorld(std::size_t n, bool incremental, double side)
      : network(sim, make_params(incremental, side), sim::RngStream(99)) {
    for (std::size_t i = 0; i < n; ++i) {
      mobility::RandomWaypointParams rwp;
      rwp.region = {side, side};
      rwp.max_speed = 1.0;
      rwp.max_pause = 20.0;
      network.add_node(std::make_unique<mobility::RandomWaypoint>(
          rwp, sim::RngStream(1000 + i)));
    }
  }

  static net::NetworkParams make_params(bool incremental, double side) {
    net::NetworkParams p;
    p.region = {side, side};
    p.incremental_index = incremental;
    p.incremental_index_min_nodes = 0;  // force the mode at any size
    p.max_speed_hint = 1.0;
    return p;
  }
};

void expect_adjacency_identical(std::size_t n, double horizon_s,
                                double step_s) {
  // Paper density: ~50 nodes per 100x100 m.
  const double side = 100.0 * std::sqrt(static_cast<double>(n) / 50.0);
  IndexWorld inc(n, true, side);
  IndexWorld full(n, false, side);
  std::vector<std::vector<net::NodeId>> adj_inc;
  std::vector<std::vector<net::NodeId>> adj_full;
  // Irregular instants (prime-ish stride) so cell-crossing deadlines
  // expire mid-window, not conveniently on query boundaries. Every third
  // step adds a sub-tolerance probe: within a staleness window buckets
  // must stay frozen exactly like the full rebuild's (the candidate-order
  // contract the RNG draw sequence is keyed to), so querying BETWEEN
  // rebuild instants is the regime that actually exercises equivalence.
  int step_no = 0;
  for (double t = step_s; t <= horizon_s;
       t += (++step_no % 3 == 0) ? 0.07 : step_s * 1.37) {
    inc.sim.run_until(t);
    full.sim.run_until(t);
    inc.network.adjacency_snapshot(&adj_inc);
    full.network.adjacency_snapshot(&adj_full);
    ASSERT_EQ(adj_inc.size(), adj_full.size());
    for (std::size_t i = 0; i < adj_inc.size(); ++i) {
      ASSERT_EQ(adj_inc[i], adj_full[i])
          << "node " << i << " at t=" << t << " (n=" << n << ")";
    }
  }
}

TEST(NeighborIndexEquivalence, IncrementalMatchesFullRebuild150) {
  expect_adjacency_identical(150, 120.0, 0.75);
}

TEST(NeighborIndexEquivalence, IncrementalMatchesFullRebuild5k) {
  expect_adjacency_identical(5000, 12.0, 0.5);
}

}  // namespace
