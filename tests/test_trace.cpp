// Packet tracing: writer format round-trip, counter aggregation, network
// integration via the observer hook.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "mobility/model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace {

using namespace p2p;
using trace::Counter;
using trace::EventKind;
using trace::Record;
using trace::Writer;

TEST(Trace, EventCodesMatchNs2Convention) {
  EXPECT_EQ(trace::event_code(EventKind::kTransmit), 's');
  EXPECT_EQ(trace::event_code(EventKind::kDeliver), 'r');
  EXPECT_EQ(trace::event_code(EventKind::kDrop), 'd');
}

TEST(Trace, WriterRendersParsableLines) {
  std::ostringstream os;
  Writer writer(os);
  writer.record({1.5, EventKind::kTransmit, 3, net::kBroadcast, 64});
  writer.record({2.25, EventKind::kDeliver, 7, 3, 64});
  writer.record({3.0, EventKind::kDrop, 3, 9, 128});

  std::istringstream is(os.str());
  std::string line;
  Record record;

  ASSERT_TRUE(std::getline(is, line));
  ASSERT_TRUE(Writer::parse_line(line, &record));
  EXPECT_EQ(record.kind, EventKind::kTransmit);
  EXPECT_DOUBLE_EQ(record.time, 1.5);
  EXPECT_EQ(record.node, 3U);
  EXPECT_EQ(record.peer, net::kBroadcast);
  EXPECT_EQ(record.size_bytes, 64U);

  ASSERT_TRUE(std::getline(is, line));
  ASSERT_TRUE(Writer::parse_line(line, &record));
  EXPECT_EQ(record.kind, EventKind::kDeliver);
  EXPECT_EQ(record.peer, 3U);

  ASSERT_TRUE(std::getline(is, line));
  ASSERT_TRUE(Writer::parse_line(line, &record));
  EXPECT_EQ(record.kind, EventKind::kDrop);
  EXPECT_EQ(record.size_bytes, 128U);
}

TEST(Trace, ParseRejectsGarbage) {
  Record record;
  EXPECT_FALSE(Writer::parse_line("", &record));
  EXPECT_FALSE(Writer::parse_line("x 1 2 3 4", &record));
  EXPECT_FALSE(Writer::parse_line("s 1 2", &record));
  EXPECT_FALSE(Writer::parse_line("s one 2 3 4", &record));
}

TEST(Trace, CounterAggregatesPerKindAndNode) {
  Counter counter(4);
  counter.record({0.0, EventKind::kTransmit, 0, net::kBroadcast, 100});
  counter.record({0.1, EventKind::kDeliver, 1, 0, 100});
  counter.record({0.1, EventKind::kDeliver, 2, 0, 100});
  counter.record({0.2, EventKind::kDrop, 0, 3, 50});
  EXPECT_EQ(counter.count(EventKind::kTransmit), 1U);
  EXPECT_EQ(counter.count(EventKind::kDeliver), 2U);
  EXPECT_EQ(counter.count(EventKind::kDrop), 1U);
  EXPECT_EQ(counter.bytes(EventKind::kDeliver), 200U);
  EXPECT_EQ(counter.node_count(1, EventKind::kDeliver), 1U);
  EXPECT_EQ(counter.node_count(3, EventKind::kDeliver), 0U);
}

TEST(Trace, TeeFansOut) {
  Counter a(2), b(2);
  trace::Tee tee;
  tee.add(&a);
  tee.add(&b);
  tee.record({0.0, EventKind::kTransmit, 0, 1, 10});
  EXPECT_EQ(a.count(EventKind::kTransmit), 1U);
  EXPECT_EQ(b.count(EventKind::kTransmit), 1U);
}

struct NoopPayload final : net::FramePayload {};

TEST(Trace, NetworkObserverSeesTransmitsDeliveriesAndDrops) {
  sim::Simulator sim;
  net::NetworkParams params;
  params.mac.jitter_max_s = 0.0;
  net::Network network(sim, params, sim::RngStream(1));
  const auto a = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{0, 0}));
  const auto b = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{5, 0}));
  const auto far = network.add_node(
      std::make_unique<mobility::StaticModel>(geo::Vec2{90, 90}));

  Counter counter(3);
  trace::NetworkAdapter adapter(counter);
  network.set_observer(&adapter);

  network.broadcast(a, net::make_payload<const NoopPayload>(), 64);
  network.unicast(a, b, net::make_payload<const NoopPayload>(), 32);
  network.unicast(a, far, net::make_payload<const NoopPayload>(), 32);  // drop
  sim.run();

  EXPECT_EQ(counter.count(EventKind::kTransmit), 3U);
  EXPECT_EQ(counter.count(EventKind::kDeliver), 2U);  // bcast->b, unicast->b
  EXPECT_EQ(counter.count(EventKind::kDrop), 1U);
  EXPECT_EQ(counter.node_count(a, EventKind::kTransmit), 3U);
  EXPECT_EQ(counter.node_count(b, EventKind::kDeliver), 2U);

  // Detaching stops recording.
  network.set_observer(nullptr);
  network.broadcast(a, net::make_payload<const NoopPayload>(), 64);
  sim.run();
  EXPECT_EQ(counter.count(EventKind::kTransmit), 3U);
}

TEST(Trace, ObserverMatchesNetworkCounters) {
  sim::Simulator sim;
  net::NetworkParams params;
  net::Network network(sim, params, sim::RngStream(2));
  for (int i = 0; i < 6; ++i) {
    network.add_node(std::make_unique<mobility::StaticModel>(
        geo::Vec2{5.0 * i, 0.0}));
  }
  Counter counter(6);
  trace::NetworkAdapter adapter(counter);
  network.set_observer(&adapter);
  for (net::NodeId n = 0; n < 6; ++n) {
    network.broadcast(n, net::make_payload<const NoopPayload>(), 48);
  }
  sim.run();
  EXPECT_EQ(counter.count(EventKind::kTransmit), network.frames_transmitted());
  EXPECT_EQ(counter.count(EventKind::kDeliver), network.frames_delivered());
}

}  // namespace
