// Thread-count bit-identity of full scenario runs (the PR 7 parallel-DES
// contract, docs/determinism.md): with the shard decomposition pinned,
// sim_threads is pure execution — every RunResult field, down to exact
// doubles, must match between 1 thread and 4 threads. Runs under TSan in
// tier-1 (CMakePresets.json `tsan-determinism` preset, label `psim`).
//
// sim_shards is pinned explicitly in every comparison: it is a MODEL
// parameter (spatial decomposition + per-shard RNG streams), and the
// 0-auto rule derives DIFFERENT values for sim_threads=1 (1 shard) vs
// sim_threads=4 (population-scaled) — comparing those would compare two
// different deterministic schedules, not two executions of one schedule.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "graph/metrics.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"

// ThreadSanitizer multiplies this suite's cost ~15-30x (worse when the
// host has fewer cores than sim_threads), so the TSan build runs shorter
// horizons: same populations, same shard decompositions, same 1-vs-N
// comparison — only the simulated window shrinks.
#if defined(__SANITIZE_THREAD__)
#define P2P_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define P2P_TSAN_BUILD 1
#endif
#endif
#ifndef P2P_TSAN_BUILD
#define P2P_TSAN_BUILD 0
#endif

namespace {

constexpr double kTownDuration = P2P_TSAN_BUILD ? 150.0 : 400.0;
constexpr double kTownSampleInterval = P2P_TSAN_BUILD ? 50.0 : 150.0;
constexpr double kCrowdDuration = P2P_TSAN_BUILD ? 15.0 : 40.0;
constexpr double kCrowdStagger = P2P_TSAN_BUILD ? 5.0 : 10.0;
constexpr double kCrowdSampleInterval = P2P_TSAN_BUILD ? 7.0 : 20.0;

using namespace p2p;
using scenario::FileRankStats;
using scenario::Parameters;
using scenario::RunResult;

void expect_metrics_identical(const graph::SmallWorldMetrics& a,
                              const graph::SmallWorldMetrics& b,
                              const char* what) {
  EXPECT_EQ(a.clustering, b.clustering) << what;
  EXPECT_EQ(a.path_length, b.path_length) << what;
  EXPECT_EQ(a.mean_degree, b.mean_degree) << what;
  EXPECT_EQ(a.vertices, b.vertices) << what;
  EXPECT_EQ(a.edges, b.edges) << what;
  EXPECT_EQ(a.components, b.components) << what;
  EXPECT_EQ(a.largest_component, b.largest_component) << what;
  EXPECT_EQ(a.connected_pair_fraction, b.connected_pair_fraction) << what;
  EXPECT_EQ(a.smallworld_index, b.smallworld_index) << what;
}

void expect_rank_identical(const FileRankStats& a, const FileRankStats& b,
                           std::size_t rank) {
  EXPECT_EQ(a.requests, b.requests) << "rank " << rank;
  EXPECT_EQ(a.answered, b.answered) << "rank " << rank;
  EXPECT_EQ(a.answers_total, b.answers_total) << "rank " << rank;
  EXPECT_EQ(a.sum_min_physical, b.sum_min_physical) << "rank " << rank;
  EXPECT_EQ(a.physical_samples, b.physical_samples) << "rank " << rank;
  EXPECT_EQ(a.sum_min_p2p, b.sum_min_p2p) << "rank " << rank;
  EXPECT_EQ(a.p2p_samples, b.p2p_samples) << "rank " << rank;
}

// Exact (==, not NEAR) comparison of the model-visible world — everything
// except the event-queue *operation* counters, which are additionally
// checked by expect_run_identical. Split out so cross-backend comparisons
// (heap vs ladder event queue) can assert the world is bit-identical while
// purge-timing counters (tombstones, raw peak) legitimately differ.
void expect_model_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.num_members, b.num_members);

  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t m = 0; m < a.counters.size(); ++m) {
    EXPECT_EQ(a.counters[m].received, b.counters[m].received) << "member " << m;
    EXPECT_EQ(a.counters[m].sent, b.counters[m].sent) << "member " << m;
  }

  ASSERT_EQ(a.per_file.size(), b.per_file.size());
  for (std::size_t r = 0; r < a.per_file.size(); ++r) {
    expect_rank_identical(a.per_file[r], b.per_file[r], r + 1);
  }

  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.energy_consumed_j, b.energy_consumed_j);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);

  EXPECT_EQ(a.routing_control_messages, b.routing_control_messages);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.data_dropped, b.data_dropped);

  EXPECT_EQ(a.payload_acquires, b.payload_acquires);
  EXPECT_EQ(a.payload_slab_allocs, b.payload_slab_allocs);
  EXPECT_EQ(a.payload_peak_live, b.payload_peak_live);

  EXPECT_EQ(a.net_memory_bytes, b.net_memory_bytes);
  EXPECT_EQ(a.routing_memory_bytes, b.routing_memory_bytes);
  EXPECT_EQ(a.servent_memory_bytes, b.servent_memory_bytes);

  EXPECT_EQ(a.churn_deaths, b.churn_deaths);
  EXPECT_EQ(a.churn_recoveries, b.churn_recoveries);
  EXPECT_EQ(a.link_blackouts, b.link_blackouts);
  EXPECT_EQ(a.loss_bursts, b.loss_bursts);
  EXPECT_EQ(a.overlay_disrupted_s, b.overlay_disrupted_s);
  EXPECT_EQ(a.overlay_repairs, b.overlay_repairs);
  EXPECT_EQ(a.mean_repair_time_s, b.mean_repair_time_s);
  EXPECT_EQ(a.orphaned_servents, b.orphaned_servents);
  EXPECT_EQ(a.invariant_violations, b.invariant_violations);

  EXPECT_EQ(a.connections_established, b.connections_established);
  EXPECT_EQ(a.connections_closed, b.connections_closed);

  ASSERT_EQ(a.overlay_samples.size(), b.overlay_samples.size());
  for (std::size_t i = 0; i < a.overlay_samples.size(); ++i) {
    expect_metrics_identical(a.overlay_samples[i], b.overlay_samples[i],
                             "overlay_sample");
  }
  expect_metrics_identical(a.overlay_final, b.overlay_final, "overlay_final");
  expect_metrics_identical(a.physical_final, b.physical_final,
                           "physical_final");

  EXPECT_EQ(a.masters, b.masters);
  EXPECT_EQ(a.slaves, b.slaves);
  EXPECT_EQ(a.query_success_rate(), b.query_success_rate());

  // Pushes/pops are model-driven (every schedule and fire), so they are
  // part of the cross-backend contract too.
  EXPECT_EQ(a.queue_pushes, b.queue_pushes);
  EXPECT_EQ(a.queue_pops, b.queue_pops);
}

// Any drift here means the event history itself diverged between thread
// counts: the full model comparison plus the queue operation counters
// (purge/compaction/ladder bookkeeping is deterministic per backend).
void expect_run_identical(const RunResult& a, const RunResult& b) {
  expect_model_identical(a, b);
  EXPECT_EQ(a.queue_tombstones_purged, b.queue_tombstones_purged);
  EXPECT_EQ(a.queue_compactions, b.queue_compactions);
  EXPECT_EQ(a.queue_ladder_spills, b.queue_ladder_spills);
  EXPECT_EQ(a.queue_ladder_rebuckets, b.queue_ladder_rebuckets);
  EXPECT_EQ(a.queue_peak_raw, b.queue_peak_raw);
}

RunResult run_with_threads(Parameters params, std::size_t threads) {
  params.sim_threads = threads;
  scenario::SimulationRun run(params);
  return run.run();
}

Parameters town_scenario() {
  // 150 nodes: the paper's headline population, long enough for overlay
  // build-out, queries, and mobility-driven neighbor churn.
  Parameters params;
  params.num_nodes = 150;
  params.area_width = 1000.0;
  params.area_height = 1000.0;
  params.radio_range = 100.0;
  params.duration_s = kTownDuration;
  params.seed = 7;
  params.sim_shards = 8;  // pinned MODEL: identical for every thread count
  params.overlay_sample_interval_s = kTownSampleInterval;
  return params;
}

Parameters crowd_scenario() {
  // 5000 nodes: exercises the dense-grid index, many shards with real
  // cross-shard traffic, and the per-lane pool accounting at scale. Short
  // wall window keeps this tractable under TSan.
  Parameters params;
  params.num_nodes = 5000;
  params.area_width = 4000.0;
  params.area_height = 4000.0;
  params.radio_range = 120.0;
  params.duration_s = kCrowdDuration;
  params.seed = 11;
  params.sim_shards = 16;
  params.join_stagger_s = kCrowdStagger;
  params.overlay_sample_interval_s = kCrowdSampleInterval;
  return params;
}

TEST(ParallelSim, TownRunBitIdenticalAcrossThreadCounts) {
  const RunResult one = run_with_threads(town_scenario(), 1);
  const RunResult four = run_with_threads(town_scenario(), 4);
  // The run must have actually done something, or identity is vacuous.
  ASSERT_GT(one.frames_delivered, 0u);
  ASSERT_GT(one.connections_established, 0u);
  expect_run_identical(one, four);
}

TEST(ParallelSim, TownRunFaultedBitIdenticalAcrossThreadCounts) {
  Parameters params = town_scenario();
  params.fault.churn_rate_per_hour = 60.0;
  params.fault.mean_downtime_s = 40.0;
  params.fault.blackout_rate_per_hour = 30.0;
  params.fault.burst_rate_per_hour = 20.0;
  params.fault.burst_duration_s = 5.0;
  const RunResult one = run_with_threads(params, 1);
  const RunResult four = run_with_threads(params, 4);
  ASSERT_GT(one.churn_deaths, 0u);
  expect_run_identical(one, four);
}

TEST(ParallelSim, CrowdRunBitIdenticalAcrossThreadCounts) {
  const RunResult one = run_with_threads(crowd_scenario(), 1);
  const RunResult four = run_with_threads(crowd_scenario(), 4);
  ASSERT_GT(one.frames_delivered, 0u);
  expect_run_identical(one, four);
}

TEST(ParallelSim, CrowdRunFaultedBitIdenticalAcrossThreadCounts) {
  Parameters params = crowd_scenario();
  // Low per-node rates: at 5000 nodes even 3/hour over a short window is
  // dozens of deaths — plenty of cross-shard crash/recover traffic without
  // turning the TSan run of this suite into minutes.
  params.fault.churn_rate_per_hour = 3.0;
  params.fault.mean_downtime_s = 30.0;
  params.fault.burst_rate_per_hour = 2.0;
  params.fault.burst_duration_s = 4.0;
  const RunResult one = run_with_threads(params, 1);
  const RunResult four = run_with_threads(params, 4);
  ASSERT_GT(one.churn_deaths, 0u);
  expect_run_identical(one, four);
}

TEST(ParallelSim, ThreadCountBeyondShardsIsStillIdentical) {
  // More threads than shards must clamp, not skew: 8 threads over 8
  // shards vs 3 threads over 8 shards vs 1 thread over 8 shards.
  const RunResult one = run_with_threads(town_scenario(), 1);
  const RunResult three = run_with_threads(town_scenario(), 3);
  const RunResult eight = run_with_threads(town_scenario(), 8);
  expect_run_identical(one, three);
  expect_run_identical(one, eight);
}

TEST(ParallelSim, ShardCountIsAModelParameter) {
  // Changing sim_shards is allowed to (and in practice does) change the
  // schedule — it remaps RNG streams and delivery batching. What it must
  // NOT change is workload conservation: the run completes and reports a
  // sane, fully-counted world. This guards against silently dropping
  // frames at shard boundaries.
  Parameters params = town_scenario();
  params.sim_shards = 4;
  const RunResult four_shards = run_with_threads(params, 2);
  params.sim_shards = 8;
  const RunResult eight_shards = run_with_threads(params, 2);
  for (const RunResult* r : {&four_shards, &eight_shards}) {
    EXPECT_EQ(r->num_nodes, 150u);
    EXPECT_GT(r->frames_delivered, 0u);
    EXPECT_GT(r->connections_established, 0u);
    EXPECT_EQ(r->frames_transmitted == 0,
              r->frames_delivered == 0 && r->frames_lost == 0);
    EXPECT_GT(r->query_success_rate(), 0.0);
  }
}

TEST(ParallelSim, SequentialPathKeepsSingleShard) {
  // Defaults (sim_threads=1, sim_shards=0) must resolve to the legacy
  // single-Simulator path — the byte-compatibility guarantee for every
  // pre-PR-7 config, golden metric, and cache key.
  Parameters params = town_scenario();
  params.sim_shards = 0;
  params.sim_threads = 1;
  EXPECT_EQ(params.effective_sim_shards(), 1u);
  params.sim_threads = 4;
  EXPECT_EQ(params.effective_sim_shards(), 8u);
  params.num_nodes = 10000;
  EXPECT_EQ(params.effective_sim_shards(), 64u);
  params.sim_shards = 12;
  params.sim_threads = 1;
  EXPECT_EQ(params.effective_sim_shards(), 12u);
}

TEST(ParallelSim, TownRunLadderBackendBitIdenticalAcrossThreadsAndBackends) {
  // The ladder event queue under the sharded executor: forcing the gate
  // to 0 puts every shard Simulator on the ladder backend. The PR 10
  // contract is two-dimensional — bit-identical across sim_threads for a
  // fixed backend, AND bit-identical across backends for a fixed thread
  // count (pop order is the strict (time, seq) total order either way).
  const RunResult heap_one = run_with_threads(town_scenario(), 1);
  Parameters ladder = town_scenario();
  ladder.ladder_queue_min_nodes = 0;
  ASSERT_TRUE(ladder.use_ladder_queue());
  const RunResult ladder_one = run_with_threads(ladder, 1);
  const RunResult ladder_four = run_with_threads(ladder, 4);
  ASSERT_GT(ladder_one.frames_delivered, 0u);
  ASSERT_GT(ladder_one.queue_ladder_spills, 0u);
  expect_run_identical(ladder_one, ladder_four);
  expect_model_identical(heap_one, ladder_one);
}

TEST(ParallelSim, CrowdRunLadderBackendBitIdenticalAcrossThreadCounts) {
  // Mega-scale-shaped coverage for the ladder under real cross-shard
  // traffic (5000 nodes, 16 shards) — the configuration tsan-determinism
  // runs to race-check the backend the 100k tier uses.
  Parameters ladder = crowd_scenario();
  ladder.ladder_queue_min_nodes = 0;
  const RunResult one = run_with_threads(ladder, 1);
  const RunResult four = run_with_threads(ladder, 4);
  ASSERT_GT(one.frames_delivered, 0u);
  ASSERT_GT(one.queue_ladder_spills, 0u);
  expect_run_identical(one, four);
}

}  // namespace
