// DupCache: first-sighting semantics and TTL expiry.
#include <gtest/gtest.h>

#include "net/dup_cache.hpp"

namespace {

using p2p::net::DupCache;

TEST(DupCache, FirstInsertIsFresh) {
  DupCache cache(10.0);
  EXPECT_TRUE(cache.insert(1, 100, 0.0));
  EXPECT_TRUE(cache.contains(1, 100, 0.0));
}

TEST(DupCache, SecondInsertIsDuplicate) {
  DupCache cache(10.0);
  EXPECT_TRUE(cache.insert(1, 100, 0.0));
  EXPECT_FALSE(cache.insert(1, 100, 1.0));
  EXPECT_FALSE(cache.insert(1, 100, 9.9));
}

TEST(DupCache, DistinguishesOriginsAndIds) {
  DupCache cache(10.0);
  EXPECT_TRUE(cache.insert(1, 100, 0.0));
  EXPECT_TRUE(cache.insert(2, 100, 0.0));
  EXPECT_TRUE(cache.insert(1, 101, 0.0));
  EXPECT_FALSE(cache.insert(2, 100, 0.0));
}

TEST(DupCache, ExpiryAllowsReinsert) {
  DupCache cache(10.0);
  EXPECT_TRUE(cache.insert(1, 100, 0.0));
  EXPECT_FALSE(cache.insert(1, 100, 9.99));
  EXPECT_TRUE(cache.insert(1, 100, 10.0));  // ttl elapsed
}

TEST(DupCache, ExpiryIsPerEntry) {
  DupCache cache(10.0);
  cache.insert(1, 1, 0.0);
  cache.insert(1, 2, 5.0);
  EXPECT_TRUE(cache.insert(1, 1, 10.0));   // first expired
  EXPECT_FALSE(cache.insert(1, 2, 10.0));  // second still fresh
  EXPECT_TRUE(cache.insert(1, 2, 15.0));
}

TEST(DupCache, SizeReflectsLiveEntries) {
  DupCache cache(10.0);
  cache.insert(1, 1, 0.0);
  cache.insert(1, 2, 0.0);
  EXPECT_EQ(cache.size(), 2U);
  cache.insert(1, 3, 20.0);  // expires the first two
  EXPECT_EQ(cache.size(), 1U);
}

TEST(DupCache, ContainsDoesNotInsert) {
  DupCache cache(10.0);
  EXPECT_FALSE(cache.contains(5, 5, 0.0));
  EXPECT_TRUE(cache.insert(5, 5, 0.0));
}

// Regression: contains() used to ignore the TTL entirely — an entry past
// its TTL (but not yet lazily evicted by an insert) was still reported as
// seen, suppressing legitimate ID reuse.
TEST(DupCache, ContainsRespectsTtlWithoutEviction) {
  DupCache cache(10.0);
  cache.insert(1, 100, 0.0);
  EXPECT_TRUE(cache.contains(1, 100, 5.0));
  EXPECT_TRUE(cache.contains(1, 100, 9.99));
  // No insert has run since, so the entry is physically still present —
  // but it must read as expired.
  EXPECT_FALSE(cache.contains(1, 100, 10.0));
  EXPECT_FALSE(cache.contains(1, 100, 1000.0));
  // And the ID is reusable.
  EXPECT_TRUE(cache.insert(1, 100, 10.0));
  EXPECT_TRUE(cache.contains(1, 100, 10.0));
}

}  // namespace
