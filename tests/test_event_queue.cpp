// EventQueue: ordering, FIFO tie-breaking, cancellation, and a randomized
// model check against a reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "core/params.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using p2p::sim::EventId;
using p2p::sim::EventQueue;
using p2p::sim::kTimeNever;

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0U);
  EXPECT_EQ(queue.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInPushOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue queue;
  const EventId early = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, CancelReturnsTrueOnlyForLiveEvents) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // already cancelled
  EXPECT_FALSE(queue.cancel(p2p::sim::kInvalidEventId));
  EXPECT_FALSE(queue.cancel(99999));
}

TEST(EventQueue, CancelledEventNeverPops) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.push(1.0, [&] { fired = true; });
  queue.push(2.0, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1U);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  queue.pop();
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, IdsAreUniqueAndNonZero) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(queue.push(1.0, [] {}));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_NE(ids.front(), p2p::sim::kInvalidEventId);
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue queue;
  const EventId a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.size(), 2U);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1U);
  queue.pop();
  EXPECT_EQ(queue.size(), 0U);
}

TEST(EventQueue, TotalScheduledIsMonotonic) {
  EventQueue queue;
  EXPECT_EQ(queue.total_scheduled(), 0U);
  queue.push(1.0, [] {});
  const EventId b = queue.push(1.0, [] {});
  queue.cancel(b);
  EXPECT_EQ(queue.total_scheduled(), 2U);
}

// --- Targeted lock-in tests for cancel/pop semantics (captured before the
// --- tombstone/slot-generation rewrite; the rewrite must keep them green).

TEST(EventQueue, CancelThenPopSkipsToNextLiveEvent) {
  EventQueue queue;
  std::vector<int> order;
  const EventId head = queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  queue.push(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(queue.cancel(head));
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  auto popped = queue.pop();
  EXPECT_DOUBLE_EQ(popped.time, 2.0);
  popped.fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(queue.size(), 1U);
}

TEST(EventQueue, CancelAlreadyFiredIdNeverHitsALaterEvent) {
  EventQueue queue;
  const EventId fired = queue.push(1.0, [] {});
  queue.pop();
  // A new event scheduled after the fire must be untouchable through the
  // stale handle, even if the queue recycles internal storage.
  bool second_fired = false;
  queue.push(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(queue.cancel(fired));
  EXPECT_EQ(queue.size(), 1U);
  queue.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, InterleavedFifoTiesSurviveCancellation) {
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(queue.push(5.0, [&order, i] { order.push_back(i); }));
  }
  queue.cancel(ids[1]);
  queue.cancel(ids[4]);
  // New pushes at the same timestamp go to the back of the FIFO tie.
  queue.push(5.0, [&order] { order.push_back(6); });
  queue.push(5.0, [&order] { order.push_back(7); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6, 7}));
}

TEST(EventQueue, PeakAccountingCountsOnlyLiveEvents) {
  EventQueue queue;
  const EventId a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  queue.push(3.0, [] {});
  EXPECT_EQ(queue.peak_size(), 3U);
  queue.cancel(a);
  // Cancel does not retroactively lower the high-water mark...
  EXPECT_EQ(queue.peak_size(), 3U);
  // ...and a push replacing a cancelled event does not raise it either.
  queue.push(4.0, [] {});
  EXPECT_EQ(queue.size(), 3U);
  EXPECT_EQ(queue.peak_size(), 3U);
  queue.push(5.0, [] {});
  EXPECT_EQ(queue.peak_size(), 4U);
}

TEST(EventQueue, PopAfterMassCancelFindsTheSurvivor) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(queue.push(static_cast<double>(i), [] {}));
  }
  bool survivor_fired = false;
  const EventId survivor = queue.push(50.5, [&] { survivor_fired = true; });
  for (const EventId id : ids) EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1U);
  EXPECT_DOUBLE_EQ(queue.next_time(), 50.5);
  auto popped = queue.pop();
  EXPECT_EQ(popped.id, survivor);
  popped.fn();
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(queue.empty());
}

// Property: under random interleavings of push/cancel/pop, the queue
// behaves exactly like a sorted reference model — on both backends.
class EventQueueModelTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, p2p::sim::QueueBackend>> {};

TEST_P(EventQueueModelTest, MatchesReferenceModel) {
  p2p::sim::RngStream rng(std::get<0>(GetParam()));
  EventQueue queue(std::get<1>(GetParam()));
  // Reference: map from (time, push order) to id, mirroring live events.
  // Ties at equal time break by push order — the FIFO contract — NOT by id
  // value (ids are opaque handles and may be recycled internally).
  std::map<std::pair<double, std::uint64_t>, EventId> model;
  std::uint64_t push_counter = 0;
  std::vector<EventId> live_ids;

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55) {
      const double t = rng.uniform(0.0, 100.0);
      const EventId id = queue.push(t, [] {});
      model.emplace(std::make_pair(t, push_counter++), id);
      live_ids.push_back(id);
    } else if (roll < 0.75 && !live_ids.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const EventId id = live_ids[pick];
      const bool was_live =
          std::any_of(model.begin(), model.end(),
                      [id](const auto& kv) { return kv.second == id; });
      EXPECT_EQ(queue.cancel(id), was_live);
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second == id) {
          model.erase(it);
          break;
        }
      }
    } else if (!model.empty()) {
      ASSERT_FALSE(queue.empty());
      const auto popped = queue.pop();
      const auto expect = model.begin();
      EXPECT_DOUBLE_EQ(popped.time, expect->first.first);
      EXPECT_EQ(popped.id, expect->second);
      model.erase(expect);
    }
    ASSERT_EQ(queue.size(), model.size());
    if (!model.empty()) {
      EXPECT_DOUBLE_EQ(queue.next_time(), model.begin()->first.first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EventQueueModelTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 42, 1234),
                       ::testing::Values(p2p::sim::QueueBackend::kHeap,
                                         p2p::sim::QueueBackend::kLadder)));

// --- Ladder backend: differential equivalence with the 4-ary heap. The
// --- strict (time, seq) total order fixes the pop sequence, so the two
// --- backends must agree element for element — including FIFO among
// --- equal-time ties — under tens of thousands of randomized ops.

TEST(EventQueueLadder, PopSequenceIsIdenticalToHeap) {
  // Named stream so the op sequence is pinned independently of any other
  // RNG consumer (docs/determinism.md).
  p2p::sim::RngManager rngs(20260809);
  p2p::sim::RngStream rng = rngs.stream("queue-differential");
  EventQueue heap(p2p::sim::QueueBackend::kHeap);
  EventQueue ladder(p2p::sim::QueueBackend::kLadder);
  std::vector<EventId> heap_ids, ladder_ids;  // parallel live handles

  std::uint64_t pops = 0, ties = 0;
  double recent_time = 1.0;
  for (int step = 0; step < 50000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.50) {
      // Mostly fresh times; 15% reuse the last pushed time to force
      // same-instant FIFO ties through both backends.
      double t = rng.uniform(0.0, 10000.0);
      if (rng.uniform01() < 0.15) {
        t = recent_time;
        ++ties;
      }
      recent_time = t;
      heap_ids.push_back(heap.push(t, [] {}));
      ladder_ids.push_back(ladder.push(t, [] {}));
    } else if (roll < 0.72 && !heap_ids.empty()) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(heap_ids.size()) - 1));
      EXPECT_EQ(heap.cancel(heap_ids[pick]), ladder.cancel(ladder_ids[pick]));
      heap_ids.erase(heap_ids.begin() + static_cast<std::ptrdiff_t>(pick));
      ladder_ids.erase(ladder_ids.begin() +
                       static_cast<std::ptrdiff_t>(pick));
    } else if (!heap.empty()) {
      ASSERT_FALSE(ladder.empty());
      const auto a = heap.pop();
      const auto b = ladder.pop();
      ASSERT_EQ(a.time, b.time) << "pop " << pops;
      ASSERT_EQ(a.id, b.id) << "pop " << pops;
      ++pops;
    }
    ASSERT_EQ(heap.size(), ladder.size());
    ASSERT_EQ(heap.next_time(), ladder.next_time());
  }
  // Drain the remainder in lockstep.
  while (!heap.empty()) {
    ASSERT_FALSE(ladder.empty());
    const auto a = heap.pop();
    const auto b = ladder.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.id, b.id);
    ++pops;
  }
  EXPECT_TRUE(ladder.empty());
  EXPECT_GT(pops, 10000U);
  EXPECT_GT(ties, 1000U);
  // The workload is deep enough to exercise the rung machinery, not just
  // the bottom tier.
  EXPECT_GT(ladder.stats().ladder_spills, 0U);
  EXPECT_EQ(heap.stats().pops, ladder.stats().pops);
}

// A monotone-time workload shaped like the simulator's (pop one, push a
// few slightly ahead) keeps the two backends in lockstep as well.
TEST(EventQueueLadder, SteadyStateSimShapedWorkloadMatchesHeap) {
  p2p::sim::RngManager rngs(7);
  p2p::sim::RngStream rng = rngs.stream("queue-steady");
  EventQueue heap(p2p::sim::QueueBackend::kHeap);
  EventQueue ladder(p2p::sim::QueueBackend::kLadder);
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform(0.0, 10.0);
    heap.push(t, [] {});
    ladder.push(t, [] {});
  }
  for (int i = 0; i < 30000; ++i) {
    const auto a = heap.pop();
    const auto b = ladder.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.id, b.id);
    const int fanout = static_cast<int>(rng.uniform_int(0, 2));
    for (int f = 0; f < fanout; ++f) {
      // Mix of short frame-like delays and long timer-like delays.
      const double delay = rng.uniform01() < 0.8
                               ? rng.uniform(1e-4, 1e-3)
                               : rng.uniform(1.0, 30.0);
      heap.push(a.time + delay, [] {});
      ladder.push(a.time + delay, [] {});
    }
    ASSERT_EQ(heap.size(), ladder.size());
  }
  EXPECT_GT(ladder.stats().ladder_spills, 0U);
}

// --- Tombstone compaction (both backends): a cancel-heavy run must not
// --- carry an unbounded dead fraction until tombstones surface at the
// --- front — the threshold sweep reclaims them eagerly.

class EventQueueCompactionTest
    : public ::testing::TestWithParam<p2p::sim::QueueBackend> {};

TEST_P(EventQueueCompactionTest, MassCancelTriggersCompaction) {
  EventQueue queue(GetParam());
  std::vector<EventId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(queue.push(static_cast<double>(i % 97), [] {}));
  }
  EXPECT_EQ(queue.peak_raw_size(), 4096U);
  // Cancel everything except one survivor in the middle.
  bool survivor_fired = false;
  const EventId survivor = queue.push(42.5, [&] { survivor_fired = true; });
  for (const EventId id : ids) EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1U);
  // The sweep fired well before the drain (dead > live threshold) and
  // reclaimed the tombstones without waiting for pops.
  EXPECT_GT(queue.stats().compactions, 0U);
  EXPECT_GT(queue.stats().tombstones_purged, 4000U);
  auto popped = queue.pop();
  EXPECT_EQ(popped.id, survivor);
  popped.fn();
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(queue.empty());
}

TEST_P(EventQueueCompactionTest, RawPeakBoundsLivePeak) {
  EventQueue queue(GetParam());
  p2p::sim::RngStream rng(99);
  std::vector<EventId> ids;
  for (int step = 0; step < 20000; ++step) {
    if (ids.size() < 64 || rng.uniform01() < 0.5) {
      ids.push_back(queue.push(rng.uniform(0.0, 100.0), [] {}));
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      queue.cancel(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_GE(queue.peak_raw_size(), queue.peak_size());
  // Compaction keeps raw storage within a small multiple of live: dead
  // can never exceed max(live, threshold) right after a sweep, so the raw
  // peak is bounded by twice the live peak plus the trigger slack.
  EXPECT_LE(queue.peak_raw_size(), 2 * queue.peak_size() + 128);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueCompactionTest,
                         ::testing::Values(p2p::sim::QueueBackend::kHeap,
                                           p2p::sim::QueueBackend::kLadder));

// --- Full-scenario equivalence: a shrunk megascale-shaped run (paper
// --- density, AODV, staggered joins — the `megascale --smoke` recipe at
// --- a tier-1-friendly population) must report the identical world on
// --- both backends. The full-size equivalence is enforced by bench_guard:
// --- megascale.smoke (10k nodes) selects the ladder through the default
// --- gate, and its pinned counters were recorded on the heap.

TEST(EventQueueLadder, MegascaleShapedScenarioMatchesHeapBackend) {
  p2p::scenario::Parameters params;
  params.algorithm = p2p::core::AlgorithmKind::kRegular;
  params.num_nodes = 2000;
  const double side = 100.0 * std::sqrt(2000.0 / 50.0);
  params.area_width = side;
  params.area_height = side;
  params.duration_s = 30.0;
  params.seed = 7;
  params.routing_protocol = p2p::scenario::RoutingProtocol::kAodv;
  params.join_stagger_s = 3.0;
  params.overlay_sample_interval_s = 0.0;

  params.ladder_queue_min_nodes = std::size_t(-1);  // force the heap
  ASSERT_FALSE(params.use_ladder_queue());
  p2p::scenario::SimulationRun heap_run(params);
  const p2p::scenario::RunResult heap = heap_run.run();

  params.ladder_queue_min_nodes = 0;  // force the ladder
  ASSERT_TRUE(params.use_ladder_queue());
  p2p::scenario::SimulationRun ladder_run(params);
  const p2p::scenario::RunResult ladder = ladder_run.run();

  ASSERT_GT(heap.frames_delivered, 0U);
  ASSERT_GT(ladder.queue_ladder_spills, 0U);
  EXPECT_EQ(heap.events_processed, ladder.events_processed);
  EXPECT_EQ(heap.frames_transmitted, ladder.frames_transmitted);
  EXPECT_EQ(heap.frames_delivered, ladder.frames_delivered);
  EXPECT_EQ(heap.frames_lost, ladder.frames_lost);
  EXPECT_EQ(heap.peak_queue_depth, ladder.peak_queue_depth);
  EXPECT_EQ(heap.queue_pushes, ladder.queue_pushes);
  EXPECT_EQ(heap.queue_pops, ladder.queue_pops);
  EXPECT_EQ(heap.energy_consumed_j, ladder.energy_consumed_j);
  EXPECT_EQ(heap.routing_control_messages, ladder.routing_control_messages);
  EXPECT_EQ(heap.connections_established, ladder.connections_established);
  EXPECT_EQ(heap.connections_closed, ladder.connections_closed);
  EXPECT_EQ(heap.query_success_rate(), ladder.query_success_rate());
}

}  // namespace
