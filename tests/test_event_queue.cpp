// EventQueue: ordering, FIFO tie-breaking, cancellation, and a randomized
// model check against a reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace {

using p2p::sim::EventId;
using p2p::sim::EventQueue;
using p2p::sim::kTimeNever;

TEST(EventQueue, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0U);
  EXPECT_EQ(queue.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.push(3.0, [&] { order.push_back(3); });
  queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInPushOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue queue;
  const EventId early = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, CancelReturnsTrueOnlyForLiveEvents) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // already cancelled
  EXPECT_FALSE(queue.cancel(p2p::sim::kInvalidEventId));
  EXPECT_FALSE(queue.cancel(99999));
}

TEST(EventQueue, CancelledEventNeverPops) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.push(1.0, [&] { fired = true; });
  queue.push(2.0, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 1U);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  queue.pop();
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, IdsAreUniqueAndNonZero) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(queue.push(1.0, [] {}));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_NE(ids.front(), p2p::sim::kInvalidEventId);
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  EventQueue queue;
  const EventId a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.size(), 2U);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1U);
  queue.pop();
  EXPECT_EQ(queue.size(), 0U);
}

TEST(EventQueue, TotalScheduledIsMonotonic) {
  EventQueue queue;
  EXPECT_EQ(queue.total_scheduled(), 0U);
  queue.push(1.0, [] {});
  const EventId b = queue.push(1.0, [] {});
  queue.cancel(b);
  EXPECT_EQ(queue.total_scheduled(), 2U);
}

// --- Targeted lock-in tests for cancel/pop semantics (captured before the
// --- tombstone/slot-generation rewrite; the rewrite must keep them green).

TEST(EventQueue, CancelThenPopSkipsToNextLiveEvent) {
  EventQueue queue;
  std::vector<int> order;
  const EventId head = queue.push(1.0, [&] { order.push_back(1); });
  queue.push(2.0, [&] { order.push_back(2); });
  queue.push(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(queue.cancel(head));
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  auto popped = queue.pop();
  EXPECT_DOUBLE_EQ(popped.time, 2.0);
  popped.fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(queue.size(), 1U);
}

TEST(EventQueue, CancelAlreadyFiredIdNeverHitsALaterEvent) {
  EventQueue queue;
  const EventId fired = queue.push(1.0, [] {});
  queue.pop();
  // A new event scheduled after the fire must be untouchable through the
  // stale handle, even if the queue recycles internal storage.
  bool second_fired = false;
  queue.push(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(queue.cancel(fired));
  EXPECT_EQ(queue.size(), 1U);
  queue.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, InterleavedFifoTiesSurviveCancellation) {
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(queue.push(5.0, [&order, i] { order.push_back(i); }));
  }
  queue.cancel(ids[1]);
  queue.cancel(ids[4]);
  // New pushes at the same timestamp go to the back of the FIFO tie.
  queue.push(5.0, [&order] { order.push_back(6); });
  queue.push(5.0, [&order] { order.push_back(7); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6, 7}));
}

TEST(EventQueue, PeakAccountingCountsOnlyLiveEvents) {
  EventQueue queue;
  const EventId a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  queue.push(3.0, [] {});
  EXPECT_EQ(queue.peak_size(), 3U);
  queue.cancel(a);
  // Cancel does not retroactively lower the high-water mark...
  EXPECT_EQ(queue.peak_size(), 3U);
  // ...and a push replacing a cancelled event does not raise it either.
  queue.push(4.0, [] {});
  EXPECT_EQ(queue.size(), 3U);
  EXPECT_EQ(queue.peak_size(), 3U);
  queue.push(5.0, [] {});
  EXPECT_EQ(queue.peak_size(), 4U);
}

TEST(EventQueue, PopAfterMassCancelFindsTheSurvivor) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(queue.push(static_cast<double>(i), [] {}));
  }
  bool survivor_fired = false;
  const EventId survivor = queue.push(50.5, [&] { survivor_fired = true; });
  for (const EventId id : ids) EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1U);
  EXPECT_DOUBLE_EQ(queue.next_time(), 50.5);
  auto popped = queue.pop();
  EXPECT_EQ(popped.id, survivor);
  popped.fn();
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(queue.empty());
}

// Property: under random interleavings of push/cancel/pop, the queue
// behaves exactly like a sorted reference model.
class EventQueueModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModelTest, MatchesReferenceModel) {
  p2p::sim::RngStream rng(GetParam());
  EventQueue queue;
  // Reference: map from (time, push order) to id, mirroring live events.
  // Ties at equal time break by push order — the FIFO contract — NOT by id
  // value (ids are opaque handles and may be recycled internally).
  std::map<std::pair<double, std::uint64_t>, EventId> model;
  std::uint64_t push_counter = 0;
  std::vector<EventId> live_ids;

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55) {
      const double t = rng.uniform(0.0, 100.0);
      const EventId id = queue.push(t, [] {});
      model.emplace(std::make_pair(t, push_counter++), id);
      live_ids.push_back(id);
    } else if (roll < 0.75 && !live_ids.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const EventId id = live_ids[pick];
      const bool was_live =
          std::any_of(model.begin(), model.end(),
                      [id](const auto& kv) { return kv.second == id; });
      EXPECT_EQ(queue.cancel(id), was_live);
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second == id) {
          model.erase(it);
          break;
        }
      }
    } else if (!model.empty()) {
      ASSERT_FALSE(queue.empty());
      const auto popped = queue.pop();
      const auto expect = model.begin();
      EXPECT_DOUBLE_EQ(popped.time, expect->first.first);
      EXPECT_EQ(popped.id, expect->second);
      model.erase(expect);
    }
    ASSERT_EQ(queue.size(), model.size());
    if (!model.empty()) {
      EXPECT_DOUBLE_EQ(queue.next_time(), model.begin()->first.first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1234));

}  // namespace
