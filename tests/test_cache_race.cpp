// Cross-process contention on the per-seed result cache.
//
// The serving daemon's whole dedup story rests on two properties of the
// checksummed cache entry (scenario/cache.cpp): racing writers publish by
// atomic rename so exactly one complete file wins, and a reader that
// catches a torn/truncated/corrupt file treats it as a miss rather than
// serving garbage. These tests exercise both with REAL processes — two
// forked writers hammering the same (config, seed) entry while the parent
// reads concurrently — not just interleaved threads.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "scenario/cache.hpp"
#include "scenario/parameters.hpp"

namespace {

using namespace p2p;

class CacheRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/p2pd_cache_race_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    ::setenv("P2P_BENCH_CACHE", dir_.c_str(), 1);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static scenario::Parameters params_for(std::uint64_t seed) {
    scenario::Parameters p;
    p.num_nodes = 25;
    p.duration_s = 200.0;
    p.seed = seed;
    return p;
  }

  std::string dir_;
};

TEST_F(CacheRaceTest, RacingWritersAlwaysLeaveOneValidEntry) {
  const auto params = params_for(42);
  const std::string line_a = "{\"type\":\"seed\",\"seed\":42,\"writer\":\"a\"}";
  const std::string line_b = "{\"type\":\"seed\",\"seed\":42,\"writer\":\"b\"}";

  // Two child processes store conflicting content for the same key as
  // fast as they can; distinct pids give them distinct temp files, so
  // every publish is a whole-file rename.
  const auto spawn_writer = [&](const std::string& line) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      for (int i = 0; i < 300; ++i) {
        scenario::store_cached_seed_line(params, line);
      }
      _exit(0);
    }
    return pid;
  };
  const pid_t writer_a = spawn_writer(line_a);
  ASSERT_GE(writer_a, 0);
  const pid_t writer_b = spawn_writer(line_b);
  ASSERT_GE(writer_b, 0);

  // Concurrent reads for as long as the writers run (yielding so the
  // children actually get scheduled on a single-core host): each read
  // must be a miss or one of the two complete lines — never a tear,
  // never a mix.
  bool a_alive = true, b_alive = true;
  while (a_alive || b_alive) {
    std::string line;
    if (scenario::load_cached_seed_line(params, &line)) {
      EXPECT_TRUE(line == line_a || line == line_b)
          << "torn read: " << line;
    }
    int status = 0;
    if (a_alive && ::waitpid(writer_a, &status, WNOHANG) == writer_a) {
      a_alive = false;
      EXPECT_EQ(status, 0);
    }
    if (b_alive && ::waitpid(writer_b, &status, WNOHANG) == writer_b) {
      b_alive = false;
      EXPECT_EQ(status, 0);
    }
    ::usleep(100);
  }

  // After the dust settles: exactly one valid entry, one of the two.
  std::string line;
  ASSERT_TRUE(scenario::load_cached_seed_line(params, &line));
  EXPECT_TRUE(line == line_a || line == line_b);

  // No leftover temp files — every publish either renamed or cleaned up.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".txt") << entry.path();
  }
  EXPECT_EQ(files, 1U);
}

TEST_F(CacheRaceTest, TornOrCorruptFilesReadAsMiss) {
  const auto params = params_for(7);
  const std::string line = "{\"type\":\"seed\",\"seed\":7,\"events\":123}";
  scenario::store_cached_seed_line(params, line);
  const std::string path = scenario::seed_cache_path(params);

  std::string stored;
  ASSERT_TRUE(scenario::load_cached_seed_line(params, &stored));
  EXPECT_EQ(stored, line);

  // Read the published bytes so corruptions below are realistic slices.
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.rfind("p2pmanet-cache seed-v1 ", 0), 0U)
      << "entry header changed — bump the version instead";

  const auto overwrite = [&](const std::string& content) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << content;
  };

  // Truncated mid-payload (a crashed writer that bypassed the rename).
  overwrite(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(scenario::load_cached_seed_line(params, &stored));

  // Flipped payload byte: checksum must catch it.
  std::string flipped = bytes;
  flipped[flipped.size() - 3] ^= 0x20;
  overwrite(flipped);
  EXPECT_FALSE(scenario::load_cached_seed_line(params, &stored));

  // Garbage header.
  overwrite("not a cache entry at all\n");
  EXPECT_FALSE(scenario::load_cached_seed_line(params, &stored));

  // Empty file.
  overwrite("");
  EXPECT_FALSE(scenario::load_cached_seed_line(params, &stored));

  // A fresh store repairs the entry.
  scenario::store_cached_seed_line(params, line);
  ASSERT_TRUE(scenario::load_cached_seed_line(params, &stored));
  EXPECT_EQ(stored, line);
}

TEST_F(CacheRaceTest, DistinctSeedsGetDistinctEntries) {
  const auto p1 = params_for(1);
  const auto p2 = params_for(2);
  EXPECT_NE(scenario::seed_cache_path(p1), scenario::seed_cache_path(p2));
  scenario::store_cached_seed_line(p1, "line-one");
  std::string line;
  EXPECT_FALSE(scenario::load_cached_seed_line(p2, &line))
      << "seed 2 hit seed 1's entry";
  ASSERT_TRUE(scenario::load_cached_seed_line(p1, &line));
  EXPECT_EQ(line, "line-one");
}

}  // namespace
