// Hybrid algorithm (§6.2): qualifier-driven master election, slave
// capacity, master-master links, and the reconfiguration rules.
#include <gtest/gtest.h>

#include "p2p_test_world.hpp"

namespace {

using namespace p2ptest;
using p2p::core::AlgorithmKind;
using p2p::core::ConnKind;
using p2p::core::HybridState;

TEST(HybridAlg, StrongerQualifierBecomesMaster) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kHybrid, /*qualifier=*/10);
  world.add_servent(b, AlgorithmKind::kHybrid, /*qualifier=*/1);
  world.start_all();
  world.sim().run_until(120.0);
  EXPECT_EQ(world.hybrid(a).state(), HybridState::kMaster);
  EXPECT_EQ(world.hybrid(b).state(), HybridState::kSlave);
  ASSERT_TRUE(world.symmetric(a, b));
  EXPECT_EQ(world.servent(a).connections().find(b)->kind, ConnKind::kSlave);
  EXPECT_EQ(world.servent(b).connections().find(a)->kind, ConnKind::kSlave);
  // The slave initiated (it asked to join) and therefore pings.
  EXPECT_TRUE(world.servent(b).connections().find(a)->initiator);
}

TEST(HybridAlg, QualifierTieBrokenByNodeId) {
  World world;
  const auto a = world.add_node(50, 50);
  const auto b = world.add_node(55, 50);
  world.add_servent(a, AlgorithmKind::kHybrid, 5);
  world.add_servent(b, AlgorithmKind::kHybrid, 5);
  world.start_all();
  world.sim().run_until(120.0);
  // Higher node id wins ties; exactly one master, one slave.
  EXPECT_EQ(world.hybrid(b).state(), HybridState::kMaster);
  EXPECT_EQ(world.hybrid(a).state(), HybridState::kSlave);
}

TEST(HybridAlg, MaxnslavesIsEnforced) {
  p2p::core::P2pParams params;
  params.maxnslaves = 2;
  World world(params);
  const auto ids = make_cluster(world, 6);
  // One strong node, five weak ones.
  world.add_servent(ids[0], AlgorithmKind::kHybrid, 100);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    world.add_servent(ids[i], AlgorithmKind::kHybrid,
                      static_cast<std::uint32_t>(i));
  }
  world.start_all();
  world.sim().run_until(300.0);
  EXPECT_LE(world.hybrid(ids[0]).slave_count(), 2U);
}

TEST(HybridAlg, LonelyNodeEntitlesItselfMaster) {
  World world;
  const auto a = world.add_node(50, 50);
  world.add_servent(a, AlgorithmKind::kHybrid, 7);
  world.start_all();
  world.sim().run_until(200.0);
  EXPECT_EQ(world.hybrid(a).state(), HybridState::kMaster);
}

TEST(HybridAlg, MastersInterconnectWithMasterLinks) {
  p2p::core::P2pParams params;
  params.maxnslaves = 1;
  World world(params);
  // Two clusters 2 hops apart; each elects a master, masters then link up.
  const auto a1 = world.add_node(40, 50);
  const auto a2 = world.add_node(44, 50);
  const auto b1 = world.add_node(56, 50);
  const auto b2 = world.add_node(60, 50);
  world.add_node(50, 50);  // relay (not in p2p)
  world.add_servent(a1, AlgorithmKind::kHybrid, 100);
  world.add_servent(a2, AlgorithmKind::kHybrid, 1);
  world.add_servent(b1, AlgorithmKind::kHybrid, 90);
  world.add_servent(b2, AlgorithmKind::kHybrid, 2);
  world.start_all();
  world.sim().run_until(600.0);
  EXPECT_EQ(world.hybrid(a1).state(), HybridState::kMaster);
  EXPECT_EQ(world.hybrid(b1).state(), HybridState::kMaster);
  EXPECT_EQ(world.servent(a1).connections().count(ConnKind::kMaster), 1U);
  EXPECT_TRUE(world.symmetric(a1, b1));
}

TEST(HybridAlg, MasterWithoutSlavesRevertsToInitial) {
  p2p::core::P2pParams params;
  params.timer_initial = 5.0;    // capture cycle: floods at ~0, 5, 10 -> master ~15
  params.maxtimer_master = 60.0;
  World world(params);
  // A lone node cycles initial -> master -> (no slaves for 60 s) ->
  // initial -> ... We verify the revert by watching capture floods resume.
  const auto a = world.add_node(10, 10);
  world.add_servent(a, AlgorithmKind::kHybrid, 5);
  world.start_all();
  world.sim().run_until(20.0);
  EXPECT_EQ(world.hybrid(a).state(), HybridState::kMaster);
  const auto captures_as_master =
      world.servent(a).counters().sent_of(p2p::core::MsgType::kCapture);
  world.sim().run_until(400.0);
  const auto captures_later =
      world.servent(a).counters().sent_of(p2p::core::MsgType::kCapture);
  EXPECT_GT(captures_later, captures_as_master);
}

TEST(HybridAlg, SlaveLosingItsMasterRejoins) {
  World world;
  const auto master1 = world.add_node(50, 50);
  const auto master2 = world.add_node(56, 50);
  const auto weak = world.add_node(53, 53);
  world.add_servent(master1, AlgorithmKind::kHybrid, 100);
  world.add_servent(master2, AlgorithmKind::kHybrid, 90);
  world.add_servent(weak, AlgorithmKind::kHybrid, 1);
  world.start_all();
  world.sim().run_until(200.0);
  ASSERT_EQ(world.hybrid(weak).state(), HybridState::kSlave);
  const auto first_master = world.servent(weak).connections().peers()[0];
  world.network().set_failed(first_master, true);
  world.sim().run_until(1200.0);
  // The slave fell back to initial and attached to the surviving strong
  // node (which may itself have cycled initial->master meanwhile).
  EXPECT_EQ(world.hybrid(weak).state(), HybridState::kSlave);
  const auto peers = world.servent(weak).connections().peers();
  ASSERT_EQ(peers.size(), 1U);
  EXPECT_NE(peers[0], first_master);
}

TEST(HybridAlg, SlavesTalkOnlyToTheirMaster) {
  World world;
  const auto ids = make_cluster(world, 5);
  world.add_servent(ids[0], AlgorithmKind::kHybrid, 100);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    world.add_servent(ids[i], AlgorithmKind::kHybrid,
                      static_cast<std::uint32_t>(i));
  }
  world.start_all();
  world.sim().run_until(400.0);
  for (const auto id : ids) {
    if (world.hybrid(id).state() != HybridState::kSlave) continue;
    const auto& conns = world.servent(id).connections();
    EXPECT_EQ(conns.size(), 1U) << "slave " << id << " has extra links";
    EXPECT_EQ(conns.count(ConnKind::kSlave), conns.size());
  }
}

TEST(HybridAlg, RolesPartitionTheCluster) {
  World world;
  const auto ids = make_cluster(world, 8);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    world.add_servent(ids[i], AlgorithmKind::kHybrid,
                      static_cast<std::uint32_t>(i + 1));
  }
  world.start_all();
  world.sim().run_until(600.0);
  std::size_t masters = 0, slaves = 0, initial = 0;
  for (const auto id : ids) {
    switch (world.hybrid(id).state()) {
      case HybridState::kMaster: ++masters; break;
      case HybridState::kSlave: ++slaves; break;
      default: ++initial; break;
    }
  }
  EXPECT_GE(masters, 1U);
  EXPECT_GE(slaves, 3U);  // 8 nodes, <= 3 slaves per master
  // Slaves' masters must actually be masters.
  for (const auto id : ids) {
    if (world.hybrid(id).state() != HybridState::kSlave) continue;
    const auto master = world.servent(id).connections().peers()[0];
    EXPECT_EQ(world.hybrid(master).state(), HybridState::kMaster)
        << "slave " << id << " attached to a non-master";
  }
}

}  // namespace
