// util: string helpers and the Config store.
#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/strings.hpp"

namespace {

using namespace p2p::util;

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("\t\n x \r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("  8  "), 8);
  EXPECT_FALSE(parse_int("x"));
  EXPECT_FALSE(parse_int("4.2"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("12abc"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*parse_double("7"), 7.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.0x"));
}

TEST(Strings, ParseBool) {
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("YES"), true);
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool("on"), true);
  EXPECT_EQ(parse_bool("false"), false);
  EXPECT_EQ(parse_bool("No"), false);
  EXPECT_EQ(parse_bool("0"), false);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_FALSE(parse_bool("maybe"));
}

TEST(Strings, ToLowerAndJoin) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(format("%s", "plain"), "plain");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Config, SetAndTypedGet) {
  Config config;
  config.set("a", "42");
  config.set("b", "3.5");
  config.set("c", "true");
  config.set("d", "text");
  EXPECT_EQ(config.get_int("a"), 42);
  EXPECT_DOUBLE_EQ(*config.get_double("b"), 3.5);
  EXPECT_EQ(config.get_bool("c"), true);
  EXPECT_EQ(config.get_string("d"), "text");
  EXPECT_FALSE(config.get_int("missing"));
  EXPECT_FALSE(config.get_int("d"));  // not a number
}

TEST(Config, Fallbacks) {
  Config config;
  config.set("x", "5");
  EXPECT_EQ(config.get_int_or("x", 9), 5);
  EXPECT_EQ(config.get_int_or("y", 9), 9);
  EXPECT_DOUBLE_EQ(config.get_double_or("y", 1.5), 1.5);
  EXPECT_EQ(config.get_bool_or("y", true), true);
  EXPECT_EQ(config.get_string_or("y", "dflt"), "dflt");
}

TEST(Config, ParseIniBasics) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_ini("a = 1\n# comment\n; also comment\n\nb=two\n",
                               &error))
      << error;
  EXPECT_EQ(config.get_int("a"), 1);
  EXPECT_EQ(config.get_string("b"), "two");
  EXPECT_EQ(config.size(), 2U);
}

TEST(Config, ParseIniSections) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_ini("top=1\n[net]\nrange = 10\n[p2p]\nttl=6\n",
                               &error))
      << error;
  EXPECT_EQ(config.get_int("top"), 1);
  EXPECT_EQ(config.get_int("net.range"), 10);
  EXPECT_EQ(config.get_int("p2p.ttl"), 6);
}

TEST(Config, ParseIniRejectsMalformedLines) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.parse_ini("novalue\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(config.parse_ini("[unclosed\n", &error));
  EXPECT_FALSE(config.parse_ini("=5\n", &error));
}

TEST(Config, ParseOverride) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_override("num_nodes=150", &error)) << error;
  EXPECT_EQ(config.get_int("num_nodes"), 150);
  ASSERT_TRUE(config.parse_override(" spaced = value ", &error));
  EXPECT_EQ(config.get_string("spaced"), "value");
  EXPECT_FALSE(config.parse_override("noequals", &error));
  EXPECT_FALSE(config.parse_override("=bare", &error));
}

TEST(Config, KeysSortedAndContains) {
  Config config;
  config.set("zebra", "1");
  config.set("alpha", "2");
  EXPECT_TRUE(config.contains("zebra"));
  EXPECT_FALSE(config.contains("missing"));
  EXPECT_EQ(config.keys(), (std::vector<std::string>{"alpha", "zebra"}));
}

TEST(Config, LaterSetWins) {
  Config config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get_int("k"), 2);
  EXPECT_EQ(config.size(), 1U);
}

}  // namespace
