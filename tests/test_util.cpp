// util: string helpers and the Config store.
#include <gtest/gtest.h>

#include "scenario/parameters.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace {

using namespace p2p::util;

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("\t\n x \r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("  8  "), 8);
  EXPECT_FALSE(parse_int("x"));
  EXPECT_FALSE(parse_int("4.2"));
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("12abc"));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*parse_double("7"), 7.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("1.0x"));
}

TEST(Strings, ParseBool) {
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("YES"), true);
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool("on"), true);
  EXPECT_EQ(parse_bool("false"), false);
  EXPECT_EQ(parse_bool("No"), false);
  EXPECT_EQ(parse_bool("0"), false);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_FALSE(parse_bool("maybe"));
}

TEST(Strings, ToLowerAndJoin) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(format("%s", "plain"), "plain");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Config, SetAndTypedGet) {
  Config config;
  config.set("a", "42");
  config.set("b", "3.5");
  config.set("c", "true");
  config.set("d", "text");
  EXPECT_EQ(config.get_int("a"), 42);
  EXPECT_DOUBLE_EQ(*config.get_double("b"), 3.5);
  EXPECT_EQ(config.get_bool("c"), true);
  EXPECT_EQ(config.get_string("d"), "text");
  EXPECT_FALSE(config.get_int("missing"));
  EXPECT_FALSE(config.get_int("d"));  // not a number
}

TEST(Config, Fallbacks) {
  Config config;
  config.set("x", "5");
  EXPECT_EQ(config.get_int_or("x", 9), 5);
  EXPECT_EQ(config.get_int_or("y", 9), 9);
  EXPECT_DOUBLE_EQ(config.get_double_or("y", 1.5), 1.5);
  EXPECT_EQ(config.get_bool_or("y", true), true);
  EXPECT_EQ(config.get_string_or("y", "dflt"), "dflt");
}

TEST(Config, ParseIniBasics) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_ini("a = 1\n# comment\n; also comment\n\nb=two\n",
                               &error))
      << error;
  EXPECT_EQ(config.get_int("a"), 1);
  EXPECT_EQ(config.get_string("b"), "two");
  EXPECT_EQ(config.size(), 2U);
}

TEST(Config, ParseIniSections) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_ini("top=1\n[net]\nrange = 10\n[p2p]\nttl=6\n",
                               &error))
      << error;
  EXPECT_EQ(config.get_int("top"), 1);
  EXPECT_EQ(config.get_int("net.range"), 10);
  EXPECT_EQ(config.get_int("p2p.ttl"), 6);
}

TEST(Config, ParseIniRejectsMalformedLines) {
  Config config;
  std::string error;
  EXPECT_FALSE(config.parse_ini("novalue\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(config.parse_ini("[unclosed\n", &error));
  EXPECT_FALSE(config.parse_ini("=5\n", &error));
}

TEST(Config, IniThenHardenedApplyRejectsBadScenarioInput) {
  // The daemon feeds INI-shaped overrides through the same two-stage
  // pipeline as files and the CLI: Config stays schema-free (any
  // well-formed key=value parses), and scenario::Parameters::apply is
  // where unknown keys and out-of-range values must die with a named
  // error instead of silently keeping defaults. Pin the contract at this
  // seam: parse succeeds, apply rejects.
  Config config;
  std::string error;
  ASSERT_TRUE(
      config.parse_ini("num_nodes = 30\nnum_nodez = 40\n", &error)) << error;
  const std::string err = p2p::scenario::Parameters{}.apply(config);
  ASSERT_NE(err, "");
  EXPECT_NE(err.find("num_nodez"), std::string::npos) << err;

  Config bad_value;
  ASSERT_TRUE(bad_value.parse_ini("duration_s = -10\n", &error)) << error;
  EXPECT_NE(p2p::scenario::Parameters{}.apply(bad_value), "");

  Config not_a_number;
  ASSERT_TRUE(not_a_number.parse_ini("radio_range = far\n", &error)) << error;
  const std::string err2 = p2p::scenario::Parameters{}.apply(not_a_number);
  ASSERT_NE(err2, "");
  EXPECT_NE(err2.find("radio_range"), std::string::npos) << err2;
  EXPECT_NE(err2.find("far"), std::string::npos) << err2;
}

TEST(Config, ParseOverride) {
  Config config;
  std::string error;
  ASSERT_TRUE(config.parse_override("num_nodes=150", &error)) << error;
  EXPECT_EQ(config.get_int("num_nodes"), 150);
  ASSERT_TRUE(config.parse_override(" spaced = value ", &error));
  EXPECT_EQ(config.get_string("spaced"), "value");
  EXPECT_FALSE(config.parse_override("noequals", &error));
  EXPECT_FALSE(config.parse_override("=bare", &error));
}

TEST(Config, KeysSortedAndContains) {
  Config config;
  config.set("zebra", "1");
  config.set("alpha", "2");
  EXPECT_TRUE(config.contains("zebra"));
  EXPECT_FALSE(config.contains("missing"));
  EXPECT_EQ(config.keys(), (std::vector<std::string>{"alpha", "zebra"}));
}

TEST(Config, LaterSetWins) {
  Config config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get_int("k"), 2);
  EXPECT_EQ(config.size(), 1U);
}

// ---- util/json.hpp: the daemon's wire-format reader ---------------------

TEST(Json, ParsesScalarsObjectsAndArrays) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(
      " {\"a\": 1.5, \"b\": \"x\\n\\u0041\", \"c\": [true, null, -2]} ", &v,
      &error))
      << error;
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
  EXPECT_EQ(v.find("a")->raw, "1.5");  // raw span preserved for splicing
  EXPECT_EQ(v.find("b")->string, "x\nA");
  const JsonValue* c = v.find("c");
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array.size(), 3U);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_TRUE(c->array[1].is_null());
  EXPECT_DOUBLE_EQ(c->array[2].number, -2.0);
}

TEST(Json, AsUintGuardsIntegralNonNegative) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json("[7, 0, -1, 1.5, \"7\", 1e17]", &v, &error));
  EXPECT_EQ(v.array[0].as_uint(), 7ULL);
  EXPECT_EQ(v.array[1].as_uint(), 0ULL);
  EXPECT_FALSE(v.array[2].as_uint().has_value());  // negative
  EXPECT_FALSE(v.array[3].as_uint().has_value());  // fractional
  EXPECT_FALSE(v.array[4].as_uint().has_value());  // string
  EXPECT_FALSE(v.array[5].as_uint().has_value());  // above 2^53
}

TEST(Json, RejectsHostileInputWithOffsets) {
  const char* cases[] = {
      "",            "{",         "{\"a\":}",   "[1,]",
      "{\"a\" 1}",   "tru",       "1 2",        "\"unterminated",
      "{\"a\":1}}",  "nan",       "inf",        "\"bad \\q escape\"",
  };
  for (const char* text : cases) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parse_json(text, &v, &error)) << "accepted: " << text;
    EXPECT_NE(error.find("offset"), std::string::npos) << text;
  }
  // Nesting past max_depth must fail cleanly, not overflow the stack.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "[";
  JsonValue v;
  std::string error;
  EXPECT_FALSE(parse_json(deep, &v, &error));
}

TEST(Json, DuplicateKeysLastWinsAndQuoteRoundTrips) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json("{\"k\":1,\"k\":2}", &v, &error)) << error;
  ASSERT_NE(v.find("k"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("k")->number, 2.0);

  EXPECT_EQ(json_quote("a\"b\\c\n\x01"), "\"a\\\"b\\\\c\\n\\u0001\"");
}

}  // namespace
