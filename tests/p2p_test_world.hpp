// Shared mini-world builder for the P2P algorithm tests: static or
// scripted nodes at explicit positions, full routing stack, one servent
// per node, everything deterministic.
#pragma once

#include <memory>
#include <vector>

#include "content/catalog.hpp"
#include "core/factory.hpp"
#include "core/hybrid.hpp"
#include "mobility/model.hpp"
#include "mobility/trace.hpp"
#include "net/network.hpp"
#include "routing/aodv.hpp"
#include "routing/flood.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace p2ptest {

using namespace p2p;

struct RecordedRequest {
  core::FileId file;
  int answers;
  int min_physical;
  int min_p2p;
};

class TestRecorder final : public core::QueryRecorder {
 public:
  void on_request_complete(core::FileId file, int answers, int min_physical,
                           int min_p2p) override {
    requests.push_back({file, answers, min_physical, min_p2p});
  }
  std::vector<RecordedRequest> requests;
};

/// A hand-positioned world where every node runs the same algorithm.
class World {
 public:
  explicit World(core::P2pParams p2p = {}, double area = 400.0)
      : p2p_params_(p2p), rngs_(12345) {
    // Queries only run for servents that are given a placement, so tests
    // opt in by calling set_placement.
    net::NetworkParams params;
    params.region = {area, area};
    params.mac.jitter_max_s = 0.001;
    network_ = std::make_unique<net::Network>(sim_, params, rngs_.stream("mac"));
  }

  /// Add a node (static). Returns its id. Call before finalize().
  net::NodeId add_node(double x, double y) {
    return add_node(std::make_unique<mobility::StaticModel>(geo::Vec2{x, y}));
  }

  net::NodeId add_node(std::unique_ptr<mobility::MobilityModel> model) {
    const net::NodeId id = network_->add_node(std::move(model));
    aodv_.push_back(std::make_unique<routing::AodvAgent>(
        sim_, *network_, id, routing::AodvParams{}));
    flood_.push_back(std::make_unique<routing::FloodService>(
        sim_, *network_, id, aodv_.back().get()));
    return id;
  }

  /// Create a servent on node `id`. Qualifier only matters for Hybrid.
  core::Servent& add_servent(net::NodeId id, core::AlgorithmKind kind,
                             std::uint32_t qualifier = 0) {
    core::ServentContext ctx;
    ctx.sim = &sim_;
    ctx.net = network_.get();
    ctx.routing = aodv_[id].get();
    ctx.flood = flood_[id].get();
    ctx.self = id;
    servents_.resize(std::max<std::size_t>(servents_.size(), id + 1));
    servents_[id] = core::make_servent(
        kind, ctx, p2p_params_, rngs_.stream("servent", id), qualifier);
    return *servents_[id];
  }

  /// Start every servent at t = now (staggered by 10 ms to break ties).
  void start_all() {
    double offset = 0.0;
    for (auto& servent : servents_) {
      if (!servent) continue;
      core::Servent* raw = servent.get();
      sim_.after(offset, [raw] { raw->start(); });
      offset += 0.01;
    }
  }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }
  core::Servent& servent(net::NodeId id) { return *servents_[id]; }
  core::HybridServent& hybrid(net::NodeId id) {
    return static_cast<core::HybridServent&>(*servents_[id]);
  }
  routing::AodvAgent& aodv(net::NodeId id) { return *aodv_[id]; }
  routing::FloodService& flood(net::NodeId id) { return *flood_[id]; }

  bool connected(net::NodeId a, net::NodeId b) {
    return servents_[a]->connections().connected(b);
  }
  bool symmetric(net::NodeId a, net::NodeId b) {
    return connected(a, b) && connected(b, a);
  }

  core::P2pParams& p2p_params() { return p2p_params_; }

 private:
  core::P2pParams p2p_params_;
  sim::RngManager rngs_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<routing::AodvAgent>> aodv_;
  std::vector<std::unique_ptr<routing::FloodService>> flood_;
  std::vector<std::unique_ptr<core::Servent>> servents_;
};

/// A line of `n` nodes spaced `spacing` metres apart (default: in radio
/// range of immediate neighbors only).
inline std::vector<net::NodeId> make_line(World& world, std::size_t n,
                                          double spacing = 8.0) {
  std::vector<net::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(
        world.add_node(5.0 + spacing * static_cast<double>(i), 50.0));
  }
  return ids;
}

/// A tight cluster where everyone hears everyone.
inline std::vector<net::NodeId> make_cluster(World& world, std::size_t n,
                                             double cx = 50.0,
                                             double cy = 50.0) {
  std::vector<net::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(world.add_node(cx + static_cast<double>(i % 3),
                                 cy + static_cast<double>(i / 3)));
  }
  return ids;
}

}  // namespace p2ptest
