// Property tests for the deterministic fault-injection subsystem
// (src/fault): plan compilation is a pure function of the seed, faulted
// experiments stay bit-identical across thread counts, crash-then-recover
// of every node lets the improved algorithms re-form a connected overlay
// (while Basic's asymmetric references never re-form a symmetric one,
// matching the paper's motivation), a reborn node's duplicate caches are
// purged, and a golden moderate-churn run locks the new churn metrics.
//
// Regenerate the golden block after an intentional behavior change with:
//   P2P_PRINT_GOLDEN=1 ./tests/test_fault
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "fault/params.hpp"
#include "fault/plan.hpp"
#include "net/dup_cache.hpp"
#include "p2p_test_world.hpp"
#include "scenario/experiment.hpp"
#include "scenario/run.hpp"
#include "sim/rng.hpp"

namespace {

using namespace p2p;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;
using scenario::ExperimentResult;
using scenario::Parameters;

// ---------------------------------------------------------------- plan

fault::FaultParams stress_faults() {
  fault::FaultParams fp;
  fp.churn_rate_per_hour = 20.0;
  fp.mean_downtime_s = 40.0;
  fp.blackout_rate_per_hour = 30.0;
  fp.blackout_duration_s = 20.0;
  fp.burst_rate_per_hour = 12.0;
  fp.burst_duration_s = 8.0;
  fp.burst_loss_probability = 0.5;
  return fp;
}

TEST(FaultPlan, SameSeedCompilesIdenticalPlan) {
  sim::RngManager a(99), b(99), c(100);
  const FaultPlan pa = FaultPlan::compile(stress_faults(), 20, 600.0, a);
  const FaultPlan pb = FaultPlan::compile(stress_faults(), 20, 600.0, b);
  const FaultPlan pc = FaultPlan::compile(stress_faults(), 20, 600.0, c);
  ASSERT_GT(pa.size(), 0U);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa.events()[i] == pb.events()[i]) << "event " << i;
  }
  const bool same_as_other_seed =
      pa.size() == pc.size() &&
      std::equal(pa.events().begin(), pa.events().end(), pc.events().begin());
  EXPECT_FALSE(same_as_other_seed);
}

TEST(FaultPlan, ScheduleIsWellFormed) {
  sim::RngManager rngs(7);
  const std::size_t n = 12;
  const double horizon = 900.0;
  const FaultPlan plan = FaultPlan::compile(stress_faults(), n, horizon, rngs);
  ASSERT_GT(plan.size(), 0U);

  std::unordered_map<net::NodeId, FaultKind> last_churn;
  bool burst_active = false;
  double prev_time = 0.0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.time, prev_time);  // sorted
    prev_time = e.time;
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, horizon);
    switch (e.kind) {
      case FaultKind::kNodeCrash: {
        ASSERT_LT(e.a, n);
        const auto it = last_churn.find(e.a);
        EXPECT_TRUE(it == last_churn.end() ||
                    it->second == FaultKind::kNodeRecover)
            << "two crashes in a row for node " << e.a;
        last_churn[e.a] = e.kind;
        break;
      }
      case FaultKind::kNodeRecover: {
        ASSERT_LT(e.a, n);
        const auto it = last_churn.find(e.a);
        ASSERT_TRUE(it != last_churn.end() &&
                    it->second == FaultKind::kNodeCrash)
            << "recovery without a preceding crash for node " << e.a;
        last_churn[e.a] = e.kind;
        break;
      }
      case FaultKind::kLinkBlackout:
        ASSERT_LT(e.a, n);
        ASSERT_LT(e.b, n);
        EXPECT_NE(e.a, e.b);
        EXPECT_GT(e.value, 0.0);  // duration
        break;
      case FaultKind::kLossBurstStart:
        EXPECT_FALSE(burst_active) << "nested loss burst";
        burst_active = true;
        EXPECT_EQ(e.value, 0.5);  // burst_loss_probability
        break;
      case FaultKind::kLossBurstEnd:
        EXPECT_TRUE(burst_active) << "burst end without start";
        burst_active = false;
        break;
    }
  }
}

TEST(FaultPlan, DisabledParamsProduceEmptyPlan) {
  sim::RngManager rngs(1);
  EXPECT_TRUE(FaultPlan::compile(fault::FaultParams{}, 50, 3600.0, rngs)
                  .empty());
  EXPECT_TRUE(FaultPlan::compile(stress_faults(), 50, 0.0, rngs).empty());
  EXPECT_TRUE(FaultPlan::compile(stress_faults(), 0, 3600.0, rngs).empty());
}

// ---------------------------------------------------- crash purges caches

TEST(FaultCrash, DupCacheReplayAfterClearIsFresh) {
  net::DupCache cache;
  EXPECT_TRUE(cache.insert(7, 1, 10.0));
  EXPECT_FALSE(cache.insert(7, 1, 11.0));  // duplicate while remembered
  cache.clear();                           // node crash
  // The reborn node must treat the same (origin, id) as unseen — with a
  // stale cache it would silently drop the first flood it should forward.
  EXPECT_TRUE(cache.insert(7, 1, 12.0));
}

struct TestPayload final : net::AppPayload {
  std::size_t size_bytes() const noexcept override { return 16; }
};

TEST(FaultCrash, RebornNodeForwardsFloodsAgain) {
  p2ptest::World world;
  p2ptest::make_line(world, 5);  // only adjacent nodes are in radio range
  std::vector<int> received(5, 0);
  for (net::NodeId i = 0; i < 5; ++i) {
    world.flood(i).set_receive_handler(
        [&received, i](net::NodeId, net::AppPayloadPtr, int) {
          ++received[i];
        });
  }

  world.flood(0).flood(net::make_payload<const TestPayload>(), 4);
  world.sim().run();
  EXPECT_EQ(received[4], 1);
  EXPECT_GT(world.flood(2).dup_cache().size(), 0U);
  EXPECT_GT(world.aodv(2).table().all().size(), 0U);  // reverse-route hints

  // Crash node 2: network down, volatile protocol state dropped.
  world.network().set_failed(2, true);
  world.flood(2).on_crash();
  world.aodv(2).reset();
  EXPECT_EQ(world.flood(2).dup_cache().size(), 0U);
  EXPECT_EQ(world.aodv(2).rreq_cache().size(), 0U);
  EXPECT_EQ(world.aodv(2).table().all().size(), 0U);

  // While node 2 is down the line is cut: nodes 3/4 are unreachable.
  world.flood(0).flood(net::make_payload<const TestPayload>(), 4);
  world.sim().run();
  EXPECT_EQ(received[1], 2);
  EXPECT_EQ(received[3], 1);
  EXPECT_EQ(received[4], 1);

  // Reborn: the next flood must be forwarded across node 2 again.
  world.network().set_failed(2, false);
  world.flood(0).flood(net::make_payload<const TestPayload>(), 4);
  world.sim().run();
  EXPECT_EQ(received[2], 2);  // down during the second flood
  EXPECT_EQ(received[3], 2);
  EXPECT_EQ(received[4], 2);
}

TEST(FaultCrash, DeadNodeStaysSilentWhileSpatiallyIndexed) {
  // The NeighborIndex is a position-only candidate pruner: it keeps
  // indexing crashed nodes (nothing to purge on crash/recover), and the
  // network's alive() filter at transmit/delivery time is what guarantees
  // a dead node receives nothing. Lock that division of labor.
  p2ptest::World world;
  world.add_node(10.0, 10.0);
  world.add_node(15.0, 10.0);
  std::vector<int> received(2, 0);
  for (net::NodeId i = 0; i < 2; ++i) {
    world.flood(i).set_receive_handler(
        [&received, i](net::NodeId, net::AppPayloadPtr, int) {
          ++received[i];
        });
  }
  world.flood(0).flood(net::make_payload<const TestPayload>(), 1);
  world.sim().run();
  ASSERT_EQ(received[1], 1);  // index built, link works

  world.network().set_failed(1, true);
  world.flood(0).flood(net::make_payload<const TestPayload>(), 1);
  world.sim().run();
  EXPECT_EQ(received[1], 1);  // still a spatial candidate, yet silent

  world.network().set_failed(1, false);
  world.flood(0).flood(net::make_payload<const TestPayload>(), 1);
  world.sim().run();
  EXPECT_EQ(received[1], 2);  // rebirth needs no index surgery either
}

// ------------------------------------------- thread-count reproducibility

void expect_stat_identical(const stats::RunningStat& a,
                           const stats::RunningStat& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_faulted_results_identical(const ExperimentResult& a,
                                      const ExperimentResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  expect_stat_identical(a.frames_transmitted, b.frames_transmitted,
                        "frames_transmitted");
  expect_stat_identical(a.energy_consumed_j, b.energy_consumed_j,
                        "energy_consumed_j");
  expect_stat_identical(a.routing_control, b.routing_control,
                        "routing_control");
  expect_stat_identical(a.connections_established, b.connections_established,
                        "connections_established");
  expect_stat_identical(a.connections_closed, b.connections_closed,
                        "connections_closed");
  expect_stat_identical(a.churn_deaths, b.churn_deaths, "churn_deaths");
  expect_stat_identical(a.query_success_rate, b.query_success_rate,
                        "query_success_rate");
  expect_stat_identical(a.overlay_disrupted_s, b.overlay_disrupted_s,
                        "overlay_disrupted_s");
  expect_stat_identical(a.mean_repair_time_s, b.mean_repair_time_s,
                        "mean_repair_time_s");
  expect_stat_identical(a.orphaned_servents, b.orphaned_servents,
                        "orphaned_servents");
  expect_stat_identical(a.invariant_violations, b.invariant_violations,
                        "invariant_violations");
}

Parameters faulted_scenario() {
  Parameters params;
  params.num_nodes = 50;
  params.duration_s = 300.0;
  params.seed = 21;
  params.algorithm = core::AlgorithmKind::kRegular;
  params.fault.churn_rate_per_hour = 24.0;
  params.fault.mean_downtime_s = 45.0;
  params.fault.blackout_rate_per_hour = 40.0;
  params.fault.burst_rate_per_hour = 20.0;
  params.fault.burst_duration_s = 10.0;
  params.invariant_check_interval_s = 25.0;
  params.overlay_sample_interval_s = 100.0;
  return params;
}

TEST(FaultDeterminism, ThreadCountDoesNotChangeFaultedResults) {
  const Parameters params = faulted_scenario();
  const ExperimentResult one = scenario::run_experiment(params, 4, 1);
  const ExperimentResult two = scenario::run_experiment(params, 4, 2);
  const ExperimentResult eight = scenario::run_experiment(params, 4, 8);
  expect_faulted_results_identical(one, two);
  expect_faulted_results_identical(one, eight);
  // The scenario must actually have exercised the fault machinery, and the
  // invariant checker must stay silent on registered (injected) faults.
  EXPECT_GT(one.churn_deaths.mean(), 0.0);
  EXPECT_EQ(one.invariant_violations.mean(), 0.0);
}

// ------------------------------------------------- crash-recover repair

Parameters recovery_scenario(core::AlgorithmKind kind) {
  Parameters params;
  params.num_nodes = 10;
  params.p2p_fraction = 1.0;  // every node is a member
  params.area_width = 25.0;
  params.area_height = 25.0;
  params.mobile = false;  // repair must come from the overlay, not motion
  params.duration_s = 10000.0;
  // Seed chosen (by scanning) so the physical graph is one component and
  // all three improved algorithms re-form the overlay within the repair
  // windows below. The property is not seed-universal: once every node
  // sits at maxnconn the overlay can settle into two saturated cliques
  // that no probe can join (nobody has spare capacity to answer), so a
  // crash schedule that lands in such an equilibrium stays split.
  params.seed = 10;
  params.algorithm = kind;
  params.p2p.enable_queries = false;
  params.overlay_sample_interval_s = 0.0;
  return params;
}

/// Connectivity over *mutual* references: an edge requires both endpoints
/// to hold a connection to each other. This is the property the improved
/// algorithms' 3-way handshake guarantees and their maintenance repairs;
/// Basic's unilateral references carry no such promise.
bool mutual_overlay_connected(scenario::SimulationRun& run) {
  const std::size_t m = run.member_count();
  if (m == 0) return false;
  std::vector<std::vector<std::size_t>> adj(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const net::NodeId a = run.member_node(i);
      const net::NodeId b = run.member_node(j);
      if (run.servent(i).connections().connected(b) &&
          run.servent(j).connections().connected(a)) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  std::vector<char> seen(m, 0);
  std::vector<std::size_t> queue{0};
  seen[0] = 1;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const std::size_t v = queue.back();
    queue.pop_back();
    for (const std::size_t w : adj[v]) {
      if (seen[w] != 0) continue;
      seen[w] = 1;
      ++reached;
      queue.push_back(w);
    }
  }
  return reached == m;
}

/// Crash and later recover every member, one at a time, with a generous
/// repair window after each rebirth.
void crash_recover_every_member(scenario::SimulationRun& run) {
  auto& sim = run.simulator();
  for (std::size_t idx = 0; idx < run.member_count(); ++idx) {
    const net::NodeId id = run.member_node(idx);
    const double t = sim.now();
    run.crash_node(id);
    sim.run_until(t + 40.0);
    run.recover_node(id);
    sim.run_until(t + 240.0);
  }
  sim.run_until(sim.now() + 200.0);  // final settle
}

void expect_overlay_restored(core::AlgorithmKind kind) {
  scenario::SimulationRun run(recovery_scenario(kind));
  run.build();
  run.simulator().run_until(200.0);
  ASSERT_TRUE(mutual_overlay_connected(run))
      << "overlay never formed before any fault was injected";
  crash_recover_every_member(run);
  for (std::size_t idx = 0; idx < run.member_count(); ++idx) {
    EXPECT_TRUE(run.servent(idx).started()) << "member " << idx;
  }
  EXPECT_TRUE(mutual_overlay_connected(run))
      << "overlay not repaired after crash-recover of every member";
}

TEST(FaultRecovery, RegularRestoresOverlayConnectivity) {
  expect_overlay_restored(core::AlgorithmKind::kRegular);
}

TEST(FaultRecovery, RandomRestoresOverlayConnectivity) {
  expect_overlay_restored(core::AlgorithmKind::kRandom);
}

TEST(FaultRecovery, HybridRestoresOverlayConnectivity) {
  expect_overlay_restored(core::AlgorithmKind::kHybrid);
}

TEST(FaultRecovery, BasicFragments) {
  // The paper's motivation for the improved algorithms: Basic "partially
  // ignores the dynamic nature of the network". Its references are
  // unilateral, so after churn its overlay never re-forms a connected
  // symmetric reference graph — reborn nodes are referenced by stale
  // one-sided entries, not re-handshaken.
  scenario::SimulationRun run(recovery_scenario(core::AlgorithmKind::kBasic));
  run.build();
  run.simulator().run_until(200.0);
  crash_recover_every_member(run);
  EXPECT_FALSE(mutual_overlay_connected(run));
}

// ---------------------------------------------------------- golden churn

struct GoldenChurn {
  std::uint64_t churn_deaths = 0;
  std::uint64_t churn_recoveries = 0;
  std::uint64_t frames_transmitted = 0;
  std::uint64_t overlay_repairs = 0;
  std::uint64_t orphaned_servents = 0;
  double query_success_rate = 0.0;
  double overlay_disrupted_s = 0.0;
  double mean_repair_time_s = 0.0;
};

// Moderate churn on the fig07 scenario: 4 deaths/node/hour, one-minute
// mean downtime, invariant checker on. Locks the "Figure C" metric family
// the same way test_golden_metrics locks fig07. (Rates high enough that a
// death lands every few seconds never let the overlay finish a repair, so
// moderate here also keeps mean_repair_time_s meaningful.)
TEST(GoldenChurn, RegularModerateChurn) {
  Parameters params;
  params.num_nodes = 50;
  params.duration_s = 600.0;
  params.seed = 1;
  params.algorithm = core::AlgorithmKind::kRegular;
  params.fault.churn_rate_per_hour = 4.0;
  params.fault.mean_downtime_s = 60.0;
  params.invariant_check_interval_s = 30.0;
  scenario::SimulationRun run(params);
  const scenario::RunResult r = run.run();

  // Hard assertion, not golden: injected (registered) faults must never
  // trip the cross-layer invariant checker.
  EXPECT_EQ(r.invariant_violations, 0U);

  if (std::getenv("P2P_PRINT_GOLDEN") != nullptr) {
    std::printf("{%lluU, %lluU, %lluU, %lluU, %lluU, %.17g, %.17g, %.17g}\n",
                (unsigned long long)r.churn_deaths,
                (unsigned long long)r.churn_recoveries,
                (unsigned long long)r.frames_transmitted,
                (unsigned long long)r.overlay_repairs,
                (unsigned long long)r.orphaned_servents,
                r.query_success_rate(), r.overlay_disrupted_s,
                r.mean_repair_time_s);
    return;  // capture mode: print, skip assertions
  }
  const GoldenChurn want{42U, 35U, 147163U, 1U, 5U,
                         0.065625000000000003, 580., 150.};
  EXPECT_EQ(r.churn_deaths, want.churn_deaths);
  EXPECT_EQ(r.churn_recoveries, want.churn_recoveries);
  EXPECT_EQ(r.frames_transmitted, want.frames_transmitted);
  EXPECT_EQ(r.overlay_repairs, want.overlay_repairs);
  EXPECT_EQ(r.orphaned_servents, want.orphaned_servents);
  // Bit-identical doubles: accumulated in deterministic order.
  EXPECT_EQ(r.query_success_rate(), want.query_success_rate);
  EXPECT_EQ(r.overlay_disrupted_s, want.overlay_disrupted_s);
  EXPECT_EQ(r.mean_repair_time_s, want.mean_repair_time_s);
}

}  // namespace
