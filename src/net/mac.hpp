// Simplified MAC/PHY timing model.
//
// The figures the paper reports are application-layer message counts and
// hop distances, not latencies, so a PHY-accurate 802.11 CSMA/CA model
// would only add noise. We keep the properties that do matter:
//   * transmissions take airtime (size / bandwidth) and a node's own
//     transmissions serialize (half-duplex radio),
//   * broadcasts reach every in-range neighbor after a small random
//     jitter, which de-synchronizes rebroadcast storms exactly as the
//     random defer in 802.11 DCF does,
//   * an optional i.i.d. loss probability models a lossy channel.
#pragma once

#include <cstddef>

namespace p2p::net {

struct MacParams {
  double bandwidth_bps = 2e6;      // 2 Mb/s, 802.11 (1999) broadcast rate
  std::size_t overhead_bytes = 34; // MAC+PHY header per frame
  double propagation_s = 1e-5;     // flat propagation delay
  double jitter_max_s = 0.01;      // uniform rebroadcast defer
  double loss_probability = 0.0;   // i.i.d. per-receiver frame loss

  /// Radio gray zone (paper §8 "effects of wireless coverage"): within
  /// the last `gray_zone_fraction` of the range, delivery probability
  /// falls linearly from 1 to 0 — the shadowing-induced soft cell edge a
  /// unit disk hides. 0 disables (hard disk, the default). Control-plane
  /// decisions (in_range, link-break detection) keep the hard radius;
  /// only actual frame delivery is probabilistic, so protocols experience
  /// flaky edge links exactly as they would under fading.
  double gray_zone_fraction = 0.0;
};

/// Delivery probability at `dist` for range `range` under the gray-zone
/// model; 1 below the zone, linear to 0 at the full range.
inline double gray_zone_delivery_probability(const MacParams& mac,
                                             double dist,
                                             double range) noexcept {
  if (mac.gray_zone_fraction <= 0.0) return dist <= range ? 1.0 : 0.0;
  const double inner = range * (1.0 - mac.gray_zone_fraction);
  if (dist <= inner) return 1.0;
  if (dist >= range) return 0.0;
  return (range - dist) / (range - inner);
}

/// Airtime of one frame.
inline double tx_duration(const MacParams& mac, std::size_t payload_bytes) noexcept {
  const double bits = 8.0 * static_cast<double>(payload_bytes + mac.overhead_bytes);
  return bits / mac.bandwidth_bps;
}

/// Minimum latency between any transmission decision and its earliest
/// possible arrival: the airtime of an empty payload (headers still go on
/// the air) plus propagation. Jitter and half-duplex serialization only
/// delay further. This is the conservative-parallel lookahead (see
/// sim/sharded.hpp): an event at time t can influence another node no
/// earlier than t + min_frame_latency.
inline double min_frame_latency(const MacParams& mac) noexcept {
  return tx_duration(mac, 0) + mac.propagation_s;
}

}  // namespace p2p::net
