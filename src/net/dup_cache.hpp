// Duplicate-suppression cache for flooded messages.
//
// This is the "controlled broadcast" mechanism the paper added to ns-2's
// AODV: "each node has a cache to keep track of the broadcast messages
// received. This mechanism avoids forwarding the same message several
// times." Keyed by (origin, broadcast id); entries expire so the cache
// stays bounded on long runs.
//
// Representation: a single open-addressed hash table (linear probing,
// power-of-two capacity) of {key, insertion time} pairs — the insert that
// every received flood frame performs is one hash and a short probe, with
// no per-entry heap nodes. Expiry is epoch-based: the first insert at or
// past `purge_due_` rebuilds the table from its live entries in one pass
// and pushes the deadline a full TTL out, so the rebuild cost amortizes
// to O(1) per insert regardless of insert rate. Entries that expire
// mid-epoch stay physically resident until the next rebuild but are
// invisible — insert() and contains() compare the recorded insertion
// time against the TTL themselves — so correctness never depends on
// purge timing, and there are no tombstones to probe over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::net {

class DupCache {
 public:
  /// `ttl` — how long a (origin,id) pair is remembered. Must exceed the
  /// maximum time a flooded message can still be in flight (hops * per-hop
  /// delay); the default is generous for the paper's 6-hop floods.
  explicit DupCache(sim::SimTime ttl = 30.0) noexcept : ttl_(ttl) {}

  /// Record (origin, id) at time `now`. Returns true if this is the first
  /// sighting (caller should process/forward), false if it is a duplicate.
  /// A duplicate does NOT refresh the original sighting's time.
  bool insert(NodeId origin, std::uint64_t id, sim::SimTime now);

  /// Whether (origin, id) was inserted within the last `ttl` before `now`.
  /// Entries past their TTL are reported absent even if the epoch purge
  /// has not physically removed them yet — so ID reuse after the TTL is
  /// never suppressed by a stale sighting.
  bool contains(NodeId origin, std::uint64_t id, sim::SimTime now) const;

  /// Resident entry count (purges run at insert time, so this includes
  /// entries that expired since the last insert — same lazy semantics the
  /// map+FIFO representation had).
  std::size_t size() const noexcept { return size_; }

  /// Forget everything (node crash/rebirth: a reborn node must not carry
  /// sightings from its previous life). Capacity is retained.
  void clear() noexcept;

  /// Internal-consistency check for the invariant sweep: the occupancy
  /// count matches size(), every resident entry is reachable from its
  /// home slot without crossing an empty slot (the linear-probing
  /// invariant), no recorded insertion lies in the future, and the purge
  /// deadline never trails the oldest entry's expiry. Fills `why` (if
  /// non-null) on failure.
  bool validate(sim::SimTime now, std::string* why = nullptr) const;

  /// Bytes resident in the cache's slot storage, staging buffer included
  /// (megascale memory accounting).
  std::size_t memory_bytes() const noexcept {
    return (entries_.capacity() + scratch_.capacity()) * sizeof(Entry);
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    sim::SimTime time = kEmptyTime;  // < 0 marks an empty slot
  };
  // SimTime is never negative, so a negative sentinel is unambiguous.
  static constexpr sim::SimTime kEmptyTime = -1.0;

  static std::uint64_t key(NodeId origin, std::uint64_t id) noexcept {
    return (static_cast<std::uint64_t>(origin) << 40) ^ id;
  }
  /// Slot holding `k`, or the empty slot where it would be inserted.
  std::size_t slot_for(std::uint64_t k) const noexcept;
  /// Rebuild the table dropping entries expired at `now`; pushes
  /// `purge_due_` one TTL past `now`.
  void purge(sim::SimTime now);
  /// Double the capacity (or allocate the initial table), re-placing
  /// every resident entry.
  void grow();

  sim::SimTime ttl_;
  std::vector<Entry> entries_;  // power-of-two capacity, linear probing
  std::size_t size_ = 0;
  // End of the current expiry epoch (+inf while empty): insert() triggers
  // a one-pass rebuild once now reaches it, then re-arms it a full TTL
  // out. Never tightened to the oldest entry's expiry — see purge().
  sim::SimTime purge_due_ = kNeverDue;
  static constexpr sim::SimTime kNeverDue = 1e300;
  std::vector<Entry> scratch_;  // purge/grow staging, reused across epochs
};

}  // namespace p2p::net
