// Duplicate-suppression cache for flooded messages.
//
// This is the "controlled broadcast" mechanism the paper added to ns-2's
// AODV: "each node has a cache to keep track of the broadcast messages
// received. This mechanism avoids forwarding the same message several
// times." Keyed by (origin, broadcast id); entries expire so the cache
// stays bounded on long runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::net {

class DupCache {
 public:
  /// `ttl` — how long a (origin,id) pair is remembered. Must exceed the
  /// maximum time a flooded message can still be in flight (hops * per-hop
  /// delay); the default is generous for the paper's 6-hop floods.
  explicit DupCache(sim::SimTime ttl = 30.0) noexcept : ttl_(ttl) {}

  /// Record (origin, id) at time `now`. Returns true if this is the first
  /// sighting (caller should process/forward), false if it is a duplicate.
  bool insert(NodeId origin, std::uint64_t id, sim::SimTime now);

  /// Whether (origin, id) was inserted within the last `ttl` before `now`.
  /// Entries past their TTL are reported absent even if lazy expiry has
  /// not physically removed them yet — so ID reuse after the TTL is never
  /// suppressed by a stale sighting.
  bool contains(NodeId origin, std::uint64_t id, sim::SimTime now) const;

  std::size_t size() const noexcept { return seen_.size(); }

  /// Forget everything (node crash/rebirth: a reborn node must not carry
  /// sightings from its previous life).
  void clear() noexcept;

  /// Internal-consistency check for the invariant sweep: the map and the
  /// expiry FIFO agree, FIFO times are non-decreasing, and no recorded
  /// insertion lies in the future. Fills `why` (if non-null) on failure.
  bool validate(sim::SimTime now, std::string* why = nullptr) const;

 private:
  using Key = std::uint64_t;
  static Key key(NodeId origin, std::uint64_t id) noexcept {
    return (static_cast<std::uint64_t>(origin) << 40) ^ id;
  }
  void expire(sim::SimTime now);

  sim::SimTime ttl_;
  std::unordered_map<Key, sim::SimTime> seen_;  // key -> insertion time
  std::deque<std::pair<sim::SimTime, Key>> fifo_;  // insertion-ordered for expiry
};

}  // namespace p2p::net
