#include "net/dup_cache.hpp"

namespace p2p::net {

void DupCache::expire(sim::SimTime now) {
  while (!fifo_.empty() && fifo_.front().first + ttl_ <= now) {
    seen_.erase(fifo_.front().second);
    fifo_.pop_front();
  }
}

bool DupCache::insert(NodeId origin, std::uint64_t id, sim::SimTime now) {
  expire(now);
  const Key k = key(origin, id);
  if (!seen_.emplace(k, now).second) return false;
  fifo_.emplace_back(now, k);
  return true;
}

void DupCache::clear() noexcept {
  seen_.clear();
  fifo_.clear();
}

bool DupCache::validate(sim::SimTime now, std::string* why) const {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (seen_.size() != fifo_.size()) {
    return fail("map/fifo size mismatch: " + std::to_string(seen_.size()) +
                " vs " + std::to_string(fifo_.size()));
  }
  sim::SimTime prev = -1.0;
  for (const auto& [time, key] : fifo_) {
    if (time < prev) return fail("fifo times out of order");
    prev = time;
    if (time > now) return fail("entry recorded in the future");
    const auto it = seen_.find(key);
    if (it == seen_.end()) return fail("fifo entry missing from map");
    if (it->second != time) return fail("fifo/map time mismatch");
  }
  return true;
}

bool DupCache::contains(NodeId origin, std::uint64_t id,
                        sim::SimTime now) const {
  // Expiry is lazy (insert-driven), so an entry may still be physically
  // present after its TTL; check the recorded insertion time instead of
  // mere presence.
  const auto it = seen_.find(key(origin, id));
  return it != seen_.end() && it->second + ttl_ > now;
}

}  // namespace p2p::net
