#include "net/dup_cache.hpp"

#include "sim/rng.hpp"

namespace p2p::net {

namespace {
constexpr std::size_t kInitialCapacity = 16;  // power of two
}  // namespace

std::size_t DupCache::slot_for(std::uint64_t k) const noexcept {
  const std::size_t mask = entries_.size() - 1;
  std::size_t i = static_cast<std::size_t>(sim::splitmix64(k)) & mask;
  while (entries_[i].time >= 0.0 && entries_[i].key != k) {
    i = (i + 1) & mask;
  }
  return i;
}

void DupCache::grow() {
  const std::size_t cap =
      entries_.empty() ? kInitialCapacity : entries_.size() * 2;
  scratch_.clear();
  for (const Entry& e : entries_) {
    if (e.time >= 0.0) scratch_.push_back(e);
  }
  entries_.assign(cap, Entry{});
  for (const Entry& e : scratch_) {
    entries_[slot_for(e.key)] = e;
  }
}

void DupCache::purge(sim::SimTime now) {
  scratch_.clear();
  for (const Entry& e : entries_) {
    if (e.time >= 0.0 && e.time + ttl_ > now) scratch_.push_back(e);
  }
  for (Entry& e : entries_) e.time = kEmptyTime;
  size_ = scratch_.size();
  for (const Entry& e : scratch_) entries_[slot_for(e.key)] = e;
  // Fixed-cadence epochs: the next rebuild is a full TTL away, bounding
  // the amortized purge cost per insert at O(1). (Recomputing the
  // deadline as oldest-survivor + ttl looks tighter but degenerates under
  // a steady insert stream: the oldest survivor is always about to
  // expire, so every insert pays a full O(capacity) rebuild — an 8x
  // wall-time hit on the flood storms.) Expired residents left behind
  // until the next epoch are invisible to contains()/insert(), which
  // compare insertion time against the TTL themselves.
  purge_due_ = now + ttl_;
}

bool DupCache::insert(NodeId origin, std::uint64_t id, sim::SimTime now) {
  if (now >= purge_due_) purge(now);
  if (entries_.empty()) grow();
  Entry& e = entries_[slot_for(key(origin, id))];
  if (e.time >= 0.0) {
    if (e.time + ttl_ > now) return false;  // live duplicate, time untouched
    // Expired resident (this epoch's purge has not reached it yet): a
    // fresh sighting, exactly as if the entry had been physically evicted
    // and re-inserted.
    e.time = now;
    return true;
  }
  e.key = key(origin, id);
  e.time = now;
  ++size_;
  if (purge_due_ == kNeverDue) purge_due_ = now + ttl_;
  // Keep load factor under 3/4 so probe chains stay short.
  if (size_ * 4 > entries_.size() * 3) grow();
  return true;
}

bool DupCache::contains(NodeId origin, std::uint64_t id,
                        sim::SimTime now) const {
  // Expiry is lazy (insert-driven), so an entry may still be physically
  // present after its TTL; check the recorded insertion time instead of
  // mere presence.
  if (entries_.empty()) return false;
  const Entry& e = entries_[slot_for(key(origin, id))];
  return e.time >= 0.0 && e.time + ttl_ > now;
}

void DupCache::clear() noexcept {
  for (Entry& e : entries_) e.time = kEmptyTime;
  size_ = 0;
  purge_due_ = kNeverDue;
}

bool DupCache::validate(sim::SimTime now, std::string* why) const {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (entries_.empty()) {
    if (size_ != 0) return fail("empty table but size " + std::to_string(size_));
    return true;
  }
  if ((entries_.size() & (entries_.size() - 1)) != 0) {
    return fail("capacity not a power of two");
  }
  const std::size_t mask = entries_.size() - 1;
  std::size_t occupied = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.time < 0.0) continue;
    ++occupied;
    if (e.time > now) return fail("entry recorded in the future");
    // Linear-probing invariant: the walk from the entry's home slot must
    // reach it without crossing an empty slot, or lookups would miss it.
    std::size_t j = static_cast<std::size_t>(sim::splitmix64(e.key)) & mask;
    while (j != i) {
      if (entries_[j].time < 0.0) {
        return fail("entry unreachable from its home slot");
      }
      j = (j + 1) & mask;
    }
  }
  if (occupied != size_) {
    return fail("occupancy/size mismatch: " + std::to_string(occupied) +
                " vs " + std::to_string(size_));
  }
  // The epoch deadline is always set while entries are resident, and was
  // stamped `then + ttl` at some instant `then <= now`.
  if (occupied != 0 && (purge_due_ == kNeverDue || purge_due_ > now + ttl_)) {
    return fail("purge deadline unset or more than one TTL out");
  }
  return true;
}

}  // namespace p2p::net
