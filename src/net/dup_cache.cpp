#include "net/dup_cache.hpp"

namespace p2p::net {

void DupCache::expire(sim::SimTime now) {
  while (!fifo_.empty() && fifo_.front().first + ttl_ <= now) {
    seen_.erase(fifo_.front().second);
    fifo_.pop_front();
  }
}

bool DupCache::insert(NodeId origin, std::uint64_t id, sim::SimTime now) {
  expire(now);
  const Key k = key(origin, id);
  if (!seen_.emplace(k, now).second) return false;
  fifo_.emplace_back(now, k);
  return true;
}

bool DupCache::contains(NodeId origin, std::uint64_t id,
                        sim::SimTime now) const {
  // Expiry is lazy (insert-driven), so an entry may still be physically
  // present after its TTL; check the recorded insertion time instead of
  // mere presence.
  const auto it = seen_.find(key(origin, id));
  return it != seen_.end() && it->second + ttl_ > now;
}

}  // namespace p2p::net
