#include "net/dup_cache.hpp"

namespace p2p::net {

void DupCache::expire(sim::SimTime now) {
  while (!fifo_.empty() && fifo_.front().first + ttl_ <= now) {
    seen_.erase(fifo_.front().second);
    fifo_.pop_front();
  }
}

bool DupCache::insert(NodeId origin, std::uint64_t id, sim::SimTime now) {
  expire(now);
  const Key k = key(origin, id);
  if (!seen_.insert(k).second) return false;
  fifo_.emplace_back(now, k);
  return true;
}

bool DupCache::contains(NodeId origin, std::uint64_t id) const {
  return seen_.find(key(origin, id)) != seen_.end();
}

}  // namespace p2p::net
