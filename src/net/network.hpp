// The simulated wireless world: nodes, channel, and frame delivery.
//
// Communication is unit-disk: a frame transmitted by node A reaches every
// live node within `range` metres of A (or just the addressed neighbor for
// link-layer unicast). Delivery is delayed by airtime + propagation +
// random defer jitter (see mac.hpp), and a node's own transmissions
// serialize, approximating a half-duplex radio.
//
// Network is strictly below routing: it never inspects payloads, it only
// moves FramePayload blobs between nodes and charges energy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geo/vec2.hpp"
#include "graph/graph.hpp"
#include "mobility/model.hpp"
#include "net/energy.hpp"
#include "net/mac.hpp"
#include "net/neighbor_index.hpp"
#include "net/payload.hpp"
#include "net/types.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace p2p::net {

struct NetworkParams {
  geo::Region region{100.0, 100.0};
  double range = 10.0;             // paper Table 2: 10 m transmission range
  MacParams mac;
  double index_tolerance_s = 0.25; // spatial-index staleness bound
  double max_speed_hint = 1.0;     // upper bound on any node's speed (m/s)
  // Incremental spatial-index maintenance: resample only the nodes whose
  // cell-safe deadline expired instead of rebuilding the whole index every
  // tolerance window. Bit-identical results either way (candidate sets are
  // exact-filtered downstream). Below the population threshold the full
  // counting-sort rebuild from cached positions is measurably cheaper
  // than deadline-heap bookkeeping (sampling a few hundred positions per
  // window costs less than the heap churn that avoids it), so incremental
  // maintenance engages only once the population makes per-window
  // whole-fleet resampling the bigger bill. Set the threshold to 0 to
  // force incremental at any size (the determinism suite does, to prove
  // the two modes equivalent at small n).
  bool incremental_index = true;
  std::size_t incremental_index_min_nodes = 8192;
};

class Network {
 public:
  Network(sim::Simulator& simulator, const NetworkParams& params,
          sim::RngStream mac_rng);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Add a node; ids are dense and assigned in call order.
  NodeId add_node(std::unique_ptr<mobility::MobilityModel> mobility,
                  const EnergyParams& energy = {});

  std::size_t size() const noexcept { return nodes_.size(); }

  /// Attach a frame listener; every frame the node receives is fanned out
  /// to all listeners in attach order. Listener must outlive the Network.
  void attach_listener(NodeId id, LinkListener* listener);

  /// Transmit to all in-range neighbors. No-op if the sender is down.
  void broadcast(NodeId sender, FramePayloadPtr payload, std::size_t bytes);

  /// Transmit to one neighbor; silently dropped if out of range at send
  /// time (the sender learns nothing — real radios don't either; reliability
  /// is the routing layer's problem).
  void unicast(NodeId sender, NodeId neighbor, FramePayloadPtr payload,
               std::size_t bytes);

  /// Current position of `id`. Memoized per (node, SimTime): repeated
  /// queries at the same simulated instant (range filters, gray-zone
  /// distances, snapshots) pay the virtual mobility call and its trig
  /// only once.
  geo::Vec2 position_of(NodeId id);
  bool in_range(NodeId a, NodeId b);
  /// Live neighbors within range of `id` (exact, fresh positions).
  void neighbors_of(NodeId id, std::vector<NodeId>* out);

  /// Physical connectivity graph over live nodes at the current time.
  /// adjacency[i] lists i's neighbors; down nodes get empty lists.
  std::vector<std::vector<NodeId>> adjacency_snapshot();
  /// Buffer-reusing overload for callers that snapshot repeatedly
  /// (reconfiguration rounds): inner vectors keep their capacity across
  /// calls, and fresh ones are reserved from the previous round's mean
  /// degree.
  void adjacency_snapshot(std::vector<std::vector<NodeId>>* out);

  /// Network-level adjacency snapshot, memoized on {now, liveness epoch}:
  /// every servent answering query hits at the same simulated instant
  /// shares ONE build (and one resident structure) instead of each holding
  /// an O(n^2) private copy. Invalidated by time advancing or any node
  /// flipping between alive and down. Borrow only — do not hold across
  /// simulated time.
  const std::vector<std::vector<NodeId>>& shared_adjacency();
  /// How many times shared_adjacency() actually rebuilt (the memoization
  /// regression tests pin this).
  std::uint64_t adjacency_builds() const noexcept { return adjacency_builds_; }

  /// Physical hop distance between two nodes. Uses the shared snapshot
  /// when it is already fresh; otherwise runs a BFS directly over the
  /// spatial grid (explores only the ball around `a`, early-exits at `b`)
  /// instead of materializing the full adjacency for a single distance.
  /// Either path yields the same unique BFS distance. Network-owned
  /// scratch — no per-query allocations.
  int physical_hop_distance(NodeId a, NodeId b);

  EnergyModel& energy(NodeId id);
  const EnergyModel& energy(NodeId id) const;

  /// Down = battery empty or administratively failed. Answered from a
  /// dense byte array (kept in sync at the three points liveness can
  /// change: add_node, set_failed, and energy consumption inside the
  /// delivery paths) so the candidate-filter loops never touch the cold
  /// NodeState structs.
  bool alive(NodeId id) const noexcept {
    P2P_ASSERT(id < down_.size());
    return down_[id] == 0;
  }
  /// Administrative kill/revive (churn experiments).
  void set_failed(NodeId id, bool failed);

  // ---- fault injection (src/fault). All of these are pay-for-what-you-
  // use: with no blackouts and no burst the hot paths below take exactly
  // the same branches and RNG draws as before the fault layer existed. ----

  /// Suppress the link between `a` and `b` (both directions) until `until`.
  /// Extends an existing blackout if one is active.
  void set_link_blackout(NodeId a, NodeId b, sim::SimTime until);
  /// Is the (a, b) link currently blacked out?
  bool link_blacked_out(NodeId a, NodeId b) const;
  /// Gilbert-Elliott bad state: extra loss probability composed with the
  /// base MAC loss (p_eff = 1 - (1-p_base)(1-p_burst)); 0 restores the
  /// good state.
  void set_burst_loss(double p) noexcept {
    burst_loss_ = p;
    if (p > 0.0) faults_active_ = true;
  }
  double burst_loss() const noexcept { return burst_loss_; }

  /// Single gate for the whole fault subsystem: true only while a loss
  /// burst is in force or some link blackout can still be active. The
  /// delivery loops test this once per transmission; while it is false
  /// they execute the exact pre-fault fast path (no per-candidate blackout
  /// lookup, no burst compose). Self-clearing: once every blackout end
  /// time has passed and the burst is off, the flag drops back to false.
  bool faults_active() noexcept {
    if (!faults_active_) return false;
    if (burst_loss_ > 0.0 || blackout_horizon_ > sim_->now()) return true;
    faults_active_ = false;
    return false;
  }

  /// Can a frame from `a` currently reach `b`? Liveness + range + blackout
  /// in one query — the link-break predicate the routing layer should use
  /// (a dead-but-in-range next hop is just as gone as an out-of-range one).
  bool link_usable(NodeId a, NodeId b);

  sim::Simulator& simulator() noexcept { return *sim_; }
  const NetworkParams& params() const noexcept { return params_; }

  /// Per-run payload pools: every message this world sends is acquired
  /// here (see net/payload.hpp). Pools are holder-counted, so frames still
  /// queued in the simulator keep their pools alive past ~Network. In
  /// sharded mode a caller executing inside a shard window gets its lane's
  /// private pools (non-atomic refcounts stay single-threaded); everyone
  /// else — build, global events, collection — gets the base pools.
  PayloadPools& pools() noexcept {
    Lane* lane = tls_lane_;
    return lane != nullptr ? *lane->pools : pools_;
  }
  const PayloadPools& pools() const noexcept {
    Lane* lane = tls_lane_;
    return lane != nullptr ? *lane->pools : pools_;
  }
  /// Aggregate pool stats over the base pools and every lane's pools.
  PayloadPools::Stats pool_stats() const noexcept;

  // ---- sharded (conservative parallel) execution ------------------------
  // See sim/sharded.hpp for the execution model. The Network keeps ONE
  // world (nodes, liveness, spatial index, blackouts) but splits the hot
  // delivery path into per-shard *lanes*: each lane owns a Simulator, a
  // mac RNG stream, payload pools, broadcast batches and scratch — so a
  // shard's window runs without touching any other lane's mutable state.
  // Cross-shard deliveries queue in a per-lane outbox and are merged at
  // the window barrier in fixed shard order.
  //
  // Within a window, shared world state is read-only: liveness (down_) and
  // the spatial index are frozen at the window start (begin_window), range
  // checks use the index's cached positions (stale by <= the index
  // tolerance — the same bound the candidate prune already compensates
  // for), and battery deaths are deferred to the barrier. The sharded mode
  // is therefore a (deterministic) model variant selected by the shard
  // count, not a bit-identical replay of the sequential schedule — what IS
  // bit-identical is the same shard count across any thread counts.

  /// Deep-copies a frame payload (and any nested app payload) into `pools`.
  /// Installed by the scenario layer, which sees the concrete payload
  /// types; the net layer stays below routing.
  using FrameCloner = FramePayloadPtr (*)(const FramePayload& src,
                                          PayloadPools& pools);

  /// Switch into sharded mode: one Simulator and one mac RNG stream per
  /// shard, `home_shard[id]` the shard whose lane executes node id's
  /// events. Must be called before any traffic; incompatible with a
  /// NetObserver. Shard count must be >= 2 (a single shard is just the
  /// sequential path).
  void enable_sharding(std::vector<sim::Simulator*> shard_sims,
                       std::vector<std::uint32_t> home_shard,
                       std::vector<sim::RngStream> mac_rngs,
                       FrameCloner cloner);
  bool sharded() const noexcept { return !lanes_.empty(); }
  std::uint32_t home_shard(NodeId id) const noexcept {
    P2P_ASSERT(id < home_shard_.size());
    return home_shard_[id];
  }
  /// Index of the lane bound to the calling thread, or kNoShard outside a
  /// window — lets upper layers keep per-shard accumulators for state that
  /// servents in different lanes would otherwise write concurrently.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  std::size_t current_shard() const noexcept {
    const Lane* lane = tls_lane_;
    return lane == nullptr ? kNoShard
                           : static_cast<std::size_t>(lane - lanes_.data());
  }

  /// Executor hooks (wired by the scenario layer into
  /// sim::ShardedExecutor::Callbacks). begin_window refreshes the spatial
  /// index so it stays fresh through [start, end) and freezes the fault
  /// gate; end_window drains every lane's outbox in shard order and
  /// applies deferred liveness flips. enter/exit_shard bind the calling
  /// thread's lane context.
  void begin_window(sim::SimTime start, sim::SimTime end);
  void end_window(sim::SimTime end);
  void enter_shard(std::size_t shard) noexcept;
  void exit_shard() noexcept;

  /// Attach a link-layer event observer (packet tracing); nullptr detaches.
  /// Unsupported in sharded mode (per-frame callbacks would interleave
  /// nondeterministically across lanes).
  void set_observer(NetObserver* observer) noexcept {
    P2P_ASSERT(lanes_.empty() || observer == nullptr);
    observer_ = observer;
  }

  // Telemetry. In sharded mode these sum the per-lane counters (plus any
  // sequential-path traffic from before/after the windows).
  std::uint64_t frames_transmitted() const noexcept;
  std::uint64_t frames_delivered() const noexcept;
  std::uint64_t frames_lost() const noexcept;

  /// Approximate bytes held by the network layer: dense per-node arrays,
  /// the spatial index, adjacency/BFS scratch, broadcast batch pools, and
  /// the blackout ledger. Everything here is O(n) or O(active faults) —
  /// the mega-scale telemetry sums it per run to pin that down.
  std::size_t memory_bytes() const noexcept;

 private:
  // Cold per-node state: touched on add/attach, at transmit time (energy,
  // tx serialization), and at delivery fan-out. The fields the candidate
  // loops read per neighbor — position memo and liveness — are split into
  // the dense pos_cache_/down_ arrays below (structure-of-arrays), so a
  // range filter over k candidates touches k*24 bytes, not k NodeStates.
  struct NodeState {
    std::unique_ptr<mobility::MobilityModel> mobility;
    EnergyModel energy;
    std::vector<LinkListener*> listeners;
    bool failed = false;
    sim::SimTime next_free_tx = 0.0;
  };
  // position_of memoization, keyed by the simulated instant.
  struct PosCache {
    geo::Vec2 pos{0.0, 0.0};
    sim::SimTime time = -1.0;  // SimTime is never negative
  };

  // ---- sharded-mode state -----------------------------------------------
  /// One cross-shard transmission: scheduled on the destination shard's
  /// Simulator at the barrier. Receivers are in candidate order; slots are
  /// reused across windows (payload Ref and receiver capacity recycle).
  struct OutMsg {
    sim::SimTime arrival = 0.0;
    std::uint32_t dst_shard = 0;
    NodeId sender = kInvalidNode;
    NodeId link_dst = kBroadcast;
    std::size_t size_bytes = 0;
    FramePayloadPtr payload;
    std::vector<NodeId> receivers;
  };
  /// Per-shard execution lane: everything the delivery hot path mutates,
  /// privatized so a window runs without synchronization. Node state
  /// (energy, tx serialization, listeners) is owned by the node's home
  /// lane by construction — only that lane executes the node's events.
  struct Lane {
    Lane(sim::Simulator* s, sim::RngStream rng)
        : sim(s),
          mac_rng(std::move(rng)),
          pools(std::make_unique<PayloadPools>()) {}
    sim::Simulator* sim = nullptr;
    sim::RngStream mac_rng;
    std::unique_ptr<PayloadPools> pools;
    std::vector<NodeId> scratch_candidates;
    std::vector<std::vector<NodeId>> batch_pool;
    std::vector<std::uint32_t> free_batches;
    std::vector<OutMsg> outbox;
    std::size_t outbox_used = 0;
    /// (dst shard, outbox slot) pairs for the transmission being filtered
    /// — receivers of one broadcast group into one OutMsg per shard.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> tx_out;
    /// Nodes whose battery died inside the window; down_ flips at the
    /// barrier (liveness is read-only while shards run).
    std::vector<NodeId> pending_down;
    // Grid-BFS scratch (physical_hop_distance inside a window).
    std::vector<std::uint64_t> grid_stamp;
    std::vector<int> grid_dist;
    std::vector<NodeId> grid_queue;
    std::vector<NodeId> grid_cand;
    std::uint64_t grid_gen = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_lost = 0;
  };

  // Sharded delivery paths — mirror the sequential ones below but draw
  // jitter/channel from the lane RNG, filter ranges against the index's
  // cached positions, and defer liveness writes.
  void sharded_broadcast(Lane& lane, NodeId sender, FramePayloadPtr payload,
                         std::size_t bytes);
  void sharded_unicast(Lane& lane, NodeId sender, NodeId neighbor,
                       FramePayloadPtr payload, std::size_t bytes);
  void sharded_deliver(Lane& lane, NodeId receiver, const Frame& frame);
  void sharded_deliver_batch(Lane& lane, std::uint32_t batch,
                             const Frame& frame);
  bool sharded_in_range(NodeId a, NodeId b) const noexcept;
  int sharded_hop_distance(Lane& lane, NodeId a, NodeId b);
  sim::SimTime sharded_schedule_tx(Lane& lane, NodeState& node,
                                   double duration);
  bool sharded_link_blacked_out(const Lane& lane, NodeId a, NodeId b) const;
  /// Refresh the index if stale at window start `start`; positions are
  /// sampled at `start` (the barrier instant — the only sharded-mode point
  /// that may touch the mobility models). Because refreshes happen only at
  /// barriers, the index can age up to lookahead past the tolerance by the
  /// end of a window — sub-millimetre extra drift at the defaults,
  /// absorbed by the candidate prune's age compensation.
  void sharded_refresh_index(sim::SimTime start);
  static geo::Vec2 sharded_sample(void* ctx, NodeId id);
  geo::Vec2 sample_position_at(NodeId id, sim::SimTime t);
  void note_energy_death(Lane& lane, NodeId id);
  std::uint32_t lane_acquire_batch(Lane& lane);
  void lane_release_batch(Lane& lane, std::uint32_t batch);

  /// Refresh the spatial index. Incremental mode drains the index's
  /// deadline heap (O(boundary-crossers)); full-rebuild mode resamples the
  /// whole population into the position scratch buffer.
  void refresh_index();
  /// PositionSampler trampoline for NeighborIndex::refresh_incremental
  /// (ctx is the Network; warms the per-node position memo as it samples).
  static geo::Vec2 sample_position(void* ctx, NodeId id);
  /// Exact in-range receiver set for a transmission from `sender`.
  void receivers_of(NodeId sender, std::vector<NodeId>* out);
  void deliver(NodeId receiver, const Frame& frame);
  /// Deliver one shared frame to every receiver in the batch, in order,
  /// then return the receiver list to the pool.
  void deliver_batch(std::uint32_t batch, const Frame& frame);
  std::uint32_t acquire_batch();
  void release_batch(std::uint32_t batch);
  /// Start time of the next transmission by `sender` (jitter + half-duplex
  /// serialization); advances the node's busy horizon.
  sim::SimTime schedule_tx(NodeState& node, double duration);

  /// Recompute down_[id] from the authoritative NodeState (failed flag +
  /// battery); called wherever either input can change. Compare before
  /// store: the liveness epoch (which invalidates the shared adjacency
  /// memo) bumps only on an actual flip, and this runs on every tx/rx.
  void refresh_down(NodeId id) noexcept {
    const auto down = static_cast<std::uint8_t>(nodes_[id].failed ||
                                                !nodes_[id].energy.alive());
    if (down != down_[id]) {
      down_[id] = down;
      ++liveness_epoch_;
    }
  }

  sim::Simulator* sim_;
  NetworkParams params_;
  sim::RngStream mac_rng_;
  std::vector<NodeState> nodes_;
  std::vector<PosCache> pos_cache_;  // hot: position memo per node
  std::vector<std::uint8_t> down_;   // hot: 1 = failed or battery dead
  NeighborIndex index_;
  std::vector<geo::Vec2> scratch_positions_;
  std::vector<NodeId> scratch_candidates_;
  // Recycled receiver lists for in-flight broadcast arrival events. A
  // batch index stays stable while the pool vector grows (nested
  // broadcasts from a delivery handler), so events capture the index,
  // never a reference.
  std::vector<std::vector<NodeId>> batch_pool_;
  std::vector<std::uint32_t> free_batches_;
  std::size_t degree_hint_ = 0;  // mean degree seen by the last snapshot

  // Shared adjacency memo (see shared_adjacency()). liveness_epoch_ counts
  // alive<->down flips and node additions; the snapshot is fresh while
  // both the simulated instant and the epoch match the last build.
  PayloadPools pools_;
  std::vector<std::vector<NodeId>> shared_adj_;
  sim::SimTime shared_adj_time_ = -1.0;  // SimTime is never negative
  std::uint64_t shared_adj_epoch_ = 0;
  std::uint64_t liveness_epoch_ = 0;
  std::uint64_t adjacency_builds_ = 0;
  graph::BfsScratch bfs_scratch_;
  // Grid-BFS scratch for physical_hop_distance() when the shared snapshot
  // is stale: generation-stamped visited marks plus a flat frontier, and a
  // dedicated candidate buffer (scratch_candidates_ is live inside
  // broadcast(), which can be on the stack when a distance is queried).
  std::vector<std::uint64_t> grid_stamp_;
  std::vector<int> grid_dist_;
  std::vector<NodeId> grid_queue_;
  std::vector<NodeId> grid_cand_;
  std::uint64_t grid_gen_ = 0;

  /// One channel-level draw (base loss + gray zone) — the fault-free fast
  /// path; callers check faults_active() and take channel_lost_faulted()
  /// instead while a burst may be in force. The stream is a parameter so
  /// sequential paths draw from mac_rng_ and shard lanes from their own
  /// stream with identical draw logic.
  bool channel_lost(sim::RngStream& rng, const geo::Vec2& from,
                    const geo::Vec2& to);
  /// Same draw with the Gilbert-Elliott burst composed into the base loss.
  /// Identical RNG draw order to channel_lost() when burst_loss_ == 0.
  bool channel_lost_faulted(sim::RngStream& rng, const geo::Vec2& from,
                            const geo::Vec2& to);

  /// Key of the unordered link {a,b} in the blackout ledger (lo in the
  /// high word so keys are unique per pair).
  static std::uint64_t link_key(NodeId a, NodeId b) noexcept {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  /// Drop ledger entries whose end time has passed; re-arms the purge
  /// threshold at twice the surviving count.
  void purge_expired_blackouts();

  // Blackout ledger: end-of-blackout time per unordered node pair, keyed
  // by link_key; an absent entry means "never blacked out" (find returns
  // nullptr, equivalent to the old 0.0 sentinel). O(links actually
  // suppressed) — never O(n^2) — so mega-scale runs with localized faults
  // stay cheap. Fault-free runs pay neither memory nor lookups
  // (faults_active() gates every consultation). Expired entries need no
  // eager eviction (the end-time comparison against now() is the whole
  // query); they are swept opportunistically when the ledger next grows
  // past the purge threshold, which bounds residency at O(peak active).
  util::FlatMap<std::uint64_t, sim::SimTime, ~0ULL> blackout_map_;
  std::vector<std::uint64_t> blackout_scratch_;  // purge staging
  std::size_t blackout_purge_at_ = 64;
  double burst_loss_ = 0.0;
  // Latest end time over every blackout ever set (monotone); with the
  // burst off, faults_active() compares it against now() to decide when
  // the fault gate can drop.
  sim::SimTime blackout_horizon_ = 0.0;
  bool faults_active_ = false;

  NetObserver* observer_ = nullptr;
  std::uint64_t frames_tx_ = 0;
  std::uint64_t frames_rx_ = 0;
  std::uint64_t frames_lost_ = 0;

  // Sharded mode (empty lanes_ = sequential; see enable_sharding).
  std::vector<Lane> lanes_;
  std::vector<std::uint32_t> home_shard_;
  FrameCloner cloner_ = nullptr;
  /// Fault gate frozen for the current window (begin_window): windows must
  /// not consult the self-clearing faults_active(), whose answer depends
  /// on the global clock.
  bool faults_frozen_ = false;
  /// Barrier instant positions are sampled at (sharded_sample trampoline).
  sim::SimTime sharded_sample_time_ = 0.0;
  /// Lane bound to the executing thread between enter_shard/exit_shard;
  /// null outside windows, which routes every dispatching entry point
  /// (broadcast, unicast, pools, in_range, ...) to the sequential path.
  static thread_local Lane* tls_lane_;
};

}  // namespace p2p::net
