// Per-node energy accounting.
//
// The paper's motivation is energy economy ("each message transmitted or
// received consumes energy, which is a restrict resource"). We use the
// standard linear radio model: cost = base_per_frame + per_byte * size,
// with distinct tx and rx coefficients. A node whose battery empties is
// dead: it neither transmits nor receives (the churn bench exercises
// this; figure reproductions run with an effectively infinite battery, as
// the paper reports message counts rather than node deaths).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace p2p::net {

struct EnergyParams {
  double battery_j = std::numeric_limits<double>::infinity();
  double tx_base_j = 50e-6;       // per-frame transmit overhead
  double tx_per_byte_j = 1.0e-6;  // transmit cost per byte
  double rx_base_j = 25e-6;       // per-frame receive overhead
  double rx_per_byte_j = 0.5e-6;  // receive cost per byte
};

class EnergyModel {
 public:
  EnergyModel() = default;
  explicit EnergyModel(const EnergyParams& params) noexcept : params_(params) {}

  bool alive() const noexcept { return consumed_ < params_.battery_j; }

  double consumed_j() const noexcept { return consumed_; }
  double remaining_j() const noexcept {
    return params_.battery_j == std::numeric_limits<double>::infinity()
               ? params_.battery_j
               : params_.battery_j - consumed_;
  }
  /// Remaining fraction in [0,1]; 1.0 for infinite batteries.
  double remaining_fraction() const noexcept;

  void consume_tx(std::size_t bytes) noexcept;
  void consume_rx(std::size_t bytes) noexcept;

  std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  std::uint64_t frames_received() const noexcept { return frames_received_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t bytes_received() const noexcept { return bytes_received_; }

 private:
  EnergyParams params_;
  double consumed_ = 0.0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace p2p::net
