// Shared link-layer vocabulary.
#pragma once

#include <cstdint>
#include <limits>

#include "net/payload.hpp"

namespace p2p::net {

/// Node address. Dense 0..n-1 within one simulated world.
using NodeId = std::uint32_t;

inline constexpr NodeId kBroadcast = std::numeric_limits<NodeId>::max();
inline constexpr NodeId kInvalidNode = kBroadcast - 1;

/// A payload type's dispatch tag. The routing layer's values live in
/// routing::FrameKind (routing/messages.hpp), the P2P layer's in
/// core::MsgType (core/messages.hpp); kUntaggedPayload marks payloads
/// that no dispatcher claims (test probes, bench fillers) — receive
/// switches ignore them, exactly like a dynamic_cast miss used to.
using PayloadKind = std::uint8_t;
inline constexpr PayloadKind kUntaggedPayload = 0xFF;

/// Base class of everything a radio frame can carry. Routing-layer
/// messages derive from it; the net layer treats payloads as opaque,
/// immutable, shareable blobs (one pooled slot per logical message even
/// when flooded to dozens of receivers; see net/payload.hpp).
struct FramePayload : RefCountBase {
  /// routing::FrameKind value; receive paths dispatch on this tag
  /// (switch + static_cast) instead of RTTI.
  PayloadKind kind = kUntaggedPayload;
};
using FramePayloadPtr = Ref<const FramePayload>;

/// Base class of application-level payloads carried *inside* routing
/// messages (the P2P layer's Ping/Query/... derive from this).
struct AppPayload : RefCountBase {
  /// core::MsgType value for P2P messages; kUntaggedPayload otherwise.
  PayloadKind kind = kUntaggedPayload;
  /// Nominal serialized size, for bandwidth/energy accounting.
  virtual std::size_t size_bytes() const noexcept = 0;
};
using AppPayloadPtr = Ref<const AppPayload>;

/// One received radio frame, as seen by a node's listeners.
struct Frame {
  NodeId sender = kInvalidNode;   // transmitting neighbor (last hop)
  NodeId link_dst = kBroadcast;   // kBroadcast or the addressed neighbor
  std::size_t size_bytes = 0;
  FramePayloadPtr payload;
};

/// Per-node frame sink. A node fans each frame out to all attached
/// listeners (AODV agent, flood service, ...); listeners ignore payload
/// types they don't own.
class LinkListener {
 public:
  virtual ~LinkListener() = default;
  virtual void on_frame(const Frame& frame) = 0;
};

/// Optional observer of link-layer events (packet tracing, live
/// statistics). Attached via Network::set_observer; when absent the
/// network pays nothing.
class NetObserver {
 public:
  virtual ~NetObserver() = default;
  /// `node` transmitted a frame addressed to `dst` (kBroadcast allowed).
  virtual void on_transmit(double time, NodeId node, NodeId dst,
                           std::size_t bytes) = 0;
  /// `node` received a frame sent by `sender`.
  virtual void on_deliver(double time, NodeId node, NodeId sender,
                          std::size_t bytes) = 0;
  /// A frame from `sender` toward `dst` was lost (range / channel / dead).
  virtual void on_drop(double time, NodeId sender, NodeId dst,
                       std::size_t bytes) = 0;
};

}  // namespace p2p::net
