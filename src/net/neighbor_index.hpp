// Uniform-grid spatial index over node positions.
//
// Cell size equals the radio range, so all neighbors of a point live in
// the 3x3 cell block around it — candidate lookup is O(k). The index is
// rebuilt lazily when it is older than `tolerance`; with the paper's
// 1 m/s walking speed and the default 0.25 s tolerance, stale positions
// drift well under a metre against a 10 m range, and the final in-range
// decision always uses fresh positions (the grid only prunes candidates —
// see kDriftMargin for the guarantee that pruning never loses a true
// neighbor).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec2.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::net {

class NeighborIndex {
 public:
  NeighborIndex(geo::Region region, double range, double tolerance_s,
                double max_speed);

  /// Whether the index built for `n` nodes is still within tolerance at
  /// `now` (i.e. refresh() would be a no-op). The single source of truth
  /// for staleness — callers that want to skip the O(n) position sampling
  /// a refresh needs should probe this instead of re-deriving the check.
  bool is_fresh(sim::SimTime now, std::size_t n) const noexcept {
    return ever_built_ && now - built_at_ < tolerance_ && n == indexed_count_;
  }

  /// Rebuild if older than the tolerance. `positions[i]` is node i's
  /// position at time `now`.
  void refresh(sim::SimTime now, const std::vector<geo::Vec2>& positions);

  /// Nodes whose indexed position is within range + drift margin of
  /// `center`. Candidates only — callers must do the exact check against
  /// fresh positions. `out` is cleared first.
  void candidates_near(geo::Vec2 center, std::vector<NodeId>* out) const;

  sim::SimTime built_at() const noexcept { return built_at_; }
  bool ever_built() const noexcept { return ever_built_; }

 private:
  std::size_t cell_of(geo::Vec2 p) const noexcept;

  geo::Region region_;
  double range_;
  double tolerance_;
  double drift_margin_;  // 2 * tolerance * max_speed: both nodes can move
  double cell_size_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  // CSR grid: nodes of cell c live at [cell_start_[c], cell_start_[c+1])
  // in cell_nodes_, with their indexed positions alongside in cell_pos_.
  // The three cells of a grid row are adjacent in this layout, so a 3x3
  // query is three contiguous scans instead of nine list walks.
  std::vector<std::uint32_t> cell_start_;
  std::vector<NodeId> cell_nodes_;
  std::vector<geo::Vec2> cell_pos_;
  std::vector<std::uint32_t> cell_scratch_;  // refresh: per-node cell ids
  std::size_t indexed_count_ = 0;
  sim::SimTime built_at_ = -1.0;
  bool ever_built_ = false;
};

}  // namespace p2p::net
