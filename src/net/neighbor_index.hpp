// Uniform-grid spatial index over node positions.
//
// Cell size equals the radio range plus a drift margin, so all neighbors
// of a point live in the 3x3 cell block around it — candidate lookup is
// O(k). The query side is a CSR layout (cell_start_ offsets over
// contiguous cell_nodes_ / cell_pos_ arrays, id-ascending within a cell):
// a 3x3 query is nine bounded scans over two contiguous arrays, and the
// candidate order every delivery loop (and therefore every RNG draw
// sequence) is keyed to that layout.
//
// Two maintenance modes share that query path:
//
//  * full rebuild (`refresh`): every position is resampled, then the CSR
//    arrays are rebuilt with a counting pass. Steady-state rebuilds are
//    allocation-free — all arrays keep their capacity (see
//    alloc_events()).
//
//  * incremental (`refresh_incremental`): only nodes whose *cell-safe
//    deadline* has expired are resampled. The deadline is the earliest
//    time a node could cross its cell boundary (distance to the boundary
//    divided by the maximum speed), so between expirations the node's
//    cell assignment provably equals what a full rebuild would compute.
//    The CSR placement pass still runs — it is a memcpy-grade counting
//    sort over cached per-node state — but the expensive part of a
//    refresh, sampling the mobility model, drops from O(n) to
//    O(boundary-crossers). Cell assignment (and thus candidate order) is
//    bit-identical to full-rebuild mode.
//
// Incremental entries can therefore hold positions sampled several
// refreshes ago (deadlines are capped, so never more than a few
// tolerance windows). The candidate prune compensates per scanned span:
// a span whose oldest entry was sampled `a` ago is scanned with
// range + a * max_speed, which never rejects a node that is truly in
// range now (each entry's own staleness is at most the span's, and
// staleness bounds how far the stored position can sit from the true
// one). Pruning is conservative either way — callers must do the exact
// range check against fresh positions.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec2.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::net {

class NeighborIndex {
 public:
  /// Samples the current position of a node (used by incremental
  /// maintenance to resample only the nodes whose deadline expired).
  /// Kept as a plain function-pointer + context pair so refresh stays
  /// out-of-line without a std::function allocation.
  using PositionSampler = geo::Vec2 (*)(void* ctx, NodeId id);

  NeighborIndex(geo::Region region, double range, double tolerance_s,
                double max_speed);

  /// A node's next cell-boundary-crossing deadline (public only so the
  /// heap comparator can live out-of-line).
  struct Due {
    sim::SimTime deadline;
    NodeId id;
  };

  /// Whether the index built for `n` nodes is still within tolerance at
  /// `now` (i.e. refresh() would be a no-op). The single source of truth
  /// for staleness — callers that want to skip the position sampling a
  /// refresh needs should probe this instead of re-deriving the check.
  bool is_fresh(sim::SimTime now, std::size_t n) const noexcept {
    return ever_built_ && now - built_at_ < tolerance_ && n == indexed_count_;
  }

  /// Full rebuild if older than the tolerance. `positions[i]` is node i's
  /// position at time `now`.
  void refresh(sim::SimTime now, const std::vector<geo::Vec2>& positions);

  /// Incremental maintenance: index `n` nodes as of `now`, resampling via
  /// `sampler` only the nodes that are new or whose cell-safe deadline
  /// expired. Produces the same cell assignment (and thus the same
  /// candidate order) as a full rebuild at `now`.
  void refresh_incremental(sim::SimTime now, std::size_t n,
                           PositionSampler sampler, void* ctx);

  /// Nodes whose indexed position may be within range of `center` at
  /// `now` (stored positions are pruned with an age-compensated per-cell
  /// reach). Candidates only — callers must do the exact check against
  /// fresh positions. `out` is cleared first.
  void candidates_near(geo::Vec2 center, sim::SimTime now,
                       std::vector<NodeId>* out) const;

  sim::SimTime built_at() const noexcept { return built_at_; }
  bool ever_built() const noexcept { return ever_built_; }

  /// Cached position of node `id` as of its last (re)sample — the exact
  /// positions the CSR query arrays are built from. Sharded execution
  /// filters ranges against these (stale by at most the tolerance) so a
  /// window never touches the mobility models. Valid for id < the indexed
  /// population.
  geo::Vec2 cached_position(NodeId id) const noexcept { return node_pos_[id]; }

  /// How often a refresh (full or incremental) had to grow a buffer. The
  /// steady-state lock-in test pins this: once warmed up, rebuilds over a
  /// fixed population allocate nothing.
  std::uint64_t alloc_events() const noexcept { return alloc_events_; }
  /// Nodes actually resampled by incremental refreshes (the "O(active)"
  /// in the maintenance cost; full rebuilds count every node).
  std::uint64_t nodes_resampled() const noexcept { return nodes_resampled_; }

  /// Bytes resident in the index's own structures (CSR arrays, per-node
  /// arrays, deadline heap) — megascale memory accounting.
  std::size_t memory_bytes() const noexcept;

 private:
  std::size_t cell_of(geo::Vec2 p) const noexcept;
  /// Earliest time a node sampled at `t` at position `p` (already known
  /// to be in cell `cell`) could cross that cell's boundary.
  sim::SimTime cell_safe_deadline(geo::Vec2 p, std::size_t cell,
                                  sim::SimTime t) const noexcept;
  /// Rebuild the CSR query arrays from the per-node cached state
  /// (counting sort; iterating ids ascending keeps each cell id-sorted).
  void rebuild_csr(std::size_t n);
  /// Track capacity growth of an internal vector push.
  template <typename Vec, typename T>
  void push_tracked(Vec& v, const T& value) {
    if (v.size() == v.capacity()) ++alloc_events_;
    v.push_back(value);
  }
  void heap_push(Due due);
  Due heap_pop();

  geo::Region region_;
  double range_;
  double tolerance_;
  double max_speed_;
  double drift_margin_;  // 2 * tolerance * max_speed: both nodes can move
  double cell_size_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;

  // Per-node cached state: the incremental side. A node's entry changes
  // only when it is (re)sampled.
  std::vector<geo::Vec2> node_pos_;          // position when last sampled
  std::vector<sim::SimTime> node_sampled_;   // when node_pos_ was sampled
  std::vector<std::uint32_t> node_cell_;     // node -> current cell
  std::vector<sim::SimTime> node_deadline_;  // node -> cell-safe deadline
  std::vector<Due> heap_;                    // min-heap on (deadline, id)
  std::vector<Due> due_scratch_;             // drained-this-refresh staging

  // CSR query arrays, rebuilt from the per-node state once per refresh
  // window: nodes of cell c live at [cell_start_[c], cell_start_[c+1])
  // in cell_nodes_, id-ascending, with their cached positions alongside
  // in cell_pos_.
  std::vector<std::uint32_t> cell_start_;        // cells + 1 offsets
  std::vector<std::uint32_t> cell_fill_;         // counting-pass cursor
  std::vector<NodeId> cell_nodes_;
  std::vector<geo::Vec2> cell_pos_;
  std::vector<sim::SimTime> cell_min_sampled_;   // oldest sample per cell

  std::size_t indexed_count_ = 0;
  sim::SimTime built_at_ = -1.0;
  bool ever_built_ = false;
  bool heap_valid_ = false;  // full rebuilds drop the deadline heap
  std::uint64_t alloc_events_ = 0;
  std::uint64_t nodes_resampled_ = 0;
};

}  // namespace p2p::net
