// Intrusive, non-atomic refcounting and slab pools for message payloads.
//
// Every radio frame and P2P message used to be a `std::shared_ptr<const X>`
// — one heap allocation plus atomic refcount traffic per message, repeated
// by flood fan-out and AODV forwarding. Each experiment run is
// single-threaded and fully isolated (the determinism design: parallelism
// is across runs, never within one), so the refcount can be a plain
// integer, and payload storage can come from per-type freelists owned by
// the run's Network. Sending a message costs a freelist pop.
//
// Ownership rules (see DESIGN.md "Overlay payload ownership"):
//   * `Ref<T>` is the only handle. Copies share the object; the count is
//     not thread-safe — never move a Ref across threads.
//   * A payload is mutable (via `Ref::edit()`) only between acquisition
//     and first publication (send/broadcast/store); after that it is
//     immutable and may be held past handler return by anyone.
//   * When the last Ref drops, a pooled payload is reset to its
//     default-constructed state and its slot recycled; a heap payload
//     (`make_payload`, used by tests/benches without a Network) is deleted.
//   * Pools outlive their payloads, not their owner: the owning
//     PayloadPools may be destroyed while frames queued in the simulator
//     still hold Refs (Network is destroyed before the Simulator in
//     SimulationRun). A holder count keeps each pool alive until its last
//     live payload releases.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace p2p::net {

class PoolBase;
template <typename T>
class Ref;
template <typename T, typename... Args>
Ref<T> make_payload(Args&&... args);

/// Intrusive refcount base. Copying a payload copies its *data*, never its
/// identity: the copy ctor leaves the new object unowned (count 0, no
/// pool), and assignment leaves the target's ownership fields untouched —
/// so `*ref.edit() = other` fills a pooled slot without clobbering it.
class RefCountBase {
 public:
  RefCountBase() noexcept = default;
  RefCountBase(const RefCountBase&) noexcept {}
  RefCountBase& operator=(const RefCountBase&) noexcept { return *this; }
  virtual ~RefCountBase() = default;

 private:
  friend class PoolBase;
  template <typename T>
  friend class Ref;
  template <typename T, typename... Args>
  friend Ref<T> make_payload(Args&&... args);
  template <typename T>
  friend class Pool;

  mutable std::uint32_t rc_count_ = 0;
  mutable PoolBase* rc_home_ = nullptr;  // nullptr = plain heap allocation
};

/// Type-erased pool: recycling target for released payloads, kept alive by
/// a holder count (1 for the owning PayloadPools + 1 per live payload).
class PoolBase {
 public:
  PoolBase(const PoolBase&) = delete;
  PoolBase& operator=(const PoolBase&) = delete;

  // ---- fixed-seed stats (aggregated by PayloadPools::stats) ----
  std::uint64_t acquires = 0;     // total payload acquisitions
  std::uint64_t slab_allocs = 0;  // freelist misses (fresh slab objects)
  std::size_t live = 0;
  std::size_t peak_live = 0;

 protected:
  PoolBase() noexcept = default;
  virtual ~PoolBase() = default;

  static void rc_init(const RefCountBase& obj, PoolBase* home) noexcept {
    obj.rc_count_ = 1;
    obj.rc_home_ = home;
  }

  void add_holder() noexcept { ++holders_; }
  void drop_holder() noexcept {
    if (--holders_ == 0) delete this;
  }

 private:
  template <typename T>
  friend class Ref;
  friend class PayloadPools;

  virtual void recycle(RefCountBase* obj) noexcept = 0;
  /// Last Ref to a pooled payload dropped: reset the slot, then release
  /// the payload's hold on the pool.
  void release_payload(const RefCountBase& obj) noexcept {
    --live;
    recycle(const_cast<RefCountBase*>(&obj));
    drop_holder();
  }

  std::size_t holders_ = 1;  // the owning PayloadPools
};

/// Shared handle to an immutable payload (see ownership rules above).
/// Read access is const-only; `edit()` is the pre-publication escape hatch.
template <typename T>
class Ref {
 public:
  Ref() noexcept = default;
  Ref(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Take ownership of an object whose count is already 1 (pool/heap
  /// acquisition paths only).
  static Ref adopt(T* obj) noexcept {
    Ref ref;
    ref.obj_ = obj;
    return ref;
  }

  Ref(const Ref& other) noexcept : obj_(other.obj_) { retain(); }
  Ref(Ref&& other) noexcept : obj_(other.obj_) { other.obj_ = nullptr; }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(const Ref<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(other.obj_) {
    retain();
  }
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  Ref(Ref<U>&& other) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(other.obj_) {
    other.obj_ = nullptr;
  }

  Ref& operator=(const Ref& other) noexcept {
    Ref(other).swap(*this);
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    Ref(std::move(other)).swap(*this);
    return *this;
  }
  Ref& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~Ref() { release(); }

  const T* get() const noexcept { return obj_; }
  const T& operator*() const noexcept { return *obj_; }
  const T* operator->() const noexcept { return obj_; }
  explicit operator bool() const noexcept { return obj_ != nullptr; }

  /// Mutable access — legal only between acquisition and first
  /// publication (the payload is not yet shared).
  T* edit() const noexcept { return obj_; }

  void reset() noexcept {
    release();
    obj_ = nullptr;
  }
  void swap(Ref& other) noexcept { std::swap(obj_, other.obj_); }

  std::uint32_t use_count() const noexcept {
    return obj_ ? obj_->rc_count_ : 0;
  }

  friend bool operator==(const Ref& a, const Ref& b) noexcept {
    return a.obj_ == b.obj_;
  }
  friend bool operator!=(const Ref& a, const Ref& b) noexcept {
    return a.obj_ != b.obj_;
  }
  friend bool operator==(const Ref& a, std::nullptr_t) noexcept {
    return a.obj_ == nullptr;
  }
  friend bool operator!=(const Ref& a, std::nullptr_t) noexcept {
    return a.obj_ != nullptr;
  }

 private:
  template <typename U>
  friend class Ref;

  void retain() noexcept {
    if (obj_ != nullptr) ++obj_->rc_count_;
  }
  void release() noexcept {
    if (obj_ == nullptr || --obj_->rc_count_ > 0) return;
    if (obj_->rc_home_ != nullptr) {
      obj_->rc_home_->release_payload(*obj_);
    } else {
      delete obj_;
    }
  }

  T* obj_ = nullptr;
};

/// Heap-allocated payload with no pool behind it — for tests, benches and
/// one-off construction sites that have no Network at hand. Costs a malloc
/// like the old make_shared, so hot paths use PayloadPools::make instead.
template <typename T, typename... Args>
Ref<T> make_payload(Args&&... args) {
  T* obj = new T(std::forward<Args>(args)...);
  obj->rc_count_ = 1;
  obj->rc_home_ = nullptr;
  return Ref<T>::adopt(obj);
}

/// Slab/freelist pool for one payload type. Objects are default-
/// constructed in chunks of 64; a released object is reset to `T{}` (which
/// also drops any nested Refs promptly) and pushed on the freelist.
template <typename T>
class Pool final : public PoolBase {
 public:
  Ref<T> acquire() {
    T* obj;
    if (!free_.empty()) {
      obj = free_.back();
      free_.pop_back();
    } else {
      if (next_in_chunk_ == kChunkSize) {
        chunks_.push_back(std::make_unique<T[]>(kChunkSize));
        next_in_chunk_ = 0;
      }
      obj = &chunks_.back()[next_in_chunk_++];
      ++slab_allocs;
    }
    rc_init(*obj, this);
    add_holder();
    ++acquires;
    if (++live > peak_live) peak_live = live;
    return Ref<T>::adopt(obj);
  }

 private:
  friend class PayloadPools;
  static constexpr std::size_t kChunkSize = 64;

  Pool() { chunks_.push_back(std::make_unique<T[]>(kChunkSize)); }

  void recycle(RefCountBase* obj) noexcept override {
    T* slot = static_cast<T*>(obj);
    *slot = T{};  // ownership fields survive (assignment is rc-neutral)
    free_.push_back(slot);
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<T*> free_;
  std::size_t next_in_chunk_ = 0;
};

/// Per-run registry of typed pools, owned by the Network. Type lookup is a
/// vector index (assigned once per type, process-wide, atomically — the
/// only cross-thread state in this header).
class PayloadPools {
 public:
  PayloadPools() = default;
  PayloadPools(const PayloadPools&) = delete;
  PayloadPools& operator=(const PayloadPools&) = delete;
  ~PayloadPools() {
    for (PoolBase* pool : pools_) {
      if (pool != nullptr) pool->drop_holder();
    }
  }

  /// Freelist pop: a default-constructed T, refcount 1. Fill it through
  /// `ref.edit()` before publishing.
  template <typename T>
  Ref<T> make() {
    return pool<T>().acquire();
  }

  /// Pooled slot filled from an existing value (the flood/forward copy
  /// paths): one assignment, no allocation on the steady state.
  template <typename T>
  Ref<std::decay_t<T>> make_from(T&& value) {
    Ref<std::decay_t<T>> ref = pool<std::decay_t<T>>().acquire();
    *ref.edit() = std::forward<T>(value);
    return ref;
  }

  struct Stats {
    std::uint64_t acquires = 0;     // total payload acquisitions
    std::uint64_t slab_allocs = 0;  // allocations NOT avoided (misses)
    std::size_t peak_live = 0;      // max payloads live at once (any type)
  };
  /// Fixed-seed aggregate over every typed pool. Thread-count invariant:
  /// pools are per-run, never shared or thread-local.
  Stats stats() const noexcept {
    Stats total;
    for (const PoolBase* pool : pools_) {
      if (pool == nullptr) continue;
      total.acquires += pool->acquires;
      total.slab_allocs += pool->slab_allocs;
      total.peak_live += pool->peak_live;
    }
    return total;
  }

 private:
  template <typename T>
  Pool<T>& pool() {
    const std::size_t index = type_index<T>();
    if (index >= pools_.size()) pools_.resize(index + 1, nullptr);
    if (pools_[index] == nullptr) pools_[index] = new Pool<T>();
    return *static_cast<Pool<T>*>(pools_[index]);
  }

  template <typename T>
  static std::size_t type_index() {
    static const std::size_t index =
        next_type_index_.fetch_add(1, std::memory_order_relaxed);
    return index;
  }

  static inline std::atomic<std::size_t> next_type_index_{0};

  std::vector<PoolBase*> pools_;
};

}  // namespace p2p::net
