#include "net/neighbor_index.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace p2p::net {

namespace {
constexpr sim::SimTime kNever = std::numeric_limits<sim::SimTime>::infinity();

// Upper bound on how stale an indexed position may get, in units of the
// refresh tolerance. Bounds the age-compensated prune reach (tolerance
// 0.25 s, 1 m/s => at most +1 m over the fresh-entry reach) at the cost
// of resampling a parked node once per kMaxAgeTolerances windows.
constexpr double kMaxAgeTolerances = 4.0;

/// Min-heap order on (deadline, id).
bool due_after(const NeighborIndex::Due& a,
               const NeighborIndex::Due& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline > b.deadline;
  return a.id > b.id;
}
}  // namespace

NeighborIndex::NeighborIndex(geo::Region region, double range,
                             double tolerance_s, double max_speed)
    : region_(region),
      range_(range),
      tolerance_(tolerance_s),
      max_speed_(max_speed),
      drift_margin_(2.0 * tolerance_s * max_speed) {
  P2P_ASSERT(range > 0.0);
  P2P_ASSERT(region.width > 0.0 && region.height > 0.0);
  // Cells must be at least (range + drift margin) wide so the 3x3 block
  // around a query point is guaranteed to contain every true neighbor even
  // with stale indexed positions.
  cell_size_ = range + drift_margin_;
  cols_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(region.width / cell_size_));
  rows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(region.height / cell_size_));
  cell_start_.resize(cols_ * rows_ + 1, 0);
  cell_fill_.resize(cols_ * rows_, 0);
  cell_min_sampled_.resize(cols_ * rows_, 0.0);
}

std::size_t NeighborIndex::cell_of(geo::Vec2 p) const noexcept {
  const geo::Vec2 q = region_.clamp(p);
  auto cx = static_cast<std::size_t>(q.x / cell_size_);
  auto cy = static_cast<std::size_t>(q.y / cell_size_);
  if (cx >= cols_) cx = cols_ - 1;
  if (cy >= rows_) cy = rows_ - 1;
  return cy * cols_ + cx;
}

sim::SimTime NeighborIndex::cell_safe_deadline(geo::Vec2 p, std::size_t cell,
                                               sim::SimTime t) const noexcept {
  if (max_speed_ <= 0.0) return kNever;
  const geo::Vec2 q = region_.clamp(p);
  const std::size_t cx = cell % cols_;
  const std::size_t cy = cell / cols_;
  // Distance to the nearest boundary the node could actually cross.
  // Region edges are not crossable (cell_of clamps), so border cells are
  // unbounded on their outer sides.
  double d = kNever;
  if (cx > 0) d = std::min(d, q.x - static_cast<double>(cx) * cell_size_);
  if (cx + 1 < cols_) {
    d = std::min(d, static_cast<double>(cx + 1) * cell_size_ - q.x);
  }
  if (cy > 0) d = std::min(d, q.y - static_cast<double>(cy) * cell_size_);
  if (cy + 1 < rows_) {
    d = std::min(d, static_cast<double>(cy + 1) * cell_size_ - q.y);
  }
  if (d < 0.0) d = 0.0;  // fp slack at a boundary: always resample
  // Cap entry age even when the node cannot cross a boundary (it is
  // parked mid-cell, or the grid has a single cell): the candidate prune
  // widens its reach by age * max_speed, so unbounded age would degrade
  // the prune to accept-everything in that cell. Resampling earlier than
  // strictly necessary is always safe for the bit-identity contract — a
  // full rebuild resamples every node.
  const sim::SimTime cap = t + kMaxAgeTolerances * tolerance_;
  if (d == kNever) return cap;
  return std::min(t + d / max_speed_, cap);
}

void NeighborIndex::heap_push(Due due) {
  push_tracked(heap_, due);
  std::push_heap(heap_.begin(), heap_.end(), due_after);
}

NeighborIndex::Due NeighborIndex::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), due_after);
  const Due due = heap_.back();
  heap_.pop_back();
  return due;
}

void NeighborIndex::rebuild_csr(std::size_t n) {
  // Counting sort of ids into cells. Ids are visited ascending, so every
  // cell comes out id-sorted — the candidate order both maintenance modes
  // guarantee. No mobility sampling happens here: this pass only moves
  // cached per-node state into the contiguous query layout.
  const std::size_t cells = cols_ * rows_;
  std::fill(cell_start_.begin(), cell_start_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++cell_start_[node_cell_[i] + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  if (cell_nodes_.size() < n) {
    ++alloc_events_;
    cell_nodes_.resize(n);
    cell_pos_.resize(n);
  }
  std::copy(cell_start_.begin(), cell_start_.end() - 1, cell_fill_.begin());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = node_cell_[i];
    const std::uint32_t at = cell_fill_[c]++;
    cell_nodes_[at] = static_cast<NodeId>(i);
    cell_pos_[at] = node_pos_[i];
    // First entry of the cell resets the min (cell_fill_ just advanced to
    // start + 1); later entries fold in.
    if (at == cell_start_[c]) {
      cell_min_sampled_[c] = node_sampled_[i];
    } else if (node_sampled_[i] < cell_min_sampled_[c]) {
      cell_min_sampled_[c] = node_sampled_[i];
    }
  }
}

void NeighborIndex::refresh(sim::SimTime now,
                            const std::vector<geo::Vec2>& positions) {
  if (is_fresh(now, positions.size())) return;
  const std::size_t n = positions.size();
  // Full rebuilds have no use for the deadline heap (every refresh
  // resamples everyone); drop it and let refresh_incremental rebuild it
  // lazily if the caller ever switches modes.
  heap_.clear();
  heap_valid_ = false;
  if (node_cell_.size() < n) {
    ++alloc_events_;
    node_pos_.resize(n);
    node_sampled_.resize(n);
    node_cell_.resize(n);
    node_deadline_.resize(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    node_pos_[i] = positions[i];
    node_sampled_[i] = now;
    node_cell_[i] = static_cast<std::uint32_t>(cell_of(positions[i]));
  }
  nodes_resampled_ += n;
  rebuild_csr(n);
  indexed_count_ = n;
  built_at_ = now;
  ever_built_ = true;
}

void NeighborIndex::refresh_incremental(sim::SimTime now, std::size_t n,
                                        PositionSampler sampler, void* ctx) {
  // Gated on the SAME staleness tolerance as the full rebuild, so both
  // modes refresh at identical instants T_k. Within a window the layout
  // stays frozen — exactly like the full rebuild, whose assignments are
  // the candidate order the RNG draw sequence is keyed to. At T_k the
  // nodes whose cell-safe deadline expired are resampled; the rest
  // provably sit in cell_of(position at T_k) already, so the resulting
  // assignment equals a full rebuild at T_k cell-for-cell.
  if (is_fresh(now, n)) return;
  // New nodes: sample and register. Reserving the heap and the due
  // scratch up front makes their steady-state use provably allocation-free:
  // every node has exactly one live heap entry (pop before re-arm), so
  // neither can outgrow n.
  if (node_cell_.size() < n) {
    ++alloc_events_;
    node_pos_.resize(n);
    node_sampled_.resize(n);
    node_cell_.resize(n);
    node_deadline_.resize(n);
    heap_.reserve(n);
    due_scratch_.reserve(n);
  }
  if (!heap_valid_) {
    // A full rebuild ran since the last incremental refresh (mode switch):
    // its entries carry no deadlines. Re-arm everyone once.
    heap_.clear();
    for (std::size_t i = 0; i < indexed_count_; ++i) {
      const sim::SimTime deadline =
          cell_safe_deadline(node_pos_[i], node_cell_[i], node_sampled_[i]);
      node_deadline_[i] = deadline;
      heap_.push_back(Due{deadline, static_cast<NodeId>(i)});
    }
    std::make_heap(heap_.begin(), heap_.end(), due_after);
    heap_valid_ = true;
  }
  for (std::size_t i = indexed_count_; i < n; ++i) {
    const geo::Vec2 pos = sampler(ctx, static_cast<NodeId>(i));
    const auto c = static_cast<std::uint32_t>(cell_of(pos));
    node_pos_[i] = pos;
    node_sampled_[i] = now;
    node_cell_[i] = c;
    const sim::SimTime deadline = cell_safe_deadline(pos, c, now);
    node_deadline_[i] = deadline;
    heap_push(Due{deadline, static_cast<NodeId>(i)});
    ++nodes_resampled_;
  }
  // Expired deadlines: these nodes may have crossed a cell boundary since
  // they were last sampled — resample just them. Two-phase (drain, then
  // re-arm) because re-arming pushes fresh heap entries, some of which can
  // be due again immediately (a node sitting on a boundary).
  due_scratch_.clear();
  while (!heap_.empty() && heap_.front().deadline <= now) {
    push_tracked(due_scratch_, heap_pop());
  }
  for (const Due& due : due_scratch_) {
    const geo::Vec2 pos = sampler(ctx, due.id);
    const auto c = static_cast<std::uint32_t>(cell_of(pos));
    node_pos_[due.id] = pos;
    node_sampled_[due.id] = now;
    node_cell_[due.id] = c;
    const sim::SimTime deadline = cell_safe_deadline(pos, c, now);
    node_deadline_[due.id] = deadline;
    heap_push(Due{deadline, due.id});
    ++nodes_resampled_;
  }
  rebuild_csr(n);
  indexed_count_ = n;
  built_at_ = now;
  ever_built_ = true;
}

void NeighborIndex::candidates_near(geo::Vec2 center, sim::SimTime now,
                                    std::vector<NodeId>* out) const {
  P2P_ASSERT(out != nullptr);
  P2P_ASSERT_MSG(ever_built_, "candidates_near before first refresh");
  out->clear();
  const geo::Vec2 q = region_.clamp(center);
  const auto cx = static_cast<std::ptrdiff_t>(q.x / cell_size_);
  const auto cy = static_cast<std::ptrdiff_t>(q.y / cell_size_);
  // Full-rebuild mode samples every entry at built_at_, so the per-span
  // oldest-sample fold below is a known constant — skip it and use one
  // uniform reach. (heap_valid_ is only set by incremental refreshes.)
  const bool uniform_age = !heap_valid_;
  const double uniform_reach = range_ + (now - built_at_) * max_speed_;
  const double uniform_reach2 = uniform_reach * uniform_reach;
  const std::ptrdiff_t x0 = cx > 0 ? cx - 1 : 0;
  const std::ptrdiff_t x1 = cx + 1 < static_cast<std::ptrdiff_t>(cols_)
                                ? cx + 1
                                : static_cast<std::ptrdiff_t>(cols_) - 1;
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    const std::ptrdiff_t y = cy + dy;
    if (y < 0 || y >= static_cast<std::ptrdiff_t>(rows_)) continue;
    const std::size_t row = static_cast<std::size_t>(y) * cols_;
    const std::size_t c0 = row + static_cast<std::size_t>(x0);
    const std::size_t c1 = row + static_cast<std::size_t>(x1);
    // The row's cells are adjacent in the CSR layout, so the triple is one
    // contiguous span scanned with a single filter.
    const std::uint32_t lo = cell_start_[c0];
    const std::uint32_t hi = cell_start_[c1 + 1];
    if (lo == hi) continue;
    // Age-compensated prune, hoisted per row-triple: a true neighbor sits
    // within `range_` of the (fresh) query center, and its stored position
    // can sit at most age * max_speed from its true position, so
    // range_ + age * max_speed never rejects a true neighbor. The triple's
    // oldest sample bounds every entry in the span. No drift margin is
    // added on top — the margin exists to size cells for 3x3 *coverage*
    // (true positions stay within one tolerance band of their assigned
    // cell); the prune radius only needs the stored-position error bound.
    double reach2 = uniform_reach2;
    if (!uniform_age) {
      sim::SimTime oldest = now;  // empty cells hold stale mins; skip them
      for (std::size_t c = c0; c <= c1; ++c) {
        if (cell_start_[c] != cell_start_[c + 1] &&
            cell_min_sampled_[c] < oldest) {
          oldest = cell_min_sampled_[c];
        }
      }
      const double reach = range_ + (now - oldest) * max_speed_;
      reach2 = reach * reach;
    }
    for (std::uint32_t k = lo; k < hi; ++k) {
      if (geo::distance2(cell_pos_[k], center) <= reach2) {
        out->push_back(cell_nodes_[k]);
      }
    }
  }
}

std::size_t NeighborIndex::memory_bytes() const noexcept {
  return node_pos_.capacity() * sizeof(geo::Vec2) +
         node_sampled_.capacity() * sizeof(sim::SimTime) +
         node_cell_.capacity() * sizeof(std::uint32_t) +
         node_deadline_.capacity() * sizeof(sim::SimTime) +
         heap_.capacity() * sizeof(Due) +
         due_scratch_.capacity() * sizeof(Due) +
         cell_start_.capacity() * sizeof(std::uint32_t) +
         cell_fill_.capacity() * sizeof(std::uint32_t) +
         cell_nodes_.capacity() * sizeof(NodeId) +
         cell_pos_.capacity() * sizeof(geo::Vec2) +
         cell_min_sampled_.capacity() * sizeof(sim::SimTime);
}

}  // namespace p2p::net
