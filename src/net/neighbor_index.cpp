#include "net/neighbor_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace p2p::net {

NeighborIndex::NeighborIndex(geo::Region region, double range,
                             double tolerance_s, double max_speed)
    : region_(region),
      range_(range),
      tolerance_(tolerance_s),
      drift_margin_(2.0 * tolerance_s * max_speed) {
  P2P_ASSERT(range > 0.0);
  P2P_ASSERT(region.width > 0.0 && region.height > 0.0);
  // Cells must be at least (range + drift margin) wide so the 3x3 block
  // around a query point is guaranteed to contain every true neighbor even
  // with stale indexed positions.
  cell_size_ = range + drift_margin_;
  cols_ = std::max<std::size_t>(1, static_cast<std::size_t>(region.width / cell_size_));
  rows_ = std::max<std::size_t>(1, static_cast<std::size_t>(region.height / cell_size_));
  cell_start_.assign(cols_ * rows_ + 1, 0);
}

std::size_t NeighborIndex::cell_of(geo::Vec2 p) const noexcept {
  const geo::Vec2 q = region_.clamp(p);
  auto cx = static_cast<std::size_t>(q.x / cell_size_);
  auto cy = static_cast<std::size_t>(q.y / cell_size_);
  if (cx >= cols_) cx = cols_ - 1;
  if (cy >= rows_) cy = rows_ - 1;
  return cy * cols_ + cx;
}

void NeighborIndex::refresh(sim::SimTime now,
                            const std::vector<geo::Vec2>& positions) {
  if (is_fresh(now, positions.size())) return;
  // Counting sort into the CSR arrays. Nodes stay id-ascending within a
  // cell (stable by construction), so query output order is unchanged.
  const std::size_t ncells = cols_ * rows_;
  const std::size_t n = positions.size();
  cell_start_.assign(ncells + 1, 0);
  cell_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::uint32_t>(cell_of(positions[i]));
    cell_scratch_[i] = c;
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  cell_nodes_.resize(n);
  cell_pos_.resize(n);
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t k = cursor[cell_scratch_[i]]++;
    cell_nodes_[k] = static_cast<NodeId>(i);
    cell_pos_[k] = positions[i];
  }
  indexed_count_ = n;
  built_at_ = now;
  ever_built_ = true;
}

void NeighborIndex::candidates_near(geo::Vec2 center,
                                    std::vector<NodeId>* out) const {
  P2P_ASSERT(out != nullptr);
  P2P_ASSERT_MSG(ever_built_, "candidates_near before first refresh");
  out->clear();
  const geo::Vec2 q = region_.clamp(center);
  const auto cx = static_cast<std::ptrdiff_t>(q.x / cell_size_);
  const auto cy = static_cast<std::ptrdiff_t>(q.y / cell_size_);
  const double reach = range_ + drift_margin_;
  const double reach2 = reach * reach;
  const std::ptrdiff_t x0 = cx > 0 ? cx - 1 : 0;
  const std::ptrdiff_t x1 =
      cx + 1 < static_cast<std::ptrdiff_t>(cols_) ? cx + 1
                                                  : static_cast<std::ptrdiff_t>(cols_) - 1;
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    const std::ptrdiff_t y = cy + dy;
    if (y < 0 || y >= static_cast<std::ptrdiff_t>(rows_)) continue;
    // The row's three cells are contiguous in the CSR arrays: one scan.
    const std::size_t row = static_cast<std::size_t>(y) * cols_;
    const std::uint32_t begin = cell_start_[row + static_cast<std::size_t>(x0)];
    const std::uint32_t end = cell_start_[row + static_cast<std::size_t>(x1) + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      if (geo::distance2(cell_pos_[k], center) <= reach2) {
        out->push_back(cell_nodes_[k]);
      }
    }
  }
}

}  // namespace p2p::net
