#include "net/neighbor_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace p2p::net {

NeighborIndex::NeighborIndex(geo::Region region, double range,
                             double tolerance_s, double max_speed)
    : region_(region),
      range_(range),
      tolerance_(tolerance_s),
      drift_margin_(2.0 * tolerance_s * max_speed) {
  P2P_ASSERT(range > 0.0);
  P2P_ASSERT(region.width > 0.0 && region.height > 0.0);
  // Cells must be at least (range + drift margin) wide so the 3x3 block
  // around a query point is guaranteed to contain every true neighbor even
  // with stale indexed positions.
  cell_size_ = range + drift_margin_;
  cols_ = std::max<std::size_t>(1, static_cast<std::size_t>(region.width / cell_size_));
  rows_ = std::max<std::size_t>(1, static_cast<std::size_t>(region.height / cell_size_));
  cells_.resize(cols_ * rows_);
}

std::size_t NeighborIndex::cell_of(geo::Vec2 p) const noexcept {
  const geo::Vec2 q = region_.clamp(p);
  auto cx = static_cast<std::size_t>(q.x / cell_size_);
  auto cy = static_cast<std::size_t>(q.y / cell_size_);
  if (cx >= cols_) cx = cols_ - 1;
  if (cy >= rows_) cy = rows_ - 1;
  return cy * cols_ + cx;
}

void NeighborIndex::refresh(sim::SimTime now,
                            const std::vector<geo::Vec2>& positions) {
  if (is_fresh(now, positions.size())) return;
  for (auto& cell : cells_) cell.clear();
  indexed_positions_ = positions;
  for (NodeId i = 0; i < positions.size(); ++i) {
    cells_[cell_of(positions[i])].push_back(i);
  }
  built_at_ = now;
  ever_built_ = true;
}

void NeighborIndex::candidates_near(geo::Vec2 center,
                                    std::vector<NodeId>* out) const {
  P2P_ASSERT(out != nullptr);
  P2P_ASSERT_MSG(ever_built_, "candidates_near before first refresh");
  out->clear();
  const geo::Vec2 q = region_.clamp(center);
  const auto cx = static_cast<std::ptrdiff_t>(q.x / cell_size_);
  const auto cy = static_cast<std::ptrdiff_t>(q.y / cell_size_);
  const double reach = range_ + drift_margin_;
  const double reach2 = reach * reach;
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      const std::ptrdiff_t x = cx + dx;
      const std::ptrdiff_t y = cy + dy;
      if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(cols_) ||
          y >= static_cast<std::ptrdiff_t>(rows_)) {
        continue;
      }
      for (const NodeId id :
           cells_[static_cast<std::size_t>(y) * cols_ + static_cast<std::size_t>(x)]) {
        if (geo::distance2(indexed_positions_[id], center) <= reach2) {
          out->push_back(id);
        }
      }
    }
  }
}

}  // namespace p2p::net
