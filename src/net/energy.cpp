#include "net/energy.hpp"

namespace p2p::net {

double EnergyModel::remaining_fraction() const noexcept {
  if (params_.battery_j == std::numeric_limits<double>::infinity()) return 1.0;
  if (params_.battery_j <= 0.0) return 0.0;
  const double f = (params_.battery_j - consumed_) / params_.battery_j;
  return f < 0.0 ? 0.0 : f;
}

void EnergyModel::consume_tx(std::size_t bytes) noexcept {
  consumed_ += params_.tx_base_j + params_.tx_per_byte_j * static_cast<double>(bytes);
  ++frames_sent_;
  bytes_sent_ += bytes;
}

void EnergyModel::consume_rx(std::size_t bytes) noexcept {
  consumed_ += params_.rx_base_j + params_.rx_per_byte_j * static_cast<double>(bytes);
  ++frames_received_;
  bytes_received_ += bytes;
}

}  // namespace p2p::net
