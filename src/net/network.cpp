#include "net/network.hpp"

#include <utility>

#include "util/assert.hpp"

namespace p2p::net {

Network::Network(sim::Simulator& simulator, const NetworkParams& params,
                 sim::RngStream mac_rng)
    : sim_(&simulator),
      params_(params),
      mac_rng_(std::move(mac_rng)),
      index_(params.region, params.range, params.index_tolerance_s,
             params.max_speed_hint) {}

NodeId Network::add_node(std::unique_ptr<mobility::MobilityModel> mobility,
                         const EnergyParams& energy) {
  P2P_ASSERT(mobility != nullptr);
  NodeState state;
  state.mobility = std::move(mobility);
  state.energy = EnergyModel(energy);
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::attach_listener(NodeId id, LinkListener* listener) {
  P2P_ASSERT(id < nodes_.size());
  P2P_ASSERT(listener != nullptr);
  nodes_[id].listeners.push_back(listener);
}

geo::Vec2 Network::position_of(NodeId id) {
  P2P_ASSERT(id < nodes_.size());
  return nodes_[id].mobility->position_at(sim_->now());
}

bool Network::alive(NodeId id) const {
  P2P_ASSERT(id < nodes_.size());
  return !nodes_[id].failed && nodes_[id].energy.alive();
}

void Network::set_failed(NodeId id, bool failed) {
  P2P_ASSERT(id < nodes_.size());
  nodes_[id].failed = failed;
}

EnergyModel& Network::energy(NodeId id) {
  P2P_ASSERT(id < nodes_.size());
  return nodes_[id].energy;
}

const EnergyModel& Network::energy(NodeId id) const {
  P2P_ASSERT(id < nodes_.size());
  return nodes_[id].energy;
}

bool Network::in_range(NodeId a, NodeId b) {
  P2P_ASSERT(a < nodes_.size() && b < nodes_.size());
  if (a == b) return true;
  const double r2 = params_.range * params_.range;
  return geo::distance2(position_of(a), position_of(b)) <= r2;
}

void Network::refresh_index() {
  // NeighborIndex decides internally whether it is stale; we pay the O(n)
  // position sampling only when it actually rebuilds, so probe first.
  if (index_.is_fresh(sim_->now(), nodes_.size())) return;
  scratch_positions_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    scratch_positions_[i] = nodes_[i].mobility->position_at(sim_->now());
  }
  index_.refresh(sim_->now(), scratch_positions_);
}

void Network::receivers_of(NodeId sender, std::vector<NodeId>* out) {
  refresh_index();
  index_.candidates_near(position_of(sender), &scratch_candidates_);
  out->clear();
  const double r2 = params_.range * params_.range;
  const geo::Vec2 sp = position_of(sender);
  for (const NodeId cand : scratch_candidates_) {
    if (cand == sender || !alive(cand)) continue;
    if (geo::distance2(sp, nodes_[cand].mobility->position_at(sim_->now())) <= r2) {
      out->push_back(cand);
    }
  }
}

void Network::neighbors_of(NodeId id, std::vector<NodeId>* out) {
  P2P_ASSERT(id < nodes_.size());
  P2P_ASSERT(out != nullptr);
  receivers_of(id, out);
}

std::vector<std::vector<NodeId>> Network::adjacency_snapshot() {
  std::vector<std::vector<NodeId>> adj(nodes_.size());
  refresh_index();
  // Force an exact snapshot: sample every position fresh.
  scratch_positions_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    scratch_positions_[i] = nodes_[i].mobility->position_at(sim_->now());
  }
  const double r2 = params_.range * params_.range;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!alive(i)) continue;
    index_.candidates_near(scratch_positions_[i], &scratch_candidates_);
    for (const NodeId j : scratch_candidates_) {
      if (j <= i || !alive(j)) continue;
      if (geo::distance2(scratch_positions_[i], scratch_positions_[j]) <= r2) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  return adj;
}

sim::SimTime Network::schedule_tx(NodeState& node, double duration) {
  const sim::SimTime defer = mac_rng_.uniform(0.0, params_.mac.jitter_max_s);
  sim::SimTime start = sim_->now() + defer;
  if (start < node.next_free_tx) start = node.next_free_tx;
  node.next_free_tx = start + duration;
  return start;
}

void Network::deliver(NodeId receiver, Frame frame) {
  NodeState& node = nodes_[receiver];
  if (!alive(receiver)) {
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), frame.sender, receiver, frame.size_bytes);
    }
    return;
  }
  node.energy.consume_rx(frame.size_bytes);
  ++frames_rx_;
  if (observer_ != nullptr) {
    observer_->on_deliver(sim_->now(), receiver, frame.sender, frame.size_bytes);
  }
  for (LinkListener* listener : node.listeners) listener->on_frame(frame);
}

void Network::broadcast(NodeId sender, FramePayloadPtr payload,
                        std::size_t bytes) {
  P2P_ASSERT(sender < nodes_.size());
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  ++frames_tx_;
  if (observer_ != nullptr) {
    observer_->on_transmit(sim_->now(), sender, kBroadcast, bytes);
  }

  std::vector<NodeId> receivers;
  receivers_of(sender, &receivers);
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = schedule_tx(node, duration);
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;

  Frame frame{sender, kBroadcast, bytes, std::move(payload)};
  const geo::Vec2 sender_pos = position_of(sender);
  for (const NodeId r : receivers) {
    bool lost = params_.mac.loss_probability > 0.0 &&
                mac_rng_.chance(params_.mac.loss_probability);
    if (!lost && params_.mac.gray_zone_fraction > 0.0) {
      const double dist = geo::distance(sender_pos, position_of(r));
      lost = !mac_rng_.chance(
          gray_zone_delivery_probability(params_.mac, dist, params_.range));
    }
    if (lost) {
      ++frames_lost_;
      if (observer_ != nullptr) {
        observer_->on_drop(sim_->now(), sender, r, bytes);
      }
      continue;
    }
    sim_->at(arrival, [this, r, frame] { deliver(r, frame); });
  }
}

void Network::unicast(NodeId sender, NodeId neighbor, FramePayloadPtr payload,
                      std::size_t bytes) {
  P2P_ASSERT(sender < nodes_.size());
  P2P_ASSERT(neighbor < nodes_.size());
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  ++frames_tx_;
  if (observer_ != nullptr) {
    observer_->on_transmit(sim_->now(), sender, neighbor, bytes);
  }

  if (!alive(neighbor) || !in_range(sender, neighbor)) {
    ++frames_lost_;
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), sender, neighbor, bytes);
    }
    return;
  }
  bool lost = params_.mac.loss_probability > 0.0 &&
              mac_rng_.chance(params_.mac.loss_probability);
  if (!lost && params_.mac.gray_zone_fraction > 0.0) {
    const double dist = geo::distance(position_of(sender), position_of(neighbor));
    lost = !mac_rng_.chance(
        gray_zone_delivery_probability(params_.mac, dist, params_.range));
  }
  if (lost) {
    ++frames_lost_;
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), sender, neighbor, bytes);
    }
    return;
  }
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = schedule_tx(node, duration);
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;
  Frame frame{sender, neighbor, bytes, std::move(payload)};
  sim_->at(arrival, [this, neighbor, frame = std::move(frame)] {
    deliver(neighbor, frame);
  });
}

}  // namespace p2p::net
