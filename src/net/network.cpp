#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace p2p::net {

Network::Network(sim::Simulator& simulator, const NetworkParams& params,
                 sim::RngStream mac_rng)
    : sim_(&simulator),
      params_(params),
      mac_rng_(std::move(mac_rng)),
      index_(params.region, params.range, params.index_tolerance_s,
             params.max_speed_hint) {}

NodeId Network::add_node(std::unique_ptr<mobility::MobilityModel> mobility,
                         const EnergyParams& energy) {
  P2P_ASSERT(mobility != nullptr);
  NodeState state;
  state.mobility = std::move(mobility);
  state.energy = EnergyModel(energy);
  nodes_.push_back(std::move(state));
  pos_cache_.emplace_back();
  down_.push_back(0);
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  refresh_down(id);  // a zero-capacity battery is dead on arrival
  ++liveness_epoch_;  // a new node invalidates any shared adjacency memo
  return id;
}

void Network::attach_listener(NodeId id, LinkListener* listener) {
  P2P_ASSERT(id < nodes_.size());
  P2P_ASSERT(listener != nullptr);
  nodes_[id].listeners.push_back(listener);
}

geo::Vec2 Network::position_of(NodeId id) {
  // Keyed to the *global* clock — forbidden inside a shard window (use the
  // index's cached positions there; see the sharded_* paths).
  P2P_DASSERT(tls_lane_ == nullptr);
  P2P_ASSERT(id < nodes_.size());
  PosCache& cache = pos_cache_[id];
  const sim::SimTime now = sim_->now();
  if (cache.time != now) {
    cache.pos = nodes_[id].mobility->position_at(now);
    cache.time = now;
  }
  return cache.pos;
}

void Network::set_failed(NodeId id, bool failed) {
  P2P_ASSERT(id < nodes_.size());
  nodes_[id].failed = failed;
  refresh_down(id);
}

void Network::purge_expired_blackouts() {
  const sim::SimTime now = sim_->now();
  blackout_scratch_.clear();
  blackout_map_.for_each([&](std::uint64_t link, sim::SimTime end) {
    if (end <= now) blackout_scratch_.push_back(link);
  });
  for (const std::uint64_t link : blackout_scratch_) {
    blackout_map_.erase(link);
  }
  blackout_purge_at_ = std::max<std::size_t>(64, blackout_map_.size() * 2);
}

void Network::set_link_blackout(NodeId a, NodeId b, sim::SimTime until) {
  P2P_DASSERT(tls_lane_ == nullptr);  // ledger writes happen between windows
  P2P_ASSERT(a < nodes_.size() && b < nodes_.size() && a != b);
  if (blackout_map_.size() >= blackout_purge_at_) purge_expired_blackouts();
  sim::SimTime& end = blackout_map_.get_or_insert(link_key(a, b));
  if (until > end) end = until;
  if (until > blackout_horizon_) blackout_horizon_ = until;
  faults_active_ = true;
}

bool Network::link_blacked_out(NodeId a, NodeId b) const {
  // Ledger holds only links that were actually suppressed; absent means
  // never blacked out.
  const sim::SimTime* end = blackout_map_.find(link_key(a, b));
  return end != nullptr && *end > sim_->now();
}

bool Network::link_usable(NodeId a, NodeId b) {
  if (!alive(a) || !alive(b)) return false;
  if (Lane* lane = tls_lane_) {
    if (!sharded_in_range(a, b)) return false;
    return !(faults_frozen_ && sharded_link_blacked_out(*lane, a, b));
  }
  if (!in_range(a, b)) return false;
  return !(faults_active() && link_blacked_out(a, b));
}

bool Network::channel_lost(sim::RngStream& rng, const geo::Vec2& from,
                           const geo::Vec2& to) {
  const double loss_p = params_.mac.loss_probability;
  bool lost = loss_p > 0.0 && rng.chance(loss_p);
  if (!lost && params_.mac.gray_zone_fraction > 0.0) {
    const double dist = geo::distance(from, to);
    lost = !rng.chance(
        gray_zone_delivery_probability(params_.mac, dist, params_.range));
  }
  return lost;
}

bool Network::channel_lost_faulted(sim::RngStream& rng, const geo::Vec2& from,
                                   const geo::Vec2& to) {
  double loss_p = params_.mac.loss_probability;
  if (burst_loss_ > 0.0) {
    // Gilbert-Elliott bad state: compose with the base loss. With the
    // burst inactive this is exactly the base probability, including the
    // draw-only-when-positive fast path, so faulted-but-burst-free runs
    // stay bit-identical.
    loss_p = 1.0 - (1.0 - loss_p) * (1.0 - burst_loss_);
  }
  bool lost = loss_p > 0.0 && rng.chance(loss_p);
  if (!lost && params_.mac.gray_zone_fraction > 0.0) {
    const double dist = geo::distance(from, to);
    lost = !rng.chance(
        gray_zone_delivery_probability(params_.mac, dist, params_.range));
  }
  return lost;
}

EnergyModel& Network::energy(NodeId id) {
  P2P_ASSERT(id < nodes_.size());
  return nodes_[id].energy;
}

const EnergyModel& Network::energy(NodeId id) const {
  P2P_ASSERT(id < nodes_.size());
  return nodes_[id].energy;
}

bool Network::in_range(NodeId a, NodeId b) {
  if (tls_lane_ != nullptr) return sharded_in_range(a, b);
  P2P_ASSERT(a < nodes_.size() && b < nodes_.size());
  if (a == b) return true;
  const double r2 = params_.range * params_.range;
  return geo::distance2(position_of(a), position_of(b)) <= r2;
}

geo::Vec2 Network::sample_position(void* ctx, NodeId id) {
  return static_cast<Network*>(ctx)->position_of(id);
}

void Network::refresh_index() {
  const sim::SimTime now = sim_->now();
  if (params_.incremental_index &&
      nodes_.size() >= params_.incremental_index_min_nodes) {
    // O(new + due): the index resamples only nodes whose cell-safe
    // deadline expired; everyone else's bucket assignment is provably
    // still what a full rebuild would compute.
    index_.refresh_incremental(now, nodes_.size(), &Network::sample_position,
                               this);
    return;
  }
  // Full-rebuild mode: NeighborIndex decides internally whether it is
  // stale; we pay the O(n) position sampling only when it actually
  // rebuilds, so probe first.
  if (index_.is_fresh(now, nodes_.size())) return;
  scratch_positions_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    scratch_positions_[i] = position_of(i);  // warms the per-node cache too
  }
  index_.refresh(now, scratch_positions_);
}

void Network::receivers_of(NodeId sender, std::vector<NodeId>* out) {
  refresh_index();
  const geo::Vec2 sp = position_of(sender);  // sampled once, reused below
  index_.candidates_near(sp, sim_->now(), &scratch_candidates_);
  out->clear();
  const double r2 = params_.range * params_.range;
  for (const NodeId cand : scratch_candidates_) {
    if (cand == sender || !alive(cand)) continue;
    if (geo::distance2(sp, position_of(cand)) <= r2) {
      out->push_back(cand);
    }
  }
}

void Network::neighbors_of(NodeId id, std::vector<NodeId>* out) {
  P2P_ASSERT(id < nodes_.size());
  P2P_ASSERT(out != nullptr);
  receivers_of(id, out);
}

std::vector<std::vector<NodeId>> Network::adjacency_snapshot() {
  std::vector<std::vector<NodeId>> adj;
  adjacency_snapshot(&adj);
  return adj;
}

void Network::adjacency_snapshot(std::vector<std::vector<NodeId>>* out) {
  P2P_DASSERT(tls_lane_ == nullptr);  // global-clock snapshot, barrier-only
  P2P_ASSERT(out != nullptr);
  out->resize(nodes_.size());
  refresh_index();
  // Force an exact snapshot: sample every position fresh (memoized per
  // node for this instant).
  scratch_positions_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    scratch_positions_[i] = position_of(i);
  }
  const double r2 = params_.range * params_.range;
  std::size_t half_edges = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    auto& row = (*out)[i];
    row.clear();  // keeps capacity from the previous snapshot
    if (row.capacity() == 0 && degree_hint_ > 0) row.reserve(degree_hint_);
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!alive(i)) continue;
    index_.candidates_near(scratch_positions_[i], sim_->now(),
                           &scratch_candidates_);
    for (const NodeId j : scratch_candidates_) {
      if (j <= i || !alive(j)) continue;
      if (geo::distance2(scratch_positions_[i], scratch_positions_[j]) <= r2) {
        (*out)[i].push_back(j);
        (*out)[j].push_back(i);
        half_edges += 2;
      }
    }
  }
  if (!nodes_.empty()) {
    // Round up: under-reserving costs a realloc, over-reserving a few slots.
    degree_hint_ = (half_edges + nodes_.size() - 1) / nodes_.size() + 1;
  }
}

const std::vector<std::vector<NodeId>>& Network::shared_adjacency() {
  const sim::SimTime now = sim_->now();
  if (shared_adj_time_ == now && shared_adj_epoch_ == liveness_epoch_) {
    return shared_adj_;
  }
  adjacency_snapshot(&shared_adj_);
  shared_adj_time_ = now;
  shared_adj_epoch_ = liveness_epoch_;
  ++adjacency_builds_;
  return shared_adj_;
}

int Network::physical_hop_distance(NodeId a, NodeId b) {
  if (Lane* lane = tls_lane_) return sharded_hop_distance(*lane, a, b);
  // If the memoized snapshot is already fresh (e.g. several query hits at
  // the same instant), a BFS over it is cheapest — no rebuild happens.
  if (shared_adj_time_ == sim_->now() && shared_adj_epoch_ == liveness_epoch_) {
    return graph::bfs_distance(shared_adj_, a, b, bfs_scratch_);
  }
  // Otherwise BFS directly over the spatial grid: same edge relation as
  // adjacency_snapshot() (alive endpoints, fresh positions within range,
  // candidates_near being a guaranteed superset within the drift margin),
  // and the BFS distance is unique, so the result is identical — without
  // paying O(n * k) to materialize every row for one source/target pair.
  const std::size_t n = nodes_.size();
  if (a >= n || b >= n) return graph::kUnreachable;
  if (a == b) return 0;
  if (!alive(a) || !alive(b)) return graph::kUnreachable;
  refresh_index();
  if (grid_stamp_.size() < n) {
    grid_stamp_.resize(n, 0);
    grid_dist_.resize(n);
  }
  const std::uint64_t gen = ++grid_gen_;
  const double r2 = params_.range * params_.range;
  grid_queue_.clear();
  grid_queue_.push_back(a);
  grid_stamp_[a] = gen;
  grid_dist_[a] = 0;
  for (std::size_t head = 0; head < grid_queue_.size(); ++head) {
    const NodeId u = grid_queue_[head];
    const int du = grid_dist_[u];
    const geo::Vec2 up = position_of(u);
    index_.candidates_near(up, sim_->now(), &grid_cand_);
    for (const NodeId v : grid_cand_) {
      if (grid_stamp_[v] == gen || v == u || !alive(v)) continue;
      if (geo::distance2(up, position_of(v)) > r2) continue;
      if (v == b) return du + 1;
      grid_stamp_[v] = gen;
      grid_dist_[v] = du + 1;
      grid_queue_.push_back(v);
    }
  }
  return graph::kUnreachable;
}

sim::SimTime Network::schedule_tx(NodeState& node, double duration) {
  const sim::SimTime defer = mac_rng_.uniform(0.0, params_.mac.jitter_max_s);
  sim::SimTime start = sim_->now() + defer;
  if (start < node.next_free_tx) start = node.next_free_tx;
  node.next_free_tx = start + duration;
  return start;
}

void Network::deliver(NodeId receiver, const Frame& frame) {
  NodeState& node = nodes_[receiver];
  if (!alive(receiver)) {
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), frame.sender, receiver, frame.size_bytes);
    }
    return;
  }
  node.energy.consume_rx(frame.size_bytes);
  refresh_down(receiver);  // rx cost may have emptied the battery
  ++frames_rx_;
  if (observer_ != nullptr) {
    observer_->on_deliver(sim_->now(), receiver, frame.sender, frame.size_bytes);
  }
  for (LinkListener* listener : node.listeners) listener->on_frame(frame);
}

std::uint32_t Network::acquire_batch() {
  if (!free_batches_.empty()) {
    const std::uint32_t batch = free_batches_.back();
    free_batches_.pop_back();
    return batch;
  }
  batch_pool_.emplace_back();
  return static_cast<std::uint32_t>(batch_pool_.size() - 1);
}

void Network::release_batch(std::uint32_t batch) {
  batch_pool_[batch].clear();  // keeps capacity for the next storm
  free_batches_.push_back(batch);
}

void Network::deliver_batch(std::uint32_t batch, const Frame& frame) {
  // Receivers were filtered (range, liveness, channel) at transmit time;
  // liveness is re-checked per delivery inside deliver() because an
  // earlier delivery in this very batch can kill a later receiver.
  // Index on every access: a delivery handler may broadcast, growing the
  // pool vector (a different batch index, but possibly reallocating).
  for (std::size_t i = 0; i < batch_pool_[batch].size(); ++i) {
    deliver(batch_pool_[batch][i], frame);
  }
  release_batch(batch);
}

void Network::broadcast(NodeId sender, FramePayloadPtr payload,
                        std::size_t bytes) {
  P2P_ASSERT(sender < nodes_.size());
  if (Lane* lane = tls_lane_) {
    sharded_broadcast(*lane, sender, std::move(payload), bytes);
    return;
  }
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  refresh_down(sender);  // tx cost may have emptied the battery
  ++frames_tx_;
  if (observer_ != nullptr) {
    observer_->on_transmit(sim_->now(), sender, kBroadcast, bytes);
  }

  refresh_index();
  const geo::Vec2 sender_pos = position_of(sender);
  index_.candidates_near(sender_pos, sim_->now(), &scratch_candidates_);
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = schedule_tx(node, duration);  // jitter draw
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;

  // One pass over the spatial-index candidates: range filter + channel
  // draws, in candidate order. This is the exact receiver order — and the
  // exact mac_rng_ draw order — the per-receiver-event baseline used, so
  // runs stay bit-identical (asserted by Network.BatchedBroadcastMatches*
  // and the golden fig07 test).
  const double r2 = params_.range * params_.range;
  // One gate test per transmission: with no active blackout and no burst
  // the loop below is the exact pre-fault fast path (no per-candidate
  // blackout lookup, no burst compose in the channel draw).
  const bool faulted = faults_active();
  const std::uint32_t batch = acquire_batch();
  for (const NodeId cand : scratch_candidates_) {
    if (cand == sender || !alive(cand)) continue;
    const geo::Vec2 rp = position_of(cand);
    if (geo::distance2(sender_pos, rp) > r2) continue;
    // A blacked-out link behaves like out-of-range: silently skipped, no
    // channel draws (keeps draw order fault-free-identical).
    if (faulted && link_blacked_out(sender, cand)) continue;
    const bool lost = faulted ? channel_lost_faulted(mac_rng_, sender_pos, rp)
                              : channel_lost(mac_rng_, sender_pos, rp);
    if (lost) {
      ++frames_lost_;
      if (observer_ != nullptr) {
        observer_->on_drop(sim_->now(), sender, cand, bytes);
      }
      continue;
    }
    batch_pool_[batch].push_back(cand);
  }
  if (batch_pool_[batch].empty()) {
    release_batch(batch);
    return;
  }

  // ONE arrival event per transmission, carrying the surviving receiver
  // list by pool index and the frame by move: no per-receiver closure,
  // no payload refcount churn. Survivors are delivered in receiver order,
  // which equals the old contiguous FIFO-tied per-receiver event order.
  Frame frame{sender, kBroadcast, bytes, std::move(payload)};
  sim_->at(arrival, [this, batch, frame = std::move(frame)] {
    deliver_batch(batch, frame);
  });
}

void Network::unicast(NodeId sender, NodeId neighbor, FramePayloadPtr payload,
                      std::size_t bytes) {
  P2P_ASSERT(sender < nodes_.size());
  P2P_ASSERT(neighbor < nodes_.size());
  if (Lane* lane = tls_lane_) {
    sharded_unicast(*lane, sender, neighbor, std::move(payload), bytes);
    return;
  }
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  refresh_down(sender);  // tx cost may have emptied the battery
  ++frames_tx_;
  if (observer_ != nullptr) {
    observer_->on_transmit(sim_->now(), sender, neighbor, bytes);
  }

  const bool faulted = faults_active();
  if (!alive(neighbor) || !in_range(sender, neighbor) ||
      (faulted && link_blacked_out(sender, neighbor))) {
    ++frames_lost_;
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), sender, neighbor, bytes);
    }
    return;
  }
  const bool lost =
      faulted
          ? channel_lost_faulted(mac_rng_, position_of(sender),
                                 position_of(neighbor))
          : channel_lost(mac_rng_, position_of(sender), position_of(neighbor));
  if (lost) {
    ++frames_lost_;
    if (observer_ != nullptr) {
      observer_->on_drop(sim_->now(), sender, neighbor, bytes);
    }
    return;
  }
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = schedule_tx(node, duration);
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;
  Frame frame{sender, neighbor, bytes, std::move(payload)};
  sim_->at(arrival, [this, neighbor, frame = std::move(frame)] {
    deliver(neighbor, frame);
  });
}

std::size_t Network::memory_bytes() const noexcept {
  std::size_t bytes = nodes_.capacity() * sizeof(NodeState) +
                      pos_cache_.capacity() * sizeof(PosCache) +
                      down_.capacity() * sizeof(std::uint8_t) +
                      index_.memory_bytes() +
                      scratch_positions_.capacity() * sizeof(geo::Vec2) +
                      scratch_candidates_.capacity() * sizeof(NodeId) +
                      free_batches_.capacity() * sizeof(std::uint32_t) +
                      grid_stamp_.capacity() * sizeof(std::uint64_t) +
                      grid_dist_.capacity() * sizeof(int) +
                      grid_queue_.capacity() * sizeof(NodeId) +
                      grid_cand_.capacity() * sizeof(NodeId) +
                      blackout_map_.memory_bytes() +
                      blackout_scratch_.capacity() * sizeof(std::uint64_t);
  bytes += batch_pool_.capacity() * sizeof(batch_pool_[0]);
  for (const auto& batch : batch_pool_) {
    bytes += batch.capacity() * sizeof(NodeId);
  }
  bytes += shared_adj_.capacity() * sizeof(shared_adj_[0]);
  for (const auto& row : shared_adj_) {
    bytes += row.capacity() * sizeof(NodeId);
  }
  for (const auto& node : nodes_) {
    bytes += node.listeners.capacity() * sizeof(LinkListener*);
  }
  for (const Lane& lane : lanes_) {
    bytes += lane.scratch_candidates.capacity() * sizeof(NodeId) +
             lane.free_batches.capacity() * sizeof(std::uint32_t) +
             lane.outbox.capacity() * sizeof(OutMsg) +
             lane.tx_out.capacity() * sizeof(lane.tx_out[0]) +
             lane.pending_down.capacity() * sizeof(NodeId) +
             lane.grid_stamp.capacity() * sizeof(std::uint64_t) +
             lane.grid_dist.capacity() * sizeof(int) +
             lane.grid_queue.capacity() * sizeof(NodeId) +
             lane.grid_cand.capacity() * sizeof(NodeId) +
             lane.batch_pool.capacity() * sizeof(std::vector<NodeId>);
    for (const auto& batch : lane.batch_pool) {
      bytes += batch.capacity() * sizeof(NodeId);
    }
    for (const OutMsg& msg : lane.outbox) {
      bytes += msg.receivers.capacity() * sizeof(NodeId);
    }
  }
  return bytes;
}

// ---- sharded (conservative parallel) execution ----------------------------

thread_local Network::Lane* Network::tls_lane_ = nullptr;

void Network::enable_sharding(std::vector<sim::Simulator*> shard_sims,
                              std::vector<std::uint32_t> home_shard,
                              std::vector<sim::RngStream> mac_rngs,
                              FrameCloner cloner) {
  P2P_ASSERT_MSG(lanes_.empty(), "sharding already enabled");
  P2P_ASSERT_MSG(shard_sims.size() >= 2, "sharding needs >= 2 shards");
  P2P_ASSERT(shard_sims.size() == mac_rngs.size());
  P2P_ASSERT(home_shard.size() == nodes_.size());
  P2P_ASSERT(cloner != nullptr);
  P2P_ASSERT_MSG(observer_ == nullptr, "observer incompatible with sharding");
  P2P_ASSERT_MSG(frames_tx_ == 0 && frames_rx_ == 0,
                 "enable_sharding must precede any traffic");
  for (const std::uint32_t s : home_shard) {
    P2P_ASSERT(s < shard_sims.size());
  }
  lanes_.reserve(shard_sims.size());
  for (std::size_t s = 0; s < shard_sims.size(); ++s) {
    P2P_ASSERT(shard_sims[s] != nullptr);
    lanes_.emplace_back(shard_sims[s], std::move(mac_rngs[s]));
  }
  home_shard_ = std::move(home_shard);
  cloner_ = cloner;
}

void Network::enter_shard(std::size_t shard) noexcept {
  P2P_DASSERT(shard < lanes_.size());
  tls_lane_ = &lanes_[shard];
}

void Network::exit_shard() noexcept { tls_lane_ = nullptr; }

void Network::begin_window(sim::SimTime start, sim::SimTime /*end*/) {
  P2P_ASSERT(!lanes_.empty());
  sharded_refresh_index(start);
  // Freeze the fault gate: inside a window faults_active()'s self-clearing
  // check would read the global clock. Evaluated against the window start,
  // so every shard sees one consistent answer.
  faults_frozen_ =
      faults_active_ && (burst_loss_ > 0.0 || blackout_horizon_ > start);
}

void Network::end_window(sim::SimTime /*end*/) {
  // Drain outboxes in fixed shard order 0..S-1, slots in emission order:
  // together with per-shard sequential execution inside the window this
  // makes every destination queue's (time, seq) order a pure function of
  // the model — identical for any thread count.
  for (std::size_t src = 0; src < lanes_.size(); ++src) {
    Lane& lane = lanes_[src];
    for (std::size_t i = 0; i < lane.outbox_used; ++i) {
      OutMsg& msg = lane.outbox[i];
      Lane& dst = lanes_[msg.dst_shard];
      FramePayloadPtr clone = cloner_(*msg.payload, *dst.pools);
      const std::uint32_t batch = lane_acquire_batch(dst);
      dst.batch_pool[batch].assign(msg.receivers.begin(), msg.receivers.end());
      Frame frame{msg.sender, msg.link_dst, msg.size_bytes, std::move(clone)};
      dst.sim->at(msg.arrival, [this, batch, frame = std::move(frame)] {
        sharded_deliver_batch(*tls_lane_, batch, frame);
      });
      msg.payload = FramePayloadPtr();  // back to the source lane's pool
      msg.receivers.clear();            // slot recycles with its capacity
    }
    lane.outbox_used = 0;
  }
  // Apply battery deaths deferred from inside the windows (duplicates are
  // harmless — refresh_down is idempotent).
  for (Lane& lane : lanes_) {
    for (const NodeId id : lane.pending_down) refresh_down(id);
    lane.pending_down.clear();
  }
}

geo::Vec2 Network::sample_position_at(NodeId id, sim::SimTime t) {
  PosCache& cache = pos_cache_[id];
  if (cache.time != t) {
    cache.pos = nodes_[id].mobility->position_at(t);
    cache.time = t;
  }
  return cache.pos;
}

geo::Vec2 Network::sharded_sample(void* ctx, NodeId id) {
  auto* net = static_cast<Network*>(ctx);
  return net->sample_position_at(id, net->sharded_sample_time_);
}

void Network::sharded_refresh_index(sim::SimTime start) {
  sharded_sample_time_ = start;
  if (params_.incremental_index &&
      nodes_.size() >= params_.incremental_index_min_nodes) {
    index_.refresh_incremental(start, nodes_.size(), &Network::sharded_sample,
                               this);
    return;
  }
  if (index_.is_fresh(start, nodes_.size())) return;
  scratch_positions_.resize(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    scratch_positions_[i] = sample_position_at(i, start);
  }
  index_.refresh(start, scratch_positions_);
}

bool Network::sharded_in_range(NodeId a, NodeId b) const noexcept {
  P2P_DASSERT(a < nodes_.size() && b < nodes_.size());
  if (a == b) return true;
  const double r2 = params_.range * params_.range;
  return geo::distance2(index_.cached_position(a), index_.cached_position(b)) <=
         r2;
}

bool Network::sharded_link_blacked_out(const Lane& lane, NodeId a,
                                       NodeId b) const {
  const sim::SimTime* end = blackout_map_.find(link_key(a, b));
  return end != nullptr && *end > lane.sim->now();
}

void Network::note_energy_death(Lane& lane, NodeId id) {
  // down_ is read-only while shards run; queue the flip for the barrier.
  if (down_[id] == 0 && !nodes_[id].energy.alive()) {
    lane.pending_down.push_back(id);
  }
}

std::uint32_t Network::lane_acquire_batch(Lane& lane) {
  if (!lane.free_batches.empty()) {
    const std::uint32_t batch = lane.free_batches.back();
    lane.free_batches.pop_back();
    return batch;
  }
  lane.batch_pool.emplace_back();
  return static_cast<std::uint32_t>(lane.batch_pool.size() - 1);
}

void Network::lane_release_batch(Lane& lane, std::uint32_t batch) {
  lane.batch_pool[batch].clear();
  lane.free_batches.push_back(batch);
}

sim::SimTime Network::sharded_schedule_tx(Lane& lane, NodeState& node,
                                          double duration) {
  const sim::SimTime defer =
      lane.mac_rng.uniform(0.0, params_.mac.jitter_max_s);
  sim::SimTime start = lane.sim->now() + defer;
  if (start < node.next_free_tx) start = node.next_free_tx;
  node.next_free_tx = start + duration;
  return start;
}

void Network::sharded_deliver(Lane& lane, NodeId receiver, const Frame& frame) {
  // Liveness is the window-start snapshot: a battery death earlier in this
  // same window is applied at the barrier, not mid-window (part of the
  // deterministic sharded model; batteries default to infinite).
  if (!alive(receiver)) return;
  NodeState& node = nodes_[receiver];
  node.energy.consume_rx(frame.size_bytes);
  note_energy_death(lane, receiver);
  ++lane.frames_rx;
  for (LinkListener* listener : node.listeners) listener->on_frame(frame);
}

void Network::sharded_deliver_batch(Lane& lane, std::uint32_t batch,
                                    const Frame& frame) {
  // Index on every access: a delivery handler can broadcast, growing the
  // lane's pool vector.
  for (std::size_t i = 0; i < lane.batch_pool[batch].size(); ++i) {
    sharded_deliver(lane, lane.batch_pool[batch][i], frame);
  }
  lane_release_batch(lane, batch);
}

void Network::sharded_broadcast(Lane& lane, NodeId sender,
                                FramePayloadPtr payload, std::size_t bytes) {
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  note_energy_death(lane, sender);
  ++lane.frames_tx;

  // Candidate filtering runs against the index's cached positions — frozen
  // for the whole window (begin_window refreshed it), stale by at most the
  // tolerance plus one lookahead. No mobility sampling, no global clock.
  const geo::Vec2 sender_pos = index_.cached_position(sender);
  index_.candidates_near(sender_pos, lane.sim->now(),
                         &lane.scratch_candidates);
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = sharded_schedule_tx(lane, node, duration);
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;

  const double r2 = params_.range * params_.range;
  const bool faulted = faults_frozen_;
  const std::uint32_t my_shard = home_shard_[sender];
  const std::uint32_t batch = lane_acquire_batch(lane);
  lane.tx_out.clear();
  for (const NodeId cand : lane.scratch_candidates) {
    if (cand == sender || !alive(cand)) continue;
    const geo::Vec2 rp = index_.cached_position(cand);
    if (geo::distance2(sender_pos, rp) > r2) continue;
    if (faulted && sharded_link_blacked_out(lane, sender, cand)) continue;
    const bool lost = faulted
                          ? channel_lost_faulted(lane.mac_rng, sender_pos, rp)
                          : channel_lost(lane.mac_rng, sender_pos, rp);
    if (lost) {
      ++lane.frames_lost;
      continue;
    }
    const std::uint32_t dst = home_shard_[cand];
    if (dst == my_shard) {
      lane.batch_pool[batch].push_back(cand);
      continue;
    }
    // Cross-shard receiver: group into one outbox slot per destination
    // shard (tx_out is the per-transmission dst -> slot map; broadcasts
    // touch at most the 3x3 cell block, so a handful of shards).
    OutMsg* msg = nullptr;
    for (const auto& [d, slot] : lane.tx_out) {
      if (d == dst) {
        msg = &lane.outbox[slot];
        break;
      }
    }
    if (msg == nullptr) {
      if (lane.outbox_used == lane.outbox.size()) lane.outbox.emplace_back();
      const auto slot = static_cast<std::uint32_t>(lane.outbox_used++);
      msg = &lane.outbox[slot];
      msg->arrival = arrival;
      msg->dst_shard = dst;
      msg->sender = sender;
      msg->link_dst = kBroadcast;
      msg->size_bytes = bytes;
      lane.tx_out.emplace_back(dst, slot);
    }
    msg->receivers.push_back(cand);
  }
  // Park one payload reference per cross-shard slot (same-lane Ref copy);
  // the barrier clones it into each destination lane's pools.
  for (const auto& [dst, slot] : lane.tx_out) {
    lane.outbox[slot].payload = payload;
  }
  if (lane.batch_pool[batch].empty()) {
    lane_release_batch(lane, batch);
    return;
  }
  Frame frame{sender, kBroadcast, bytes, std::move(payload)};
  lane.sim->at(arrival, [this, batch, frame = std::move(frame)] {
    sharded_deliver_batch(*tls_lane_, batch, frame);
  });
}

void Network::sharded_unicast(Lane& lane, NodeId sender, NodeId neighbor,
                              FramePayloadPtr payload, std::size_t bytes) {
  if (!alive(sender)) return;
  NodeState& node = nodes_[sender];
  node.energy.consume_tx(bytes);
  note_energy_death(lane, sender);
  ++lane.frames_tx;

  const bool faulted = faults_frozen_;
  if (!alive(neighbor) || !sharded_in_range(sender, neighbor) ||
      (faulted && sharded_link_blacked_out(lane, sender, neighbor))) {
    ++lane.frames_lost;
    return;
  }
  const geo::Vec2 sp = index_.cached_position(sender);
  const geo::Vec2 np = index_.cached_position(neighbor);
  const bool lost = faulted ? channel_lost_faulted(lane.mac_rng, sp, np)
                            : channel_lost(lane.mac_rng, sp, np);
  if (lost) {
    ++lane.frames_lost;
    return;
  }
  const double duration = tx_duration(params_.mac, bytes);
  const sim::SimTime start = sharded_schedule_tx(lane, node, duration);
  const sim::SimTime arrival = start + duration + params_.mac.propagation_s;
  if (home_shard_[neighbor] == home_shard_[sender]) {
    Frame frame{sender, neighbor, bytes, std::move(payload)};
    lane.sim->at(arrival, [this, neighbor, frame = std::move(frame)] {
      sharded_deliver(*tls_lane_, neighbor, frame);
    });
    return;
  }
  if (lane.outbox_used == lane.outbox.size()) lane.outbox.emplace_back();
  OutMsg& msg = lane.outbox[lane.outbox_used++];
  msg.arrival = arrival;
  msg.dst_shard = home_shard_[neighbor];
  msg.sender = sender;
  msg.link_dst = neighbor;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  msg.receivers.push_back(neighbor);
}

int Network::sharded_hop_distance(Lane& lane, NodeId a, NodeId b) {
  // Grid BFS like the sequential fallback, but over cached positions and
  // lane-owned scratch (the shared snapshot memo is global-clock state).
  const std::size_t n = nodes_.size();
  if (a >= n || b >= n) return graph::kUnreachable;
  if (a == b) return 0;
  if (!alive(a) || !alive(b)) return graph::kUnreachable;
  if (lane.grid_stamp.size() < n) {
    lane.grid_stamp.resize(n, 0);
    lane.grid_dist.resize(n);
  }
  const std::uint64_t gen = ++lane.grid_gen;
  const double r2 = params_.range * params_.range;
  lane.grid_queue.clear();
  lane.grid_queue.push_back(a);
  lane.grid_stamp[a] = gen;
  lane.grid_dist[a] = 0;
  for (std::size_t head = 0; head < lane.grid_queue.size(); ++head) {
    const NodeId u = lane.grid_queue[head];
    const int du = lane.grid_dist[u];
    const geo::Vec2 up = index_.cached_position(u);
    index_.candidates_near(up, lane.sim->now(), &lane.grid_cand);
    for (const NodeId v : lane.grid_cand) {
      if (lane.grid_stamp[v] == gen || v == u || !alive(v)) continue;
      if (geo::distance2(up, index_.cached_position(v)) > r2) continue;
      if (v == b) return du + 1;
      lane.grid_stamp[v] = gen;
      lane.grid_dist[v] = du + 1;
      lane.grid_queue.push_back(v);
    }
  }
  return graph::kUnreachable;
}

PayloadPools::Stats Network::pool_stats() const noexcept {
  PayloadPools::Stats total = pools_.stats();
  for (const Lane& lane : lanes_) {
    const PayloadPools::Stats s = lane.pools->stats();
    total.acquires += s.acquires;
    total.slab_allocs += s.slab_allocs;
    total.peak_live += s.peak_live;
  }
  return total;
}

std::uint64_t Network::frames_transmitted() const noexcept {
  std::uint64_t total = frames_tx_;
  for (const Lane& lane : lanes_) total += lane.frames_tx;
  return total;
}

std::uint64_t Network::frames_delivered() const noexcept {
  std::uint64_t total = frames_rx_;
  for (const Lane& lane : lanes_) total += lane.frames_rx;
  return total;
}

std::uint64_t Network::frames_lost() const noexcept {
  std::uint64_t total = frames_lost_;
  for (const Lane& lane : lanes_) total += lane.frames_lost;
  return total;
}

}  // namespace p2p::net
