// Gauss-Markov mobility [Camp, Boleng, Davies 2002 §2.5].
//
// Speed and direction evolve as first-order autoregressive processes:
//   s_t = alpha*s_{t-1} + (1-alpha)*mean_s + sqrt(1-alpha^2)*N(0,sigma_s)
// (same for direction), sampled every `step` seconds with linear motion
// in between. alpha=1 is straight-line ballistic motion, alpha=0 is
// memoryless Brownian-like wandering. Near the boundary the mean
// direction is steered back toward the middle, the standard edge rule.
#pragma once

#include "geo/vec2.hpp"
#include "mobility/model.hpp"
#include "sim/rng.hpp"

namespace p2p::mobility {

struct GaussMarkovParams {
  geo::Region region{100.0, 100.0};
  double mean_speed = 0.7;    // m/s
  double speed_sigma = 0.3;
  double direction_sigma = 0.6;  // radians
  double alpha = 0.75;        // memory level in [0, 1]
  double step = 1.0;          // seconds between AR updates
  double edge_margin = 10.0;  // steer back when this close to a border
};

class GaussMarkov final : public MobilityModel {
 public:
  GaussMarkov(const GaussMarkovParams& params, sim::RngStream rng);

  geo::Vec2 position_at(sim::SimTime t) override;

 private:
  void advance_step();

  GaussMarkovParams params_;
  sim::RngStream rng_;
  sim::SimTime segment_start_ = 0.0;
  geo::Vec2 pos_;       // position at segment_start_
  geo::Vec2 next_pos_;  // position at segment_start_ + step
  double speed_;
  double direction_;
};

}  // namespace p2p::mobility
