#include "mobility/random_waypoint.hpp"

#include "util/assert.hpp"

namespace p2p::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointParams& params,
                               sim::RngStream rng)
    : params_(params), rng_(std::move(rng)) {
  P2P_ASSERT(params_.max_speed > 0.0);
  P2P_ASSERT(params_.min_speed > 0.0 && params_.min_speed <= params_.max_speed);
  P2P_ASSERT(params_.max_pause >= 0.0);
  leg_start_pos_ = {rng_.uniform(0.0, params_.region.width),
                    rng_.uniform(0.0, params_.region.height)};
  leg_end_pos_ = leg_start_pos_;
  if (params_.pause_first) {
    pausing_ = true;
    leg_end_time_ = rng_.uniform(0.0, params_.max_pause);
  } else {
    pausing_ = true;
    leg_end_time_ = 0.0;  // immediately transitions into a movement leg
  }
}

void RandomWaypoint::begin_next_leg() {
  leg_start_time_ = leg_end_time_;
  if (pausing_) {
    // Start moving toward a fresh waypoint.
    pausing_ = false;
    leg_start_pos_ = leg_end_pos_;
    leg_end_pos_ = {rng_.uniform(0.0, params_.region.width),
                    rng_.uniform(0.0, params_.region.height)};
    const double speed = rng_.uniform(params_.min_speed, params_.max_speed);
    const double dist = geo::distance(leg_start_pos_, leg_end_pos_);
    leg_end_time_ = leg_start_time_ + (speed > 0.0 ? dist / speed : 0.0);
  } else {
    // Arrived: pause at the waypoint.
    pausing_ = true;
    leg_start_pos_ = leg_end_pos_;
    leg_end_time_ = leg_start_time_ + rng_.uniform(0.0, params_.max_pause);
  }
}

void RandomWaypoint::advance_to(sim::SimTime t) {
  while (t >= leg_end_time_) begin_next_leg();
}

geo::Vec2 RandomWaypoint::position_at(sim::SimTime t) {
  advance_to(t);
  if (pausing_) return leg_start_pos_;
  const double span = leg_end_time_ - leg_start_time_;
  if (span <= 0.0) return leg_end_pos_;
  const double f = (t - leg_start_time_) / span;
  return leg_start_pos_ + (leg_end_pos_ - leg_start_pos_) * f;
}

}  // namespace p2p::mobility
