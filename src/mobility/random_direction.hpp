// Random-direction mobility [Camp, Boleng, Davies 2002 §2.3].
//
// The node picks a uniform direction and speed, travels until it hits the
// region boundary, pauses, then picks a new direction. Compared to random
// waypoint this avoids the center-density bias — nodes spend more time
// near the edges, giving sparser average connectivity for the same node
// count (one of the mobility effects the paper's §8 wants to study).
#pragma once

#include "geo/vec2.hpp"
#include "mobility/model.hpp"
#include "sim/rng.hpp"

namespace p2p::mobility {

struct RandomDirectionParams {
  geo::Region region{100.0, 100.0};
  double max_speed = 1.0;
  double min_speed = 0.05;
  double max_pause = 100.0;
};

class RandomDirection final : public MobilityModel {
 public:
  RandomDirection(const RandomDirectionParams& params, sim::RngStream rng);

  geo::Vec2 position_at(sim::SimTime t) override;

 private:
  void begin_next_leg();

  RandomDirectionParams params_;
  sim::RngStream rng_;
  bool pausing_ = true;
  sim::SimTime leg_start_time_ = 0.0;
  sim::SimTime leg_end_time_ = 0.0;
  geo::Vec2 leg_start_pos_;
  geo::Vec2 leg_end_pos_;  // boundary hit point of the current movement
};

}  // namespace p2p::mobility
