// Mobility model interface.
//
// The kernel advances time monotonically, so models only have to answer
// position queries for non-decreasing times; they may advance internal
// state on each call (lazily generating movement legs).
#pragma once

#include "geo/vec2.hpp"
#include "sim/time.hpp"

namespace p2p::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at simulation time `t`. Callers guarantee `t` is
  /// non-decreasing across calls on a given model instance.
  virtual geo::Vec2 position_at(sim::SimTime t) = 0;
};

/// A node that never moves.
class StaticModel final : public MobilityModel {
 public:
  explicit StaticModel(geo::Vec2 pos) noexcept : pos_(pos) {}
  geo::Vec2 position_at(sim::SimTime /*t*/) override { return pos_; }
  void set_position(geo::Vec2 pos) noexcept { pos_ = pos; }

 private:
  geo::Vec2 pos_;
};

}  // namespace p2p::mobility
