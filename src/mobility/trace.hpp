// Scripted mobility: play back an explicit waypoint schedule.
//
// Used by tests (deterministic link formation/breakage) and to import
// ns-2 `setdest`-style movement files so scenarios can be replayed against
// the original toolchain.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "geo/vec2.hpp"
#include "mobility/model.hpp"

namespace p2p::mobility {

/// One scheduled movement: at `start_time`, begin moving to `target` at
/// `speed` m/s (speed 0 = teleport instantly).
struct TraceStep {
  sim::SimTime start_time = 0.0;
  geo::Vec2 target;
  double speed = 0.0;
};

class TraceModel final : public MobilityModel {
 public:
  /// `initial` is the position before the first step. Steps must be sorted
  /// by start_time; a step preempts any unfinished previous movement.
  TraceModel(geo::Vec2 initial, std::vector<TraceStep> steps);

  geo::Vec2 position_at(sim::SimTime t) override;

  /// Parse a simple text format, one step per line:
  ///   <start_time> <x> <y> <speed>
  /// Blank lines and '#' comments are skipped. Returns false on syntax
  /// errors, leaving `error` with a description.
  static bool parse(std::string_view text, std::vector<TraceStep>* steps,
                    std::string* error);

 private:
  /// Position at time t assuming motion began at (t0, from) toward step s.
  static geo::Vec2 interpolate(const TraceStep& s, geo::Vec2 from, sim::SimTime t);

  geo::Vec2 initial_;
  std::vector<TraceStep> steps_;
};

}  // namespace p2p::mobility
