#include "mobility/gauss_markov.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace p2p::mobility {

namespace {
constexpr double kPi = 3.14159265358979323846;

double gaussian(sim::RngStream& rng) { return rng.normal(0.0, 1.0); }
}  // namespace

GaussMarkov::GaussMarkov(const GaussMarkovParams& params, sim::RngStream rng)
    : params_(params), rng_(std::move(rng)) {
  P2P_ASSERT(params_.alpha >= 0.0 && params_.alpha <= 1.0);
  P2P_ASSERT(params_.step > 0.0);
  pos_ = {rng_.uniform(0.0, params_.region.width),
          rng_.uniform(0.0, params_.region.height)};
  speed_ = params_.mean_speed;
  direction_ = rng_.uniform(0.0, 2.0 * kPi);
  next_pos_ = pos_;
  advance_step();  // compute the first segment target
}

void GaussMarkov::advance_step() {
  pos_ = next_pos_;

  // Steer the mean direction back toward the middle near edges.
  double mean_dir = direction_;
  const double margin = params_.edge_margin;
  const bool near_left = pos_.x < margin;
  const bool near_right = pos_.x > params_.region.width - margin;
  const bool near_bottom = pos_.y < margin;
  const bool near_top = pos_.y > params_.region.height - margin;
  if (near_left || near_right || near_bottom || near_top) {
    const geo::Vec2 center{params_.region.width / 2.0,
                           params_.region.height / 2.0};
    mean_dir = std::atan2(center.y - pos_.y, center.x - pos_.x);
  }

  const double a = params_.alpha;
  const double memoryless = std::sqrt(1.0 - a * a);
  speed_ = a * speed_ + (1.0 - a) * params_.mean_speed +
           memoryless * params_.speed_sigma * gaussian(rng_);
  if (speed_ < 0.0) speed_ = 0.0;
  direction_ = a * direction_ + (1.0 - a) * mean_dir +
               memoryless * params_.direction_sigma * gaussian(rng_);

  const geo::Vec2 delta{std::cos(direction_) * speed_ * params_.step,
                        std::sin(direction_) * speed_ * params_.step};
  next_pos_ = params_.region.clamp(pos_ + delta);
}

geo::Vec2 GaussMarkov::position_at(sim::SimTime t) {
  while (t >= segment_start_ + params_.step) {
    segment_start_ += params_.step;
    advance_step();
  }
  const double f = (t - segment_start_) / params_.step;
  return pos_ + (next_pos_ - pos_) * f;
}

}  // namespace p2p::mobility
