#include "mobility/random_direction.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace p2p::mobility {

RandomDirection::RandomDirection(const RandomDirectionParams& params,
                                 sim::RngStream rng)
    : params_(params), rng_(std::move(rng)) {
  P2P_ASSERT(params_.max_speed > 0.0);
  P2P_ASSERT(params_.min_speed > 0.0 && params_.min_speed <= params_.max_speed);
  leg_start_pos_ = {rng_.uniform(0.0, params_.region.width),
                    rng_.uniform(0.0, params_.region.height)};
  leg_end_pos_ = leg_start_pos_;
  pausing_ = true;
  leg_end_time_ = rng_.uniform(0.0, params_.max_pause);
}

void RandomDirection::begin_next_leg() {
  leg_start_time_ = leg_end_time_;
  if (pausing_) {
    pausing_ = false;
    leg_start_pos_ = leg_end_pos_;
    // Pick a direction; walk until the first boundary intersection.
    const double theta = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
    const geo::Vec2 dir{std::cos(theta), std::sin(theta)};
    // Distance to each boundary along dir (positive only).
    double tmax = 1e18;
    if (dir.x > 1e-12) tmax = std::min(tmax, (params_.region.width - leg_start_pos_.x) / dir.x);
    if (dir.x < -1e-12) tmax = std::min(tmax, (0.0 - leg_start_pos_.x) / dir.x);
    if (dir.y > 1e-12) tmax = std::min(tmax, (params_.region.height - leg_start_pos_.y) / dir.y);
    if (dir.y < -1e-12) tmax = std::min(tmax, (0.0 - leg_start_pos_.y) / dir.y);
    if (tmax < 0.0 || tmax > 1e17) tmax = 0.0;  // axis-parallel edge case
    leg_end_pos_ = params_.region.clamp(leg_start_pos_ + dir * tmax);
    const double speed = rng_.uniform(params_.min_speed, params_.max_speed);
    const double dist = geo::distance(leg_start_pos_, leg_end_pos_);
    leg_end_time_ = leg_start_time_ + (speed > 0.0 ? dist / speed : 0.0);
  } else {
    pausing_ = true;
    leg_start_pos_ = leg_end_pos_;
    leg_end_time_ = leg_start_time_ + rng_.uniform(0.0, params_.max_pause);
  }
}

geo::Vec2 RandomDirection::position_at(sim::SimTime t) {
  while (t >= leg_end_time_) begin_next_leg();
  if (pausing_) return leg_start_pos_;
  const double span = leg_end_time_ - leg_start_time_;
  if (span <= 0.0) return leg_end_pos_;
  const double f = (t - leg_start_time_) / span;
  return leg_start_pos_ + (leg_end_pos_ - leg_start_pos_) * f;
}

}  // namespace p2p::mobility
