// Random-waypoint mobility [Camp, Boleng, Davies 2002] — the model the
// paper uses ("Random Way model, maximum speed 1.0 m/s, maximum pause
// 100 s"; node interleaves moving and pause periods).
//
// The node starts at a uniform random point, repeatedly: pauses for a
// uniform [0, max_pause] interval, picks a uniform random destination and
// a uniform (0, max_speed] speed, and walks there in a straight line.
#pragma once

#include "geo/vec2.hpp"
#include "mobility/model.hpp"
#include "sim/rng.hpp"

namespace p2p::mobility {

struct RandomWaypointParams {
  geo::Region region{100.0, 100.0};
  double max_speed = 1.0;   // m/s, exclusive lower bound 0
  double min_speed = 0.05;  // m/s — avoids the RWP "speed decay to 0" artifact
  double max_pause = 100.0; // s
  bool pause_first = true;  // paper: node interleaves moving and pause periods
};

class RandomWaypoint final : public MobilityModel {
 public:
  /// `rng` must be a dedicated per-node stream (taken by value).
  RandomWaypoint(const RandomWaypointParams& params, sim::RngStream rng);

  geo::Vec2 position_at(sim::SimTime t) override;

  /// Position the model was initialized with (uniform over the region).
  geo::Vec2 initial_position() const noexcept { return leg_start_pos_; }

 private:
  void advance_to(sim::SimTime t);
  void begin_next_leg();

  RandomWaypointParams params_;
  sim::RngStream rng_;

  // Current leg: either pausing at leg_start_pos_ until leg_end_time_, or
  // moving from leg_start_pos_ to leg_end_pos_ over [leg_start_time_,
  // leg_end_time_].
  bool pausing_ = true;
  sim::SimTime leg_start_time_ = 0.0;
  sim::SimTime leg_end_time_ = 0.0;
  geo::Vec2 leg_start_pos_;
  geo::Vec2 leg_end_pos_;
};

}  // namespace p2p::mobility
