#include "mobility/trace.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace p2p::mobility {

TraceModel::TraceModel(geo::Vec2 initial, std::vector<TraceStep> steps)
    : initial_(initial), steps_(std::move(steps)) {
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    P2P_ASSERT_MSG(steps_[i - 1].start_time <= steps_[i].start_time,
                   "trace steps must be sorted by start_time");
  }
}

geo::Vec2 TraceModel::interpolate(const TraceStep& s, geo::Vec2 from,
                                  sim::SimTime t) {
  if (s.speed <= 0.0) return s.target;  // teleport
  const double dist = geo::distance(from, s.target);
  if (dist == 0.0) return s.target;
  const double travel = (t - s.start_time) * s.speed;
  if (travel >= dist) return s.target;
  return from + (s.target - from) * (travel / dist);
}

geo::Vec2 TraceModel::position_at(sim::SimTime t) {
  // Walk the schedule: each step moves the node from wherever the previous
  // steps left it at the step's start_time, until it is preempted by the
  // next step or the query time is reached.
  geo::Vec2 pos = initial_;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].start_time > t) break;
    const bool preempted =
        i + 1 < steps_.size() && steps_[i + 1].start_time <= t;
    const sim::SimTime horizon = preempted ? steps_[i + 1].start_time : t;
    pos = interpolate(steps_[i], pos, horizon);
  }
  return pos;
}

bool TraceModel::parse(std::string_view text, std::vector<TraceStep>* steps,
                       std::string* error) {
  P2P_ASSERT(steps != nullptr);
  steps->clear();
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    line = util::trim(line);
    if (line.empty() || line.front() == '#') continue;
    std::istringstream is{std::string(line)};
    TraceStep step;
    if (!(is >> step.start_time >> step.target.x >> step.target.y >> step.speed)) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "line " << lineno << ": expected '<time> <x> <y> <speed>'";
        *error = os.str();
      }
      return false;
    }
    if (!steps->empty() && steps->back().start_time > step.start_time) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "line " << lineno << ": steps out of chronological order";
        *error = os.str();
      }
      return false;
    }
    steps->push_back(step);
  }
  return true;
}

}  // namespace p2p::mobility
