#include "core/random_alg.hpp"

#include <algorithm>

namespace p2p::core {

bool RandomServent::random_needed() const {
  // A node already holding MAXNCONN connections (its slots may be filled
  // by inbound links) has no free slot for the random connection and must
  // not keep probing for one — the paper's loop probes only while
  // "number of connections < MAXNCONN".
  return conns().size() < static_cast<std::size_t>(params().maxnconn) &&
         !conns().has(ConnKind::kRandom) &&
         pending_requests(ConnKind::kRandom) == 0 && !collecting_;
}

void RandomServent::random_phase(int current_nhops) {
  if (!random_needed()) return;
  // "set randhops to a randomly chosen value between nhops and
  // 2*MAXNHOPS" — when the cycle is at its backoff step (nhops == 0) we
  // use NHOPS_INITIAL as the lower bound.
  const int lo = std::max(current_nhops, params().nhops_initial);
  const int hi = params().random_max_hops();
  const int randhops =
      static_cast<int>(rng().uniform_int(lo, std::max(lo, hi)));

  net::Ref<ConnectProbe> probe = network().pools().make<ConnectProbe>();
  probe.edit()->probe_id = new_probe_id();
  probe.edit()->want = ProbeWant::kRandom;
  random_probe_id_ = probe->probe_id;
  collecting_ = true;
  best_offer_peer_ = net::kInvalidNode;
  best_offer_distance_ = -1;
  flood_msg(std::move(probe), randhops);

  // Collect offers, then continue the handshake with the farthest node.
  arm(collect_event_, params().offer_window, [this, id = random_probe_id_] {
    collect_event_ = sim::kInvalidEventId;
    finish_offer_collection(id);
  });
}

void RandomServent::handle_control(NodeId src, const P2pMessage& msg,
                                   int hops) {
  if (msg.type() == MsgType::kConnectOffer) {
    const auto& offer = static_cast<const ConnectOffer&>(msg);
    if (collecting_ && offer.probe_id == random_probe_id_) {
      const int dist = int{offer.hop_distance};
      if (dist > best_offer_distance_ && !conns().connected(src) &&
          !has_pending_request(src)) {
        best_offer_distance_ = dist;
        best_offer_peer_ = src;
      }
      return;
    }
  }
  RegularServent::handle_control(src, msg, hops);
}

void RandomServent::finish_offer_collection(std::uint64_t probe_id) {
  if (!collecting_ || probe_id != random_probe_id_) return;
  collecting_ = false;
  if (best_offer_peer_ == net::kInvalidNode) return;  // nobody answered
  request_connection(best_offer_peer_, probe_id, ProbeWant::kRandom,
                     ConnKind::kRandom);
}

void RandomServent::on_connection_closed(NodeId peer, ConnKind kind,
                                         CloseReason reason) {
  // "whenever it goes down, it must be replaced by another random
  // connection" — the prompt establish tick takes care of it because
  // random_needed() is true again.
  RegularServent::on_connection_closed(peer, kind, reason);
}

void RandomServent::on_request_failed(NodeId peer, ConnKind kind) {
  RegularServent::on_request_failed(peer, kind);
}

}  // namespace p2p::core
