// The Random algorithm (paper §6.1.4) — Regular plus one long-range link.
//
// The first MAXNCONN-1 connections follow the Regular algorithm exactly
// ("regular connections"). The last slot is reserved for a *random
// connection*: the node floods a probe within a randomly chosen radius
// randhops ∈ [nhops, 2*MAXNHOPS], collects the offers for a short window
// and "only continues the three-way handshake with the most distant
// neighbor". If the random connection goes down it must be replaced by
// another random connection. The intended effect is the Watts–Strogatz
// rewiring: a few long bridges shorten global path lengths while the
// clustering coefficient stays high (§6.1.2).
#pragma once

#include "core/regular.hpp"

namespace p2p::core {

class RandomServent final : public RegularServent {
 public:
  RandomServent(const ServentContext& ctx, const P2pParams& params,
                sim::RngStream rng)
      : RegularServent(ctx, params, std::move(rng)) {}

  AlgorithmKind algorithm() const noexcept override {
    return AlgorithmKind::kRandom;
  }

 protected:
  std::size_t regular_target() const override {
    // Last slot is reserved for the random connection.
    return static_cast<std::size_t>(params().maxnconn - 1);
  }
  bool random_needed() const override;
  void random_phase(int current_nhops) override;

  void handle_control(NodeId src, const P2pMessage& msg, int hops) override;
  void on_connection_closed(NodeId peer, ConnKind kind,
                            CloseReason reason) override;
  void on_request_failed(NodeId peer, ConnKind kind) override;
  void on_crashed() override {
    disarm(collect_event_);
    collecting_ = false;
    random_probe_id_ = 0;
    best_offer_peer_ = net::kInvalidNode;
    best_offer_distance_ = -1;
    RegularServent::on_crashed();
  }

 private:
  void finish_offer_collection(std::uint64_t probe_id);

  // One random-probe in flight at a time.
  bool collecting_ = false;
  std::uint64_t random_probe_id_ = 0;
  NodeId best_offer_peer_ = net::kInvalidNode;
  int best_offer_distance_ = -1;
  sim::EventId collect_event_ = sim::kInvalidEventId;
};

}  // namespace p2p::core
