// The Regular algorithm (paper §6.1.3).
//
// Four improvements over Basic:
//   1. the probe radius grows gradually (NHOPS_INITIAL, +2, ..., MAXNHOPS)
//      instead of always flooding the full radius;
//   2. connected nodes must stay within MAXDIST hops — pings/pongs span a
//      narrower area;
//   3. connections are symmetric (3-way handshake) and only the initiator
//      pings, halving keep-alive traffic;
//   4. the retry timer doubles after every failed full cycle (capped at
//      MAXTIMER) and resets when a connection is established.
#pragma once

#include "core/progressive.hpp"
#include "core/servent.hpp"

namespace p2p::core {

class RegularServent : public Servent {
 public:
  RegularServent(const ServentContext& ctx, const P2pParams& params,
                 sim::RngStream rng)
      : Servent(ctx, params, std::move(rng)), search_(this->params()) {}

  AlgorithmKind algorithm() const noexcept override {
    return AlgorithmKind::kRegular;
  }

 protected:
  void on_start() override;
  void handle_flood(NodeId origin, const P2pMessage& msg, int hops) override;
  void handle_control(NodeId src, const P2pMessage& msg, int hops) override;
  void on_connection_established(Connection& conn) override;
  void on_connection_closed(NodeId peer, ConnKind kind,
                            CloseReason reason) override;
  void on_request_failed(NodeId peer, ConnKind kind) override;
  bool can_accept(NodeId from, ConnKind kind) const override;
  bool can_initiate(ConnKind kind) const override;
  void on_crashed() override {
    disarm(tick_event_);
    search_.reset();
    active_probes_.clear();
  }

  /// How many more symmetric connections this node wants right now
  /// (Random overrides: it reserves the last slot for the random link).
  virtual std::size_t regular_target() const {
    return static_cast<std::size_t>(params().maxnconn);
  }
  /// Hook for Random's long-link phase, invoked each establish tick.
  virtual void random_phase(int /*current_nhops*/) {}
  /// Random overrides: true while the long link is missing.
  virtual bool random_needed() const { return false; }

  /// Outstanding regular deficit: target - held - in-flight requests.
  std::size_t regular_deficit() const;

  void schedule_tick(sim::SimTime delay);
  ProgressiveSearch& search() noexcept { return search_; }

  /// Probes we originated recently, so offers can be matched to the kind
  /// of slot they answer. Entries expire lazily.
  struct ActiveProbe {
    ProbeWant want;
    sim::SimTime expires;
  };
  std::map<std::uint64_t, ActiveProbe> active_probes_;
  ActiveProbe* find_active_probe(std::uint64_t probe_id);

 private:
  void establish_tick();

  ProgressiveSearch search_;
  sim::EventId tick_event_ = sim::kInvalidEventId;
};

}  // namespace p2p::core
