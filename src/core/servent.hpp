// Servent base class — everything the four (re)configuration algorithms
// share: message dispatch and counting, the symmetric 3-way connection
// handshake, ping/pong maintenance with distance checks, and the
// Gnutella-like query engine of §7.2.
//
// Subclasses implement the algorithm-specific parts: when to probe, whom
// to offer to, which offers to take, and (for Hybrid) the master/slave
// state machine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "content/catalog.hpp"
#include "core/connection.hpp"
#include "core/counters.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"
#include "net/dup_cache.hpp"
#include "net/network.hpp"
#include "routing/flood.hpp"
#include "routing/service.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"

namespace p2p::core {

/// Everything a servent needs from the world it lives in. All referenced
/// objects must outlive the servent.
struct ServentContext {
  sim::Simulator* sim = nullptr;
  net::Network* net = nullptr;
  routing::RoutingService* routing = nullptr;  // AODV or DSDV
  routing::FloodService* flood = nullptr;
  NodeId self = net::kInvalidNode;
};

/// Sink for completed file requests (drives Figures 5/6).
class QueryRecorder {
 public:
  virtual ~QueryRecorder() = default;
  /// One request finished its 30 s response window.
  /// `answers` == 0 means unanswered; the distance fields are only
  /// meaningful when answered. `min_physical_hops` is the minimum over
  /// responders of the ad-hoc hop distance at answer time (-1 if no
  /// responder was physically reachable when measured); `min_p2p_hops` is
  /// the minimum overlay path length of any answering query copy.
  virtual void on_request_complete(FileId file, int answers,
                                   int min_physical_hops,
                                   int min_p2p_hops) = 0;
};

class Servent {
 public:
  Servent(const ServentContext& ctx, const P2pParams& params,
          sim::RngStream rng);
  virtual ~Servent();

  Servent(const Servent&) = delete;
  Servent& operator=(const Servent&) = delete;

  /// Join the p2p network at the current simulation time: starts the
  /// establish loop and (if configured) the query workload.
  void start();

  /// Node crash: silently drop all volatile state — connections (no Bye,
  /// no close-hook, not counted as "closed"), pending handshakes, pending
  /// queries, the duplicate-query cache, and every scheduled event. The
  /// monotonic id counters and the message/connection counters survive.
  /// on_crashed() lets the algorithm drop its own state. After crash()
  /// the servent is stopped; rejoin() brings it back.
  void crash();

  /// Restart a crashed servent as a fresh joiner (same identity, same RNG
  /// stream, empty state). Equivalent to start() on the reborn node.
  void rejoin();

  virtual AlgorithmKind algorithm() const noexcept = 0;

  /// Content this node shares. `member_index` is this servent's row in
  /// the placement. Must be set before start() if queries are enabled.
  void set_placement(const content::Placement* placement,
                     std::uint32_t member_index);
  void set_query_recorder(QueryRecorder* recorder) { recorder_ = recorder; }

  NodeId self() const noexcept { return ctx_.self; }
  const P2pParams& params() const noexcept { return params_; }
  const MessageCounters& counters() const noexcept { return counters_; }
  const ConnectionTable& connections() const noexcept { return conns_; }
  bool holds(FileId file) const;
  bool started() const noexcept { return started_; }
  /// Read-only duplicate-query cache view for the invariant sweep.
  const net::DupCache& seen_queries() const noexcept { return seen_queries_; }

  // Telemetry.
  std::uint64_t queries_sent() const noexcept { return queries_sent_; }
  std::uint64_t connections_established() const noexcept {
    return connections_established_;
  }
  std::uint64_t connections_closed() const noexcept {
    return connections_closed_;
  }

  /// Approximate bytes of base-servent volatile state: the handshake
  /// table, live connections, and the query duplicate cache. All of it is
  /// O(overlay degree + inflight handshakes) — first-touch allocated,
  /// never O(population) — which is what the mega-scale telemetry checks.
  std::size_t memory_bytes() const noexcept;

 protected:
  // ---- hooks for the concrete algorithms --------------------------------
  virtual void on_start() = 0;
  /// A flooded P2P message arrived (probes, captures).
  virtual void handle_flood(NodeId origin, const P2pMessage& msg, int hops) = 0;
  /// A unicast control message the base doesn't own (offers, captures,
  /// slave handshake). Base owns Ping/Pong/Bye/Query/QueryHit/Request/Ack.
  virtual void handle_control(NodeId src, const P2pMessage& msg, int hops) = 0;
  virtual void on_connection_established(Connection& conn) = 0;
  virtual void on_connection_closed(NodeId peer, ConnKind kind,
                                    CloseReason reason) = 0;
  /// Responder-side capacity policy for an incoming symmetric request.
  virtual bool can_accept(NodeId from, ConnKind kind) const = 0;
  /// Initiator-side capacity re-check at Ack time.
  virtual bool can_initiate(ConnKind kind) const = 0;
  /// A pending ConnectRequest failed (rejected or timed out).
  virtual void on_request_failed(NodeId /*peer*/, ConnKind /*kind*/) {}
  /// The node crashed (base state already dropped): cancel algorithm-level
  /// events and forget algorithm-level volatile state, silently.
  virtual void on_crashed() {}
  /// Maintenance distance bound; < 0 disables the check (Basic).
  virtual int max_distance_for(ConnKind kind) const;

  // ---- services for subclasses ------------------------------------------
  void send_msg(NodeId dst, P2pMessagePtr msg);
  void flood_msg(P2pMessagePtr msg, int hops);

  std::uint64_t new_probe_id() noexcept { return next_probe_id_++; }

  /// Install a connection and start its maintenance machinery.
  Connection& establish(NodeId peer, ConnKind kind, bool initiator);
  /// Tear down; optionally notify the peer with a Bye.
  void close_connection(NodeId peer, CloseReason reason, bool notify_peer);

  /// Start the symmetric 3-way handshake toward `peer` (step 2: we send
  /// ConnectRequest; ignored if already connected or already pending).
  void request_connection(NodeId peer, std::uint64_t probe_id, ProbeWant want,
                          ConnKind kind);
  std::size_t pending_requests(ConnKind kind) const;
  bool has_pending_request(NodeId peer) const {
    return pending_req_.find(peer) != nullptr;
  }

  ConnectionTable& conns() noexcept { return conns_; }
  const ConnectionTable& conns() const noexcept { return conns_; }
  sim::Simulator& sim() noexcept { return *ctx_.sim; }
  net::Network& network() noexcept { return *ctx_.net; }
  sim::RngStream& rng() noexcept { return rng_; }
  MessageCounters& counters_mut() noexcept { return counters_; }

  /// Cancel-and-rearm helper for the per-connection event slots.
  void arm(sim::EventId& slot, sim::SimTime delay, sim::EventFn fn);
  void disarm(sim::EventId& slot) noexcept;

 private:
  /// One entry of the peer-keyed handshake table (presence == active).
  /// Every entry is also listed in pending_peers_ (swap-remove;
  /// order_index is the backlink).
  struct PendingRequest {
    ConnKind kind = ConnKind::kRegular;
    sim::EventId timeout = sim::kInvalidEventId;
    std::uint32_t order_index = 0;
  };
  struct PendingQuery {
    FileId file = 0;
    int answers = 0;
    int min_physical = -1;
    int min_p2p = -1;
  };

  PendingRequest* pending_slot(NodeId peer) noexcept;
  void erase_pending(NodeId peer) noexcept;

  // Receive paths.
  void on_aodv_deliver(NodeId src, net::AppPayloadPtr app, int hops);
  void on_flood_receive(NodeId origin, net::AppPayloadPtr app, int hops);

  // Base-owned message handlers.
  void handle_ping(NodeId src, int hops);
  void handle_pong(NodeId src, int hops);
  void handle_bye(NodeId src);
  void handle_connect_request(NodeId src, const ConnectRequest& req);
  void handle_connect_ack(NodeId src, const ConnectAck& ack);
  void handle_query(NodeId src, const Query& query);
  void handle_query_hit(NodeId src, const QueryHit& hit);

  // Maintenance.
  void send_ping(NodeId peer);
  void maintenance_timeout(NodeId peer);

  // Query workload.
  void issue_query();
  void finalize_query(std::uint64_t query_id);
  void schedule_next_query(sim::SimTime delay);
  int physical_distance_to(NodeId other);

  ServentContext ctx_;
  P2pParams params_;
  sim::RngStream rng_;
  MessageCounters counters_;
  ConnectionTable conns_;

  // Handshake state keyed by peer id plus the list of active peers.
  // O(inflight handshakes), not O(n): a servent can probe arbitrary
  // member ids, so a peer-indexed vector would grow to the population
  // size — disqualifying at mega-scale.
  util::FlatMap<NodeId, PendingRequest, net::kInvalidNode> pending_req_;
  std::vector<NodeId> pending_peers_;
  std::uint64_t next_probe_id_ = 1;

  const content::Placement* placement_ = nullptr;
  std::uint32_t member_index_ = 0;
  QueryRecorder* recorder_ = nullptr;
  net::DupCache seen_queries_{120.0};
  std::uint64_t next_query_id_ = 1;
  // The query engine issues the next query only after the previous one's
  // response window closed, so at most one query is ever pending: a single
  // slot replaces the old id->PendingQuery hash map. Stale finalize events
  // (possible across crash/rejoin) miss on the qid check.
  std::uint64_t pending_qid_ = 0;
  PendingQuery pending_query_;
  bool has_pending_query_ = false;
  sim::EventId query_event_ = sim::kInvalidEventId;
  bool started_ = false;

  std::uint64_t queries_sent_ = 0;
  std::uint64_t connections_established_ = 0;
  std::uint64_t connections_closed_ = 0;
};

}  // namespace p2p::core
