// P2P "connections".
//
// Paper §6: "there are no real connections ... the so called connections
// actually are references, that is, they represent the knowledge of the
// addresses of some reachable nodes." A Connection is therefore purely
// local state; symmetry is a protocol property established by the 3-way
// handshake, not a transport one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace p2p::core {

using net::NodeId;

enum class ConnKind : std::uint8_t {
  kBasic,    // asymmetric reference (Basic algorithm)
  kRegular,  // symmetric, radius-limited
  kRandom,   // symmetric, long-range "small-world" link
  kMaster,   // Hybrid: master <-> master (regular semantics)
  kSlave,    // Hybrid: slave -> master link
};

const char* conn_kind_name(ConnKind kind) noexcept;

enum class CloseReason : std::uint8_t {
  kPongTimeout,    // initiator: no pong
  kSilenceTimeout, // responder: no pings
  kTooFar,         // distance check failed (MAXDIST / 2*MAXDIST)
  kPeerClosed,     // received Bye
  kLocalDecision,  // algorithm closed it (e.g. master reverting to initial)
};

const char* close_reason_name(CloseReason reason) noexcept;

struct Connection {
  NodeId peer = net::kInvalidNode;
  ConnKind kind = ConnKind::kRegular;
  /// True if we asked for the connection — the paper's maintenance rule:
  /// only the initiating vertex sends pings (Basic references are always
  /// initiator-side).
  bool initiator = false;
  sim::SimTime established = 0.0;
  sim::SimTime last_heard = 0.0;
  int last_distance = -1;  // ad-hoc hop distance observed at last pong/ping

  // Maintenance events, managed by the owning Servent and cancelled on
  // close. Initiator: ping_event = next ping, timeout_event = pong wait.
  // Responder: timeout_event = ping-silence watchdog.
  sim::EventId ping_event = sim::kInvalidEventId;
  sim::EventId timeout_event = sim::kInvalidEventId;
};

/// All live connections of one servent, keyed by peer (at most one
/// connection per peer, as references are per-address).
class ConnectionTable {
 public:
  /// Insert; pre: no existing connection to this peer.
  Connection& add(NodeId peer, ConnKind kind, bool initiator,
                  sim::SimTime now);
  /// Remove; returns false if absent. Does NOT cancel events — the owning
  /// Servent does that before removal.
  bool remove(NodeId peer);

  Connection* find(NodeId peer);
  const Connection* find(NodeId peer) const;
  bool connected(NodeId peer) const { return find(peer) != nullptr; }

  std::size_t size() const noexcept { return conns_.size(); }
  std::size_t count(ConnKind kind) const;
  bool has(ConnKind kind) const { return count(kind) > 0; }

  /// Peers in ascending id order (stable iteration for determinism).
  std::vector<NodeId> peers() const;
  std::vector<NodeId> peers_of_kind(ConnKind kind) const;

 private:
  std::map<NodeId, std::unique_ptr<Connection>> conns_;
};

}  // namespace p2p::core
