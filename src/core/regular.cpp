#include "core/regular.hpp"

namespace p2p::core {

void RegularServent::on_start() { schedule_tick(0.0); }

void RegularServent::schedule_tick(sim::SimTime delay) {
  if (tick_event_ != sim::kInvalidEventId) return;  // one pending tick max
  arm(tick_event_, delay, [this] {
    tick_event_ = sim::kInvalidEventId;
    establish_tick();
  });
}

std::size_t RegularServent::regular_deficit() const {
  const std::size_t held = conns().count(ConnKind::kRegular);
  const std::size_t in_flight = pending_requests(ConnKind::kRegular);
  const std::size_t target = regular_target();
  return held + in_flight >= target ? 0 : target - held - in_flight;
}

void RegularServent::establish_tick() {
  const std::size_t deficit = regular_deficit();
  if (deficit == 0 && !random_needed()) {
    // Satisfied. The loop re-arms when a connection closes; we also keep a
    // slow heartbeat so a node that lost track (e.g. all requests raced)
    // re-evaluates eventually.
    schedule_tick(params().maxtimer);
    return;
  }
  const ProgressiveSearch::Step step = search_.advance();
  if (step.flood_hops > 0 && deficit > 0) {
    net::Ref<ConnectProbe> probe = network().pools().make<ConnectProbe>();
    probe.edit()->probe_id = new_probe_id();
    probe.edit()->want = ProbeWant::kRegular;
    active_probes_[probe->probe_id] =
        ActiveProbe{ProbeWant::kRegular,
                    sim().now() + params().offer_window + params().handshake_timeout};
    flood_msg(std::move(probe), step.flood_hops);
  }
  // Random's long-link phase runs every iteration (paper fig. 3), with the
  // current nhops value as the lower bound of the random radius.
  random_phase(step.flood_hops);
  schedule_tick(step.wait > 0.0 ? step.wait : 0.01);
}

RegularServent::ActiveProbe* RegularServent::find_active_probe(
    std::uint64_t probe_id) {
  // Lazy expiry sweep: the map stays tiny (a handful of live probes).
  for (auto it = active_probes_.begin(); it != active_probes_.end();) {
    if (it->second.expires <= sim().now()) {
      it = active_probes_.erase(it);
    } else {
      ++it;
    }
  }
  const auto it = active_probes_.find(probe_id);
  return it == active_probes_.end() ? nullptr : &it->second;
}

void RegularServent::handle_flood(NodeId origin, const P2pMessage& msg,
                                  int hops) {
  if (msg.type() != MsgType::kConnectProbe) return;
  const auto& probe = static_cast<const ConnectProbe&>(msg);
  if (probe.want != ProbeWant::kRegular && probe.want != ProbeWant::kRandom) {
    return;
  }
  // "a node willing to connect starts a three-way handshake with the
  // sender": willing = has spare capacity and no link to the prober yet.
  if (conns().connected(origin) || has_pending_request(origin)) return;
  if (conns().size() >= static_cast<std::size_t>(params().maxnconn)) return;
  net::Ref<ConnectOffer> offer = network().pools().make<ConnectOffer>();
  offer.edit()->probe_id = probe.probe_id;
  offer.edit()->hop_distance = static_cast<std::uint8_t>(hops);
  send_msg(origin, std::move(offer));
}

void RegularServent::handle_control(NodeId src, const P2pMessage& msg,
                                    int /*hops*/) {
  if (msg.type() != MsgType::kConnectOffer) return;
  const auto& offer = static_cast<const ConnectOffer&>(msg);
  const ActiveProbe* probe = find_active_probe(offer.probe_id);
  if (probe == nullptr) return;  // stale offer
  if (probe->want == ProbeWant::kRegular) {
    if (regular_deficit() == 0) return;
    request_connection(src, offer.probe_id, ProbeWant::kRegular,
                       ConnKind::kRegular);
  }
  // Random-probe offers are collected by RandomServent::handle_control.
}

void RegularServent::on_connection_established(Connection& /*conn*/) {
  search_.on_connection_established();
}

void RegularServent::on_connection_closed(NodeId /*peer*/, ConnKind /*kind*/,
                                          CloseReason /*reason*/) {
  schedule_tick(0.01);  // re-enter the establish loop promptly
}

void RegularServent::on_request_failed(NodeId /*peer*/, ConnKind /*kind*/) {
  schedule_tick(0.01);
}

bool RegularServent::can_accept(NodeId /*from*/, ConnKind kind) const {
  if (kind != ConnKind::kRegular && kind != ConnKind::kRandom) return false;
  return conns().size() < static_cast<std::size_t>(params().maxnconn);
}

bool RegularServent::can_initiate(ConnKind kind) const {
  if (kind == ConnKind::kRegular) {
    const std::size_t held = conns().count(ConnKind::kRegular);
    return held < regular_target() &&
           conns().size() < static_cast<std::size_t>(params().maxnconn);
  }
  return conns().size() < static_cast<std::size_t>(params().maxnconn);
}

}  // namespace p2p::core
