// Construction of servents by algorithm kind.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/basic.hpp"
#include "core/hybrid.hpp"
#include "core/random_alg.hpp"
#include "core/regular.hpp"

namespace p2p::core {

/// Create a servent running the given algorithm. `qualifier` is only used
/// by Hybrid (capability ranking); other algorithms ignore it.
std::unique_ptr<Servent> make_servent(AlgorithmKind kind,
                                      const ServentContext& ctx,
                                      const P2pParams& params,
                                      sim::RngStream rng,
                                      std::uint32_t qualifier = 0);

/// Parse "basic" / "regular" / "random" / "hybrid" (case-insensitive).
std::optional<AlgorithmKind> parse_algorithm(std::string_view name);

}  // namespace p2p::core
