// The Basic algorithm (paper §6.1.1) — the comparison baseline.
//
// "Simplicity ... implies easy implementation but partially ignores the
// dynamic nature of the network":
//   * discovery broadcasts always travel the full NHOPS = 6 radius,
//   * every node that hears a probe answers it,
//   * references are asymmetric — the prober records the responder's
//     address unilaterally; no handshake,
//   * the retry interval TIMER is fixed (no backoff),
//   * both endpoints of a "connection" independently ping it (the
//     improved algorithms halve this), and there is no distance check.
#pragma once

#include "core/servent.hpp"

namespace p2p::core {

class BasicServent final : public Servent {
 public:
  BasicServent(const ServentContext& ctx, const P2pParams& params,
               sim::RngStream rng)
      : Servent(ctx, params, std::move(rng)) {}

  AlgorithmKind algorithm() const noexcept override {
    return AlgorithmKind::kBasic;
  }

 protected:
  void on_start() override;
  void handle_flood(NodeId origin, const P2pMessage& msg, int hops) override;
  void handle_control(NodeId src, const P2pMessage& msg, int hops) override;
  void on_connection_established(Connection& conn) override;
  void on_connection_closed(NodeId peer, ConnKind kind,
                            CloseReason reason) override;
  bool can_accept(NodeId from, ConnKind kind) const override;
  bool can_initiate(ConnKind kind) const override;
  void on_crashed() override { disarm(tick_event_); }

 private:
  void establish_tick();
  void schedule_tick(sim::SimTime delay);

  sim::EventId tick_event_ = sim::kInvalidEventId;
};

}  // namespace p2p::core
