#include "core/hybrid.hpp"

#include "util/log.hpp"

namespace p2p::core {

namespace {
constexpr const char* kTag = "hybrid";
}

const char* hybrid_state_name(HybridState state) noexcept {
  switch (state) {
    case HybridState::kInitial: return "initial";
    case HybridState::kMaster: return "master";
    case HybridState::kSlave: return "slave";
    case HybridState::kReserved: return "reserved";
  }
  return "?";
}

void HybridServent::on_start() { schedule_tick(0.0); }

void HybridServent::schedule_tick(sim::SimTime delay) {
  if (tick_event_ != sim::kInvalidEventId) return;
  arm(tick_event_, delay, [this] {
    tick_event_ = sim::kInvalidEventId;
    tick();
  });
}

void HybridServent::tick() {
  switch (state_) {
    case HybridState::kInitial:
      initial_tick();
      break;
    case HybridState::kMaster:
      master_tick();
      break;
    case HybridState::kSlave:
    case HybridState::kReserved:
      break;  // passive states; events re-arm ticks on transition
  }
}

// ------------------------------------------------------------- INITIAL

void HybridServent::initial_tick() {
  const ProgressiveSearch::Step step = search_.advance();
  if (step.flood_hops == 0) {
    // "if this limit exceeds MAXNHOPS, then the peer entitles itself a
    // master" (fig. 4: nhops == 0 -> MASTER).
    become_master();
    return;
  }
  net::Ref<Capture> capture = network().pools().make<Capture>();
  capture.edit()->qualifier = qualifier_;
  flood_msg(std::move(capture), step.flood_hops);
  schedule_tick(step.wait);
}

void HybridServent::handle_capture(NodeId src, std::uint32_t their_qualifier) {
  if (src == self()) return;
  switch (state_) {
    case HybridState::kInitial:
      if (!outranks(their_qualifier, src)) {
        // They are stronger: try to become their slave.
        net::Ref<SlaveRequest> req = network().pools().make<SlaveRequest>();
        req.edit()->qualifier = qualifier_;
        send_msg(src, std::move(req));
        state_ = HybridState::kReserved;
        master_candidate_ = src;
        disarm(tick_event_);
        arm(reserve_timeout_, params().handshake_timeout, [this] {
          reserve_timeout_ = sim::kInvalidEventId;
          if (state_ == HybridState::kReserved) {
            state_ = HybridState::kInitial;
            master_candidate_ = net::kInvalidNode;
            schedule_tick(0.01);
          }
        });
      } else {
        // We are stronger: invite them by answering with our capture
        // ("if the qualifier of the receiver is bigger and its state is
        // either initial or master, it responds with a capture message").
        net::Ref<Capture> capture = network().pools().make<Capture>();
        capture.edit()->qualifier = qualifier_;
        send_msg(src, std::move(capture));
      }
      break;
    case HybridState::kMaster:
      if (outranks(their_qualifier, src)) {
        net::Ref<Capture> capture = network().pools().make<Capture>();
        capture.edit()->qualifier = qualifier_;
        send_msg(src, std::move(capture));
      }
      break;
    case HybridState::kSlave:
    case HybridState::kReserved:
      // "peers in slave or reserved state don't communicate with any one
      // else, except their masters or master candidates".
      break;
  }
}

void HybridServent::handle_slave_request(NodeId src,
                                         std::uint32_t their_qualifier) {
  const bool has_capacity =
      slave_count() + slave_reservations_.size() <
      static_cast<std::size_t>(params().maxnslaves);
  const bool eligible = (state_ == HybridState::kMaster ||
                         state_ == HybridState::kInitial) &&
                        outranks(their_qualifier, src) && has_capacity &&
                        !conns().connected(src);
  if (!eligible) {
    send_msg(src, network().pools().make<SlaveReject>());
    return;
  }
  if (state_ == HybridState::kInitial) become_master();
  // Reserve the slot until the candidate confirms.
  auto [it, inserted] =
      slave_reservations_.emplace(src, sim::kInvalidEventId);
  if (inserted) {
    arm(it->second, params().handshake_timeout,
        [this, src] { slave_reservations_.erase(src); });
  }
  send_msg(src, network().pools().make<SlaveAccept>());
}

void HybridServent::handle_slave_accept(NodeId src) {
  if (state_ != HybridState::kReserved || master_candidate_ != src) return;
  disarm(reserve_timeout_);
  master_candidate_ = net::kInvalidNode;
  state_ = HybridState::kSlave;
  disarm(tick_event_);
  establish(src, ConnKind::kSlave, /*initiator=*/true);
  send_msg(src, network().pools().make<SlaveConfirm>());
  LOG_DEBUG(kTag, sim().now())
      << "node " << self() << " becomes slave of " << src;
}

void HybridServent::handle_slave_confirm(NodeId src) {
  const auto it = slave_reservations_.find(src);
  if (it == slave_reservations_.end()) return;  // reservation expired
  disarm(it->second);
  slave_reservations_.erase(it);
  if (state_ != HybridState::kMaster || conns().connected(src)) return;
  establish(src, ConnKind::kSlave, /*initiator=*/false);
  disarm(no_slave_event_);  // we own a slave now
}

void HybridServent::handle_slave_reject(NodeId src) {
  if (state_ != HybridState::kReserved || master_candidate_ != src) return;
  disarm(reserve_timeout_);
  master_candidate_ = net::kInvalidNode;
  state_ = HybridState::kInitial;
  schedule_tick(0.01);
}

// ------------------------------------------------------------- MASTER

void HybridServent::become_master() {
  state_ = HybridState::kMaster;
  search_.reset();
  arm_no_slave_watchdog();
  LOG_DEBUG(kTag, sim().now()) << "node " << self() << " becomes master";
  schedule_tick(0.0);
}

void HybridServent::arm_no_slave_watchdog() {
  arm(no_slave_event_, params().maxtimer_master, [this] {
    no_slave_event_ = sim::kInvalidEventId;
    if (state_ == HybridState::kMaster && slave_count() == 0) {
      revert_to_initial();
    }
  });
}

void HybridServent::on_crashed() {
  // Base already dropped the connection table; only the state machine's
  // own events and bookkeeping remain. Silent — no Bye, no close hooks.
  disarm(tick_event_);
  disarm(reserve_timeout_);
  disarm(no_slave_event_);
  for (auto& [peer, event] : slave_reservations_) disarm(event);
  slave_reservations_.clear();
  master_probes_.clear();
  master_candidate_ = net::kInvalidNode;
  state_ = HybridState::kInitial;
  search_.reset();
}

void HybridServent::revert_to_initial() {
  LOG_DEBUG(kTag, sim().now()) << "node " << self() << " reverts to initial";
  disarm(no_slave_event_);
  for (const NodeId peer : conns().peers_of_kind(ConnKind::kMaster)) {
    close_connection(peer, CloseReason::kLocalDecision, /*notify_peer=*/true);
  }
  for (const NodeId peer : conns().peers_of_kind(ConnKind::kSlave)) {
    close_connection(peer, CloseReason::kLocalDecision, /*notify_peer=*/true);
  }
  for (auto& [peer, event] : slave_reservations_) disarm(event);
  slave_reservations_.clear();
  state_ = HybridState::kInitial;
  search_.reset();
  schedule_tick(0.01);
}

void HybridServent::master_tick() {
  const std::size_t held = conns().count(ConnKind::kMaster);
  const std::size_t in_flight = pending_requests(ConnKind::kMaster);
  const auto target = static_cast<std::size_t>(params().maxnconn);
  if (held + in_flight >= target) {
    schedule_tick(params().maxtimer);  // slow heartbeat
    return;
  }
  // Sweep expired probe records so the map stays tiny.
  for (auto it = master_probes_.begin(); it != master_probes_.end();) {
    it = it->second <= sim().now() ? master_probes_.erase(it) : std::next(it);
  }
  const ProgressiveSearch::Step step = search_.advance();
  if (step.flood_hops > 0) {
    net::Ref<ConnectProbe> probe = network().pools().make<ConnectProbe>();
    probe.edit()->probe_id = new_probe_id();
    probe.edit()->want = ProbeWant::kMaster;
    master_probes_[probe->probe_id] =
        sim().now() + params().offer_window + params().handshake_timeout;
    flood_msg(std::move(probe), step.flood_hops);
  }
  schedule_tick(step.wait > 0.0 ? step.wait : 0.01);
}

// ------------------------------------------------------------- dispatch

void HybridServent::handle_flood(NodeId origin, const P2pMessage& msg,
                                 int hops) {
  switch (msg.type()) {
    case MsgType::kCapture:
      handle_capture(origin, static_cast<const Capture&>(msg).qualifier);
      break;
    case MsgType::kConnectProbe: {
      const auto& probe = static_cast<const ConnectProbe&>(msg);
      // "use the regular algorithm to contact other masters": only
      // masters with spare master-link capacity answer master probes.
      if (probe.want != ProbeWant::kMaster) break;
      if (state_ != HybridState::kMaster) break;
      if (conns().connected(origin) || has_pending_request(origin)) break;
      if (conns().count(ConnKind::kMaster) >=
          static_cast<std::size_t>(params().maxnconn)) {
        break;
      }
      net::Ref<ConnectOffer> offer = network().pools().make<ConnectOffer>();
      offer.edit()->probe_id = probe.probe_id;
      offer.edit()->hop_distance = static_cast<std::uint8_t>(hops);
      send_msg(origin, std::move(offer));
      break;
    }
    default:
      break;
  }
}

void HybridServent::handle_control(NodeId src, const P2pMessage& msg,
                                   int /*hops*/) {
  switch (msg.type()) {
    case MsgType::kCapture:
      handle_capture(src, static_cast<const Capture&>(msg).qualifier);
      break;
    case MsgType::kSlaveRequest:
      handle_slave_request(src,
                           static_cast<const SlaveRequest&>(msg).qualifier);
      break;
    case MsgType::kSlaveAccept:
      handle_slave_accept(src);
      break;
    case MsgType::kSlaveConfirm:
      handle_slave_confirm(src);
      break;
    case MsgType::kSlaveReject:
      handle_slave_reject(src);
      break;
    case MsgType::kConnectOffer: {
      if (state_ != HybridState::kMaster) break;
      const auto& offer = static_cast<const ConnectOffer&>(msg);
      const auto it = master_probes_.find(offer.probe_id);
      if (it == master_probes_.end() || it->second <= sim().now()) break;
      if (conns().count(ConnKind::kMaster) +
              pending_requests(ConnKind::kMaster) <
          static_cast<std::size_t>(params().maxnconn)) {
        request_connection(src, offer.probe_id, ProbeWant::kMaster,
                           ConnKind::kMaster);
      }
      break;
    }
    default:
      break;
  }
}

// ------------------------------------------------------------- hooks

void HybridServent::on_connection_established(Connection& /*conn*/) {
  search_.on_connection_established();
}

void HybridServent::on_connection_closed(NodeId /*peer*/, ConnKind kind,
                                         CloseReason /*reason*/) {
  if (kind == ConnKind::kSlave) {
    if (state_ == HybridState::kSlave) {
      // Lost our master (timeout or too far): start over.
      state_ = HybridState::kInitial;
      search_.reset();
      schedule_tick(0.01);
    } else if (state_ == HybridState::kMaster && slave_count() == 0) {
      arm_no_slave_watchdog();
    }
  } else if (kind == ConnKind::kMaster && state_ == HybridState::kMaster) {
    schedule_tick(0.01);
  }
}

void HybridServent::on_request_failed(NodeId /*peer*/, ConnKind kind) {
  if (kind == ConnKind::kMaster && state_ == HybridState::kMaster) {
    schedule_tick(0.01);
  }
}

bool HybridServent::can_accept(NodeId /*from*/, ConnKind kind) const {
  // Only master<->master links use the symmetric handshake here.
  return kind == ConnKind::kMaster && state_ == HybridState::kMaster &&
         conns().count(ConnKind::kMaster) <
             static_cast<std::size_t>(params().maxnconn);
}

bool HybridServent::can_initiate(ConnKind kind) const {
  return kind == ConnKind::kMaster && state_ == HybridState::kMaster &&
         conns().count(ConnKind::kMaster) <
             static_cast<std::size_t>(params().maxnconn);
}

}  // namespace p2p::core
