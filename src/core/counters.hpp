// Per-servent message accounting — the raw material of Figures 7-12.
#pragma once

#include <array>
#include <cstdint>

#include "core/messages.hpp"

namespace p2p::core {

struct MessageCounters {
  /// Received message counts indexed by MsgType.
  std::array<std::uint64_t, 14> received{};
  /// Sent message counts indexed by MsgType (unicasts + originated floods).
  std::array<std::uint64_t, 14> sent{};

  void count_received(MsgType type) noexcept {
    ++received[static_cast<std::size_t>(type)];
  }
  void count_sent(MsgType type) noexcept {
    ++sent[static_cast<std::size_t>(type)];
  }
  std::uint64_t received_of(MsgType type) const noexcept {
    return received[static_cast<std::size_t>(type)];
  }
  std::uint64_t sent_of(MsgType type) const noexcept {
    return sent[static_cast<std::size_t>(type)];
  }

  /// Figure 7/8 metric: connection-establishment messages received.
  std::uint64_t connect_received() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < received.size(); ++t) {
      if (is_connect_message(static_cast<MsgType>(t))) total += received[t];
    }
    return total;
  }
  /// Figure 9/10 metric: ping traffic (pings + pongs) received.
  std::uint64_t ping_received() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < received.size(); ++t) {
      if (is_ping_message(static_cast<MsgType>(t))) total += received[t];
    }
    return total;
  }
  /// Figure 11/12 metric: query messages received.
  std::uint64_t query_received() const noexcept {
    return received_of(MsgType::kQuery);
  }
};

}  // namespace p2p::core
