#include "core/servent.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace p2p::core {

namespace {
constexpr const char* kTag = "p2p";
}

const char* algorithm_name(AlgorithmKind kind) noexcept {
  switch (kind) {
    case AlgorithmKind::kBasic: return "Basic";
    case AlgorithmKind::kRegular: return "Regular";
    case AlgorithmKind::kRandom: return "Random";
    case AlgorithmKind::kHybrid: return "Hybrid";
  }
  return "?";
}

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kConnectProbe: return "connect-probe";
    case MsgType::kConnectOffer: return "connect-offer";
    case MsgType::kConnectRequest: return "connect-request";
    case MsgType::kConnectAck: return "connect-ack";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kQuery: return "query";
    case MsgType::kQueryHit: return "query-hit";
    case MsgType::kCapture: return "capture";
    case MsgType::kSlaveRequest: return "slave-request";
    case MsgType::kSlaveAccept: return "slave-accept";
    case MsgType::kSlaveConfirm: return "slave-confirm";
    case MsgType::kSlaveReject: return "slave-reject";
    case MsgType::kBye: return "bye";
  }
  return "?";
}

bool is_connect_message(MsgType type) noexcept {
  switch (type) {
    case MsgType::kConnectProbe:
    case MsgType::kConnectOffer:
    case MsgType::kConnectRequest:
    case MsgType::kConnectAck:
    case MsgType::kCapture:
    case MsgType::kSlaveRequest:
    case MsgType::kSlaveAccept:
    case MsgType::kSlaveConfirm:
    case MsgType::kSlaveReject:
      return true;
    default:
      return false;
  }
}

bool is_ping_message(MsgType type) noexcept {
  return type == MsgType::kPing || type == MsgType::kPong;
}

Servent::Servent(const ServentContext& ctx, const P2pParams& params,
                 sim::RngStream rng)
    : ctx_(ctx), params_(params), rng_(std::move(rng)) {
  P2P_ASSERT(ctx_.sim != nullptr && ctx_.net != nullptr &&
             ctx_.routing != nullptr && ctx_.flood != nullptr);
  ctx_.routing->set_deliver_handler(
      [this](NodeId src, net::AppPayloadPtr app, int hops) {
        on_aodv_deliver(src, std::move(app), hops);
      });
  ctx_.flood->set_receive_handler(
      [this](NodeId origin, net::AppPayloadPtr app, int hops) {
        on_flood_receive(origin, std::move(app), hops);
      });
}

Servent::~Servent() {
  // Cancel everything we scheduled; the Simulator may outlive us.
  disarm(query_event_);
  for (const NodeId peer : pending_peers_) {
    disarm(pending_req_.find(peer)->timeout);
  }
  for (const NodeId peer : conns_.peers()) {
    Connection* conn = conns_.find(peer);
    disarm(conn->ping_event);
    disarm(conn->timeout_event);
  }
}

void Servent::start() {
  P2P_ASSERT_MSG(!started_, "start() called twice");
  started_ = true;
  on_start();
  if (params_.enable_queries && placement_ != nullptr) {
    // Desynchronized first queries.
    schedule_next_query(rng_.uniform(0.0, params_.query_gap_max));
  }
}

void Servent::crash() {
  P2P_ASSERT_MSG(started_, "crash() on a stopped servent");
  started_ = false;
  // Silent death: no Bye, no on_connection_closed, no counter bumps — the
  // peers find out through their own maintenance timeouts.
  for (const NodeId peer : conns_.peers()) {
    Connection* conn = conns_.find(peer);
    disarm(conn->ping_event);
    disarm(conn->timeout_event);
    conns_.remove(peer);
  }
  for (const NodeId peer : pending_peers_) {
    disarm(pending_req_.find(peer)->timeout);
  }
  pending_peers_.clear();
  pending_req_.clear();
  disarm(query_event_);
  has_pending_query_ = false;
  // A reborn node must not suppress queries it saw in a previous life;
  // next_query_id_ / next_probe_id_ survive so its new ids stay unique.
  seen_queries_.clear();
  on_crashed();
  LOG_DEBUG(kTag, ctx_.sim->now()) << "node " << self() << " crashed";
}

void Servent::rejoin() {
  LOG_DEBUG(kTag, ctx_.sim->now()) << "node " << self() << " rejoins";
  start();
}

void Servent::set_placement(const content::Placement* placement,
                            std::uint32_t member_index) {
  placement_ = placement;
  member_index_ = member_index;
}

bool Servent::holds(FileId file) const {
  return placement_ != nullptr && placement_->holds(member_index_, file);
}

void Servent::arm(sim::EventId& slot, sim::SimTime delay, sim::EventFn fn) {
  disarm(slot);
  slot = ctx_.sim->after(delay, std::move(fn));
}

void Servent::disarm(sim::EventId& slot) noexcept {
  if (slot != sim::kInvalidEventId) {
    ctx_.sim->cancel(slot);
    slot = sim::kInvalidEventId;
  }
}

int Servent::max_distance_for(ConnKind kind) const {
  switch (kind) {
    case ConnKind::kBasic: return -1;  // Basic checks pong presence only
    case ConnKind::kRandom: return params_.random_maxdist();
    case ConnKind::kRegular:
    case ConnKind::kMaster:
    case ConnKind::kSlave:
      return params_.maxdist;
  }
  return params_.maxdist;
}

// ---------------------------------------------------------------- transport

void Servent::send_msg(NodeId dst, P2pMessagePtr msg) {
  P2P_ASSERT(msg != nullptr);
  counters_.count_sent(msg->type());
  ctx_.routing->send(dst, std::move(msg));
}

void Servent::flood_msg(P2pMessagePtr msg, int hops) {
  P2P_ASSERT(msg != nullptr);
  counters_.count_sent(msg->type());
  ctx_.flood->flood(std::move(msg), hops);
}

// ---------------------------------------------------------------- receive

void Servent::on_aodv_deliver(NodeId src, net::AppPayloadPtr app, int hops) {
  // P2P messages carry their MsgType in the payload kind tag; anything
  // else (foreign app payloads are kUntaggedPayload) is not for us.
  if (app->kind >= static_cast<net::PayloadKind>(kNumMsgTypes)) return;
  const auto* msg = static_cast<const P2pMessage*>(app.get());
  counters_.count_received(msg->type());
  switch (msg->type()) {
    case MsgType::kPing:
      handle_ping(src, hops);
      break;
    case MsgType::kPong:
      handle_pong(src, hops);
      break;
    case MsgType::kBye:
      handle_bye(src);
      break;
    case MsgType::kConnectRequest:
      handle_connect_request(src, static_cast<const ConnectRequest&>(*msg));
      break;
    case MsgType::kConnectAck:
      handle_connect_ack(src, static_cast<const ConnectAck&>(*msg));
      break;
    case MsgType::kQuery:
      handle_query(src, static_cast<const Query&>(*msg));
      break;
    case MsgType::kQueryHit:
      handle_query_hit(src, static_cast<const QueryHit&>(*msg));
      break;
    default:
      handle_control(src, *msg, hops);
      break;
  }
}

void Servent::on_flood_receive(NodeId origin, net::AppPayloadPtr app,
                               int hops) {
  if (app->kind >= static_cast<net::PayloadKind>(kNumMsgTypes)) return;
  const auto* msg = static_cast<const P2pMessage*>(app.get());
  counters_.count_received(msg->type());
  handle_flood(origin, *msg, hops);
}

// ---------------------------------------------------------------- handshake

Servent::PendingRequest* Servent::pending_slot(NodeId peer) noexcept {
  return pending_req_.find(peer);
}

void Servent::erase_pending(NodeId peer) noexcept {
  PendingRequest* slot = pending_req_.find(peer);
  const NodeId moved = pending_peers_.back();
  pending_peers_[slot->order_index] = moved;
  if (moved != peer) {
    pending_req_.find(moved)->order_index = slot->order_index;
  }
  pending_peers_.pop_back();
  pending_req_.erase(peer);
}

void Servent::request_connection(NodeId peer, std::uint64_t probe_id,
                                 ProbeWant want, ConnKind kind) {
  if (peer == self() || conns_.connected(peer) || has_pending_request(peer)) {
    return;
  }
  net::Ref<ConnectRequest> req = ctx_.net->pools().make<ConnectRequest>();
  req.edit()->probe_id = probe_id;
  req.edit()->want = want;
  send_msg(peer, std::move(req));

  PendingRequest& slot = pending_req_.get_or_insert(peer);
  slot.kind = kind;
  slot.order_index = static_cast<std::uint32_t>(pending_peers_.size());
  pending_peers_.push_back(peer);
  arm(slot.timeout, params_.handshake_timeout, [this, peer] {
    PendingRequest* pending = pending_slot(peer);
    if (pending == nullptr) return;
    const ConnKind k = pending->kind;
    pending->timeout = sim::kInvalidEventId;
    erase_pending(peer);
    on_request_failed(peer, k);
  });
}

std::size_t Servent::memory_bytes() const noexcept {
  // std::map node: two child pointers, parent, color + the key/value pair.
  constexpr std::size_t kMapNodeOverhead = 4 * sizeof(void*);
  return pending_req_.memory_bytes() +
         pending_peers_.capacity() * sizeof(NodeId) +
         seen_queries_.memory_bytes() +
         conns_.size() * (kMapNodeOverhead + sizeof(net::NodeId) +
                          sizeof(void*) + sizeof(Connection));
}

std::size_t Servent::pending_requests(ConnKind kind) const {
  std::size_t n = 0;
  for (const NodeId peer : pending_peers_) {
    if (pending_req_.find(peer)->kind == kind) ++n;
  }
  return n;
}

void Servent::handle_connect_request(NodeId src, const ConnectRequest& req) {
  // Responder-side kind: "random" is an *initiator* notion (the reserved
  // slot, the replacement rule, the 2*MAXDIST bound are all evaluated by
  // the node that asked). For the responder an incoming random link is an
  // ordinary symmetric connection occupying a generic slot.
  const ConnKind kind = req.want == ProbeWant::kMaster ? ConnKind::kMaster
                                                       : ConnKind::kRegular;
  net::Ref<ConnectAck> ack = ctx_.net->pools().make<ConnectAck>();
  ack.edit()->probe_id = req.probe_id;
  if (!conns_.connected(src) && can_accept(src, kind)) {
    ack.edit()->accepted = true;
    establish(src, kind, /*initiator=*/false);
    send_msg(src, std::move(ack));
  } else {
    ack.edit()->accepted = false;
    send_msg(src, std::move(ack));
  }
}

void Servent::handle_connect_ack(NodeId src, const ConnectAck& ack) {
  PendingRequest* pending = pending_slot(src);
  if (pending == nullptr) {
    // Stale ack (we gave up); release the slot the peer just reserved.
    if (ack.accepted) send_msg(src, ctx_.net->pools().make<Bye>());
    return;
  }
  const ConnKind kind = pending->kind;
  disarm(pending->timeout);
  erase_pending(src);
  if (!ack.accepted) {
    on_request_failed(src, kind);
    return;
  }
  if (Connection* existing = conns_.find(src)) {
    // Crossed handshakes: both sides probed, offered and requested each
    // other simultaneously, so each installed a responder-side connection
    // while its own request was in flight. Keep the single connection and
    // deterministically pick the pinging side (lower id pings) so exactly
    // one endpoint maintains it — both peers run this same rule.
    const bool we_ping = self() < src;
    if (existing->initiator != we_ping) {
      existing->initiator = we_ping;
      disarm(existing->ping_event);
      disarm(existing->timeout_event);
      if (we_ping) {
        arm(existing->ping_event, params_.ping_interval,
            [this, peer = src] { send_ping(peer); });
      } else {
        arm(existing->timeout_event, params_.silence_timeout,
            [this, peer = src] { maintenance_timeout(peer); });
      }
    }
    return;
  }
  if (!can_initiate(kind)) {
    // Filled up while the handshake was in flight.
    send_msg(src, ctx_.net->pools().make<Bye>());
    on_request_failed(src, kind);
    return;
  }
  Connection& conn = establish(src, kind, /*initiator=*/true);
  on_connection_established(conn);
}

// ---------------------------------------------------------------- lifecycle

Connection& Servent::establish(NodeId peer, ConnKind kind, bool initiator) {
  Connection& conn = conns_.add(peer, kind, initiator, ctx_.sim->now());
  ++connections_established_;
  LOG_DEBUG(kTag, ctx_.sim->now())
      << "node " << self() << " + " << conn_kind_name(kind) << " conn to "
      << peer << (initiator ? " (initiator)" : " (responder)");
  if (initiator || kind == ConnKind::kBasic) {
    arm(conn.ping_event, params_.ping_interval,
        [this, peer] { send_ping(peer); });
  } else {
    arm(conn.timeout_event, params_.silence_timeout,
        [this, peer] { maintenance_timeout(peer); });
  }
  return conn;
}

void Servent::close_connection(NodeId peer, CloseReason reason,
                               bool notify_peer) {
  Connection* conn = conns_.find(peer);
  if (conn == nullptr) return;
  const ConnKind kind = conn->kind;
  disarm(conn->ping_event);
  disarm(conn->timeout_event);
  conns_.remove(peer);
  ++connections_closed_;
  LOG_DEBUG(kTag, ctx_.sim->now())
      << "node " << self() << " - " << conn_kind_name(kind) << " conn to "
      << peer << " (" << close_reason_name(reason) << ")";
  if (notify_peer) send_msg(peer, ctx_.net->pools().make<Bye>());
  on_connection_closed(peer, kind, reason);
}

// ---------------------------------------------------------------- maintenance

void Servent::send_ping(NodeId peer) {
  Connection* conn = conns_.find(peer);
  if (conn == nullptr) return;
  conn->ping_event = sim::kInvalidEventId;
  send_msg(peer, ctx_.net->pools().make<Ping>());
  arm(conn->timeout_event, params_.pong_timeout,
      [this, peer] { maintenance_timeout(peer); });
}

void Servent::handle_ping(NodeId src, int hops) {
  // Pongs are answered unconditionally — Basic references are asymmetric,
  // so the pinged node generally has no connection state for the pinger.
  send_msg(src, ctx_.net->pools().make<Pong>());
  Connection* conn = conns_.find(src);
  if (conn != nullptr && !conn->initiator) {
    conn->last_heard = ctx_.sim->now();
    conn->last_distance = hops;
    arm(conn->timeout_event, params_.silence_timeout,
        [this, peer = src] { maintenance_timeout(peer); });
  }
}

void Servent::handle_pong(NodeId src, int hops) {
  Connection* conn = conns_.find(src);
  if (conn == nullptr || !(conn->initiator || conn->kind == ConnKind::kBasic)) {
    return;
  }
  conn->last_heard = ctx_.sim->now();
  conn->last_distance = hops;
  disarm(conn->timeout_event);
  const int limit = max_distance_for(conn->kind);
  if (limit >= 0 && hops > limit) {
    // Paper fig. 2: too far -> close (no notification; the peer's silence
    // timeout reclaims its slot).
    close_connection(src, CloseReason::kTooFar, /*notify_peer=*/false);
    return;
  }
  arm(conn->ping_event, params_.ping_interval,
      [this, peer = src] { send_ping(peer); });
}

void Servent::maintenance_timeout(NodeId peer) {
  Connection* conn = conns_.find(peer);
  if (conn == nullptr) return;
  conn->timeout_event = sim::kInvalidEventId;
  const bool we_ping = conn->initiator || conn->kind == ConnKind::kBasic;
  close_connection(peer,
                   we_ping ? CloseReason::kPongTimeout
                           : CloseReason::kSilenceTimeout,
                   /*notify_peer=*/false);
}

void Servent::handle_bye(NodeId src) {
  close_connection(src, CloseReason::kPeerClosed, /*notify_peer=*/false);
}

// ---------------------------------------------------------------- queries

void Servent::schedule_next_query(sim::SimTime delay) {
  arm(query_event_, delay, [this] {
    query_event_ = sim::kInvalidEventId;
    issue_query();
  });
}

void Servent::issue_query() {
  P2P_ASSERT(placement_ != nullptr);
  // Pick the file. Uniform by default so each popularity rank gets equal
  // request samples (what the Fig 5/6 per-rank averages need).
  FileId file;
  if (params_.query_by_popularity) {
    const content::ZipfLaw law(placement_->num_files(), 1.0);
    file = law.sample_by_popularity(rng_);
  } else {
    file = static_cast<FileId>(
        rng_.uniform_int(1, static_cast<std::int64_t>(placement_->num_files())));
  }

  const std::uint64_t qid = next_query_id_++;
  seen_queries_.insert(self(), qid, ctx_.sim->now());
  pending_qid_ = qid;
  pending_query_ = PendingQuery{file, 0, -1, -1};
  has_pending_query_ = true;
  ++queries_sent_;

  net::Ref<Query> query = ctx_.net->pools().make<Query>();
  Query* q = query.edit();
  q->query_id = qid;
  q->origin = self();
  q->file = file;
  q->ttl = static_cast<std::uint8_t>(params_.query_ttl);
  q->p2p_hops = 0;
  for (const NodeId peer : conns_.peers()) {
    send_msg(peer, query);
  }

  // Close the response window after 30 s, then wait 15-45 s more.
  ctx_.sim->after(params_.query_response_wait,
                  [this, qid] { finalize_query(qid); });
}

void Servent::finalize_query(std::uint64_t query_id) {
  if (!has_pending_query_ || pending_qid_ != query_id) return;
  const PendingQuery result = pending_query_;
  has_pending_query_ = false;
  if (recorder_ != nullptr) {
    recorder_->on_request_complete(result.file, result.answers,
                                   result.min_physical, result.min_p2p);
  }
  schedule_next_query(
      rng_.uniform(params_.query_gap_min, params_.query_gap_max));
}

void Servent::handle_query(NodeId src, const Query& query) {
  if (query.origin == self()) return;
  // Rule 1 (§7.2): each node forwards/answers a given query only once.
  if (!seen_queries_.insert(query.origin, query.query_id, ctx_.sim->now())) {
    return;
  }
  const auto hops_here = static_cast<std::uint8_t>(query.p2p_hops + 1);
  if (holds(query.file)) {
    net::Ref<QueryHit> hit = ctx_.net->pools().make<QueryHit>();
    QueryHit* h = hit.edit();
    h->query_id = query.query_id;
    h->file = query.file;
    h->holder = self();
    h->p2p_hops = hops_here;
    // Answers go directly to the requirer (§7.2).
    send_msg(query.origin, std::move(hit));
  }
  // Forward even when we hold the file (§7.2), TTL permitting.
  if (query.ttl <= 1) return;
  net::Ref<Query> fwd = ctx_.net->pools().make_from(query);
  fwd.edit()->ttl = static_cast<std::uint8_t>(query.ttl - 1);
  fwd.edit()->p2p_hops = hops_here;
  for (const NodeId peer : conns_.peers()) {
    // Rules 2 and 3: never back to the sender, never to the origin.
    if (peer == src || peer == query.origin) continue;
    send_msg(peer, fwd);
  }
}

int Servent::physical_distance_to(NodeId other) {
  // Hot on query-heavy runs (one BFS per query hit): the network owns one
  // epoch-memoized adjacency snapshot shared by all servents, instead of
  // each servent rebuilding (and keeping resident) its own copy.
  return ctx_.net->physical_hop_distance(self(), other);
}

void Servent::handle_query_hit(NodeId /*src*/, const QueryHit& hit) {
  if (!has_pending_query_ || pending_qid_ != hit.query_id) {
    return;  // response window already closed
  }
  PendingQuery& pending = pending_query_;
  ++pending.answers;
  const int phys = physical_distance_to(hit.holder);
  if (phys >= 0 &&
      (pending.min_physical < 0 || phys < pending.min_physical)) {
    pending.min_physical = phys;
  }
  const int p2p_hops = int{hit.p2p_hops};
  if (pending.min_p2p < 0 || p2p_hops < pending.min_p2p) {
    pending.min_p2p = p2p_hops;
  }
}

}  // namespace p2p::core
