#include "core/factory.hpp"

#include "util/strings.hpp"

namespace p2p::core {

std::unique_ptr<Servent> make_servent(AlgorithmKind kind,
                                      const ServentContext& ctx,
                                      const P2pParams& params,
                                      sim::RngStream rng,
                                      std::uint32_t qualifier) {
  switch (kind) {
    case AlgorithmKind::kBasic:
      return std::make_unique<BasicServent>(ctx, params, std::move(rng));
    case AlgorithmKind::kRegular:
      return std::make_unique<RegularServent>(ctx, params, std::move(rng));
    case AlgorithmKind::kRandom:
      return std::make_unique<RandomServent>(ctx, params, std::move(rng));
    case AlgorithmKind::kHybrid:
      return std::make_unique<HybridServent>(ctx, params, std::move(rng),
                                             qualifier);
  }
  return nullptr;
}

std::optional<AlgorithmKind> parse_algorithm(std::string_view name) {
  const std::string v = util::to_lower(name);
  if (v == "basic") return AlgorithmKind::kBasic;
  if (v == "regular") return AlgorithmKind::kRegular;
  if (v == "random") return AlgorithmKind::kRandom;
  if (v == "hybrid") return AlgorithmKind::kHybrid;
  return std::nullopt;
}

}  // namespace p2p::core
