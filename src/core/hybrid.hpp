// The Hybrid algorithm (paper §6.2) — heterogeneous networks.
//
// Every peer carries a *qualifier* (battery, CPU, ... — any total order on
// capability). Peers self-organize into subnets of one master and up to
// MAXNSLAVES slaves; slaves talk only to their master, masters connect to
// each other with the Regular algorithm, forming the hybrid overlay.
//
// States: INITIAL -> (capture exchange) -> SLAVE or MASTER, with RESERVED
// as the transition while a slave candidate waits for its master's accept.
// Reconfiguration: a master with no slaves for MAXTIMERMASTER reverts to
// INITIAL ("could potentially be another peer slave"); a slave too far
// from its master (MAXDIST check on pongs) closes the link and restarts.
#pragma once

#include <map>

#include "core/progressive.hpp"
#include "core/servent.hpp"

namespace p2p::core {

enum class HybridState : std::uint8_t { kInitial, kMaster, kSlave, kReserved };

const char* hybrid_state_name(HybridState state) noexcept;

class HybridServent final : public Servent {
 public:
  HybridServent(const ServentContext& ctx, const P2pParams& params,
                sim::RngStream rng, std::uint32_t qualifier)
      : Servent(ctx, params, std::move(rng)),
        qualifier_(qualifier),
        search_(this->params()) {}

  AlgorithmKind algorithm() const noexcept override {
    return AlgorithmKind::kHybrid;
  }

  HybridState state() const noexcept { return state_; }
  std::uint32_t qualifier() const noexcept { return qualifier_; }
  std::size_t slave_count() const { return conns().count(ConnKind::kSlave); }

 protected:
  void on_start() override;
  void handle_flood(NodeId origin, const P2pMessage& msg, int hops) override;
  void handle_control(NodeId src, const P2pMessage& msg, int hops) override;
  void on_connection_established(Connection& conn) override;
  void on_connection_closed(NodeId peer, ConnKind kind,
                            CloseReason reason) override;
  void on_request_failed(NodeId peer, ConnKind kind) override;
  bool can_accept(NodeId from, ConnKind kind) const override;
  bool can_initiate(ConnKind kind) const override;
  void on_crashed() override;

 private:
  /// Total order on capability; node id breaks qualifier ties.
  bool outranks(std::uint32_t their_q, NodeId their_id) const noexcept {
    if (qualifier_ != their_q) return qualifier_ > their_q;
    return self() > their_id;
  }

  void schedule_tick(sim::SimTime delay);
  void tick();          // dispatches on state
  void initial_tick();  // capture cycle (fig. 4, INITIAL case)
  void master_tick();   // Regular search restricted to masters

  void become_master();
  void revert_to_initial();

  void handle_capture(NodeId src, std::uint32_t their_qualifier);
  void handle_slave_request(NodeId src, std::uint32_t their_qualifier);
  void handle_slave_accept(NodeId src);
  void handle_slave_confirm(NodeId src);
  void handle_slave_reject(NodeId src);

  void arm_no_slave_watchdog();

  std::uint32_t qualifier_;
  HybridState state_ = HybridState::kInitial;
  ProgressiveSearch search_;
  sim::EventId tick_event_ = sim::kInvalidEventId;

  // RESERVED bookkeeping (slave candidate side).
  NodeId master_candidate_ = net::kInvalidNode;
  sim::EventId reserve_timeout_ = sim::kInvalidEventId;

  // Master side: slots promised but not yet confirmed.
  std::map<NodeId, sim::EventId> slave_reservations_;
  sim::EventId no_slave_event_ = sim::kInvalidEventId;

  // Master-master probes in flight (probe_id -> expiry).
  std::map<std::uint64_t, sim::SimTime> master_probes_;
};

}  // namespace p2p::core
