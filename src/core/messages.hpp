// P2P overlay messages (paper §2, §6).
//
// All messages derive from net::AppPayload and travel either inside the
// controlled broadcast (probes, captures) or as AODV unicast data
// (everything else). Sizes follow Gnutella 0.4 descriptor sizes where a
// counterpart exists.
#pragma once

#include <cstdint>
#include <memory>

#include "content/zipf.hpp"
#include "net/types.hpp"

namespace p2p::core {

using content::FileId;
using net::NodeId;

enum class MsgType : std::uint8_t {
  kConnectProbe,   // flooded: "looking for connections within nhops"
  kConnectOffer,   // unicast answer to a probe
  kConnectRequest, // prober claims the offered slot (3-way step 2)
  kConnectAck,     // responder confirms/denies (3-way step 3)
  kPing,           // connection keep-alive
  kPong,           // keep-alive answer
  kQuery,          // Gnutella-like content search
  kQueryHit,       // answer, sent directly to the requirer
  kCapture,        // Hybrid: qualifier announcement
  kSlaveRequest,   // Hybrid: ask to become a slave (3-way step 1)
  kSlaveAccept,    // Hybrid: master grants the slot (step 2)
  kSlaveConfirm,   // Hybrid: slave commits (step 3)
  kSlaveReject,    // Hybrid: master has no capacity
  kBye,            // graceful connection close
};

const char* msg_type_name(MsgType type) noexcept;

/// Messages belonging to connection (re)configuration — what Figures 7/8
/// count as "connect messages".
bool is_connect_message(MsgType type) noexcept;
/// Ping traffic — what Figures 9/10 count (ping + pong, as in Gnutella's
/// ping/pong descriptor family).
bool is_ping_message(MsgType type) noexcept;

/// What kind of slot a probe wants filled. Responder willingness and
/// capacity checks depend on it.
enum class ProbeWant : std::uint8_t {
  kBasic,   // Basic: every listener answers
  kRegular, // Regular/Random: nodes with spare capacity answer
  kRandom,  // Random's long link: same willingness as regular
  kMaster,  // Hybrid: only masters answer
};

struct P2pMessage : net::AppPayload {
  virtual MsgType type() const noexcept = 0;
};
using P2pMessagePtr = std::shared_ptr<const P2pMessage>;

struct ConnectProbe final : P2pMessage {
  std::uint64_t probe_id = 0;
  ProbeWant want = ProbeWant::kRegular;
  MsgType type() const noexcept override { return MsgType::kConnectProbe; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectOffer final : P2pMessage {
  std::uint64_t probe_id = 0;
  std::uint8_t hop_distance = 0;  // ad-hoc hops the probe traveled
  MsgType type() const noexcept override { return MsgType::kConnectOffer; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectRequest final : P2pMessage {
  std::uint64_t probe_id = 0;
  ProbeWant want = ProbeWant::kRegular;
  MsgType type() const noexcept override { return MsgType::kConnectRequest; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectAck final : P2pMessage {
  std::uint64_t probe_id = 0;
  bool accepted = false;
  MsgType type() const noexcept override { return MsgType::kConnectAck; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Ping final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kPing; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Pong final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kPong; }
  std::size_t size_bytes() const noexcept override { return 37; }
};

struct Query final : P2pMessage {
  std::uint64_t query_id = 0;  // unique per origin
  NodeId origin = net::kInvalidNode;
  FileId file = 0;
  std::uint8_t ttl = 0;        // remaining p2p hops
  std::uint8_t p2p_hops = 0;   // overlay hops already traveled
  MsgType type() const noexcept override { return MsgType::kQuery; }
  std::size_t size_bytes() const noexcept override { return 41; }
};

struct QueryHit final : P2pMessage {
  std::uint64_t query_id = 0;
  FileId file = 0;
  NodeId holder = net::kInvalidNode;
  std::uint8_t p2p_hops = 0;  // overlay hops the query traveled to the holder
  MsgType type() const noexcept override { return MsgType::kQueryHit; }
  std::size_t size_bytes() const noexcept override { return 49; }
};

struct Capture final : P2pMessage {
  std::uint32_t qualifier = 0;
  MsgType type() const noexcept override { return MsgType::kCapture; }
  std::size_t size_bytes() const noexcept override { return 27; }
};

struct SlaveRequest final : P2pMessage {
  std::uint32_t qualifier = 0;
  MsgType type() const noexcept override { return MsgType::kSlaveRequest; }
  std::size_t size_bytes() const noexcept override { return 27; }
};

struct SlaveAccept final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kSlaveAccept; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct SlaveConfirm final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kSlaveConfirm; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct SlaveReject final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kSlaveReject; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Bye final : P2pMessage {
  MsgType type() const noexcept override { return MsgType::kBye; }
  std::size_t size_bytes() const noexcept override { return 23; }
};

}  // namespace p2p::core
