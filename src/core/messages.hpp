// P2P overlay messages (paper §2, §6).
//
// All messages derive from net::AppPayload and travel either inside the
// controlled broadcast (probes, captures) or as AODV unicast data
// (everything else). Sizes follow Gnutella 0.4 descriptor sizes where a
// counterpart exists.
#pragma once

#include <cstdint>

#include "content/zipf.hpp"
#include "net/types.hpp"

namespace p2p::core {

using content::FileId;
using net::NodeId;

enum class MsgType : std::uint8_t {
  kConnectProbe,   // flooded: "looking for connections within nhops"
  kConnectOffer,   // unicast answer to a probe
  kConnectRequest, // prober claims the offered slot (3-way step 2)
  kConnectAck,     // responder confirms/denies (3-way step 3)
  kPing,           // connection keep-alive
  kPong,           // keep-alive answer
  kQuery,          // Gnutella-like content search
  kQueryHit,       // answer, sent directly to the requirer
  kCapture,        // Hybrid: qualifier announcement
  kSlaveRequest,   // Hybrid: ask to become a slave (3-way step 1)
  kSlaveAccept,    // Hybrid: master grants the slot (step 2)
  kSlaveConfirm,   // Hybrid: slave commits (step 3)
  kSlaveReject,    // Hybrid: master has no capacity
  kBye,            // graceful connection close
};

/// Number of MsgType values (array-sized counters, dispatch tables).
inline constexpr std::size_t kNumMsgTypes = 14;

const char* msg_type_name(MsgType type) noexcept;

/// Messages belonging to connection (re)configuration — what Figures 7/8
/// count as "connect messages".
bool is_connect_message(MsgType type) noexcept;
/// Ping traffic — what Figures 9/10 count (ping + pong, as in Gnutella's
/// ping/pong descriptor family).
bool is_ping_message(MsgType type) noexcept;

/// What kind of slot a probe wants filled. Responder willingness and
/// capacity checks depend on it.
enum class ProbeWant : std::uint8_t {
  kBasic,   // Basic: every listener answers
  kRegular, // Regular/Random: nodes with spare capacity answer
  kRandom,  // Random's long link: same willingness as regular
  kMaster,  // Hybrid: only masters answer
};

/// Every P2P message stamps its MsgType into the payload kind tag at
/// construction, so receive dispatch is a switch on `type()` with a
/// static_cast — no RTTI (see net::AppPayload::kind).
struct P2pMessage : net::AppPayload {
  MsgType type() const noexcept { return static_cast<MsgType>(kind); }

 protected:
  explicit P2pMessage(MsgType t) noexcept { kind = static_cast<net::PayloadKind>(t); }
};
using P2pMessagePtr = net::Ref<const P2pMessage>;

struct ConnectProbe final : P2pMessage {
  ConnectProbe() noexcept : P2pMessage(MsgType::kConnectProbe) {}
  std::uint64_t probe_id = 0;
  ProbeWant want = ProbeWant::kRegular;
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectOffer final : P2pMessage {
  ConnectOffer() noexcept : P2pMessage(MsgType::kConnectOffer) {}
  std::uint64_t probe_id = 0;
  std::uint8_t hop_distance = 0;  // ad-hoc hops the probe traveled
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectRequest final : P2pMessage {
  ConnectRequest() noexcept : P2pMessage(MsgType::kConnectRequest) {}
  std::uint64_t probe_id = 0;
  ProbeWant want = ProbeWant::kRegular;
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct ConnectAck final : P2pMessage {
  ConnectAck() noexcept : P2pMessage(MsgType::kConnectAck) {}
  std::uint64_t probe_id = 0;
  bool accepted = false;
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Ping final : P2pMessage {
  Ping() noexcept : P2pMessage(MsgType::kPing) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Pong final : P2pMessage {
  Pong() noexcept : P2pMessage(MsgType::kPong) {}
  std::size_t size_bytes() const noexcept override { return 37; }
};

struct Query final : P2pMessage {
  Query() noexcept : P2pMessage(MsgType::kQuery) {}
  std::uint64_t query_id = 0;  // unique per origin
  NodeId origin = net::kInvalidNode;
  FileId file = 0;
  std::uint8_t ttl = 0;        // remaining p2p hops
  std::uint8_t p2p_hops = 0;   // overlay hops already traveled
  std::size_t size_bytes() const noexcept override { return 41; }
};

struct QueryHit final : P2pMessage {
  QueryHit() noexcept : P2pMessage(MsgType::kQueryHit) {}
  std::uint64_t query_id = 0;
  FileId file = 0;
  NodeId holder = net::kInvalidNode;
  std::uint8_t p2p_hops = 0;  // overlay hops the query traveled to the holder
  std::size_t size_bytes() const noexcept override { return 49; }
};

struct Capture final : P2pMessage {
  Capture() noexcept : P2pMessage(MsgType::kCapture) {}
  std::uint32_t qualifier = 0;
  std::size_t size_bytes() const noexcept override { return 27; }
};

struct SlaveRequest final : P2pMessage {
  SlaveRequest() noexcept : P2pMessage(MsgType::kSlaveRequest) {}
  std::uint32_t qualifier = 0;
  std::size_t size_bytes() const noexcept override { return 27; }
};

struct SlaveAccept final : P2pMessage {
  SlaveAccept() noexcept : P2pMessage(MsgType::kSlaveAccept) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct SlaveConfirm final : P2pMessage {
  SlaveConfirm() noexcept : P2pMessage(MsgType::kSlaveConfirm) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct SlaveReject final : P2pMessage {
  SlaveReject() noexcept : P2pMessage(MsgType::kSlaveReject) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

struct Bye final : P2pMessage {
  Bye() noexcept : P2pMessage(MsgType::kBye) {}
  std::size_t size_bytes() const noexcept override { return 23; }
};

}  // namespace p2p::core
