#include "core/connection.hpp"

#include "util/assert.hpp"

namespace p2p::core {

const char* conn_kind_name(ConnKind kind) noexcept {
  switch (kind) {
    case ConnKind::kBasic: return "basic";
    case ConnKind::kRegular: return "regular";
    case ConnKind::kRandom: return "random";
    case ConnKind::kMaster: return "master";
    case ConnKind::kSlave: return "slave";
  }
  return "?";
}

const char* close_reason_name(CloseReason reason) noexcept {
  switch (reason) {
    case CloseReason::kPongTimeout: return "pong-timeout";
    case CloseReason::kSilenceTimeout: return "silence-timeout";
    case CloseReason::kTooFar: return "too-far";
    case CloseReason::kPeerClosed: return "peer-closed";
    case CloseReason::kLocalDecision: return "local-decision";
  }
  return "?";
}

Connection& ConnectionTable::add(NodeId peer, ConnKind kind, bool initiator,
                                 sim::SimTime now) {
  P2P_ASSERT_MSG(!connected(peer), "duplicate connection to peer");
  auto conn = std::make_unique<Connection>();
  conn->peer = peer;
  conn->kind = kind;
  conn->initiator = initiator;
  conn->established = now;
  conn->last_heard = now;
  Connection& ref = *conn;
  conns_.emplace(peer, std::move(conn));
  return ref;
}

bool ConnectionTable::remove(NodeId peer) { return conns_.erase(peer) > 0; }

Connection* ConnectionTable::find(NodeId peer) {
  const auto it = conns_.find(peer);
  return it == conns_.end() ? nullptr : it->second.get();
}

const Connection* ConnectionTable::find(NodeId peer) const {
  const auto it = conns_.find(peer);
  return it == conns_.end() ? nullptr : it->second.get();
}

std::size_t ConnectionTable::count(ConnKind kind) const {
  std::size_t n = 0;
  for (const auto& [peer, conn] : conns_) {
    if (conn->kind == kind) ++n;
  }
  return n;
}

std::vector<NodeId> ConnectionTable::peers() const {
  std::vector<NodeId> out;
  out.reserve(conns_.size());
  for (const auto& [peer, conn] : conns_) out.push_back(peer);
  return out;
}

std::vector<NodeId> ConnectionTable::peers_of_kind(ConnKind kind) const {
  std::vector<NodeId> out;
  for (const auto& [peer, conn] : conns_) {
    if (conn->kind == kind) out.push_back(peer);
  }
  return out;
}

}  // namespace p2p::core
