// Parameters of the (re)configuration algorithms (paper §6 + Table 2).
//
// Values the paper specifies are defaulted to its Table 2; timer values
// the paper leaves unspecified are defaulted to the choices documented in
// DESIGN.md §1 and swept by bench_ablation_timers.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace p2p::core {

enum class AlgorithmKind : std::uint8_t {
  kBasic,    // §6.1.1 — naive baseline, asymmetric references
  kRegular,  // §6.1.3 — progressive radius, symmetric connections
  kRandom,   // §6.1.4 — Regular + one long-range "small-world" link
  kHybrid,   // §6.2   — master/slave clustering for heterogeneous nets
};

const char* algorithm_name(AlgorithmKind kind) noexcept;

struct P2pParams {
  // ---- Table 2 ----
  int maxnconn = 3;        // MAXNCONN: max connections per node
  int nhops_initial = 2;   // NHOPS_INITIAL (ad-hoc hops)
  int maxnhops = 6;        // MAXNHOPS (ad-hoc hops)
  int nhops_basic = 6;     // NHOPS for the Basic algorithm
  int maxdist = 6;         // MAXDIST (ad-hoc hops) for maintenance
  int maxnslaves = 3;      // MAXNSLAVES (Hybrid)
  int query_ttl = 6;       // TTL for queries (p2p hops)

  // ---- timers (unspecified in the paper; see DESIGN.md §1) ----
  // Calibrated so the absolute per-node message counts land in the same
  // ranges as the paper's Figure 7-12 axes (EXPERIMENTS.md discusses the
  // calibration; bench_ablation_timers sweeps them).
  sim::SimTime timer_initial = 30.0;     // TIMER_INITIAL / Basic TIMER
  sim::SimTime maxtimer = 480.0;         // MAXTIMER (backoff cap)
  sim::SimTime maxtimer_master = 120.0;  // MAXTIMERMASTER: master w/o slaves
  sim::SimTime ping_interval = 60.0;     // pause between pong and next ping
  sim::SimTime pong_timeout = 20.0;      // initiator's wait for a pong
  sim::SimTime silence_timeout = 180.0;  // responder's wait between pings
  sim::SimTime offer_window = 2.0;       // prober collects offers this long
  sim::SimTime handshake_timeout = 5.0;  // pending request expiry

  // ---- query workload (§7.2) ----
  sim::SimTime query_response_wait = 30.0;  // wait for responses
  sim::SimTime query_gap_min = 15.0;        // then 15..45 s until next query
  sim::SimTime query_gap_max = 45.0;
  bool query_by_popularity = false;  // false: uniform file choice (default,
                                     // gives equal samples per rank for the
                                     // Fig 5/6 per-rank averages)
  bool enable_queries = true;

  /// Random algorithm: the long link may span up to 2*MAXNHOPS hops.
  int random_max_hops() const noexcept { return 2 * maxnhops; }
  /// Maintenance bound for random connections: 2*MAXDIST (paper fig. 2).
  int random_maxdist() const noexcept { return 2 * maxdist; }
};

}  // namespace p2p::core
