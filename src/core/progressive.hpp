// The progressive connection-search cycle shared by Regular, Random and
// Hybrid (paper §6.1.3):
//
//   nhops starts at NHOPS_INITIAL and grows by 2 each attempt up to
//   MAXNHOPS; the wrap to 0 means "a full cycle failed" — the backoff
//   timer doubles (capped at MAXTIMER) and the cycle restarts. Whenever a
//   connection is established the timer resets to TIMER_INITIAL ("this
//   new connection may be a signal of a better network configuration").
#pragma once

#include <algorithm>

#include "core/params.hpp"
#include "sim/time.hpp"

namespace p2p::core {

class ProgressiveSearch {
 public:
  explicit ProgressiveSearch(const P2pParams& params)
      : params_(&params),
        nhops_(params.nhops_initial),
        timer_(params.timer_initial) {}

  /// One establish-loop iteration.
  struct Step {
    int flood_hops;     // > 0: probe within this radius; 0: backoff step
    sim::SimTime wait;  // delay before the next iteration
  };

  Step advance() {
    Step step{};
    if (nhops_ != 0) {
      step.flood_hops = nhops_;
      step.wait = timer_;
    } else {
      timer_ = std::min(timer_ * 2.0, params_->maxtimer);
      step.flood_hops = 0;
      step.wait = 0.0;  // immediately restart the cycle at NHOPS_INITIAL
    }
    nhops_ = (nhops_ + 2) % (params_->maxnhops + 2);
    return step;
  }

  /// Paper: "whenever a connection is done, the timer is reset".
  void on_connection_established() noexcept { timer_ = params_->timer_initial; }

  /// Restart the whole cycle (Hybrid uses this on state transitions).
  void reset() noexcept {
    nhops_ = params_->nhops_initial;
    timer_ = params_->timer_initial;
  }

  int nhops() const noexcept { return nhops_; }
  sim::SimTime timer() const noexcept { return timer_; }

 private:
  const P2pParams* params_;
  int nhops_;
  sim::SimTime timer_;
};

}  // namespace p2p::core
