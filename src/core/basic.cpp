#include "core/basic.hpp"

namespace p2p::core {

void BasicServent::on_start() { schedule_tick(0.0); }

void BasicServent::schedule_tick(sim::SimTime delay) {
  if (tick_event_ != sim::kInvalidEventId) return;  // one pending tick max
  arm(tick_event_, delay, [this] {
    tick_event_ = sim::kInvalidEventId;
    establish_tick();
  });
}

void BasicServent::establish_tick() {
  if (conns().size() < static_cast<std::size_t>(params().maxnconn)) {
    net::Ref<ConnectProbe> probe = network().pools().make<ConnectProbe>();
    probe.edit()->probe_id = new_probe_id();
    probe.edit()->want = ProbeWant::kBasic;
    flood_msg(std::move(probe), params().nhops_basic);
  }
  // Fixed interval between attempts — the algorithm keeps trying as long
  // as the node is in the network ("whenever else it has less than
  // MAXNCONN connections"), so the loop never stops.
  schedule_tick(params().timer_initial);
}

void BasicServent::handle_flood(NodeId origin, const P2pMessage& msg,
                                int hops) {
  if (msg.type() != MsgType::kConnectProbe) return;
  const auto& probe = static_cast<const ConnectProbe&>(msg);
  if (probe.want != ProbeWant::kBasic) return;
  // "Every node that listens to this message answers it."
  net::Ref<ConnectOffer> offer = network().pools().make<ConnectOffer>();
  offer.edit()->probe_id = probe.probe_id;
  offer.edit()->hop_distance = static_cast<std::uint8_t>(hops);
  send_msg(origin, std::move(offer));
}

void BasicServent::handle_control(NodeId src, const P2pMessage& msg,
                                  int /*hops*/) {
  if (msg.type() != MsgType::kConnectOffer) return;
  // "As soon as a response arrives, the node establishes a connection to
  // the neighbor who sent it, till the limit of MAXNCONN" — unilateral,
  // asymmetric reference; the responder is never told.
  if (conns().size() >= static_cast<std::size_t>(params().maxnconn)) return;
  if (conns().connected(src)) return;
  establish(src, ConnKind::kBasic, /*initiator=*/true);
}

void BasicServent::on_connection_established(Connection& /*conn*/) {}

void BasicServent::on_connection_closed(NodeId /*peer*/, ConnKind /*kind*/,
                                        CloseReason /*reason*/) {
  // The periodic tick repopulates; nothing special to do.
}

bool BasicServent::can_accept(NodeId /*from*/, ConnKind /*kind*/) const {
  // Basic never receives ConnectRequests (no handshake), but a symmetric
  // peer algorithm could send one in mixed deployments: refuse.
  return false;
}

bool BasicServent::can_initiate(ConnKind /*kind*/) const {
  return conns().size() < static_cast<std::size_t>(params().maxnconn);
}

}  // namespace p2p::core
