#include "graph/watts_strogatz.hpp"

#include "util/assert.hpp"

namespace p2p::graph {

Graph ring_lattice(std::size_t n, std::size_t k) {
  P2P_ASSERT_MSG(k % 2 == 0, "ring lattice needs even k");
  P2P_ASSERT(k < n);
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      g.add_edge(v, static_cast<Vertex>((v + d) % n));
    }
  }
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     sim::RngStream& rng) {
  P2P_ASSERT(beta >= 0.0 && beta <= 1.0);
  // Build edge list of the lattice, rewire into a fresh graph.
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      const auto w = static_cast<Vertex>((v + d) % n);
      Vertex target = w;
      if (rng.chance(beta)) {
        // Rewire: pick a random endpoint, retrying on self-loops and
        // existing edges (bounded retries keep degenerate cases safe).
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto candidate = static_cast<Vertex>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          if (candidate != v && !g.has_edge(v, candidate)) {
            target = candidate;
            break;
          }
        }
      }
      g.add_edge(v, target);
    }
  }
  return g;
}

}  // namespace p2p::graph
