#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

namespace p2p::graph {

std::size_t Graph::edge_count() const noexcept {
  std::size_t twice = 0;
  for (const auto& nbrs : adj_) twice += nbrs.size();
  return twice / 2;
}

void Graph::add_edge(Vertex a, Vertex b) {
  if (a == b || a >= adj_.size() || b >= adj_.size()) return;
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

bool Graph::has_edge(Vertex a, Vertex b) const noexcept {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  const auto& smaller = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const Vertex target = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<int> Graph::bfs_distances(Vertex src) const {
  std::vector<int> dist(adj_.size(), kUnreachable);
  if (src >= adj_.size()) return dist;
  std::queue<Vertex> queue;
  dist[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    for (const Vertex w : adj_[v]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

int Graph::distance(Vertex src, Vertex dst) const {
  return bfs_distance(adj_, src, dst);
}

int bfs_distance(const std::vector<std::vector<Vertex>>& adj, Vertex src,
                 Vertex dst) {
  if (src >= adj.size() || dst >= adj.size()) return kUnreachable;
  if (src == dst) return 0;
  std::vector<int> dist(adj.size(), kUnreachable);
  std::queue<Vertex> queue;
  dist[src] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    for (const Vertex w : adj[v]) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        if (w == dst) return dist[w];
        queue.push(w);
      }
    }
  }
  return kUnreachable;
}

int bfs_distance(const std::vector<std::vector<Vertex>>& adj, Vertex src,
                 Vertex dst, BfsScratch& scratch) {
  if (src >= adj.size() || dst >= adj.size()) return kUnreachable;
  if (src == dst) return 0;
  if (scratch.stamp_.size() < adj.size()) {
    scratch.stamp_.resize(adj.size(), 0);
    scratch.dist_.resize(adj.size());
  }
  if (++scratch.generation_ == 0) {
    // Stamp wrapped (once per 2^32 queries): invalidate everything.
    std::fill(scratch.stamp_.begin(), scratch.stamp_.end(), 0u);
    scratch.generation_ = 1;
  }
  const std::uint32_t gen = scratch.generation_;
  auto& stamp = scratch.stamp_;
  auto& dist = scratch.dist_;
  auto& frontier = scratch.frontier_;
  frontier.clear();
  stamp[src] = gen;
  dist[src] = 0;
  frontier.push_back(src);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const Vertex v = frontier[head];
    for (const Vertex w : adj[v]) {
      if (stamp[w] == gen) continue;
      stamp[w] = gen;
      dist[w] = dist[v] + 1;
      if (w == dst) return dist[w];
      frontier.push_back(w);
    }
  }
  return kUnreachable;
}

std::vector<Vertex> Graph::components(std::size_t* count) const {
  std::vector<Vertex> label(adj_.size(), static_cast<Vertex>(-1));
  Vertex next = 0;
  std::queue<Vertex> queue;
  for (Vertex s = 0; s < adj_.size(); ++s) {
    if (label[s] != static_cast<Vertex>(-1)) continue;
    label[s] = next;
    queue.push(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop();
      for (const Vertex w : adj_[v]) {
        if (label[w] == static_cast<Vertex>(-1)) {
          label[w] = next;
          queue.push(w);
        }
      }
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return label;
}

}  // namespace p2p::graph
