#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace p2p::graph {

double local_clustering(const Graph& g, Vertex v) {
  const auto& nbrs = g.neighbors(v);
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::size_t real_conn = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (g.has_edge(nbrs[i], nbrs[j])) ++real_conn;
    }
  }
  const double possible_conn = static_cast<double>(k) * (static_cast<double>(k) - 1.0) / 2.0;
  return static_cast<double>(real_conn) / possible_conn;
}

double clustering_coefficient(const Graph& g) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (Vertex v = 0; v < g.order(); ++v) {
    if (g.degree(v) < 2) continue;
    sum += local_clustering(g, v);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double characteristic_path_length(const Graph& g) {
  double sum = 0.0;
  std::size_t pairs = 0;
  for (Vertex v = 0; v < g.order(); ++v) {
    const std::vector<int> dist = g.bfs_distances(v);
    for (Vertex w = 0; w < g.order(); ++w) {
      if (w != v && dist[w] != kUnreachable) {
        sum += dist[w];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

SmallWorldMetrics analyze(const Graph& g) {
  SmallWorldMetrics m;
  m.vertices = g.order();
  m.edges = g.edge_count();
  m.mean_degree =
      m.vertices == 0 ? 0.0 : 2.0 * static_cast<double>(m.edges) / static_cast<double>(m.vertices);
  m.clustering = clustering_coefficient(g);
  m.path_length = characteristic_path_length(g);

  std::size_t count = 0;
  const std::vector<Vertex> labels = g.components(&count);
  m.components = count;
  std::vector<std::size_t> sizes(count, 0);
  for (const Vertex l : labels) ++sizes[l];
  m.largest_component = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());

  if (m.vertices > 1) {
    double connected_pairs = 0.0;
    for (const std::size_t s : sizes) {
      connected_pairs += static_cast<double>(s) * (static_cast<double>(s) - 1.0);
    }
    m.connected_pair_fraction =
        connected_pairs / (static_cast<double>(m.vertices) *
                           (static_cast<double>(m.vertices) - 1.0));
  }

  // Small-world index sigma = (C/C_rand) / (L/L_rand).
  const double n = static_cast<double>(m.vertices);
  const double k = m.mean_degree;
  if (n > 1.0 && k > 1.0 && m.path_length > 0.0) {
    const double c_rand = k / n;
    const double l_rand = std::log(n) / std::log(k);
    if (c_rand > 0.0 && l_rand > 0.0 && m.clustering > 0.0) {
      m.smallworld_index = (m.clustering / c_rand) / (m.path_length / l_rand);
    }
  }
  return m;
}

double regular_lattice_path_length(std::size_t n, std::size_t k) {
  if (k == 0) return 0.0;
  return static_cast<double>(n) / (2.0 * static_cast<double>(k));
}

double random_graph_path_length(std::size_t n, std::size_t k) {
  if (n < 2 || k < 2) return 0.0;
  return std::log(static_cast<double>(n)) / std::log(static_cast<double>(k));
}

}  // namespace p2p::graph
