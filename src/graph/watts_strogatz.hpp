// Watts-Strogatz small-world graph generator (§6.1.2 of the paper quotes
// the model's regular/random path-length formulas; the Random algorithm
// tries to reach this regime through its long links).
//
// Used by the theoretical study the paper lists as future work: generate
// ring lattices, rewire a fraction beta of edges, and track how the
// clustering coefficient and characteristic path length move between the
// regular (beta=0) and random (beta=1) extremes.
#pragma once

#include "graph/graph.hpp"
#include "sim/rng.hpp"

namespace p2p::graph {

/// Ring lattice: n vertices each connected to the k nearest neighbors
/// (k even; k/2 on each side).
Graph ring_lattice(std::size_t n, std::size_t k);

/// Watts-Strogatz: start from ring_lattice(n, k) and rewire each edge's
/// far endpoint with probability beta to a uniform random vertex
/// (avoiding self-loops and duplicate edges).
Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     sim::RngStream& rng);

}  // namespace p2p::graph
