// Small-world graph metrics (paper §6.1.2, citing Watts/Strogatz via
// [Hong 2001]).
//
// * clustering coefficient: per node, real_conn / possible_conn over its
//   neighbor set, averaged over nodes with degree >= 2;
// * characteristic path length: mean hop distance over connected pairs;
// * small-world index: (C/C_random) / (L/L_random) with the usual
//   Erdős–Rényi baselines C_rand ≈ k/n, L_rand ≈ ln n / ln k.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace p2p::graph {

struct SmallWorldMetrics {
  double clustering = 0.0;       // average clustering coefficient
  double path_length = 0.0;      // characteristic path length (connected pairs)
  double mean_degree = 0.0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  std::size_t components = 0;
  std::size_t largest_component = 0;
  double connected_pair_fraction = 0.0;  // reachable pairs / all pairs
  double smallworld_index = 0.0;         // sigma; 0 when undefined
};

/// Clustering coefficient of one vertex (0 when degree < 2).
double local_clustering(const Graph& g, Vertex v);

/// Average clustering coefficient over vertices with degree >= 2
/// (vertices that cannot close a triangle are excluded, matching the
/// paper's real_conn/possible_conn definition).
double clustering_coefficient(const Graph& g);

/// Mean BFS distance over all ordered pairs that are connected; 0 when no
/// pair is connected.
double characteristic_path_length(const Graph& g);

SmallWorldMetrics analyze(const Graph& g);

/// Reference values for regular ring lattices and random graphs of the
/// same (n, k) — the paper quotes L_regular ≈ n/2k and
/// L_random ≈ log n / log k.
double regular_lattice_path_length(std::size_t n, std::size_t k);
double random_graph_path_length(std::size_t n, std::size_t k);

}  // namespace p2p::graph
