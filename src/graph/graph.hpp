// Undirected graph snapshots (physical connectivity or P2P overlay) and
// BFS utilities.
#pragma once

#include <cstdint>
#include <vector>

namespace p2p::graph {

using Vertex = std::uint32_t;
inline constexpr int kUnreachable = -1;

class Graph {
 public:
  explicit Graph(std::size_t n) : adj_(n) {}
  /// Adopt an existing adjacency structure (e.g. Network::adjacency_snapshot).
  explicit Graph(std::vector<std::vector<Vertex>> adjacency)
      : adj_(std::move(adjacency)) {}

  std::size_t order() const noexcept { return adj_.size(); }
  std::size_t edge_count() const noexcept;

  /// Add an undirected edge; duplicate edges are ignored.
  void add_edge(Vertex a, Vertex b);
  bool has_edge(Vertex a, Vertex b) const noexcept;

  const std::vector<Vertex>& neighbors(Vertex v) const { return adj_[v]; }
  std::size_t degree(Vertex v) const { return adj_[v].size(); }

  /// Hop distances from `src` to every vertex (kUnreachable if not
  /// connected).
  std::vector<int> bfs_distances(Vertex src) const;

  /// Shortest hop distance between two vertices, or kUnreachable. Early
  /// exits as soon as `dst` is settled.
  int distance(Vertex src, Vertex dst) const;

  /// Connected-component label per vertex, labels are 0..k-1.
  std::vector<Vertex> components(std::size_t* count = nullptr) const;

 private:
  std::vector<std::vector<Vertex>> adj_;
};

/// Shortest hop distance over a raw adjacency structure, early-exiting
/// once `dst` settles; kUnreachable when disconnected. Lets callers that
/// snapshot adjacency repeatedly (Network::shared_adjacency) query
/// distances without constructing a Graph.
int bfs_distance(const std::vector<std::vector<Vertex>>& adj, Vertex src,
                 Vertex dst);

/// Reusable BFS workspace for the allocation-free bfs_distance overload:
/// visited marks are generation stamps (no O(n) clear per query) and the
/// frontier is a flat vector reused across calls.
class BfsScratch {
 public:
  BfsScratch() = default;

 private:
  friend int bfs_distance(const std::vector<std::vector<Vertex>>& adj,
                          Vertex src, Vertex dst, BfsScratch& scratch);
  std::vector<std::uint32_t> stamp_;  // stamp_[v] == generation_ -> settled
  std::vector<int> dist_;             // valid only where stamped
  std::vector<Vertex> frontier_;      // BFS queue (head index, no pops)
  std::uint32_t generation_ = 0;
};

/// bfs_distance without per-call allocations; same results as the
/// allocating overload.
int bfs_distance(const std::vector<std::vector<Vertex>>& adj, Vertex src,
                 Vertex dst, BfsScratch& scratch);

}  // namespace p2p::graph
