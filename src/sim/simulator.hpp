// Discrete-event simulator facade.
//
// One Simulator instance is one independent simulated world; experiment
// drivers run many worlds concurrently, one per thread, with zero shared
// mutable state (each run owns its Simulator, Network, RNG streams, ...).
#pragma once

#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace p2p::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Choose the pending-set container (see QueueBackend). Must be called
  /// before anything is scheduled; every shard Simulator of a sharded run
  /// gets the same choice so thread sweeps compare identical executions
  /// (the pop order is bit-identical either way — this only moves the
  /// constant-factor/asymptotic tradeoff).
  void set_queue_backend(QueueBackend backend) {
    queue_.set_backend(backend);
  }
  QueueBackend queue_backend() const noexcept { return queue_.backend(); }

  SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute time. Times in the past are clamped to now()
  /// (the event fires next, after already-queued events at now()).
  EventId at(SimTime when, EventFn fn);

  /// Schedule after a relative delay (>= 0).
  EventId after(SimTime delay, EventFn fn);

  /// Cancel a pending event; no-op if it already fired. Returns whether a
  /// live event was cancelled.
  bool cancel(EventId id) noexcept { return queue_.cancel(id); }

  /// Run until the queue drains or `until` is reached, whichever is first.
  /// Events scheduled exactly at `until` do fire. Returns the number of
  /// events processed by this call.
  std::uint64_t run_until(SimTime until);

  /// Run events with time strictly below `end`, leaving now() at the last
  /// processed event. Events at or beyond `end` stay queued. This is the
  /// per-shard primitive of conservative windowed execution (sharded.hpp):
  /// an event exactly at a window boundary belongs to the next window,
  /// where the global-vs-shard ordering decision at that instant is
  /// re-made. Unlike run_until, the clock is NOT advanced to `end` — the
  /// executor owns clock advancement across windows.
  std::uint64_t run_window(SimTime end);

  /// Earliest pending event time, or kTimeNever when the queue is empty.
  /// (Non-const: purges cancelled tombstones sitting at the heap top.)
  SimTime next_event_time() noexcept { return queue_.next_time(); }

  /// Run until the queue drains.
  std::uint64_t run() { return run_until(kTimeNever); }

  /// Request an orderly stop from inside an event handler; run_until
  /// returns after the current handler completes.
  void stop() noexcept { stopped_ = true; }
  bool stopped() const noexcept { return stopped_; }

  std::uint64_t events_processed() const noexcept { return events_processed_; }
  std::size_t events_pending() const noexcept { return queue_.size(); }
  std::uint64_t events_scheduled() const noexcept { return queue_.total_scheduled(); }
  std::size_t peak_events_pending() const noexcept { return queue_.peak_size(); }
  /// Physical-storage high-water mark (tombstones included); the live
  /// counterpart is peak_events_pending().
  std::size_t peak_raw_events_pending() const noexcept {
    return queue_.peak_raw_size();
  }
  /// Queue operation counters (pops, purges, compactions, ladder
  /// spills/re-buckets); fixed-seed deterministic.
  const EventQueue::Stats& queue_stats() const noexcept {
    return queue_.stats();
  }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace p2p::sim
