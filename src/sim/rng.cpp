#include "sim/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace p2p::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// 64x64 -> 128-bit product, split into high and low words.
inline void mul_64x64(std::uint64_t a, std::uint64_t b, std::uint64_t* hi,
                      std::uint64_t* lo) noexcept {
#if defined(__SIZEOF_INT128__)
  __extension__ using u128 = unsigned __int128;
  const u128 p = static_cast<u128>(a) * static_cast<u128>(b);
  *hi = static_cast<std::uint64_t>(p >> 64);
  *lo = static_cast<std::uint64_t>(p);
#else
  // Portable 32-bit-halves schoolbook multiply.
  const std::uint64_t a_lo = a & 0xffffffffULL, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL, b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo;
  const std::uint64_t p1 = a_lo * b_hi;
  const std::uint64_t p2 = a_hi * b_lo;
  const std::uint64_t p3 = a_hi * b_hi;
  const std::uint64_t mid = p1 + (p0 >> 32) + (p2 & 0xffffffffULL);
  *hi = p3 + (p2 >> 32) + (mid >> 32);
  *lo = (mid << 32) | (p0 & 0xffffffffULL);
#endif
}

}  // namespace

double RngStream::uniform(double lo, double hi) {
  P2P_DASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  P2P_DASSERT(lo <= hi);
  // Span as unsigned arithmetic so [INT64_MIN, INT64_MAX] does not
  // overflow; a span of 0 encodes the full 2^64 range.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  // Lemire's nearly-divisionless bounded generation: map a 64-bit draw x
  // to floor(x * span / 2^64) and reject the sliver that would bias the
  // low residues ("Fast Random Integer Generation in an Interval", 2019).
  std::uint64_t hi_word = 0, lo_word = 0;
  mul_64x64(next_u64(), span, &hi_word, &lo_word);
  if (lo_word < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (lo_word < threshold) {
      mul_64x64(next_u64(), span, &hi_word, &lo_word);
    }
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + hi_word);
}

double RngStream::exponential(double mean) {
  P2P_DASSERT(mean > 0.0);
  // Inverse CDF on u in (0, 1]: uniform01() is in [0, 1), so 1 - u never
  // hits zero and log1p(-u) is finite.
  return -mean * std::log1p(-uniform01());
}

double RngStream::normal(double mean, double stddev) {
  P2P_DASSERT(stddev >= 0.0);
  if (has_normal_spare_) {
    has_normal_spare_ = false;
    return mean + stddev * normal_spare_;
  }
  // Box-Muller: u1 in (0, 1] keeps the log finite.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = kTwoPi * u2;
  normal_spare_ = radius * std::sin(angle);
  has_normal_spare_ = true;
  return mean + stddev * radius * std::cos(angle);
}

}  // namespace p2p::sim
