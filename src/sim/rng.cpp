#include "sim/rng.hpp"

#include "util/assert.hpp"

namespace p2p::sim {

double RngStream::uniform(double lo, double hi) {
  P2P_DASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  P2P_DASSERT(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double RngStream::exponential(double mean) {
  P2P_DASSERT(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

}  // namespace p2p::sim
