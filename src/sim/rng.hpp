// Deterministic random-number streams.
//
// Every stochastic component (mobility of node i, MAC jitter, query
// think-times, Zipf placement, ...) draws from its own named stream whose
// seed is derived from (master seed, stream name) via splitmix64. Adding a
// new consumer therefore never perturbs the draws of existing ones — runs
// stay comparable across code versions, the property ns-2 users get from
// separate RNG substreams.
//
// All distributions are implemented in-house (Lemire bounded integers,
// inverse-CDF uniform/exponential, Box-Muller normal). The standard
// library's std::*_distribution adapters are deliberately not used: the
// standard pins the mt19937_64 engine bit-for-bit but leaves distribution
// algorithms implementation-defined, so libstdc++ and libc++ produce
// different draws from the same engine state. With in-house distributions
// the entire simulation — and therefore every cached experiment result —
// is reproducible across toolchains. See docs/determinism.md.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace p2p::sim {

/// splitmix64 step — good avalanche, used only for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string, for stream-name hashing.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One independent random stream (mt19937_64 under the hood; the engine
/// itself is fully specified by the standard and thus portable).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1), 53-bit resolution.
  double uniform01() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Pre: lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0), via inverse CDF.
  double exponential(double mean);

  /// Normal(mean, stddev), via Box-Muller (spare draw cached).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::mt19937_64 engine_;
  double normal_spare_ = 0.0;
  bool has_normal_spare_ = false;
};

/// Derives named streams from a single master seed.
class RngManager {
 public:
  explicit RngManager(std::uint64_t master_seed) : master_seed_(master_seed) {}

  std::uint64_t master_seed() const noexcept { return master_seed_; }

  /// Stream for a named component. Same (seed, name) -> same stream.
  RngStream stream(std::string_view name) const {
    return RngStream(splitmix64(master_seed_ ^ fnv1a(name)));
  }

  /// Stream for a named, indexed component (e.g. per-node mobility).
  RngStream stream(std::string_view name, std::uint64_t index) const {
    return RngStream(splitmix64(splitmix64(master_seed_ ^ fnv1a(name)) + index));
  }

 private:
  std::uint64_t master_seed_;
};

}  // namespace p2p::sim
