// Deterministic random-number streams.
//
// Every stochastic component (mobility of node i, MAC jitter, query
// think-times, Zipf placement, ...) draws from its own named stream whose
// seed is derived from (master seed, stream name) via splitmix64. Adding a
// new consumer therefore never perturbs the draws of existing ones — runs
// stay comparable across code versions, the property ns-2 users get from
// separate RNG substreams.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace p2p::sim {

/// splitmix64 step — good avalanche, used only for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a string, for stream-name hashing.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One independent random stream (mt19937_64 under the hood).
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi). Pre: lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives named streams from a single master seed.
class RngManager {
 public:
  explicit RngManager(std::uint64_t master_seed) : master_seed_(master_seed) {}

  std::uint64_t master_seed() const noexcept { return master_seed_; }

  /// Stream for a named component. Same (seed, name) -> same stream.
  RngStream stream(std::string_view name) const {
    return RngStream(splitmix64(master_seed_ ^ fnv1a(name)));
  }

  /// Stream for a named, indexed component (e.g. per-node mobility).
  RngStream stream(std::string_view name, std::uint64_t index) const {
    return RngStream(splitmix64(splitmix64(master_seed_ ^ fnv1a(name)) + index));
  }

 private:
  std::uint64_t master_seed_;
};

}  // namespace p2p::sim
