#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace p2p::sim {

EventId EventQueue::push(SimTime at, EventFn fn) {
  P2P_ASSERT_MSG(at == at, "NaN event time");  // NaN check
  const std::uint64_t seq = next_seq_++;
  const EventId id = seq + 1;  // 0 stays kInvalidEventId
  heap_.push_back(Entry{at, seq, id, std::move(fn)});
  pending_.insert(id);
  if (pending_.size() > peak_size_) peak_size_ = pending_.size();
  sift_up(heap_.size() - 1);
  return id;
}

bool EventQueue::cancel(EventId id) noexcept {
  return pending_.erase(id) > 0;
}

void EventQueue::drop_dead_tops() {
  while (!heap_.empty() && pending_.find(heap_.front().id) == pending_.end()) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

SimTime EventQueue::next_time() {
  drop_dead_tops();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_tops();
  P2P_ASSERT_MSG(!heap_.empty(), "pop from empty EventQueue");
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  pending_.erase(top.id);
  return Popped{top.time, top.id, std::move(top.fn)};
}

void EventQueue::sift_up(std::size_t i) noexcept {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && later(heap_[smallest], heap_[l])) smallest = l;
    if (r < n && later(heap_[smallest], heap_[r])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace p2p::sim
