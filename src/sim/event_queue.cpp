#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace p2p::sim {

namespace {

// Ladder tuning. Buckets aim for kTargetPerBucket entries so the dip sort
// stays a handful of elements; a bucket past kRebucketThreshold is carved
// into a finer child rung instead of sorted wholesale. Spills of at most
// kDirectSpreadMax entries skip the rung machinery entirely. The target
// of 8 is empirical (megascale 50k/100k sweep over {1, 2, 4, 8, 16},
// best-of-N against this container's run-to-run noise): coarser buckets
// shift work from bucket routing into the dip sort and finer ones the
// other way, with the minimum total cost around 8 entries per bucket.
constexpr std::size_t kTargetPerBucket = 8;
constexpr std::size_t kRebucketThreshold = 64;
constexpr std::size_t kDirectSpreadMax = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
// Compaction trigger (both backends): dead > live and at least this many.
constexpr std::size_t kCompactMinDead = 64;
// Bound the consumed-prefix slack kept in bottom_ between full drains.
constexpr std::size_t kBottomTrim = 4096;

}  // namespace

void EventQueue::set_backend(QueueBackend backend) {
  P2P_ASSERT_MSG(next_seq_ == 0,
                 "EventQueue backend must be chosen before the first push");
  backend_ = backend;
}

EventId EventQueue::push(SimTime at, EventFn fn) {
  P2P_ASSERT_MSG(at == at, "NaN event time");  // NaN check
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(0);
    slot_fn_.emplace_back();
  }
  slot_fn_[slot] = std::move(fn);
  const std::uint32_t gen = slot_gen_[slot];
  const Entry e{at, next_seq_++, slot, gen};
  if (backend_ == QueueBackend::kHeap) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  } else {
    insert_ladder(e);
  }
  ++live_count_;
  if (live_count_ > peak_size_) peak_size_ = live_count_;
  ++raw_count_;
  if (raw_count_ > peak_raw_size_) peak_raw_size_ = raw_count_;
  return encode(slot, gen);
}

bool EventQueue::cancel(EventId id) noexcept {
  if (id == kInvalidEventId) return false;
  // Unsigned wrap sends a zero low half to 0xffffffff, which fails the
  // bound check below.
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL) - 1U;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_gen_.size() || slot_gen_[slot] != gen) return false;
  ++slot_gen_[slot];      // tombstone: the queued entry is now dead
  slot_fn_[slot].reset(); // release captured resources eagerly
  free_slots_.push_back(slot);
  --live_count_;
  maybe_compact();
  return true;
}

SimTime EventQueue::next_time() {
  if (backend_ == QueueBackend::kHeap) {
    drop_dead_tops();
    return heap_.empty() ? kTimeNever : heap_.front().time;
  }
  const Entry* e = ladder_front();
  return e == nullptr ? kTimeNever : e->time;
}

EventQueue::Popped EventQueue::pop() {
  Entry top;
  if (backend_ == QueueBackend::kHeap) {
    drop_dead_tops();
    P2P_ASSERT_MSG(!heap_.empty(), "pop from empty EventQueue");
    top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  } else {
    const Entry* e = ladder_front();
    P2P_ASSERT_MSG(e != nullptr, "pop from empty EventQueue");
    top = *e;
    ++bottom_head_;
    if (bottom_head_ >= kBottomTrim && bottom_head_ * 2 >= bottom_.size()) {
      bottom_.erase(bottom_.begin(),
                    bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_));
      bottom_head_ = 0;
    }
  }
  --raw_count_;
  ++slot_gen_[top.slot];  // the handle is dead the moment the event fires
  free_slots_.push_back(top.slot);
  --live_count_;
  ++stats_.pops;
  return Popped{top.time, encode(top.slot, top.gen),
                std::move(slot_fn_[top.slot])};
}

// --- 4-ary heap backend -----------------------------------------------

void EventQueue::remove_top() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_dead_tops() noexcept {
  while (!heap_.empty() && !live(heap_.front())) {
    remove_top();
    --raw_count_;
    ++stats_.tombstones_purged;
  }
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

// --- ladder backend ----------------------------------------------------

std::size_t EventQueue::bucket_index(const Rung& rung, double t) noexcept {
  // Canonical and monotone in t; out-of-range times clamp to the edge
  // buckets, so every timestamp has exactly one home and equal times can
  // never be split across buckets.
  const double off = t - rung.start;
  if (off <= 0.0) return 0;
  const double idx = off / rung.width;
  const std::size_t nb = rung.buckets.size();
  if (idx >= static_cast<double>(nb)) return nb - 1;
  return static_cast<std::size_t>(idx);
}

void EventQueue::insert_ladder(const Entry& e) {
  if (e.time >= top_start_) {
    top_.push_back(e);
    return;
  }
  for (std::size_t r = 0; r < rungs_.size(); ++r) {
    Rung& rung = rungs_[r];
    const std::size_t k = bucket_index(rung, e.time);
    if (k < rung.cur) break;  // already-consumed region -> bottom
    if (k == rung.cur && r + 1 < rungs_.size()) continue;  // refined: descend
    rung.buckets[k].push_back(e);
    return;
  }
  bottom_insert(e);
}

void EventQueue::bottom_insert(const Entry& e) {
  const auto first = bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_);
  // New entries carry the globally largest seq, so lower_bound lands after
  // every queued tie at the same instant — FIFO preserved.
  const auto it = std::lower_bound(first, bottom_.end(), e, earlier);
  bottom_.insert(it, e);
}

const EventQueue::Entry* EventQueue::ladder_front() {
  for (;;) {
    while (bottom_head_ < bottom_.size()) {
      const Entry& e = bottom_[bottom_head_];
      if (live(e)) return &e;
      ++bottom_head_;
      --raw_count_;
      ++stats_.tombstones_purged;
    }
    bottom_.clear();
    bottom_head_ = 0;
    if (refill_bottom()) continue;
    if (top_.empty()) return nullptr;
    spread_top();
  }
}

void EventQueue::filter_dead(std::vector<Entry>& entries, double* lo,
                             double* hi) noexcept {
  double min_t = kTimeNever;
  double max_t = -kTimeNever;
  std::size_t kept = 0;
  for (Entry& e : entries) {
    if (!live(e)) {
      --raw_count_;
      ++stats_.tombstones_purged;
      continue;
    }
    if (e.time < min_t) min_t = e.time;
    if (e.time > max_t) max_t = e.time;
    entries[kept++] = e;
  }
  entries.resize(kept);
  *lo = min_t;
  *hi = max_t;
}

void EventQueue::release_bucket(std::vector<Entry>&& bucket) {
  bucket.clear();
  if (bucket.capacity() > 0 && bucket_pool_.size() < kMaxBuckets) {
    bucket_pool_.push_back(std::move(bucket));
  }
}

void EventQueue::retire_innermost_rung() {
  Rung rung = std::move(rungs_.back());
  rungs_.pop_back();
  if (!rungs_.empty()) ++rungs_.back().cur;  // the refined bucket is done
  for (auto& bucket : rung.buckets) release_bucket(std::move(bucket));
  rung.buckets.clear();
  rung_pool_.push_back(std::move(rung));
}

bool EventQueue::try_make_rung(std::vector<Entry>& entries, double lo,
                               double hi) {
  if (!(hi > lo)) return false;
  std::size_t nb = entries.size() / kTargetPerBucket;
  if (nb < 2) nb = 2;
  if (nb > kMaxBuckets) nb = kMaxBuckets;
  const double width = (hi - lo) / static_cast<double>(nb);
  // Subdivision underflow (denormal span or width lost to rounding):
  // sorting is the only refinement that still makes progress.
  if (!(width > 0.0) || !(lo + width > lo)) return false;
  Rung rung;
  if (!rung_pool_.empty()) {
    rung = std::move(rung_pool_.back());
    rung_pool_.pop_back();
  }
  rung.start = lo;
  rung.width = width;
  rung.cur = 0;
  rung.buckets.resize(nb);
  for (auto& bucket : rung.buckets) {
    if (bucket_pool_.empty()) break;
    bucket = std::move(bucket_pool_.back());
    bucket_pool_.pop_back();
  }
  for (const Entry& e : entries) {
    rung.buckets[bucket_index(rung, e.time)].push_back(e);
  }
  entries.clear();
  rungs_.push_back(std::move(rung));
  return true;
}

bool EventQueue::refill_bottom() {
  while (!rungs_.empty()) {
    Rung& rung = rungs_.back();
    if (rung.cur >= rung.buckets.size()) {
      retire_innermost_rung();
      continue;
    }
    std::vector<Entry> bucket = std::move(rung.buckets[rung.cur]);
    double lo = 0.0;
    double hi = 0.0;
    filter_dead(bucket, &lo, &hi);
    if (bucket.empty()) {
      release_bucket(std::move(bucket));
      ++rung.cur;
      continue;
    }
    if (bucket.size() > kRebucketThreshold &&
        try_make_rung(bucket, lo, hi)) {
      // rung.cur stays: the child rung now refines this bucket, and
      // inserts routed to it descend (insert_ladder).
      ++stats_.ladder_rebuckets;
      release_bucket(std::move(bucket));
      continue;
    }
    std::sort(bucket.begin(), bucket.end(), earlier);
    std::swap(bottom_, bucket);  // bucket inherits the drained capacity
    bottom_head_ = 0;
    release_bucket(std::move(bucket));
    ++rung.cur;
    return true;
  }
  return false;
}

void EventQueue::spread_top() {
  // Pre: bottom_ and rungs_ drained, top_ non-empty.
  double lo = 0.0;
  double hi = 0.0;
  filter_dead(top_, &lo, &hi);
  if (top_.empty()) return;  // all dead; caller re-checks
  std::vector<Entry> entries;
  std::swap(entries, top_);
  // Everything at or below hi now lives in the sorted region; later
  // arrivals beyond it collect in top_ for the next spread.
  top_start_ = std::nextafter(hi, kTimeNever);
  ++stats_.ladder_spills;
  if (entries.size() > kDirectSpreadMax && try_make_rung(entries, lo, hi)) {
    std::swap(top_, entries);  // reuse the old top capacity
    return;
  }
  std::sort(entries.begin(), entries.end(), earlier);
  std::swap(bottom_, entries);
  bottom_head_ = 0;
  std::swap(top_, entries);  // old (cleared) bottom capacity, if any
  top_.clear();
}

// --- tombstone compaction ----------------------------------------------

void EventQueue::maybe_compact() {
  const std::size_t dead = raw_count_ - live_count_;
  if (dead < kCompactMinDead || dead <= live_count_) return;
  if (backend_ == QueueBackend::kHeap) {
    compact_heap();
  } else {
    compact_ladder();
  }
  ++stats_.compactions;
}

void EventQueue::compact_heap() {
  const auto dead_end = std::remove_if(
      heap_.begin(), heap_.end(),
      [this](const Entry& e) { return !live(e); });
  const auto removed = static_cast<std::size_t>(heap_.end() - dead_end);
  heap_.erase(dead_end, heap_.end());
  raw_count_ -= removed;
  stats_.tombstones_purged += removed;
  if (heap_.size() > 1) {  // Floyd heapify: O(n), order-independent result
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

void EventQueue::compact_ladder() {
  const auto is_dead = [this](const Entry& e) { return !live(e); };
  const auto sweep = [&](std::vector<Entry>& v) {
    const auto dead_end = std::remove_if(v.begin(), v.end(), is_dead);
    const auto removed = static_cast<std::size_t>(v.end() - dead_end);
    v.erase(dead_end, v.end());
    raw_count_ -= removed;
    stats_.tombstones_purged += removed;
  };
  if (bottom_head_ > 0) {  // drop the consumed prefix first
    bottom_.erase(bottom_.begin(),
                  bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_));
    bottom_head_ = 0;
  }
  sweep(bottom_);  // remove_if is stable, so the sort order survives
  for (Rung& rung : rungs_) {
    for (std::size_t k = rung.cur; k < rung.buckets.size(); ++k) {
      sweep(rung.buckets[k]);
    }
  }
  sweep(top_);
}

}  // namespace p2p::sim
