#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace p2p::sim {

EventId EventQueue::push(SimTime at, EventFn fn) {
  P2P_ASSERT_MSG(at == at, "NaN event time");  // NaN check
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slot_gen_.size());
    slot_gen_.push_back(0);
    slot_fn_.emplace_back();
  }
  slot_fn_[slot] = std::move(fn);
  const std::uint32_t gen = slot_gen_[slot];
  heap_.push_back(Entry{at, next_seq_++, slot, gen});
  sift_up(heap_.size() - 1);
  ++live_count_;
  if (live_count_ > peak_size_) peak_size_ = live_count_;
  return encode(slot, gen);
}

bool EventQueue::cancel(EventId id) noexcept {
  if (id == kInvalidEventId) return false;
  // Unsigned wrap sends a zero low half to 0xffffffff, which fails the
  // bound check below.
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL) - 1U;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_gen_.size() || slot_gen_[slot] != gen) return false;
  ++slot_gen_[slot];      // tombstone: the heap entry is now dead
  slot_fn_[slot].reset(); // release captured resources eagerly
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void EventQueue::remove_top() noexcept {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_dead_tops() noexcept {
  while (!heap_.empty() && !live(heap_.front())) remove_top();
}

SimTime EventQueue::next_time() {
  drop_dead_tops();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_tops();
  P2P_ASSERT_MSG(!heap_.empty(), "pop from empty EventQueue");
  const Entry top = heap_.front();
  remove_top();
  ++slot_gen_[top.slot];  // the handle is dead the moment the event fires
  free_slots_.push_back(top.slot);
  --live_count_;
  return Popped{top.time, encode(top.slot, top.gen),
                std::move(slot_fn_[top.slot])};
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(heap_[best], heap_[c])) best = c;
    }
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace p2p::sim
