// Fixed-capacity, allocation-free callable for the event kernel.
//
// sim::EventFn used to be std::function<void()>, which heap-allocates any
// capture larger than the libstdc++ small-object buffer (16 bytes) — and a
// flooding broadcast schedules thousands of closures per simulated second.
// InplaceFn stores the callable inline in a fixed buffer and *refuses to
// compile* when a capture does not fit, so EventQueue::push can never touch
// the heap for closures. Move-only (captures hold shared_ptrs and buffers
// that should not be silently duplicated), empty-state aware, and dispatch
// is two raw function pointers — no virtual tables, no RTTI.
//
// The capture budget is kEventCaptureBytes (64). Every in-tree event
// closure fits comfortably (the largest, the batched-broadcast arrival in
// net/network.cpp, is 48 bytes); if a new closure trips the static_assert,
// shrink the capture (capture indices instead of objects, pool big state in
// the owner) before considering a budget bump — the buffer size is paid by
// every entry in the event heap. Beware in particular sim::RngStream
// (mt19937_64, ~2.5 KB): pool it in the owning object and capture `this`.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace p2p::sim {

/// Inline capture budget for event closures, in bytes.
inline constexpr std::size_t kEventCaptureBytes = 64;

template <std::size_t Capacity = kEventCaptureBytes,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFn {
 public:
  /// Empty function; calling it is undefined (asserted in debug builds).
  InplaceFn() noexcept = default;

  /// Implicit conversion from any void() callable, mirroring
  /// std::function. Compile-time rejected if the callable does not fit
  /// the inline buffer or cannot be moved without throwing.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "event closure exceeds the kEventCaptureBytes inline "
                  "budget — shrink the capture (see inplace_function.hpp)");
    static_assert(alignof(D) <= Align,
                  "event closure over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "event closures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    invoke_ = &invoke_impl<D>;
    relocate_ = &relocate_impl<D>;
  }

  InplaceFn(InplaceFn&& other) noexcept { move_from(other); }
  InplaceFn& operator=(InplaceFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;
  ~InplaceFn() { reset(); }

  /// Call the stored closure. Pre: non-empty.
  void operator()() { invoke_(storage_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Destroy the stored closure (releasing captured resources); the
  /// function becomes empty.
  void reset() noexcept {
    if (invoke_ != nullptr) {
      relocate_(nullptr, storage_);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

 private:
  using InvokeFn = void (*)(void*);
  // Move-construct *dst from *src and destroy *src; with dst == nullptr,
  // just destroy *src. One pointer covers both relocation and disposal.
  using RelocateFn = void (*)(void* dst, void* src);

  template <typename D>
  static void invoke_impl(void* storage) {
    (*static_cast<D*>(storage))();
  }

  template <typename D>
  static void relocate_impl(void* dst, void* src) {
    D* from = static_cast<D*>(src);
    if (dst != nullptr) ::new (dst) D(std::move(*from));
    from->~D();
  }

  void move_from(InplaceFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.relocate_(storage_, other.storage_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  alignas(Align) std::byte storage_[Capacity];
  InvokeFn invoke_ = nullptr;
  RelocateFn relocate_ = nullptr;
};

}  // namespace p2p::sim
