// Conservative (lookahead) parallel discrete-event execution.
//
// One simulation run is split into S spatial shards, each owning a full
// Simulator (event heap + clock), plus one *global* Simulator for events
// that must observe a quiesced world (fault injection, overlay sampling,
// monitors). Shards advance together through windows [m, m + L): m is the
// earliest pending shard event, L the lookahead — the minimum latency of
// any cross-node interaction (frame airtime of an empty payload plus
// propagation; jitter and serialization only add). Within a window a shard
// can influence another shard only at times >= m + L, i.e. strictly after
// the window — so every shard can execute its slice of the window without
// looking at the others, and cross-shard deliveries are exchanged at the
// barrier as time-stamped messages for later windows.
//
// Determinism across thread counts is by construction, not by luck:
//   * each shard's window is executed sequentially by exactly one thread;
//   * events enter a shard's queue either from its own execution (same
//     order regardless of which thread runs it) or at the barrier, where
//     the coordinator drains outboxes in fixed shard order 0..S-1;
//   * so every queue's (time, seq) order — and therefore every pop order
//     and every per-shard RNG draw sequence — is a pure function of the
//     shard decomposition, never of the thread count. sim_threads=1 and
//     sim_threads=8 replay the exact same event history.
//
// The global queue is serialized against the shards: when the earliest
// global event g precedes the earliest shard event m, the coordinator runs
// it alone with all shards quiesced (every shard event before g has
// executed, none at or after g has). Ties (g == m) run the global event
// first — one fixed rule, same on every thread count.
//
// Queue backends: every Simulator here (global and shards) runs whichever
// pending-set container the scenario selected (sim::QueueBackend — the
// run layer applies one choice uniformly before anything is scheduled).
// Nothing above depends on the container: both backends pop the identical
// strict (time, seq) order, so the window schedule, barrier exchanges and
// RNG draw sequences are byte-for-byte the same on heap and ladder.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace p2p::sim {

/// Sense-reversing spin barrier. Parties are the coordinator plus the
/// worker threads; each caller keeps its own sense flag. acquire/release
/// ordering on the shared atomics makes every write before an arrival
/// visible to every party after the release — the happens-before edge the
/// whole windowed execution (and TSan) relies on.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  /// Re-arm for a different party count. Only legal while nobody waits.
  void reset(std::size_t parties) noexcept {
    parties_ = parties;
    remaining_.store(parties, std::memory_order_relaxed);
    sense_.store(false, std::memory_order_relaxed);
  }

  void arrive_and_wait(bool* local_sense) noexcept {
    const bool my_sense = !*local_sense;
    *local_sense = my_sense;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: everyone else's writes are acquired through the
      // counter chain; re-arm and release the flock.
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Busy-wait: windows are microseconds apart, parking would cost
      // more than it saves. But cap the pure spin — on an oversubscribed
      // host (threads > cores) an unyielding spinner steals the very
      // timeslice the last arriver needs, turning each window into a
      // scheduler round-trip. yield() keeps the worst case at "one
      // reschedule", while the first kSpins iterations keep the hot
      // multicore path syscall-free.
      constexpr int kSpins = 4096;
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins >= kSpins) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

/// Drives S shard Simulators plus one global Simulator to t_end using
/// conservative lookahead windows. Thread count is pure execution: any
/// value produces the same event history (see header comment).
class ShardedExecutor {
 public:
  /// All hooks are optional. before_window/after_window run on the
  /// coordinator with every shard quiesced; enter_shard/exit_shard bracket
  /// one shard's execution on whatever thread runs it (the network layer
  /// uses them to bind its thread-local lane context).
  struct Callbacks {
    std::function<void(SimTime window_start, SimTime window_end)>
        before_window;
    std::function<void(SimTime window_end)> after_window;
    std::function<void(std::size_t shard)> enter_shard;
    std::function<void()> exit_shard;
  };

  ShardedExecutor(std::vector<Simulator*> shards, Simulator* global,
                  SimTime lookahead, std::size_t threads);
  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Run every queue to `t_end` (inclusive, like Simulator::run_until) and
  /// advance all clocks to t_end.
  void run(SimTime t_end, const Callbacks& cb);

  /// Windows executed by the last run() — granularity telemetry.
  std::uint64_t windows_run() const noexcept { return windows_; }

 private:
  void worker_loop(std::size_t tid);
  /// Execute this thread's statically assigned shards (s % threads == tid)
  /// for the published window.
  void run_assigned(std::size_t tid);

  std::vector<Simulator*> shards_;
  Simulator* global_;
  SimTime lookahead_;
  std::size_t threads_;

  // Published window (coordinator writes, workers read; ordered by the
  // start barrier).
  SimTime window_end_ = 0.0;
  bool window_inclusive_ = false;
  const Callbacks* cb_ = nullptr;
  std::size_t parties_ = 1;
  std::atomic<bool> stop_{false};

  SpinBarrier start_barrier_{1};
  SpinBarrier end_barrier_{1};
  std::vector<std::thread> workers_;
  std::uint64_t windows_ = 0;
};

}  // namespace p2p::sim
