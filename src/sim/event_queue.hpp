// Pending-event set for the discrete-event kernel.
//
// A 4-ary min-heap ordered by (time, sequence) with slot/generation
// tombstone cancellation. The schedule→fire fast path performs zero hash
// operations and zero heap allocations in steady state:
//
//   * heap entries are 24-byte PODs {time, seq, slot, gen}; the closures
//     live out-of-line in a slot-indexed array and never move during
//     sifts,
//   * an EventId encodes (generation, slot); cancel() is an O(1) array
//     probe — important because the P2P maintenance layer cancels timers
//     constantly (every received pong reschedules a timeout),
//   * cancelled entries stay in the heap as tombstones (their slot
//     generation no longer matches) and are skipped on pop; their closure
//     is destroyed eagerly so captured resources release at cancel time,
//   * slots are recycled through a free list, so a long-running simulation
//     reuses the same storage instead of growing it.
//
// Closures are sim::EventFn — a fixed-capacity inline function (see
// inplace_function.hpp) — so push() never allocates for captures.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/time.hpp"

namespace p2p::sim {

/// Opaque handle for cancellation. Value 0 is "no event". Internally
/// encodes (generation << 32) | (slot + 1); handles are recycled only
/// after 2^32 lifecycles of the same slot, so stale handles from fired or
/// cancelled events can never reach a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

using EventFn = InplaceFn<kEventCaptureBytes>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `fn` at absolute time `at`. Returns a handle usable with
  /// cancel(). Ties at equal time fire in push order (FIFO), which makes
  /// runs bit-reproducible.
  EventId push(SimTime at, EventFn fn);

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or invalid id is a no-op.
  bool cancel(EventId id) noexcept;

  bool empty() const noexcept { return live_count_ == 0; }
  std::size_t size() const noexcept { return live_count_; }

  /// Time of the earliest live event; kTimeNever when empty.
  SimTime next_time();

  /// Pop the earliest live event. Pre: !empty().
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  /// Total events ever scheduled (telemetry).
  std::uint64_t total_scheduled() const noexcept { return next_seq_; }

  /// High-water mark of live pending events (telemetry).
  std::size_t peak_size() const noexcept { return peak_size_; }

 private:
  struct Entry {  // 24-byte POD; the closure lives in slot_fn_[slot]
    SimTime time;
    std::uint64_t seq;   // tie-break: FIFO among equal timestamps
    std::uint32_t slot;  // index into slot_gen_ / slot_fn_
    std::uint32_t gen;   // live iff slot_gen_[slot] == gen
  };
  // Min-heap on (time, seq), hand-rolled with hole-based sifts (one final
  // store per level instead of three-move swaps). 4-ary: half the depth of
  // a binary heap, and the four children sit in two adjacent cache lines,
  // so sift_down touches fewer lines per level. The pop order is fixed by
  // the strict (time, seq) total order, so arity never affects behavior.
  static constexpr std::size_t kArity = 4;
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  static constexpr EventId encode(std::uint32_t slot,
                                  std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }
  bool live(const Entry& e) const noexcept {
    return slot_gen_[e.slot] == e.gen;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Physically remove the heap root (no slot bookkeeping).
  void remove_top() noexcept;
  /// Remove cancelled entries sitting at the heap top.
  void drop_dead_tops() noexcept;

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> slot_gen_;  // current generation per slot
  std::vector<EventFn> slot_fn_;         // closure storage per slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace p2p::sim
