// Pending-event set for the discrete-event kernel.
//
// Two backends share one slot/generation cancellation scheme and produce
// bit-identical pop order — the strict (time, seq) total order fixes the
// sequence regardless of the container, so switching backends can never
// change simulation results:
//
//   * kHeap — a 4-ary min-heap ordered by (time, sequence). O(log n)
//     schedule/pop, unbeatable constants at small populations.
//   * kLadder — a ladder/calendar queue (Tang, Goh, Thng): an unsorted
//     top tier collects far-future events; when the sorted region drains,
//     the top is spread into a rung of time buckets sized from the
//     observed min/max spacing; an oversized bucket is re-bucketed into a
//     finer child rung on demand; the earliest bucket is sorted by
//     (time, seq) into the bottom tier and popped by advancing an index.
//     Schedule/pop are O(1) amortized — each event is touched a constant
//     number of times on average — which is what keeps events/s flat as
//     mega-scale runs grow the pending set into the hundreds of
//     thousands (the 4-ary heap's O(log n) sifts through cold cache
//     lines dominate there; see docs/performance.md).
//
// Shared machinery, identical across backends:
//
//   * entries are 24-byte PODs {time, seq, slot, gen}; the closures live
//     out-of-line in a slot-indexed array and never move during sifts or
//     re-buckets,
//   * an EventId encodes (generation, slot); cancel() is an O(1) array
//     probe — important because the P2P maintenance layer cancels timers
//     constantly (every received pong reschedules a timeout),
//   * cancelled entries stay queued as tombstones (their slot generation
//     no longer matches) and are skipped on pop; their closure is
//     destroyed eagerly so captured resources release at cancel time,
//   * when tombstones outnumber live entries, a compaction pass sweeps
//     them out — a cancel-heavy run can no longer carry an unbounded
//     dead fraction (they previously lingered until they surfaced at the
//     heap top),
//   * slots are recycled through a free list, so a long-running
//     simulation reuses the same storage instead of growing it.
//
// Closures are sim::EventFn — a fixed-capacity inline function (see
// inplace_function.hpp) — so push() never allocates for captures.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/time.hpp"

namespace p2p::sim {

/// Opaque handle for cancellation. Value 0 is "no event". Internally
/// encodes (generation << 32) | (slot + 1); handles are recycled only
/// after 2^32 lifecycles of the same slot, so stale handles from fired or
/// cancelled events can never reach a live event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

using EventFn = InplaceFn<kEventCaptureBytes>;

/// Which pending-set container an EventQueue uses. Pop order is fixed by
/// the strict (time, seq) total order, so this is a pure execution knob:
/// both backends produce bit-identical results.
enum class QueueBackend : std::uint8_t {
  kHeap = 0,    // 4-ary min-heap; best below the mega-scale crossover
  kLadder = 1,  // ladder queue; O(1) amortized at very deep pending sets
};

class EventQueue {
 public:
  EventQueue() = default;
  explicit EventQueue(QueueBackend backend) noexcept : backend_(backend) {}

  /// Select the backend. Must be called before the first push (the two
  /// containers share no storage, so there is nothing to migrate).
  void set_backend(QueueBackend backend);
  QueueBackend backend() const noexcept { return backend_; }

  /// Schedule `fn` at absolute time `at`. Returns a handle usable with
  /// cancel(). Ties at equal time fire in push order (FIFO), which makes
  /// runs bit-reproducible.
  EventId push(SimTime at, EventFn fn);

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or invalid id is a no-op.
  bool cancel(EventId id) noexcept;

  bool empty() const noexcept { return live_count_ == 0; }
  std::size_t size() const noexcept { return live_count_; }

  /// Time of the earliest live event; kTimeNever when empty.
  SimTime next_time();

  /// Pop the earliest live event. Pre: !empty().
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  /// Total events ever scheduled (telemetry).
  std::uint64_t total_scheduled() const noexcept { return next_seq_; }

  /// High-water mark of live pending events (telemetry). Counts only
  /// live entries, so it is bit-identical across backends and thread
  /// counts; peak_raw_size() is the physical-storage counterpart.
  std::size_t peak_size() const noexcept { return peak_size_; }

  /// High-water mark of physically stored entries, tombstones included.
  /// peak_raw_size() - peak_size() bounds how much dead weight the
  /// compaction policy let accumulate; unlike peak_size() it depends on
  /// purge timing and so may differ between backends.
  std::size_t peak_raw_size() const noexcept { return peak_raw_size_; }

  /// Operation counters (telemetry; fixed-seed deterministic). Pushes are
  /// total_scheduled(). Spill = one top-tier spread into a new rung;
  /// re-bucket = one oversized bucket carved into a finer child rung.
  struct Stats {
    std::uint64_t pops = 0;
    std::uint64_t tombstones_purged = 0;
    std::uint64_t compactions = 0;
    std::uint64_t ladder_spills = 0;
    std::uint64_t ladder_rebuckets = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Entry {  // 24-byte POD; the closure lives in slot_fn_[slot]
    SimTime time;
    std::uint64_t seq;   // tie-break: FIFO among equal timestamps
    std::uint32_t slot;  // index into slot_gen_ / slot_fn_
    std::uint32_t gen;   // live iff slot_gen_[slot] == gen
  };
  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  static bool later(const Entry& a, const Entry& b) noexcept {
    return earlier(b, a);
  }
  static constexpr EventId encode(std::uint32_t slot,
                                  std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }
  bool live(const Entry& e) const noexcept {
    return slot_gen_[e.slot] == e.gen;
  }

  // --- 4-ary heap backend. Hand-rolled hole-based sifts (one final store
  // per level instead of three-move swaps). 4-ary: half the depth of a
  // binary heap, and the four children sit in two adjacent cache lines,
  // so sift_down touches fewer lines per level.
  static constexpr std::size_t kArity = 4;
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Physically remove the heap root (no slot bookkeeping).
  void remove_top() noexcept;
  /// Remove cancelled entries sitting at the heap top.
  void drop_dead_tops() noexcept;

  // --- Ladder backend. Three tiers, earliest first:
  //   bottom_ — the current dip, sorted ascending by (time, seq) and
  //             consumed by advancing bottom_head_,
  //   rungs_  — a stack of bucket arrays; rungs_[r+1] always refines
  //             bucket `cur` of rungs_[r], so the innermost rung covers
  //             the earliest remaining time region,
  //   top_    — unsorted overflow for times >= top_start_.
  // Routing uses one canonical bucket_index() (monotone in t and clamped
  // to the bucket range), so insert and dip can never disagree about
  // which bucket a boundary timestamp belongs to — the classic
  // calendar-queue float pitfall.
  struct Rung {
    double start = 0.0;
    double width = 0.0;  // > 0; bucket k spans [start+k*w, start+(k+1)*w)
    std::size_t cur = 0;  // innermost: next bucket to dip; outer rungs:
                          // the bucket currently refined by the child
    std::vector<std::vector<Entry>> buckets;
  };
  static std::size_t bucket_index(const Rung& rung, double t) noexcept;
  void insert_ladder(const Entry& e);
  /// Sorted insert into the pending suffix of bottom_ ("past" region).
  void bottom_insert(const Entry& e);
  /// Earliest live entry (== bottom_[bottom_head_]) or nullptr when the
  /// ladder is empty. Purges dead entries and refills bottom_ as needed.
  const Entry* ladder_front();
  /// Move the innermost rung's next non-empty bucket into bottom_,
  /// re-bucketing oversized buckets first. False when all rungs drained.
  bool refill_bottom();
  /// Spread top_ into a fresh rung (or straight into bottom_ when small
  /// or unsubdividable) and advance top_start_ past its max.
  void spread_top();
  /// Carve `entries` (live, times spanning [lo, hi], hi > lo) into a new
  /// innermost rung. False when bucket subdivision would underflow.
  bool try_make_rung(std::vector<Entry>& entries, double lo, double hi);
  /// Drop dead entries in place (stable), count them, and report the
  /// survivors' min/max time.
  void filter_dead(std::vector<Entry>& entries, double* lo,
                   double* hi) noexcept;
  void release_bucket(std::vector<Entry>&& bucket);
  /// Pop rungs_.back() into the pool and advance the parent past the
  /// bucket the child was refining.
  void retire_innermost_rung();

  // --- Tombstone compaction, both backends: when the dead outnumber the
  // live, sweep them instead of waiting for them to surface at the front.
  void maybe_compact();
  void compact_heap();
  void compact_ladder();

  QueueBackend backend_ = QueueBackend::kHeap;

  // Heap state.
  std::vector<Entry> heap_;

  // Ladder state.
  std::vector<Entry> bottom_;
  std::size_t bottom_head_ = 0;
  std::vector<Rung> rungs_;
  std::vector<Entry> top_;
  double top_start_ = -kTimeNever;  // raised past the max at every spread
  // Capacity recycling: spreads are rare but allocate many small bucket
  // vectors; pooling them makes the steady state allocation-free.
  std::vector<std::vector<Entry>> bucket_pool_;
  std::vector<Rung> rung_pool_;

  // Shared slot machinery.
  std::vector<std::uint32_t> slot_gen_;  // current generation per slot
  std::vector<EventFn> slot_fn_;         // closure storage per slot
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t peak_size_ = 0;
  std::size_t raw_count_ = 0;  // physically stored entries (dead included)
  std::size_t peak_raw_size_ = 0;
  Stats stats_;
};

}  // namespace p2p::sim
