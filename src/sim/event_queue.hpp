// Pending-event set for the discrete-event kernel.
//
// A binary min-heap ordered by (time, sequence). Cancellation is lazy: a
// cancelled entry stays in the heap and is skipped on pop, which keeps
// cancel() cheap — important because the P2P maintenance layer cancels
// timers constantly (every received pong reschedules a timeout).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace p2p::sim {

/// Opaque handle for cancellation. Value 0 is "no event".
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Schedule `fn` at absolute time `at`. Returns a handle usable with
  /// cancel(). Ties at equal time fire in push order (FIFO), which makes
  /// runs bit-reproducible.
  EventId push(SimTime at, EventFn fn);

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or invalid id is a no-op.
  bool cancel(EventId id) noexcept;

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event; kTimeNever when empty.
  SimTime next_time();

  /// Pop the earliest live event. Pre: !empty().
  struct Popped {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  /// Total events ever scheduled (telemetry).
  std::uint64_t total_scheduled() const noexcept { return next_seq_; }

  /// High-water mark of live pending events (telemetry).
  std::size_t peak_size() const noexcept { return peak_size_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    EventFn fn;
  };
  // Min-heap on (time, seq), hand-rolled so we can move EventFns around
  // without the comparator copies std::priority_queue would do.
  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Remove cancelled entries sitting at the heap top.
  void drop_dead_tops();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;  // live (un-fired, un-cancelled) ids
  std::uint64_t next_seq_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace p2p::sim
