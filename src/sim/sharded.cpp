#include "sim/sharded.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2p::sim {

ShardedExecutor::ShardedExecutor(std::vector<Simulator*> shards,
                                 Simulator* global, SimTime lookahead,
                                 std::size_t threads)
    : shards_(std::move(shards)),
      global_(global),
      lookahead_(lookahead),
      threads_(threads == 0 ? 1 : threads) {
  P2P_ASSERT(!shards_.empty());
  P2P_ASSERT(global_ != nullptr);
  P2P_ASSERT_MSG(lookahead_ > 0.0, "lookahead must be positive");
}

void ShardedExecutor::run(SimTime t_end, const Callbacks& cb) {
  const std::size_t parties = std::min(threads_, shards_.size());
  parties_ = parties;
  cb_ = &cb;
  bool sense_start = false;
  bool sense_end = false;
  if (parties > 1) {
    stop_.store(false, std::memory_order_relaxed);
    start_barrier_.reset(parties);
    end_barrier_.reset(parties);
    workers_.reserve(parties - 1);
    for (std::size_t tid = 1; tid < parties; ++tid) {
      workers_.emplace_back([this, tid] { worker_loop(tid); });
    }
  }

  for (;;) {
    SimTime m = kTimeNever;
    for (Simulator* shard : shards_) {
      const SimTime t = shard->next_event_time();
      if (t < m) m = t;
    }
    const SimTime g = global_->next_event_time();
    const SimTime first = g < m ? g : m;
    if (first == kTimeNever || first > t_end) break;
    if (g <= m) {
      // Global events run alone, shards quiesced; at a tie the global
      // event precedes any shard event at the same instant (fixed rule).
      global_->run_until(g);
      continue;
    }
    SimTime end = m + lookahead_;
    if (g < end) end = g;
    bool inclusive = false;
    if (end > t_end) {
      // Final window: run events at exactly t_end too (run_until
      // semantics). Safe because every cross-shard arrival produced here
      // lands at >= m + lookahead > t_end — beyond the run.
      end = t_end;
      inclusive = true;
    }
    if (cb.before_window) cb.before_window(m, end);
    window_end_ = end;
    window_inclusive_ = inclusive;
    ++windows_;
    if (parties > 1) start_barrier_.arrive_and_wait(&sense_start);
    run_assigned(0);
    if (parties > 1) end_barrier_.arrive_and_wait(&sense_end);
    if (cb.after_window) cb.after_window(end);
  }

  if (parties > 1) {
    stop_.store(true, std::memory_order_relaxed);
    start_barrier_.arrive_and_wait(&sense_start);
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }
  // Nothing at or before t_end remains (loop invariant); advance every
  // clock so post-run collection reads a consistent t_end.
  global_->run_until(t_end);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (cb.enter_shard) cb.enter_shard(s);
    shards_[s]->run_until(t_end);
    if (cb.exit_shard) cb.exit_shard();
  }
  cb_ = nullptr;
}

void ShardedExecutor::worker_loop(std::size_t tid) {
  bool sense_start = false;
  bool sense_end = false;
  for (;;) {
    start_barrier_.arrive_and_wait(&sense_start);
    if (stop_.load(std::memory_order_relaxed)) return;
    run_assigned(tid);
    end_barrier_.arrive_and_wait(&sense_end);
  }
}

void ShardedExecutor::run_assigned(std::size_t tid) {
  const SimTime end = window_end_;
  const bool inclusive = window_inclusive_;
  const Callbacks& cb = *cb_;
  for (std::size_t s = tid; s < shards_.size(); s += parties_) {
    Simulator* shard = shards_[s];
    const SimTime t = shard->next_event_time();
    if (t == kTimeNever || (inclusive ? t > end : t >= end)) continue;
    if (cb.enter_shard) cb.enter_shard(s);
    if (inclusive) {
      shard->run_until(end);
    } else {
      shard->run_window(end);
    }
    if (cb.exit_shard) cb.exit_shard();
  }
}

}  // namespace p2p::sim
