// One-shot restartable timer bound to a Simulator.
//
// Wraps the schedule/cancel/reschedule dance that protocol state machines
// (ping timeouts, handshake reservations, backoff cycles) repeat endlessly.
// The callback is stored once; restart()/stop() manage the pending event.
//
// Lifetime: the owner must outlive any pending firing, which holds for all
// users here because timers are members of the objects whose methods they
// call and a world's Simulator never outlives its components... but the
// inverse can happen during teardown, so Timer cancels itself on
// destruction.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace p2p::sim {

class Timer {
 public:
  Timer(Simulator& simulator, std::function<void()> on_fire)
      : sim_(&simulator), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { stop(); }

  /// (Re)arm the timer to fire after `delay`. A previously pending firing
  /// is cancelled.
  void restart(SimTime delay) {
    stop();
    pending_ = sim_->after(delay, [this] {
      pending_ = kInvalidEventId;
      on_fire_();
    });
  }

  /// Cancel the pending firing, if any.
  void stop() noexcept {
    if (pending_ != kInvalidEventId) {
      sim_->cancel(pending_);
      pending_ = kInvalidEventId;
    }
  }

  bool pending() const noexcept { return pending_ != kInvalidEventId; }

 private:
  Simulator* sim_;
  std::function<void()> on_fire_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace p2p::sim
