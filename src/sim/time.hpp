// Simulation time.
//
// Time is a double in seconds. Event ordering ties (equal timestamps) are
// broken by insertion sequence, so iterating a simulation twice with the
// same seeds is bit-reproducible.
#pragma once

#include <limits>

namespace p2p::sim {

using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// One microsecond — used as the minimal scheduling granularity for
/// "immediately after" semantics.
inline constexpr SimTime kEpsilon = 1e-6;

}  // namespace p2p::sim
