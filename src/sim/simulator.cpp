#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace p2p::sim {

EventId Simulator::at(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  return queue_.push(when, std::move(fn));
}

EventId Simulator::after(SimTime delay, EventFn fn) {
  P2P_DASSERT(delay >= 0.0);
  return queue_.push(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t processed = 0;
  stopped_ = false;
  while (!stopped_) {
    const SimTime t = queue_.next_time();
    if (t == kTimeNever || t > until) break;
    auto ev = queue_.pop();
    P2P_DASSERT(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++processed;
    ++events_processed_;
  }
  if (now_ < until && until != kTimeNever) now_ = until;
  return processed;
}

std::uint64_t Simulator::run_window(SimTime end) {
  std::uint64_t processed = 0;
  stopped_ = false;
  while (!stopped_) {
    const SimTime t = queue_.next_time();
    if (t == kTimeNever || t >= end) break;
    auto ev = queue_.pop();
    P2P_DASSERT(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
    ++processed;
    ++events_processed_;
  }
  return processed;
}

}  // namespace p2p::sim
