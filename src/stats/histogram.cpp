#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace p2p::stats {

Histogram::Histogram(double lo, double bin_width, std::size_t bins)
    : lo_(lo), bin_width_(bin_width), counts_(bins, 0) {
  P2P_ASSERT(bin_width > 0.0);
  P2P_ASSERT(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  P2P_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  P2P_ASSERT(i < counts_.size());
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + bin_width_; }

double Histogram::quantile(double q) const {
  P2P_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * bin_width_;
    }
    cum = next;
  }
  return bin_hi(counts_.size() - 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const std::uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(peak) * static_cast<double>(width)));
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace p2p::stats
