#include "stats/running_stat.hpp"

#include <cmath>

namespace p2p::stats {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return t_critical_95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

RunningStat RunningStat::restore(std::uint64_t n, double mean, double variance,
                                 double min, double max) noexcept {
  RunningStat s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = n >= 2 ? variance * static_cast<double>(n - 1) : 0.0;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double t_critical_95(std::uint64_t dof) noexcept {
  // Two-sided 95% quantiles of the t distribution.
  static constexpr double kTable[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

}  // namespace p2p::stats
