// Tabular output: aligned text for terminals plus CSV for plotting.
// Every figure-bench prints its series through one of these so the rows
// the paper reports are regenerated in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace p2p::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; size must match the header count.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with fixed precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return headers_.size(); }

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2p::stats
