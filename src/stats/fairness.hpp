// Load-distribution fairness.
//
// The paper's §7.4 argument: "The best way to cope with lack of resources
// in ad-hoc networks is to distribute the work among all nodes. If the
// network ... is homogeneous, the more uniform the distribution is, the
// best performance we will achieve and the longer the network will last."
// Jain's fairness index makes that claim measurable:
//
//   J(x) = (Σ x_i)^2 / (n · Σ x_i^2)  ∈ [1/n, 1]
//
// 1 = perfectly even load; 1/n = one node carries everything. Figures
// 7-12's sorted curves visualize the distribution; J summarizes it.
#pragma once

#include <cstddef>
#include <span>

namespace p2p::stats {

inline double jain_fairness(std::span<const double> values) noexcept {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: trivially even
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace p2p::stats
