#include <algorithm>
#include "stats/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace p2p::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  P2P_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  P2P_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c]
         << (c + 1 < cells.size() ? "  " : "");
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]) << (c + 1 < cells.size() ? "," : "");
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  print_csv(os);
  return static_cast<bool>(os);
}

}  // namespace p2p::stats
