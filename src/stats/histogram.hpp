// Fixed-bin histogram for distribution reporting (hop counts, latencies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2p::stats {

class Histogram {
 public:
  /// Bins of width `bin_width` starting at `lo`; values past the last bin
  /// land in an overflow bucket, values below `lo` in an underflow bucket.
  Histogram(double lo, double bin_width, std::size_t bins);

  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t bin_count(std::size_t i) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Approximate quantile (linear within bins); q in [0,1].
  double quantile(double q) const;

  /// Multi-line ASCII rendering (for bench output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace p2p::stats
