// Aggregation for the paper's "nodes decreasingly ordered by # of
// received X" plots (Figures 7-12).
//
// Each run contributes one vector of per-node counts. Within a run the
// vector is sorted descending (the x-axis is *rank*, not node identity);
// across runs, position i is averaged — exactly how such curves are
// produced from repeated randomized simulations.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/running_stat.hpp"

namespace p2p::stats {

class SortedCurve {
 public:
  /// Add one run's per-node counts (any order; sorted internally).
  void add_run(std::vector<double> per_node_counts);

  std::size_t runs() const noexcept { return runs_; }
  /// Number of rank positions (max across runs; shorter runs contribute
  /// nothing at deep ranks rather than zeros).
  std::size_t points() const noexcept { return positions_.size(); }

  double mean_at(std::size_t rank) const;
  double ci95_at(std::size_t rank) const;

  std::vector<double> means() const;

  /// Raw per-position stats (experiment cache serialization).
  const std::vector<RunningStat>& positions() const noexcept {
    return positions_;
  }
  /// Rebuild from serialized per-position stats.
  static SortedCurve restore(std::vector<RunningStat> positions,
                             std::size_t runs);

 private:
  std::vector<RunningStat> positions_;
  std::size_t runs_ = 0;
};

}  // namespace p2p::stats
