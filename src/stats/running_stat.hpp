// Streaming mean/variance (Welford) and Student-t confidence intervals —
// the paper reports averages over 33 repetitions; we additionally report
// 95% CIs in EXPERIMENTS.md.
#pragma once

#include <cstdint>

namespace p2p::stats {

class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return n_ == 0 ? 0.0 : mean_ * static_cast<double>(n_); }

  /// Half-width of the 95% confidence interval on the mean (Student-t,
  /// two-sided). 0 for n < 2.
  double ci95_halfwidth() const noexcept;

  /// Rebuild a stat from previously serialized moments (experiment cache).
  static RunningStat restore(std::uint64_t n, double mean, double variance,
                             double min, double max) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t critical value for the given degrees of
/// freedom (table lookup + asymptote; exact enough for reporting).
double t_critical_95(std::uint64_t dof) noexcept;

}  // namespace p2p::stats
