#include "stats/sorted_curve.hpp"

#include <algorithm>
#include <functional>

#include "util/assert.hpp"

namespace p2p::stats {

void SortedCurve::add_run(std::vector<double> per_node_counts) {
  std::sort(per_node_counts.begin(), per_node_counts.end(),
            std::greater<double>());
  if (per_node_counts.size() > positions_.size()) {
    positions_.resize(per_node_counts.size());
  }
  for (std::size_t i = 0; i < per_node_counts.size(); ++i) {
    positions_[i].add(per_node_counts[i]);
  }
  ++runs_;
}

double SortedCurve::mean_at(std::size_t rank) const {
  P2P_ASSERT(rank < positions_.size());
  return positions_[rank].mean();
}

double SortedCurve::ci95_at(std::size_t rank) const {
  P2P_ASSERT(rank < positions_.size());
  return positions_[rank].ci95_halfwidth();
}

SortedCurve SortedCurve::restore(std::vector<RunningStat> positions,
                                 std::size_t runs) {
  SortedCurve curve;
  curve.positions_ = std::move(positions);
  curve.runs_ = runs;
  return curve;
}

std::vector<double> SortedCurve::means() const {
  std::vector<double> out(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) out[i] = positions_[i].mean();
  return out;
}

}  // namespace p2p::stats
