#include "trace/trace.hpp"

#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace p2p::trace {

char event_code(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kTransmit: return 's';
    case EventKind::kDeliver: return 'r';
    case EventKind::kDrop: return 'd';
  }
  return '?';
}

void Writer::record(const Record& record) {
  (*os_) << event_code(record.kind) << ' ' << record.time << ' '
         << record.node << ' ';
  if (record.peer == net::kBroadcast) {
    (*os_) << "bcast";
  } else {
    (*os_) << record.peer;
  }
  (*os_) << ' ' << record.size_bytes << '\n';
}

bool Writer::parse_line(const std::string& line, Record* out) {
  P2P_ASSERT(out != nullptr);
  std::istringstream is(line);
  char code = 0;
  std::string peer;
  if (!(is >> code >> out->time >> out->node >> peer >> out->size_bytes)) {
    return false;
  }
  switch (code) {
    case 's': out->kind = EventKind::kTransmit; break;
    case 'r': out->kind = EventKind::kDeliver; break;
    case 'd': out->kind = EventKind::kDrop; break;
    default: return false;
  }
  if (peer == "bcast") {
    out->peer = net::kBroadcast;
  } else {
    try {
      out->peer = static_cast<net::NodeId>(std::stoul(peer));
    } catch (...) {
      return false;
    }
  }
  return true;
}

void Counter::record(const Record& record) {
  const auto k = static_cast<std::size_t>(record.kind);
  ++totals_[k];
  total_bytes_[k] += record.size_bytes;
  if (record.node < per_node_.size()) {
    ++per_node_[record.node].counts[k];
  }
}

std::uint64_t Counter::node_count(net::NodeId node, EventKind kind) const {
  P2P_ASSERT(node < per_node_.size());
  return per_node_[node].counts[static_cast<std::size_t>(kind)];
}

}  // namespace p2p::trace
