// Packet-level tracing — the ns-2 workflow the paper's methodology
// implies: simulations emit a trace of link-layer events, figures are
// post-processed from it.
//
// The Network emits one record per transmit / delivery / drop when a sink
// is attached (zero overhead otherwise). TraceWriter renders an ns-2-like
// line format; TraceCounter aggregates in memory for tests and quick
// statistics.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>
#include <string>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::trace {

enum class EventKind : std::uint8_t {
  kTransmit = 0,  // 's' — a node put a frame on the air
  kDeliver,       // 'r' — a node received a frame
  kDrop,          // 'd' — lost (out of range / channel loss / dead node)
};

char event_code(EventKind kind) noexcept;

struct Record {
  sim::SimTime time = 0.0;
  EventKind kind = EventKind::kTransmit;
  net::NodeId node = net::kInvalidNode;  // acting node (sender or receiver)
  net::NodeId peer = net::kInvalidNode;  // addressee (kBroadcast for bcast)
  std::size_t size_bytes = 0;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(const Record& record) = 0;
};

/// Renders records as text lines:
///   <code> <time> <node> <peer|bcast> <bytes>
class Writer final : public Sink {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}
  void record(const Record& record) override;

  /// Parse one rendered line back (round-trip tooling / tests). Returns
  /// false on malformed input.
  static bool parse_line(const std::string& line, Record* out);

 private:
  std::ostream* os_;
};

/// In-memory aggregation: counts and bytes per event kind, per node.
class Counter final : public Sink {
 public:
  explicit Counter(std::size_t num_nodes) : per_node_(num_nodes) {}

  void record(const Record& record) override;

  std::uint64_t count(EventKind kind) const noexcept {
    return totals_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t bytes(EventKind kind) const noexcept {
    return total_bytes_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t node_count(net::NodeId node, EventKind kind) const;
  std::size_t nodes() const noexcept { return per_node_.size(); }

 private:
  struct PerNode {
    std::array<std::uint64_t, 3> counts{};
  };
  std::array<std::uint64_t, 3> totals_{};
  std::array<std::uint64_t, 3> total_bytes_{};
  std::vector<PerNode> per_node_;
};

/// Fans one record out to several sinks (write to disk AND count).
class Tee final : public Sink {
 public:
  void add(Sink* sink) { sinks_.push_back(sink); }
  void record(const Record& record) override {
    for (Sink* sink : sinks_) sink->record(record);
  }

 private:
  std::vector<Sink*> sinks_;
};

/// Bridges the Network's observer hook to a trace sink:
///   network.set_observer(&adapter);
class NetworkAdapter final : public net::NetObserver {
 public:
  explicit NetworkAdapter(Sink& sink) : sink_(&sink) {}

  void on_transmit(double time, net::NodeId node, net::NodeId dst,
                   std::size_t bytes) override {
    sink_->record({time, EventKind::kTransmit, node, dst, bytes});
  }
  void on_deliver(double time, net::NodeId node, net::NodeId sender,
                  std::size_t bytes) override {
    sink_->record({time, EventKind::kDeliver, node, sender, bytes});
  }
  void on_drop(double time, net::NodeId sender, net::NodeId dst,
               std::size_t bytes) override {
    sink_->record({time, EventKind::kDrop, sender, dst, bytes});
  }

 private:
  Sink* sink_;
};

}  // namespace p2p::trace
