// Unix-domain-socket front end of the p2pd serving daemon.
//
// Owns the listen socket, the metrics registry, and the scheduler; each
// accepted connection gets a detached session thread running the
// newline-delimited JSON protocol (serve/session.hpp). The daemon is
// deliberately local-only — AF_UNIX means the trust boundary is file
// permissions on the socket path, not a network surface.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace p2p::serve {

struct ServerOptions {
  std::string socket_path;      // AF_UNIX path (sun_path limit ~107 bytes)
  std::size_t workers = 1;      // compute threads (container default: 1 core)
  std::size_t max_queue = 64;   // admitted-but-unstarted units before "overloaded"
  SessionLimits limits;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen (unlinking a stale socket file first) and ignore
  /// SIGPIPE process-wide. False + `error` on failure.
  bool start(std::string* error);

  /// Accept loop; blocks until stop() closes the listen socket. Each
  /// connection is served on its own detached thread.
  void run();

  void stop();

  Metrics& metrics() noexcept { return metrics_; }
  Scheduler& scheduler() noexcept { return scheduler_; }
  const ServerOptions& options() const noexcept { return options_; }

 private:
  ServerOptions options_;
  Metrics metrics_;
  Scheduler scheduler_;
  std::atomic<int> listen_fd_{-1};
};

}  // namespace p2p::serve
