#include "serve/scheduler.hpp"

#include "scenario/cache.hpp"
#include "scenario/experiment.hpp"
#include "scenario/telemetry.hpp"

namespace p2p::serve {

Scheduler::Scheduler(std::size_t workers, std::size_t max_queue,
                     Metrics* metrics)
    : metrics_(metrics),
      max_queue_(max_queue),
      cache_hits_(metrics->counter("cache_hits")),
      cache_misses_(metrics->counter("cache_misses")),
      dedup_joins_(metrics->counter("dedup_joins")),
      queue_depth_(metrics->counter("queue_depth")),
      in_flight_(metrics->counter("in_flight")),
      worker_crashes_(metrics->counter("worker_crashes")),
      runs_completed_(metrics->counter("runs_completed")),
      overloads_(metrics->counter("overloads")) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { stop(); }

std::shared_future<SeedOutcome> Scheduler::submit(
    const scenario::Parameters& params) {
  const auto ready = [](SeedOutcome out) {
    std::promise<SeedOutcome> p;
    p.set_value(std::move(out));
    return std::shared_future<SeedOutcome>(p.get_future());
  };

  std::string key = scenario::cache_key(params, 1);
  std::unique_lock lock(mutex_);
  if (stopping_) {
    return ready({false, "scheduler shutting down", "shutdown"});
  }
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    dedup_joins_.add();
    return it->second;
  }
  // Disk lookup under the lock: entries are a few hundred bytes, and
  // holding the lock guarantees a concurrent duplicate either joins the
  // in-flight future or sees the same hit — never schedules a second run.
  std::string line;
  if (scenario::load_cached_seed_line(params, &line)) {
    cache_hits_.add();
    return ready({true, std::move(line), {}});
  }
  if (queue_.size() >= max_queue_) {
    overloads_.add();
    return ready({false, "queue full, retry later", "overloaded"});
  }
  cache_misses_.add();
  Job job;
  job.key = key;
  job.params = params;
  auto future = job.promise.get_future().share();
  inflight_.emplace(std::move(key), future);
  queue_.push_back(std::move(job));
  queue_depth_.add();
  lock.unlock();
  work_ready_.notify_one();
  return future;
}

void Scheduler::worker_loop() {
  for (;;) {
    std::unique_lock lock(mutex_);
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;  // queued jobs resolve as "shutdown" in stop()
    Job job = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_.sub();
    in_flight_.add();
    lock.unlock();

    SeedOutcome out = run_job(job.params);
    if (out.ok) scenario::store_cached_seed_line(job.params, out.line);

    // Publish-then-unregister order matters: once the key leaves the
    // in-flight table a duplicate goes to the disk cache, so the store
    // above must already be visible. Failed runs are never cached — a
    // retry after the erase recomputes.
    lock.lock();
    inflight_.erase(job.key);
    in_flight_.sub();
    lock.unlock();
    job.promise.set_value(std::move(out));
  }
}

SeedOutcome Scheduler::run_job(const scenario::Parameters& params) {
  SeedOutcome out;
  try {
    scenario::SeedTelemetry telemetry;
    scenario::run_single_seed(params, &telemetry);
    out.ok = true;
    // Timing-free serialization: the line must be byte-identical whether
    // freshly computed or replayed from cache (see docs/serving.md).
    out.line = scenario::seed_line_json(telemetry, /*include_timing=*/false);
    runs_completed_.add();
  } catch (const std::exception& e) {
    worker_crashes_.add();
    out.ok = false;
    out.line = e.what();
    out.code = "run_failed";
  }
  return out;
}

void Scheduler::stop() {
  std::deque<Job> orphans;
  {
    std::scoped_lock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    std::scoped_lock lock(mutex_);
    orphans.swap(queue_);
    inflight_.clear();
    queue_depth_.sub(queue_depth_.value());
  }
  for (auto& job : orphans) {
    job.promise.set_value({false, "scheduler shutting down", "shutdown"});
  }
}

}  // namespace p2p::serve
