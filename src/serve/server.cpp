#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

namespace p2p::serve {

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(options_.workers, options_.max_queue, &metrics_) {
  // Pre-register the connection counter so STATS shows it at zero before
  // the first accept (scheduler/session counters register the same way).
  metrics_.counter("connections");
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const char* what) {
    if (error) *error = std::string(what) + ": " + std::strerror(errno);
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + options_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  // A write to a vanished client must surface as EPIPE, not kill the
  // daemon.
  std::signal(SIGPIPE, SIG_IGN);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return fail("bind");
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return fail("listen");
  }
  listen_fd_.store(fd);
  return true;
}

void Server::run() {
  Counter& connections = metrics_.counter("connections");
  for (;;) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) return;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    connections.add();
    std::thread([this, cfd] {
      run_session(cfd, &scheduler_, &metrics_, options_.limits);
      ::close(cfd);
    }).detach();
  }
}

void Server::stop() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
  }
  scheduler_.stop();
}

}  // namespace p2p::serve
