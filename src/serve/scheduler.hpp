// Admission/dedup scheduler for the p2pd serving daemon.
//
// The unit of work is one (config, seed) simulation — the daemon's whole
// reason to exist is that thousands of concurrent requests collapse onto
// a small set of distinct units. Dedup happens at two levels:
//   1. in-process: an in-flight table keyed by the canonical parameter
//      hash; a duplicate submitted while the first copy computes joins
//      its future instead of queueing a second run;
//   2. on disk: the checksummed per-seed cache (scenario/cache.hpp),
//      shared with batch benches and other daemon processes; the atomic
//      rename publish means racing writers are safe.
// Misses run on a bounded pool of `workers` threads through
// scenario::run_single_seed — the same crash-isolated body as the batch
// experiment driver, so a run that throws becomes a structured per-seed
// error, never a dead worker. The pool makes progress at workers == 1
// (jobs never block on other jobs; a session waits on futures, not the
// other way around).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "scenario/parameters.hpp"
#include "serve/metrics.hpp"

namespace p2p::serve {

/// Result of one (config, seed) unit: the served JSONL seed line, or a
/// machine-readable error code + human message.
struct SeedOutcome {
  bool ok = false;
  std::string line;   // seed line when ok, human-readable error otherwise
  std::string code;   // empty when ok; "run_failed" | "overloaded" | "shutdown"
};

class Scheduler {
 public:
  /// `workers` >= 1 compute threads; `max_queue` bounds admitted-but-not-
  /// started jobs (beyond it, submissions fail fast with "overloaded").
  Scheduler(std::size_t workers, std::size_t max_queue, Metrics* metrics);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedule (or join, or answer from cache) the unit identified by
  /// `params` (params.seed is the seed). Never blocks on compute — the
  /// returned future resolves when the unit is served.
  std::shared_future<SeedOutcome> submit(const scenario::Parameters& params);

  /// Stop workers; pending jobs resolve with code "shutdown".
  void stop();

 private:
  struct Job {
    std::string key;
    scenario::Parameters params;
    std::promise<SeedOutcome> promise;
  };

  void worker_loop();
  SeedOutcome run_job(const scenario::Parameters& params);

  Metrics* metrics_;
  std::size_t max_queue_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Job> queue_;
  // key -> future of the in-flight (queued or computing) unit.
  std::map<std::string, std::shared_future<SeedOutcome>> inflight_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  Counter& cache_hits_;
  Counter& cache_misses_;
  Counter& dedup_joins_;
  Counter& queue_depth_;
  Counter& in_flight_;
  Counter& worker_crashes_;
  Counter& runs_completed_;
  Counter& overloads_;
};

}  // namespace p2p::serve
