#include "serve/session.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "scenario/parameters.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace p2p::serve {

namespace {

std::string error_json(std::string_view code, std::string_view message) {
  std::string out = "{\"type\":\"error\",\"code\":";
  util::append_json_string(&out, code);
  out += ",\"error\":";
  util::append_json_string(&out, message);
  out += "}";
  return out;
}

std::string seed_error_json(std::uint64_t seed, std::string_view code,
                            std::string_view message) {
  std::string out = "{\"type\":\"error\",\"seed\":" + std::to_string(seed) +
                    ",\"code\":";
  util::append_json_string(&out, code);
  out += ",\"error\":";
  util::append_json_string(&out, message);
  out += "}";
  return out;
}

/// Project a served seed line onto the requested fields, splicing each
/// value's raw source span so projected output is byte-faithful to the
/// full line. Unknown fields are skipped (the "done" trailer still
/// reports the seed as served). Falls back to the full line if it ever
/// fails to parse — it is our own serializer's output.
std::string project_fields(const std::string& line,
                           const std::vector<std::string>& fields) {
  if (fields.empty()) return line;
  util::JsonValue doc;
  std::string error;
  if (!util::parse_json(line, &doc, &error) || !doc.is_object()) return line;
  std::string out = "{";
  bool first = true;
  for (const auto& field : fields) {
    const util::JsonValue* v = doc.find(field);
    if (!v || v->raw.empty()) continue;
    if (!first) out += ",";
    first = false;
    util::append_json_string(&out, field);
    out += ":";
    out += v->raw;
  }
  out += "}";
  return out;
}

}  // namespace

Session::Session(Scheduler* scheduler, Metrics* metrics, SessionLimits limits,
                 WriteFn write)
    : scheduler_(scheduler),
      metrics_(metrics),
      limits_(limits),
      write_(std::move(write)),
      requests_(metrics->counter("requests")),
      stats_requests_(metrics->counter("stats_requests")),
      seed_results_(metrics->counter("seed_results")),
      request_errors_(metrics->counter("request_errors")) {}

bool Session::emit_error(std::string_view code, std::string_view message) {
  request_errors_.add();
  return write_(error_json(code, message));
}

bool Session::reject_oversized_line() {
  return emit_error("too_large",
                    "request line exceeds " +
                        std::to_string(limits_.max_line) + " bytes");
}

bool Session::handle_line(std::string_view line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  if (line.empty()) return true;
  if (line == "STATS") {
    stats_requests_.add();
    return write_(metrics_->to_json());
  }

  util::JsonValue req;
  std::string parse_error;
  if (!util::parse_json(line, &req, &parse_error)) {
    return emit_error("bad_json", parse_error);
  }
  if (!req.is_object()) {
    return emit_error("bad_request", "request must be a JSON object");
  }
  for (const auto& [key, value] : req.object) {
    (void)value;
    if (key != "config" && key != "seeds" && key != "fields") {
      return emit_error("bad_request", "unknown request key: " + key);
    }
  }

  // Flatten the "config" object into the same stringly-typed Config the
  // CLI and INI front ends produce, so one validator (Parameters::apply)
  // guards every entry point. Numbers pass through as their raw source
  // text — no double round-trip between client and validator.
  util::Config config;
  if (const util::JsonValue* c = req.find("config")) {
    if (!c->is_object()) {
      return emit_error("bad_request", "\"config\" must be an object");
    }
    for (const auto& [key, value] : c->object) {
      switch (value.kind) {
        case util::JsonValue::Kind::kString:
          config.set(key, value.string);
          break;
        case util::JsonValue::Kind::kNumber:
          config.set(key, value.raw);
          break;
        case util::JsonValue::Kind::kBool:
          config.set(key, value.boolean ? "true" : "false");
          break;
        default:
          return emit_error("bad_request",
                            "config value for '" + key + "' must be scalar");
      }
    }
  }

  scenario::Parameters base;
  if (std::string err = base.apply(config); !err.empty()) {
    return emit_error("bad_config", err);
  }

  std::vector<std::uint64_t> seeds;
  if (const util::JsonValue* s = req.find("seeds")) {
    if (!s->is_array()) {
      return emit_error("bad_request", "\"seeds\" must be an array");
    }
    if (s->array.size() > limits_.max_seeds) {
      return emit_error("bad_request",
                        "too many seeds (max " +
                            std::to_string(limits_.max_seeds) + ")");
    }
    seeds.reserve(s->array.size());
    for (const auto& v : s->array) {
      const auto u = v.as_uint();
      if (!u) {
        return emit_error("bad_request",
                          "seeds must be non-negative integers");
      }
      seeds.push_back(*u);
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  }
  if (seeds.empty()) seeds.push_back(base.seed);

  std::vector<std::string> fields;
  if (const util::JsonValue* f = req.find("fields")) {
    if (!f->is_array()) {
      return emit_error("bad_request", "\"fields\" must be an array");
    }
    for (const auto& v : f->array) {
      if (!v.is_string()) {
        return emit_error("bad_request", "fields must be strings");
      }
      fields.push_back(v.string);
    }
  }

  requests_.add();

  // Submit every seed before waiting on any: with workers > 1 the units
  // compute concurrently, and duplicates across concurrent sessions land
  // in the in-flight table before either session starts draining.
  std::vector<std::shared_future<SeedOutcome>> futures;
  futures.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    scenario::Parameters p = base;
    p.seed = seed;
    futures.push_back(scheduler_->submit(p));
  }

  std::size_t served = 0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const SeedOutcome& out = futures[i].get();
    if (out.ok) {
      if (!write_(project_fields(out.line, fields))) return false;
      seed_results_.add();
      ++served;
    } else {
      if (!write_(seed_error_json(seeds[i], out.code, out.line))) return false;
      ++errors;
    }
  }
  return write_("{\"type\":\"done\",\"requested\":" +
                std::to_string(seeds.size()) +
                ",\"served\":" + std::to_string(served) +
                ",\"errors\":" + std::to_string(errors) + "}");
}

void run_session(int fd, Scheduler* scheduler, Metrics* metrics,
                 const SessionLimits& limits) {
  const auto write_line = [fd](std::string_view line) {
    std::string out(line);
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (SIGPIPE is ignored daemon-wide)
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  };

  Session session(scheduler, metrics, limits, write_line);
  std::string buffer;
  bool draining = false;  // discarding the rest of an over-long line
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      if (draining) {
        draining = false;  // tail of the oversized line — discard
      } else if (!session.handle_line(
                     std::string_view(buffer).substr(start, nl - start))) {
        return;
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (!draining && buffer.size() > limits.max_line) {
      if (!session.reject_oversized_line()) return;
      buffer.clear();
      draining = true;
    } else if (draining) {
      buffer.clear();  // keep discarding until a newline shows up
    }
  }
}

}  // namespace p2p::serve
