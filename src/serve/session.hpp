// Per-connection protocol handler for the p2pd serving daemon.
//
// One session speaks newline-delimited JSON over one byte stream:
//
//   request:  {"config": {<ini overrides>}, "seeds": [1,2,3],
//              "fields": ["seed","queries_sent"]}       (one line)
//   verb:     STATS                                     (bare line)
//
//   response: one line per requested seed, ascending — either the
//             deterministic telemetry line (optionally projected to the
//             requested fields) or {"type":"error","seed":S,...} — then a
//             {"type":"done",...} trailer. Request-level failures produce
//             a single {"type":"error","code":...} line and no trailer.
//
// Session is deliberately transport-free: handle_line() consumes one
// input line and emits response lines through a caller-supplied WriteFn,
// so tests and the serve_smoke bench drive the full protocol in-process
// while the daemon wraps it around a socket (run_session below).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"

namespace p2p::serve {

struct SessionLimits {
  std::size_t max_line = 1 << 20;  // bytes per request line, incl. newline
  std::size_t max_seeds = 256;     // seeds per request
};

class Session {
 public:
  /// Emits one response line (no trailing newline); returns false when the
  /// peer is gone and the session should end.
  using WriteFn = std::function<bool(std::string_view)>;

  Session(Scheduler* scheduler, Metrics* metrics, SessionLimits limits,
          WriteFn write);

  /// Process one input line (already stripped of the newline). Returns
  /// false when the session should end (write failure); protocol errors
  /// return true — the daemon answers them and keeps serving.
  bool handle_line(std::string_view line);

  /// Emit the structured line for an over-long request (the read loop
  /// detects the condition; the session owns the wire format).
  bool reject_oversized_line();

 private:
  bool emit_error(std::string_view code, std::string_view message);

  Scheduler* scheduler_;
  Metrics* metrics_;
  SessionLimits limits_;
  WriteFn write_;

  Counter& requests_;
  Counter& stats_requests_;
  Counter& seed_results_;
  Counter& request_errors_;
};

/// Blocking read loop for one accepted connection: buffered line reads,
/// over-long lines answered with a structured error and drained to the
/// next newline (the session survives). Returns when the peer closes or
/// a write fails. Does not close `fd`.
void run_session(int fd, Scheduler* scheduler, Metrics* metrics,
                 const SessionLimits& limits);

}  // namespace p2p::serve
