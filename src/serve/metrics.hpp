// Counter registry for the p2pd serving daemon.
//
// A fixed, flat set of named monotonic counters plus a few gauges,
// updated lock-free from session and worker threads and snapshotted by
// the STATS verb. Registration happens once at server construction (the
// deque never reallocates a live counter), so hot-path updates are a
// single relaxed atomic add through a pre-resolved pointer — sessions
// never touch the registry mutex after lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

namespace p2p::serve {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::uint64_t delta = 1) noexcept {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Metrics {
 public:
  /// Counter named `name`, registering it on first use. Stable address
  /// for the lifetime of the Metrics object; registration order is
  /// emission order in to_json().
  Counter& counter(std::string_view name);

  /// Existing counter or nullptr (read-side; never registers).
  const Counter* find(std::string_view name) const;

  /// One-line JSON snapshot: {"type":"stats","<name>":<value>,...} in
  /// registration order.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;  // registration + snapshot only, never updates
  std::deque<std::pair<std::string, Counter>> counters_;
};

}  // namespace p2p::serve
