#include "serve/metrics.hpp"

#include <cstdio>

namespace p2p::serve {

Counter& Metrics::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return counters_.back().second;
}

const Counter* Metrics::find(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [n, c] : counters_) {
    if (n == name) return &c;
  }
  return nullptr;
}

std::string Metrics::to_json() const {
  std::scoped_lock lock(mutex_);
  std::string out = "{\"type\":\"stats\"";
  char buf[64];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%llu", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace p2p::serve
