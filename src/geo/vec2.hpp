// 2-D geometry primitives for node positions.
#pragma once

#include <cmath>

namespace p2p::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  constexpr double norm2() const noexcept { return x * x + y * y; }
  double norm() const noexcept { return std::sqrt(norm2()); }
};

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) noexcept { return (a - b).norm2(); }

/// Axis-aligned rectangle [0,width] x [0,height] — the deployment area.
struct Region {
  double width = 0.0;
  double height = 0.0;

  constexpr bool contains(Vec2 p) const noexcept {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  constexpr double area() const noexcept { return width * height; }
  /// Clamp a point into the region.
  constexpr Vec2 clamp(Vec2 p) const noexcept {
    if (p.x < 0.0) p.x = 0.0;
    if (p.x > width) p.x = width;
    if (p.y < 0.0) p.y = 0.0;
    if (p.y > height) p.y = height;
    return p;
  }
};

}  // namespace p2p::geo
