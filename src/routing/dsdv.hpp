// DSDV — Destination-Sequenced Distance Vector (Perkins & Bhagwat '94),
// the proactive counterpart to AODV.
//
// The paper's companion study (Oliveira, Siqueira, Loureiro [13])
// evaluates ad-hoc routing protocols under a P2P application; this agent
// lets the same comparison run here (bench/ablation_routing): every node
// periodically broadcasts its full routing table (destination, metric,
// destination sequence number); receivers adopt entries with newer
// sequence numbers, or equal sequence numbers and a better metric. A
// detected link break sets the metric to infinity with an odd sequence
// number and triggers an immediate partial update.
//
// Simplifications vs the 1994 paper, documented in DESIGN.md: no settling
// -time damping and no incremental-dump size optimization (updates always
// carry the changed entries; the byte accounting models the real size).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "routing/messages.hpp"
#include "routing/service.hpp"
#include "sim/simulator.hpp"

namespace p2p::routing {

struct DsdvParams {
  sim::SimTime periodic_update_interval = 15.0;  // full-dump cadence
  sim::SimTime update_jitter = 2.0;              // desynchronizes dumps
  sim::SimTime route_stale_timeout = 45.0;       // 3 missed dumps -> stale
  sim::SimTime triggered_update_delay = 0.5;     // batch break notices
};

/// One advertised table row.
struct DsdvEntry {
  NodeId dst = net::kInvalidNode;
  std::uint32_t metric = 0;  // kDsdvInfinity = unreachable
  std::uint32_t seq = 0;     // even = valid, odd = broken-route marker
};

inline constexpr std::uint32_t kDsdvInfinity = 0xFFFF;

/// Routing-table dump broadcast to neighbors.
struct DsdvUpdate final : net::FramePayload {
  DsdvUpdate() noexcept {
    kind = static_cast<net::PayloadKind>(FrameKind::kDsdvUpdate);
  }
  NodeId origin = net::kInvalidNode;
  std::vector<DsdvEntry> entries;
};
inline constexpr std::size_t kDsdvUpdateBaseBytes = 12;
inline constexpr std::size_t kDsdvEntryBytes = 12;

inline std::size_t dsdv_update_bytes(const DsdvUpdate& update) noexcept {
  return kDsdvUpdateBaseBytes + kDsdvEntryBytes * update.entries.size();
}

struct DsdvStats {
  std::uint64_t updates_sent = 0;       // periodic + triggered broadcasts
  std::uint64_t entries_advertised = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_dropped = 0;  // no route
};

class DsdvAgent final : public net::LinkListener, public RoutingService {
 public:
  DsdvAgent(sim::Simulator& simulator, net::Network& network, NodeId self,
            const DsdvParams& params);
  ~DsdvAgent() override;

  DsdvAgent(const DsdvAgent&) = delete;
  DsdvAgent& operator=(const DsdvAgent&) = delete;

  void set_deliver_handler(DeliverFn fn) override { on_deliver_ = std::move(fn); }
  void send(NodeId dst, net::AppPayloadPtr app) override;
  /// DSDV maintains its tables proactively; hints are ignored to keep the
  /// destination-sequence-number invariants intact.
  void learn_route(NodeId /*dst*/, NodeId /*via*/, std::uint8_t /*hops*/) override {}
  bool has_route(NodeId dst) override;
  int route_hops(NodeId dst) override;
  Telemetry telemetry() const override {
    return Telemetry{stats_.updates_sent, stats_.data_delivered,
                     stats_.data_dropped};
  }

  void on_frame(const net::Frame& frame) override;

  const DsdvStats& stats() const noexcept { return stats_; }
  NodeId self() const noexcept { return self_; }
  std::size_t table_size() const noexcept { return table_.size(); }

  /// Approximate table footprint. DSDV is proactive — every node carries a
  /// row per reachable destination by design, so this is inherently O(n)
  /// per node (the mega-scale benches use on-demand protocols for a reason).
  std::size_t memory_bytes() const override {
    return table_.size() * (sizeof(NodeId) + sizeof(Row) + 2 * sizeof(void*));
  }

 private:
  struct Row {
    NodeId next_hop = net::kInvalidNode;
    std::uint32_t metric = kDsdvInfinity;
    std::uint32_t seq = 0;
    sim::SimTime heard = 0.0;    // last advertisement time
    bool changed = false;        // pending for the next triggered update
  };

  Row* usable_route(NodeId dst);
  void handle_update(NodeId from, const DsdvUpdate& update);
  void route_data(DataMsg data);
  void handle_link_break(NodeId next_hop);

  void schedule_periodic_update();
  void broadcast_update(bool full);
  void schedule_triggered_update();

  sim::Simulator* sim_;
  net::Network* net_;
  NodeId self_;
  DsdvParams params_;
  std::unordered_map<NodeId, Row> table_;
  std::uint32_t own_seq_ = 0;  // always even when advertised
  DeliverFn on_deliver_;
  DsdvStats stats_;
  sim::EventId periodic_event_ = sim::kInvalidEventId;
  sim::EventId triggered_event_ = sim::kInvalidEventId;
  sim::RngStream jitter_rng_;
};

}  // namespace p2p::routing
