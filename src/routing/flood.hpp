// Controlled (hop-limited, duplicate-suppressed) application broadcast.
//
// This is the service every (re)configuration algorithm in the paper uses
// to "broadcast a message to discover other nodes within NHOPS away": a
// flood with a rebroadcast budget and a per-node cache so each node
// forwards a given message at most once — the authors' ns-2 modification.
//
// Receivers learn the hop distance the message traveled, which the P2P
// layer uses both as the "within nhops" radius check and as the distance
// estimate when picking the farthest candidate for a Random connection.
#pragma once

#include <cstdint>
#include <functional>

#include "net/dup_cache.hpp"
#include "net/network.hpp"
#include "routing/messages.hpp"
#include "routing/service.hpp"
#include "sim/simulator.hpp"

namespace p2p::routing {

struct FloodStats {
  std::uint64_t originated = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;   // handed to the local application
  std::uint64_t duplicates = 0;  // suppressed by the cache
};

class FloodService final : public net::LinkListener {
 public:
  /// Received flooded message: (origin, payload, hops traveled to reach us).
  using ReceiveFn = std::function<void(NodeId origin, AppPayloadPtr app, int hops)>;

  /// `routing` may be null; when set, every received flood offers a
  /// reverse-route hint to its origin (see RoutingService::learn_route).
  FloodService(sim::Simulator& simulator, net::Network& network, NodeId self,
               RoutingService* routing = nullptr,
               sim::SimTime dedup_ttl = 30.0);

  FloodService(const FloodService&) = delete;
  FloodService& operator=(const FloodService&) = delete;

  void set_receive_handler(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Originate a flood reaching every node within `max_hops` hops.
  /// Pre: max_hops >= 1.
  void flood(AppPayloadPtr app, int max_hops);

  void on_frame(const net::Frame& frame) override;

  const FloodStats& stats() const noexcept { return stats_; }
  NodeId self() const noexcept { return self_; }

  /// Node crash: forget all sightings (the reborn node must not suppress
  /// the first flood it should forward — its cache is volatile state) but
  /// keep next_flood_id_ so its own future floods are never mistaken for
  /// replays of pre-crash ones.
  void on_crash() { seen_.clear(); }

  /// Read-only cache view for the invariant sweep.
  const net::DupCache& dup_cache() const noexcept { return seen_; }

 private:
  sim::Simulator* sim_;
  net::Network* net_;
  NodeId self_;
  RoutingService* routing_;
  net::DupCache seen_;
  std::uint64_t next_flood_id_ = 1;
  ReceiveFn on_receive_;
  FloodStats stats_;
};

}  // namespace p2p::routing
