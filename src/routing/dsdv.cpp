#include "routing/dsdv.hpp"

#include <memory>

#include "sim/rng.hpp"
#include "util/assert.hpp"

namespace p2p::routing {

DsdvAgent::DsdvAgent(sim::Simulator& simulator, net::Network& network,
                     NodeId self, const DsdvParams& params)
    : sim_(&simulator),
      net_(&network),
      self_(self),
      params_(params),
      jitter_rng_(sim::splitmix64(0x9d5dULL ^ self)) {
  net_->attach_listener(self_, this);
  schedule_periodic_update();
}

DsdvAgent::~DsdvAgent() {
  if (periodic_event_ != sim::kInvalidEventId) sim_->cancel(periodic_event_);
  if (triggered_event_ != sim::kInvalidEventId) sim_->cancel(triggered_event_);
}

void DsdvAgent::schedule_periodic_update() {
  const sim::SimTime delay =
      params_.periodic_update_interval +
      jitter_rng_.uniform(0.0, params_.update_jitter);
  periodic_event_ = sim_->after(delay, [this] {
    periodic_event_ = sim::kInvalidEventId;
    broadcast_update(/*full=*/true);
    schedule_periodic_update();
  });
}

void DsdvAgent::schedule_triggered_update() {
  if (triggered_event_ != sim::kInvalidEventId) return;  // already batched
  triggered_event_ = sim_->after(params_.triggered_update_delay, [this] {
    triggered_event_ = sim::kInvalidEventId;
    broadcast_update(/*full=*/false);
  });
}

void DsdvAgent::broadcast_update(bool full) {
  DsdvUpdate update;
  update.origin = self_;
  // Own entry first: fresh even sequence number, metric 0.
  own_seq_ += 2;
  update.entries.push_back(DsdvEntry{self_, 0, own_seq_});
  const sim::SimTime now = sim_->now();
  for (auto& [dst, row] : table_) {
    // Stale valid routes expire here rather than via a timer per row.
    if (row.metric != kDsdvInfinity &&
        row.heard + params_.route_stale_timeout <= now) {
      row.metric = kDsdvInfinity;
      row.seq += 1;  // odd: broken, reported with our own authority
      row.changed = true;
    }
    if (full || row.changed) {
      update.entries.push_back(DsdvEntry{dst, row.metric, row.seq});
      row.changed = false;
    }
  }
  if (!full && update.entries.size() <= 1) return;  // nothing to report
  ++stats_.updates_sent;
  stats_.entries_advertised += update.entries.size();
  const std::size_t bytes = dsdv_update_bytes(update);
  net_->broadcast(self_, net_->pools().make_from(std::move(update)), bytes);
}

void DsdvAgent::handle_update(NodeId from, const DsdvUpdate& update) {
  bool changed = false;
  for (const DsdvEntry& entry : update.entries) {
    if (entry.dst == self_) continue;  // we are the authority on ourselves
    const std::uint32_t metric_via =
        entry.metric == kDsdvInfinity ? kDsdvInfinity : entry.metric + 1;
    auto [it, inserted] = table_.emplace(entry.dst, Row{});
    Row& row = it->second;
    const auto newer = static_cast<std::int32_t>(entry.seq - row.seq);
    bool adopt = false;
    if (inserted || newer > 0) {
      adopt = true;
    } else if (newer == 0 && metric_via < row.metric) {
      adopt = true;
    } else if (row.next_hop == from && newer >= 0) {
      // Our current next hop re-advertised (possibly worse): stay honest.
      adopt = true;
    }
    if (adopt) {
      const bool was_usable = row.metric != kDsdvInfinity;
      row.next_hop = from;
      row.metric = metric_via;
      row.seq = entry.seq;
      row.heard = sim_->now();
      if ((row.metric == kDsdvInfinity) != !was_usable || inserted) {
        row.changed = true;
        changed = true;
      }
    }
  }
  // The sender itself is a 1-hop neighbor: its own entry (dst == sender,
  // metric 0) was handled above via metric_via = 1.
  if (changed) schedule_triggered_update();
}

DsdvAgent::Row* DsdvAgent::usable_route(NodeId dst) {
  const auto it = table_.find(dst);
  if (it == table_.end()) return nullptr;
  Row& row = it->second;
  if (row.metric == kDsdvInfinity) return nullptr;
  if (row.heard + params_.route_stale_timeout <= sim_->now()) return nullptr;
  return &row;
}

bool DsdvAgent::has_route(NodeId dst) { return usable_route(dst) != nullptr; }

int DsdvAgent::route_hops(NodeId dst) {
  const Row* row = usable_route(dst);
  return row == nullptr ? -1 : static_cast<int>(row->metric);
}

void DsdvAgent::send(NodeId dst, net::AppPayloadPtr app) {
  P2P_ASSERT(dst != self_);
  DataMsg data;
  data.src = self_;
  data.dst = dst;
  data.hops_traveled = 0;
  data.app = std::move(app);
  route_data(std::move(data));
}

void DsdvAgent::handle_link_break(NodeId next_hop) {
  bool changed = false;
  for (auto& [dst, row] : table_) {
    if (row.metric != kDsdvInfinity && row.next_hop == next_hop) {
      row.metric = kDsdvInfinity;
      row.seq += 1;  // odd sequence: link-break authority
      row.changed = true;
      changed = true;
    }
  }
  if (changed) schedule_triggered_update();
}

void DsdvAgent::route_data(DataMsg data) {
  if (data.dst == self_) {
    ++stats_.data_delivered;
    if (on_deliver_) {
      on_deliver_(data.src, std::move(data.app), int{data.hops_traveled});
    }
    return;
  }
  Row* row = usable_route(data.dst);
  if (row == nullptr) {
    ++stats_.data_dropped;  // proactive protocol: no discovery to fall back on
    return;
  }
  if (!net_->in_range(self_, row->next_hop)) {
    handle_link_break(row->next_hop);
    ++stats_.data_dropped;
    return;
  }
  if (data.src != self_) ++stats_.data_forwarded;
  const std::size_t bytes = data_bytes(data);
  net_->unicast(self_, row->next_hop,
                net_->pools().make_from(std::move(data)), bytes);
}

void DsdvAgent::on_frame(const net::Frame& frame) {
  switch (static_cast<FrameKind>(frame.payload->kind)) {
    case FrameKind::kDsdvUpdate:
      handle_update(frame.sender,
                    *static_cast<const DsdvUpdate*>(frame.payload.get()));
      break;
    case FrameKind::kData: {
      if (frame.link_dst != self_) break;
      DataMsg copy = *static_cast<const DataMsg*>(frame.payload.get());
      copy.hops_traveled = static_cast<std::uint8_t>(copy.hops_traveled + 1);
      route_data(std::move(copy));
      break;
    }
    default:
      break;
  }
}

}  // namespace p2p::routing
