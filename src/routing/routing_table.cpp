#include "routing/routing_table.hpp"

namespace p2p::routing {

Route* RoutingTable::find_active(NodeId dst, sim::SimTime now) {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return nullptr;
  Route& r = it->second;
  if (!r.valid) return nullptr;
  if (r.expires <= now) {
    r.valid = false;  // lifetime elapsed; sequence number is retained
    return nullptr;
  }
  return &r;
}

const Route* RoutingTable::find(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

bool RoutingTable::is_better(NodeId dst, std::uint32_t seq, bool seq_valid,
                             std::uint8_t hops, sim::SimTime now) {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return true;
  Route& r = it->second;
  if (!r.valid || r.expires <= now) return true;
  if (!r.seq_valid) return true;
  if (!seq_valid) return false;
  const auto newer = static_cast<std::int32_t>(seq - r.dst_seq);
  if (newer > 0) return true;
  if (newer < 0) return false;
  return hops < r.hop_count;
}

Route& RoutingTable::update(NodeId dst, NodeId next_hop, std::uint8_t hops,
                            std::uint32_t seq, bool seq_valid,
                            sim::SimTime expires) {
  Route& r = routes_[dst];
  r.next_hop = next_hop;
  r.hop_count = hops;
  r.dst_seq = seq;
  r.seq_valid = seq_valid;
  r.valid = true;
  if (expires > r.expires) r.expires = expires;
  return r;
}

void RoutingTable::refresh(NodeId dst, sim::SimTime expires) {
  const auto it = routes_.find(dst);
  if (it == routes_.end() || !it->second.valid) return;
  if (expires > it->second.expires) it->second.expires = expires;
}

bool RoutingTable::invalidate(NodeId dst) {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return false;
  Route& r = it->second;
  if (r.valid) {
    r.valid = false;
    ++r.dst_seq;  // RFC 3561 §6.11: increment on invalidation
    r.seq_valid = true;
  }
  return true;
}

void RoutingTable::add_precursor(NodeId dst, NodeId precursor) {
  const auto it = routes_.find(dst);
  if (it != routes_.end()) it->second.precursors.insert(precursor);
}

std::vector<NodeId> RoutingTable::destinations_via(NodeId next_hop,
                                                   sim::SimTime now) {
  std::vector<NodeId> out;
  for (auto& [dst, r] : routes_) {
    if (r.valid && r.expires > now && r.next_hop == next_hop) {
      out.push_back(dst);
    }
  }
  return out;
}

}  // namespace p2p::routing
