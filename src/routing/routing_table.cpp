#include "routing/routing_table.hpp"

#include <algorithm>

namespace p2p::routing {

Route* RoutingTable::lookup(NodeId dst) noexcept {
  if (use_dense_) {
    return dense_present(dst) ? &slots_[dst] : nullptr;
  }
  return entries_.find(dst);
}

const Route* RoutingTable::lookup(NodeId dst) const noexcept {
  if (use_dense_) {
    return dense_present(dst) ? &slots_[dst] : nullptr;
  }
  return entries_.find(dst);
}

Route& RoutingTable::claim(NodeId dst) {
  if (!use_dense_) return entries_.get_or_insert(dst);
  const auto need = static_cast<std::size_t>(dst) + 1;
  if (need > slots_.size()) {
    // Geometric growth keeps amortized claim cost O(1) even when ids
    // arrive in ascending order (the common case: Network assigns them
    // densely in call order).
    std::size_t target = slots_.empty() ? 16 : slots_.size();
    while (target < need) target *= 2;
    slots_.resize(target);
    occupied_.resize((target + 63) / 64, 0);
  }
  std::uint64_t& word = occupied_[dst >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (dst & 63);
  Route& r = slots_[dst];
  if ((word & bit) == 0) {
    word |= bit;
    ++dense_count_;
    r = Route{};  // pristine slot: no stale precursors or expiry carryover
  }
  return r;
}

Route* RoutingTable::find_active(NodeId dst, sim::SimTime now) {
  Route* r = lookup(dst);
  if (r == nullptr || !r->valid) return nullptr;
  if (r->expires <= now) {
    r->valid = false;  // lifetime elapsed; sequence number is retained
    return nullptr;
  }
  return r;
}

bool RoutingTable::is_better(NodeId dst, std::uint32_t seq, bool seq_valid,
                             std::uint8_t hops, sim::SimTime now) const {
  const Route* r = lookup(dst);
  if (r == nullptr) return true;
  if (!r->valid || r->expires <= now) return true;
  if (!r->seq_valid) return true;
  if (!seq_valid) return false;
  const auto newer = static_cast<std::int32_t>(seq - r->dst_seq);
  if (newer > 0) return true;
  if (newer < 0) return false;
  return hops < r->hop_count;
}

Route& RoutingTable::update(NodeId dst, NodeId next_hop, std::uint8_t hops,
                            std::uint32_t seq, bool seq_valid,
                            sim::SimTime expires) {
  Route& r = claim(dst);
  r.next_hop = next_hop;
  r.hop_count = hops;
  r.dst_seq = seq;
  r.seq_valid = seq_valid;
  r.valid = true;
  if (expires > r.expires) r.expires = expires;
  return r;
}

void RoutingTable::refresh(NodeId dst, sim::SimTime expires) {
  Route* r = lookup(dst);
  if (r == nullptr || !r->valid) return;
  if (expires > r->expires) r->expires = expires;
}

bool RoutingTable::invalidate(NodeId dst) {
  Route* r = lookup(dst);
  if (r == nullptr) return false;
  if (r->valid) {
    r->valid = false;
    ++r->dst_seq;  // RFC 3561 §6.11: increment on invalidation
    r->seq_valid = true;
  }
  return true;
}

void RoutingTable::add_precursor(NodeId dst, NodeId precursor) {
  Route* r = lookup(dst);
  if (r != nullptr) r->precursors.insert(precursor);
}

void RoutingTable::destinations_via(NodeId next_hop, sim::SimTime now,
                                    std::vector<NodeId>* out) const {
  out->clear();
  if (use_dense_) {
    // Word-at-a-time bitmap scan: entries come out in ascending
    // destination order already — the RERR ordering contract.
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const auto dst = static_cast<NodeId>(w * 64 + b);
        const Route& r = slots_[dst];
        if (r.valid && r.expires > now && r.next_hop == next_hop) {
          out->push_back(dst);
        }
      }
    }
    return;
  }
  entries_.for_each([&](NodeId dst, const Route& r) {
    if (r.valid && r.expires > now && r.next_hop == next_hop) {
      out->push_back(dst);
    }
  });
  // Ascending destination order: a stable, platform-independent RERR
  // ordering regardless of hash-slot layout.
  std::sort(out->begin(), out->end());
}

std::vector<NodeId> RoutingTable::destinations_via(NodeId next_hop,
                                                   sim::SimTime now) const {
  std::vector<NodeId> out;
  destinations_via(next_hop, now, &out);
  return out;
}

void RoutingTable::clear() noexcept {
  if (use_dense_) {
    // Drop the occupancy bits (lookups fail immediately) and release the
    // precursor sets so a long-lived crashed node does not pin their heap
    // nodes; the flat slot storage itself is retained for the node's next
    // life. claim() resets each slot on reuse.
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t bits = occupied_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        slots_[w * 64 + b].precursors.clear();
      }
      occupied_[w] = 0;
    }
    dense_count_ = 0;
    return;
  }
  entries_.clear();
}

RoutingTable::ConstView::ConstView(const RoutingTable* table) : table_(table) {
  keys_.reserve(table->size());
  if (table->use_dense_) {
    for (std::size_t w = 0; w < table->occupied_.size(); ++w) {
      std::uint64_t bits = table->occupied_[w];
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        keys_.push_back(static_cast<NodeId>(w * 64 + b));
      }
    }
    return;  // bitmap scan is already ascending
  }
  table->entries_.for_each(
      [&](NodeId dst, const Route&) { keys_.push_back(dst); });
  std::sort(keys_.begin(), keys_.end());
}

}  // namespace p2p::routing
