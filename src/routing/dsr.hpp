// DSR — Dynamic Source Routing (Johnson & Maltz '96), the third protocol
// of the routing comparison in the paper's reference [13].
//
// On-demand like AODV, but routes live in the packets: a route request
// floods outward accumulating the node list it traversed; the target
// source-routes a reply back over the reversed list; data packets then
// carry the full hop list. Every node keeps a route *cache* of complete
// paths; a broken link is reported to the source with a route error and
// purged from caches along the way.
//
// Simplifications vs the full spec (documented in DESIGN.md): no
// promiscuous-mode route shortening and no packet salvaging; replies come
// only from the target (no cached-route replies), keeping routes fresh at
// the price of a few more floods — the conservative configuration.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "net/dup_cache.hpp"
#include "net/network.hpp"
#include "routing/messages.hpp"
#include "routing/service.hpp"
#include "sim/simulator.hpp"

namespace p2p::routing {

struct DsrParams {
  std::uint8_t max_route_len = 16;       // hops a request may accumulate
  sim::SimTime route_lifetime = 30.0;    // cached path freshness bound
  sim::SimTime discovery_timeout = 2.0;  // wait per request round
  std::uint8_t discovery_retries = 2;
  std::size_t send_queue_limit = 64;
  sim::SimTime request_id_cache_ttl = 6.0;
};

/// Flooded route request; `path` holds the nodes traversed so far
/// (excluding the origin).
struct DsrRreq final : net::FramePayload {
  DsrRreq() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kDsrRreq); }
  NodeId origin = net::kInvalidNode;
  std::uint64_t request_id = 0;
  NodeId target = net::kInvalidNode;
  std::vector<NodeId> path;
};
inline std::size_t dsr_rreq_bytes(const DsrRreq& r) noexcept {
  return 16 + 4 * r.path.size();
}

/// Source-routed reply carrying the full discovered route
/// (origin .. target inclusive).
struct DsrRrep final : net::FramePayload {
  DsrRrep() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kDsrRrep); }
  std::vector<NodeId> route;   // route[0] = origin, route.back() = target
  std::uint8_t next_index = 0; // position of the *next* receiver, walking
                               // the route backwards from the target
};
inline std::size_t dsr_rrep_bytes(const DsrRrep& r) noexcept {
  return 12 + 4 * r.route.size();
}

/// Route error: link route[broken_index] -> route[broken_index+1] is gone.
struct DsrRerr final : net::FramePayload {
  DsrRerr() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kDsrRerr); }
  NodeId unreachable_from = net::kInvalidNode;
  NodeId unreachable_to = net::kInvalidNode;
  std::vector<NodeId> back_route;  // source route toward the data source
  std::uint8_t next_index = 0;
};
inline std::size_t dsr_rerr_bytes(const DsrRerr& r) noexcept {
  return 16 + 4 * r.back_route.size();
}

/// Source-routed application data.
struct DsrData final : net::FramePayload {
  DsrData() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kDsrData); }
  std::vector<NodeId> route;   // route[0] = src, route.back() = dst
  std::uint8_t next_index = 0; // receiver position within route
  AppPayloadPtr app;
};
inline std::size_t dsr_data_bytes(const DsrData& d) noexcept {
  return 12 + 4 * d.route.size() + (d.app ? d.app->size_bytes() : 0);
}

struct DsrStats {
  std::uint64_t rreq_originated = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rrep_sent = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t discoveries_failed = 0;
};

class DsrAgent final : public net::LinkListener, public RoutingService {
 public:
  DsrAgent(sim::Simulator& simulator, net::Network& network, NodeId self,
           const DsrParams& params);
  ~DsrAgent() override;

  DsrAgent(const DsrAgent&) = delete;
  DsrAgent& operator=(const DsrAgent&) = delete;

  void set_deliver_handler(DeliverFn fn) override { on_deliver_ = std::move(fn); }
  void send(NodeId dst, net::AppPayloadPtr app) override;
  /// 1-hop hints become cached direct routes; multi-hop hints carry no
  /// usable node list, so they are ignored.
  void learn_route(NodeId dst, NodeId via, std::uint8_t hops) override;
  bool has_route(NodeId dst) override;
  int route_hops(NodeId dst) override;
  Telemetry telemetry() const override {
    return Telemetry{stats_.rreq_originated + stats_.rreq_forwarded +
                         stats_.rrep_sent + stats_.rerr_sent,
                     stats_.data_delivered, stats_.data_dropped};
  }

  void on_frame(const net::Frame& frame) override;

  const DsrStats& stats() const noexcept { return stats_; }
  NodeId self() const noexcept { return self_; }

  /// Approximate route-cache + pending-discovery + duplicate-cache
  /// footprint (queued payload bodies are accounted by the payload pools).
  std::size_t memory_bytes() const override;

 private:
  struct CachedRoute {
    std::vector<NodeId> path;  // path[0] == self_, path.back() == dst
    sim::SimTime learned = 0.0;
  };
  struct Pending {
    std::uint8_t retries_left = 0;
    sim::EventId timeout = sim::kInvalidEventId;
    std::deque<AppPayloadPtr> queue;
  };

  const CachedRoute* fresh_route(NodeId dst);
  void cache_route(std::vector<NodeId> full_path);
  void purge_link(NodeId from, NodeId to);

  void start_discovery(NodeId dst);
  void send_rreq(NodeId dst);
  void discovery_timeout(NodeId dst);
  void flush_queue(NodeId dst);

  void handle_rreq(NodeId from, const DsrRreq& rreq);
  void handle_rrep(const DsrRrep& rrep);
  void handle_rerr(const DsrRerr& rerr);
  void handle_data(DsrData data);
  /// Forward a source-routed message one hop; returns false on link break.
  bool forward_data(DsrData data);
  void report_break(const DsrData& data, NodeId broken_to);

  sim::Simulator* sim_;
  net::Network* net_;
  NodeId self_;
  DsrParams params_;
  std::unordered_map<NodeId, CachedRoute> cache_;
  std::unordered_map<NodeId, Pending> pending_;
  net::DupCache rreq_seen_;
  std::uint64_t next_request_id_ = 1;
  DeliverFn on_deliver_;
  DsrStats stats_;
};

}  // namespace p2p::routing
