// AODV routing agent (RFC 3561), one instance per node.
//
// On-demand route discovery with expanding-ring RREQ floods, RREP unicast
// along reverse paths, RERR propagation to precursors, and link-break
// detection via link-layer feedback (the forwarding node checks the next
// hop is still in radio range — the standard ns-2 configuration the paper
// used, which runs AODV without HELLO beacons).
//
// The P2P layer uses exactly two services, matching what a Gnutella-like
// agent sees on top of ns-2 AODV:
//   * send(dst, payload)            — unicast with on-demand discovery;
//   * learn_route(dst, via, hops)   — cross-layer hint from the controlled
//     broadcast service so that replies to flooded probes don't each cost
//     a full RREQ flood (the authors' ns-2 patch integrates the broadcast
//     cache into AODV the same way).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/dup_cache.hpp"
#include "net/network.hpp"
#include "routing/messages.hpp"
#include "routing/routing_table.hpp"
#include "routing/service.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace p2p::routing {

struct AodvParams {
  sim::SimTime active_route_timeout = 10.0;  // ns-2 AODV default (mobile, no hello)
  sim::SimTime my_route_timeout = 20.0;      // 2 * active_route_timeout
  sim::SimTime node_traversal_time = 0.04;
  std::uint8_t net_diameter = 35;
  std::uint8_t rreq_retries = 2;
  std::uint8_t ttl_start = 2;
  std::uint8_t ttl_increment = 2;
  std::uint8_t ttl_threshold = 7;
  std::size_t send_queue_limit = 64;         // packets buffered per discovery
  sim::SimTime rreq_id_cache_ttl = 6.0;      // PATH_DISCOVERY_TIME
  // Population of the run, if the caller knows it (scenario drivers do).
  // Selects the routing-table backend: dense dst-indexed slots at paper
  // scale, O(routes learned) hashing above RoutingTable::kDenseUniverseMax
  // or when left 0. Behavior is backend-identical; only speed/memory move.
  std::size_t population_hint = 0;

  sim::SimTime net_traversal_time() const noexcept {
    return 2.0 * node_traversal_time * static_cast<double>(net_diameter);
  }
  /// Discovery timeout for a given ring TTL (RFC 3561 §6.4).
  sim::SimTime ring_traversal_time(std::uint8_t ttl) const noexcept {
    return 2.0 * node_traversal_time * (static_cast<double>(ttl) + 2.0);
  }
};

struct AodvStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;   // counted at the destination
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_dropped = 0;     // no route / discovery failure
  std::uint64_t rreq_originated = 0;
  std::uint64_t rreq_forwarded = 0;
  std::uint64_t rrep_sent = 0;
  std::uint64_t rrep_forwarded = 0;
  std::uint64_t rerr_sent = 0;
  std::uint64_t discoveries_failed = 0;
};

class AodvAgent final : public net::LinkListener, public RoutingService {
 public:
  AodvAgent(sim::Simulator& simulator, net::Network& network, NodeId self,
            const AodvParams& params);
  ~AodvAgent() override;

  AodvAgent(const AodvAgent&) = delete;
  AodvAgent& operator=(const AodvAgent&) = delete;

  void set_deliver_handler(DeliverFn fn) override {
    on_deliver_ = std::move(fn);
  }

  /// Unicast `app` to `dst`, discovering a route if needed. Packets are
  /// buffered during discovery (bounded queue, drop-oldest) and dropped if
  /// discovery ultimately fails.
  void send(NodeId dst, AppPayloadPtr app) override;

  /// Cross-layer hint: a flooded message from `dst` just arrived via
  /// neighbor `via` after `hops` hops — install/refresh the reverse route
  /// if it is no worse than what we have.
  void learn_route(NodeId dst, NodeId via, std::uint8_t hops) override;

  /// True if a valid route to dst currently exists (no discovery started).
  bool has_route(NodeId dst) override;
  /// Hop count of the active route, or -1.
  int route_hops(NodeId dst) override;

  void on_frame(const net::Frame& frame) override;

  Telemetry telemetry() const override {
    return Telemetry{stats_.rreq_originated + stats_.rreq_forwarded +
                         stats_.rrep_sent + stats_.rrep_forwarded +
                         stats_.rerr_sent,
                     stats_.data_delivered, stats_.data_dropped};
  }

  /// Node crash: drop the routing table, the RREQ duplicate cache, and
  /// every pending discovery (cancelling their timeouts and dropping their
  /// buffered packets) without transmitting anything. own_seq_ and
  /// next_bcast_id_ survive — a reborn node must not reuse (origin, id)
  /// pairs its neighbors may still remember.
  void reset() override;

  /// Routing table + RREQ duplicate-cache slot storage plus the pending
  /// discovery map (queued payload bodies excluded — those are accounted
  /// by the payload pools).
  std::size_t memory_bytes() const override {
    return table_.memory_bytes() + rreq_seen_.memory_bytes() +
           pending_.size() *
               (sizeof(NodeId) + sizeof(PendingDiscovery) + 2 * sizeof(void*));
  }

  const AodvStats& stats() const noexcept { return stats_; }
  NodeId self() const noexcept { return self_; }
  RoutingTable& table() noexcept { return table_; }
  /// Read-only RREQ duplicate-cache view for the invariant sweep.
  const net::DupCache& rreq_cache() const noexcept { return rreq_seen_; }

 private:
  struct PendingDiscovery {
    std::uint8_t retries_left = 0;
    std::uint8_t last_ttl = 0;
    sim::EventId timeout = sim::kInvalidEventId;
    std::deque<AppPayloadPtr> queue;
  };

  void handle_rreq(NodeId from, const Rreq& rreq);
  void handle_rrep(NodeId from, const Rrep& rrep);
  void handle_rerr(NodeId from, const Rerr& rerr);
  void handle_data(NodeId from, const DataMsg& data);

  void start_discovery(NodeId dst);
  void send_rreq(NodeId dst, std::uint8_t ttl);
  void discovery_timeout(NodeId dst);
  void flush_queue(NodeId dst);

  /// Forward or locally deliver a data message whose next hop is us.
  void route_data(DataMsg data);
  /// The link to `next_hop` is gone: invalidate routes, notify precursors.
  void handle_link_break(NodeId next_hop);
  void send_rerr_to_precursors(const std::vector<NodeId>& lost_dsts);

  sim::Simulator* sim_;
  net::Network* net_;
  NodeId self_;
  AodvParams params_;

  RoutingTable table_;
  net::DupCache rreq_seen_;
  std::uint32_t own_seq_ = 0;
  std::uint64_t next_bcast_id_ = 1;
  std::unordered_map<NodeId, PendingDiscovery> pending_;
  DeliverFn on_deliver_;
  AodvStats stats_;
  // Reused by handle_link_break so per-break destination sweeps allocate
  // nothing in steady state (link breaks are frequent under churn).
  std::vector<NodeId> via_scratch_;
};

}  // namespace p2p::routing
