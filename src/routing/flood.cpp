#include "routing/flood.hpp"

#include <memory>

#include "util/assert.hpp"

namespace p2p::routing {

FloodService::FloodService(sim::Simulator& simulator, net::Network& network,
                           NodeId self, RoutingService* routing,
                           sim::SimTime dedup_ttl)
    : sim_(&simulator),
      net_(&network),
      self_(self),
      routing_(routing),
      seen_(dedup_ttl) {
  net_->attach_listener(self_, this);
}

void FloodService::flood(AppPayloadPtr app, int max_hops) {
  P2P_ASSERT(max_hops >= 1);
  net::Ref<FloodMsg> msg = net_->pools().make<FloodMsg>();
  FloodMsg* m = msg.edit();
  m->origin = self_;
  m->flood_id = next_flood_id_++;
  m->hops_remaining = static_cast<std::uint8_t>(max_hops - 1);
  m->hops_traveled = 0;
  m->app = std::move(app);
  seen_.insert(self_, m->flood_id, sim_->now());
  ++stats_.originated;
  const std::size_t bytes = flood_bytes(*m);
  net_->broadcast(self_, std::move(msg), bytes);
}

void FloodService::on_frame(const net::Frame& frame) {
  if (frame.payload->kind != static_cast<net::PayloadKind>(FrameKind::kFlood)) {
    return;
  }
  const auto* msg = static_cast<const FloodMsg*>(frame.payload.get());
  if (msg->origin == self_) return;  // own flood echoed back
  if (!seen_.insert(msg->origin, msg->flood_id, sim_->now())) {
    ++stats_.duplicates;
    return;
  }
  const int hops = int{msg->hops_traveled} + 1;
  if (routing_ != nullptr) {
    routing_->learn_route(msg->origin, frame.sender,
                          static_cast<std::uint8_t>(hops));
  }
  ++stats_.delivered;
  if (on_receive_) on_receive_(msg->origin, msg->app, hops);

  if (msg->hops_remaining > 0) {
    net::Ref<FloodMsg> fwd = net_->pools().make<FloodMsg>();
    FloodMsg* f = fwd.edit();
    *f = *msg;  // data copy; the slot's pool identity survives (rc-neutral)
    f->hops_remaining = static_cast<std::uint8_t>(msg->hops_remaining - 1);
    f->hops_traveled = static_cast<std::uint8_t>(msg->hops_traveled + 1);
    ++stats_.forwarded;
    const std::size_t bytes = flood_bytes(*f);
    net_->broadcast(self_, std::move(fwd), bytes);
  }
}

}  // namespace p2p::routing
