// AODV control messages and data encapsulation (RFC 3561 message set).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::routing {

using net::AppPayloadPtr;
using net::NodeId;

/// Frame-payload dispatch tags (net::FramePayload::kind): every routing
/// message stamps its tag at construction so `on_frame` handlers dispatch
/// with a switch + static_cast instead of chained dynamic_casts.
enum class FrameKind : net::PayloadKind {
  kRreq,
  kRrep,
  kRerr,
  kData,
  kFlood,
  kDsdvUpdate,
  kDsrRreq,
  kDsrRrep,
  kDsrRerr,
  kDsrData,
};

/// Route request — flooded with expanding-ring TTL.
struct Rreq final : net::FramePayload {
  Rreq() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kRreq); }
  NodeId origin = net::kInvalidNode;
  std::uint32_t origin_seq = 0;
  std::uint64_t bcast_id = 0;
  NodeId dst = net::kInvalidNode;
  std::uint32_t dst_seq = 0;
  bool dst_seq_valid = false;
  std::uint8_t hop_count = 0;  // hops from origin to the transmitter
  std::uint8_t ttl = 0;        // remaining rebroadcasts
};
inline constexpr std::size_t kRreqBytes = 24;

/// Route reply — unicast back along the reverse path.
struct Rrep final : net::FramePayload {
  Rrep() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kRrep); }
  NodeId route_dst = net::kInvalidNode;  // node the route leads to
  std::uint32_t dst_seq = 0;
  NodeId origin = net::kInvalidNode;     // requester the reply travels to
  std::uint8_t hop_count = 0;            // hops from route_dst to transmitter
  sim::SimTime lifetime = 0.0;
};
inline constexpr std::size_t kRrepBytes = 20;

/// Route error — unicast to precursors of broken routes.
struct Rerr final : net::FramePayload {
  Rerr() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kRerr); }
  /// (destination, destination sequence number) pairs now unreachable.
  std::vector<std::pair<NodeId, std::uint32_t>> unreachable;
};
inline constexpr std::size_t kRerrBaseBytes = 12;
inline constexpr std::size_t kRerrPerDestBytes = 8;

inline std::size_t rerr_bytes(const Rerr& rerr) noexcept {
  return kRerrBaseBytes + kRerrPerDestBytes * rerr.unreachable.size();
}

/// Application data riding hop-by-hop over AODV routes.
struct DataMsg final : net::FramePayload {
  DataMsg() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kData); }
  NodeId src = net::kInvalidNode;
  NodeId dst = net::kInvalidNode;
  std::uint8_t hops_traveled = 0;  // hops already traversed when transmitted
  AppPayloadPtr app;
};
inline constexpr std::size_t kDataHeaderBytes = 16;

inline std::size_t data_bytes(const DataMsg& data) noexcept {
  return kDataHeaderBytes + (data.app ? data.app->size_bytes() : 0);
}

/// Hop-limited application broadcast (the paper's controlled broadcast).
struct FloodMsg final : net::FramePayload {
  FloodMsg() noexcept { kind = static_cast<net::PayloadKind>(FrameKind::kFlood); }
  NodeId origin = net::kInvalidNode;
  std::uint64_t flood_id = 0;
  std::uint8_t hops_remaining = 0;  // rebroadcast budget after this hop
  std::uint8_t hops_traveled = 0;   // hops already traversed when transmitted
  AppPayloadPtr app;
};
inline constexpr std::size_t kFloodHeaderBytes = 14;

inline std::size_t flood_bytes(const FloodMsg& flood) noexcept {
  return kFloodHeaderBytes + (flood.app ? flood.app->size_bytes() : 0);
}

}  // namespace p2p::routing
