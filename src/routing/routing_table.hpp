// AODV routing table (RFC 3561 §2, §6.2).
//
// Loop freedom comes from destination sequence numbers: a route is only
// replaced by one with a newer sequence number, or an equal sequence
// number and strictly fewer hops.
//
// Representation: two backends behind one interface, chosen once per
// table from the population hint (set_universe_hint) before first use:
//
//  * dense (population <= kDenseUniverseMax): a flat vector indexed by
//    destination id plus an occupancy bitmap — every lookup on the
//    data-forwarding hot path is one bit test and one array index, no
//    hashing. Node ids are dense (0..n-1, assigned by Network in call
//    order), so the vector grows geometrically with the largest claimed
//    id, worst case O(population) per table. That worst case is why the
//    backend is population-gated: flood reverse-route hints claim
//    arbitrary destination ids over time, so at mega-scale a dst-indexed
//    table degenerates to O(n) per node and O(n^2) fleet-wide (measured:
//    8.3 GB at 10k nodes).
//
//  * hashed (everything else, and the default when no hint is given): an
//    open-addressed map keyed by destination id (util::FlatMap) —
//    O(routes actually learned) memory per node, the mega-scale
//    requirement. A hot-path lookup is one multiplicative hash plus a
//    short linear probe.
//
// Both backends share the same semantics: expiry state lives intrusively
// in the Route entries (`valid`/`expires`) and is swept in place
// (find_active invalidates lazily, destinations_via skips expired entries
// during its scan); there is no auxiliary expiry structure to keep in
// sync. Entries are reset to pristine state when a destination is
// re-claimed after clear(), so a reborn node never observes stale
// precursors or a stale max-expiry from its previous life.
//
// Ordering contracts (pinned by the determinism suite): destinations_via
// returns ascending destinations (the platform-independent RERR order)
// and all() iterates ascending by destination. The dense bitmap scan
// yields that order naturally; the hashed backend sorts extracted keys —
// so observable behavior is backend-independent, and switching backends
// by population cannot move a counter.
#pragma once

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace p2p::routing {

using net::NodeId;

struct Route {
  NodeId next_hop = net::kInvalidNode;
  std::uint8_t hop_count = 0;
  std::uint32_t dst_seq = 0;
  bool seq_valid = false;
  bool valid = false;          // invalidated routes keep their seq number
  sim::SimTime expires = 0.0;  // lifetime for valid routes
  std::set<NodeId> precursors; // neighbors routing through us to this dst
};

class RoutingTable {
 public:
  /// Largest population for which the dense backend is used. Worst-case
  /// dense footprint is population^2 Route slots fleet-wide, so the
  /// ceiling keeps that bounded (~2048^2 * sizeof(Route) ≈ 0.4 GB) while
  /// covering the paper-scale runs where direct indexing matters.
  static constexpr std::size_t kDenseUniverseMax = 2048;

  /// Declare the destination-id universe (the population). Must be called
  /// before the first insert; selects the dense backend when
  /// 0 < n <= kDenseUniverseMax, the hashed backend otherwise (and when
  /// never called).
  void set_universe_hint(std::size_t n) noexcept {
    use_dense_ = n > 0 && n <= kDenseUniverseMax;
  }

  /// Valid, unexpired route or nullptr. Expired routes are invalidated
  /// as a side effect (their sequence numbers survive).
  Route* find_active(NodeId dst, sim::SimTime now);
  const Route* find(NodeId dst) const noexcept { return lookup(dst); }

  /// Would a route advertising (seq, seq_valid, hops) replace what we have
  /// for dst? Implements the RFC 3561 §6.2 freshness comparison.
  bool is_better(NodeId dst, std::uint32_t seq, bool seq_valid,
                 std::uint8_t hops, sim::SimTime now) const;

  /// Install/overwrite the route (callers check is_better first when the
  /// update comes from the network; unconditional for e.g. neighbor routes).
  Route& update(NodeId dst, NodeId next_hop, std::uint8_t hops,
                std::uint32_t seq, bool seq_valid, sim::SimTime expires);

  /// Extend the lifetime of an active route (route used for forwarding).
  void refresh(NodeId dst, sim::SimTime expires);

  /// Mark the route invalid and bump its sequence number (RFC 3561 §6.11).
  /// Returns false if there was no route entry at all.
  bool invalidate(NodeId dst);

  void add_precursor(NodeId dst, NodeId precursor);

  /// Destinations whose active route uses `next_hop` (link-break handling),
  /// in ascending destination order. The buffer overload clears and reuses
  /// `out` so per-break handling allocates nothing in steady state.
  void destinations_via(NodeId next_hop, sim::SimTime now,
                        std::vector<NodeId>* out) const;
  std::vector<NodeId> destinations_via(NodeId next_hop, sim::SimTime now) const;

  std::size_t size() const noexcept {
    return use_dense_ ? dense_count_ : entries_.size();
  }

  /// Forget every route, sequence numbers included (node crash: a reborn
  /// node starts from an empty table, RFC 3561 §6.13 handles seq reuse).
  /// Slot storage is retained; entries are reset to pristine on reuse.
  void clear() noexcept;

  /// Bytes resident in the table's slot storage (megascale memory
  /// accounting; excludes per-route precursor set heap nodes).
  std::size_t memory_bytes() const noexcept {
    if (use_dense_) {
      return slots_.capacity() * sizeof(Route) +
             occupied_.capacity() * sizeof(std::uint64_t);
    }
    return entries_.memory_bytes();
  }

  /// Read-only iterable view over every entry, ascending by destination,
  /// for cross-layer invariant sweeps (cold path: materializes the sorted
  /// key list). Yields `{NodeId dst, const Route& route}` pairs, so
  /// `for (const auto& [dst, route] : table.all())` works as it did over
  /// the old map representation.
  class ConstView {
   public:
    struct Entry {
      NodeId dst;
      const Route& route;
    };
    class iterator {
     public:
      iterator(const ConstView* view, std::size_t i) noexcept
          : view_(view), i_(i) {}
      Entry operator*() const noexcept {
        const NodeId dst = view_->keys_[i_];
        return Entry{dst, *view_->table_->find(dst)};
      }
      iterator& operator++() noexcept {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& other) const noexcept {
        return i_ != other.i_;
      }

     private:
      const ConstView* view_;
      std::size_t i_;
    };

    explicit ConstView(const RoutingTable* table);
    iterator begin() const noexcept { return iterator(this, 0); }
    iterator end() const noexcept { return iterator(this, keys_.size()); }
    std::size_t size() const noexcept { return keys_.size(); }

   private:
    const RoutingTable* table_;
    std::vector<NodeId> keys_;  // ascending destinations at view creation
  };

  ConstView all() const { return ConstView(this); }

 private:
  /// Entry for dst, or nullptr if never claimed (or cleared).
  Route* lookup(NodeId dst) noexcept;
  const Route* lookup(NodeId dst) const noexcept;
  /// Entry for dst, default-constructed (pristine) on first touch.
  Route& claim(NodeId dst);
  bool dense_present(NodeId dst) const noexcept {
    return static_cast<std::size_t>(dst) < slots_.size() &&
           (occupied_[dst >> 6] & (std::uint64_t{1} << (dst & 63))) != 0;
  }

  // Hashed backend.
  util::FlatMap<NodeId, Route, net::kInvalidNode> entries_;
  // Dense backend.
  std::vector<Route> slots_;
  std::vector<std::uint64_t> occupied_;
  std::size_t dense_count_ = 0;
  bool use_dense_ = false;
};

}  // namespace p2p::routing
