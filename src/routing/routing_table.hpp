// AODV routing table (RFC 3561 §2, §6.2).
//
// Loop freedom comes from destination sequence numbers: a route is only
// replaced by one with a newer sequence number, or an equal sequence
// number and strictly fewer hops.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::routing {

using net::NodeId;

struct Route {
  NodeId next_hop = net::kInvalidNode;
  std::uint8_t hop_count = 0;
  std::uint32_t dst_seq = 0;
  bool seq_valid = false;
  bool valid = false;          // invalidated routes keep their seq number
  sim::SimTime expires = 0.0;  // lifetime for valid routes
  std::set<NodeId> precursors; // neighbors routing through us to this dst
};

class RoutingTable {
 public:
  /// Valid, unexpired route or nullptr. Expired routes are invalidated
  /// as a side effect (their sequence numbers survive).
  Route* find_active(NodeId dst, sim::SimTime now);
  const Route* find(NodeId dst) const;

  /// Would a route advertising (seq, seq_valid, hops) replace what we have
  /// for dst? Implements the RFC 3561 §6.2 freshness comparison.
  bool is_better(NodeId dst, std::uint32_t seq, bool seq_valid,
                 std::uint8_t hops, sim::SimTime now);

  /// Install/overwrite the route (callers check is_better first when the
  /// update comes from the network; unconditional for e.g. neighbor routes).
  Route& update(NodeId dst, NodeId next_hop, std::uint8_t hops,
                std::uint32_t seq, bool seq_valid, sim::SimTime expires);

  /// Extend the lifetime of an active route (route used for forwarding).
  void refresh(NodeId dst, sim::SimTime expires);

  /// Mark the route invalid and bump its sequence number (RFC 3561 §6.11).
  /// Returns false if there was no route entry at all.
  bool invalidate(NodeId dst);

  void add_precursor(NodeId dst, NodeId precursor);

  /// Destinations whose active route uses `next_hop` (link-break handling).
  std::vector<NodeId> destinations_via(NodeId next_hop, sim::SimTime now);

  std::size_t size() const noexcept { return routes_.size(); }

  /// Forget every route, sequence numbers included (node crash: a reborn
  /// node starts from an empty table, RFC 3561 §6.13 handles seq reuse).
  void clear() noexcept { routes_.clear(); }

  /// Full table view for cross-layer invariant sweeps (read-only).
  const std::unordered_map<NodeId, Route>& all() const noexcept {
    return routes_;
  }

 private:
  std::unordered_map<NodeId, Route> routes_;
};

}  // namespace p2p::routing
