// AODV routing table (RFC 3561 §2, §6.2).
//
// Loop freedom comes from destination sequence numbers: a route is only
// replaced by one with a newer sequence number, or an equal sequence
// number and strictly fewer hops.
//
// Representation: node ids are dense (0..n-1, assigned by Network in call
// order), so the table is a flat vector indexed by destination id plus an
// occupancy bitmap — every lookup on the data-forwarding hot path is one
// bit test and one array index, no hashing. Expiry state lives intrusively
// in the Route slots themselves (`valid`/`expires`) and is swept in place
// (find_active invalidates lazily, destinations_via skips expired entries
// during its bitmap scan); there is no auxiliary expiry structure to keep
// in sync. Slots are reset to pristine state when a destination is
// re-claimed after clear(), so a reborn node never observes stale
// precursors or a stale max-expiry from its previous life.
#pragma once

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace p2p::routing {

using net::NodeId;

struct Route {
  NodeId next_hop = net::kInvalidNode;
  std::uint8_t hop_count = 0;
  std::uint32_t dst_seq = 0;
  bool seq_valid = false;
  bool valid = false;          // invalidated routes keep their seq number
  sim::SimTime expires = 0.0;  // lifetime for valid routes
  std::set<NodeId> precursors; // neighbors routing through us to this dst
};

class RoutingTable {
 public:
  /// Valid, unexpired route or nullptr. Expired routes are invalidated
  /// as a side effect (their sequence numbers survive).
  Route* find_active(NodeId dst, sim::SimTime now);
  const Route* find(NodeId dst) const noexcept { return slot(dst); }

  /// Would a route advertising (seq, seq_valid, hops) replace what we have
  /// for dst? Implements the RFC 3561 §6.2 freshness comparison.
  bool is_better(NodeId dst, std::uint32_t seq, bool seq_valid,
                 std::uint8_t hops, sim::SimTime now) const;

  /// Install/overwrite the route (callers check is_better first when the
  /// update comes from the network; unconditional for e.g. neighbor routes).
  Route& update(NodeId dst, NodeId next_hop, std::uint8_t hops,
                std::uint32_t seq, bool seq_valid, sim::SimTime expires);

  /// Extend the lifetime of an active route (route used for forwarding).
  void refresh(NodeId dst, sim::SimTime expires);

  /// Mark the route invalid and bump its sequence number (RFC 3561 §6.11).
  /// Returns false if there was no route entry at all.
  bool invalidate(NodeId dst);

  void add_precursor(NodeId dst, NodeId precursor);

  /// Destinations whose active route uses `next_hop` (link-break handling),
  /// in ascending destination order. The buffer overload clears and reuses
  /// `out` so per-break handling allocates nothing in steady state.
  void destinations_via(NodeId next_hop, sim::SimTime now,
                        std::vector<NodeId>* out) const;
  std::vector<NodeId> destinations_via(NodeId next_hop, sim::SimTime now) const;

  std::size_t size() const noexcept { return size_; }

  /// Forget every route, sequence numbers included (node crash: a reborn
  /// node starts from an empty table, RFC 3561 §6.13 handles seq reuse).
  /// Slot storage is retained; each slot is reset when re-claimed.
  void clear() noexcept;

  /// Read-only iterable view over every entry, ascending by destination,
  /// for cross-layer invariant sweeps. Yields `{NodeId dst, const Route&
  /// route}` pairs, so `for (const auto& [dst, route] : table.all())`
  /// works as it did over the old map representation.
  class ConstView {
   public:
    struct Entry {
      NodeId dst;
      const Route& route;
    };
    class iterator {
     public:
      iterator(const RoutingTable* table, std::size_t i) noexcept
          : table_(table), i_(i) {
        skip_unoccupied();
      }
      Entry operator*() const noexcept {
        return Entry{static_cast<NodeId>(i_), table_->slots_[i_]};
      }
      iterator& operator++() noexcept {
        ++i_;
        skip_unoccupied();
        return *this;
      }
      bool operator!=(const iterator& other) const noexcept {
        return i_ != other.i_;
      }

     private:
      void skip_unoccupied() noexcept {
        while (i_ < table_->slots_.size() &&
               !table_->present(static_cast<NodeId>(i_))) {
          ++i_;
        }
      }
      const RoutingTable* table_;
      std::size_t i_;
    };

    explicit ConstView(const RoutingTable* table) noexcept : table_(table) {}
    iterator begin() const noexcept { return iterator(table_, 0); }
    iterator end() const noexcept {
      return iterator(table_, table_->slots_.size());
    }
    std::size_t size() const noexcept { return table_->size_; }

   private:
    const RoutingTable* table_;
  };

  ConstView all() const noexcept { return ConstView(this); }

 private:
  bool present(NodeId dst) const noexcept {
    return static_cast<std::size_t>(dst) < slots_.size() &&
           ((occupied_[dst >> 6] >> (dst & 63)) & 1U) != 0;
  }
  Route* slot(NodeId dst) noexcept {
    return present(dst) ? &slots_[dst] : nullptr;
  }
  const Route* slot(NodeId dst) const noexcept {
    return present(dst) ? &slots_[dst] : nullptr;
  }
  /// Occupied slot for dst, growing storage and resetting the slot to
  /// pristine state on the unoccupied -> occupied transition.
  Route& claim(NodeId dst);

  std::vector<Route> slots_;             // indexed by destination id
  std::vector<std::uint64_t> occupied_;  // bit i set => slots_[i] is an entry
  std::size_t size_ = 0;
};

}  // namespace p2p::routing
