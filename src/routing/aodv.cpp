#include "routing/aodv.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace p2p::routing {

namespace {
constexpr const char* kTag = "aodv";
}

AodvAgent::AodvAgent(sim::Simulator& simulator, net::Network& network,
                     NodeId self, const AodvParams& params)
    : sim_(&simulator),
      net_(&network),
      self_(self),
      params_(params),
      rreq_seen_(params.rreq_id_cache_ttl) {
  table_.set_universe_hint(params.population_hint);
  net_->attach_listener(self_, this);
}

AodvAgent::~AodvAgent() {
  for (auto& [dst, pending] : pending_) {
    if (pending.timeout != sim::kInvalidEventId) sim_->cancel(pending.timeout);
  }
}

void AodvAgent::send(NodeId dst, AppPayloadPtr app) {
  P2P_ASSERT(dst != self_);
  ++stats_.data_originated;
  if (Route* route = table_.find_active(dst, sim_->now())) {
    DataMsg data;
    data.src = self_;
    data.dst = dst;
    data.hops_traveled = 0;
    data.app = std::move(app);
    // Using the route keeps it (and the next hop's entry) alive.
    table_.refresh(dst, sim_->now() + params_.active_route_timeout);
    table_.refresh(route->next_hop, sim_->now() + params_.active_route_timeout);
    if (!net_->link_usable(self_, route->next_hop)) {
      handle_link_break(route->next_hop);
      // Fall through to discovery with the packet queued.
      auto& pending = pending_[dst];
      pending.queue.push_back(std::move(data.app));
      if (pending.timeout == sim::kInvalidEventId) start_discovery(dst);
      return;
    }
    const std::size_t bytes = data_bytes(data);
    net_->unicast(self_, route->next_hop,
                  net_->pools().make_from(std::move(data)), bytes);
    return;
  }
  auto& pending = pending_[dst];
  if (pending.queue.size() >= params_.send_queue_limit) {
    pending.queue.pop_front();  // drop-oldest
    ++stats_.data_dropped;
  }
  pending.queue.push_back(std::move(app));
  if (pending.timeout == sim::kInvalidEventId) start_discovery(dst);
}

void AodvAgent::start_discovery(NodeId dst) {
  auto& pending = pending_[dst];
  pending.retries_left = params_.rreq_retries;
  pending.last_ttl = params_.ttl_start;
  send_rreq(dst, pending.last_ttl);
}

void AodvAgent::send_rreq(NodeId dst, std::uint8_t ttl) {
  ++own_seq_;  // RFC 3561 §6.1: increment before originating a RREQ
  Rreq rreq;
  rreq.origin = self_;
  rreq.origin_seq = own_seq_;
  rreq.bcast_id = next_bcast_id_++;
  rreq.dst = dst;
  if (const Route* known = table_.find(dst); known != nullptr && known->seq_valid) {
    rreq.dst_seq = known->dst_seq;
    rreq.dst_seq_valid = true;
  }
  rreq.hop_count = 0;
  rreq.ttl = ttl;
  rreq_seen_.insert(self_, rreq.bcast_id, sim_->now());
  ++stats_.rreq_originated;
  net_->broadcast(self_, net_->pools().make_from(std::move(rreq)), kRreqBytes);

  auto& pending = pending_[dst];
  pending.timeout = sim_->after(params_.ring_traversal_time(ttl),
                                [this, dst] { discovery_timeout(dst); });
  LOG_TRACE(kTag, sim_->now()) << "node " << self_ << " RREQ for " << dst
                               << " ttl " << int{ttl};
}

void AodvAgent::discovery_timeout(NodeId dst) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  PendingDiscovery& pending = it->second;
  pending.timeout = sim::kInvalidEventId;
  if (table_.find_active(dst, sim_->now()) != nullptr) {
    // Route appeared through other traffic.
    flush_queue(dst);
    return;
  }
  // Expanding ring: grow the TTL; past the threshold, go network-wide.
  std::uint8_t next_ttl;
  if (pending.last_ttl >= params_.ttl_threshold) {
    next_ttl = params_.net_diameter;
  } else {
    next_ttl = static_cast<std::uint8_t>(
        std::min<int>(pending.last_ttl + params_.ttl_increment,
                      params_.ttl_threshold));
  }
  if (pending.last_ttl >= params_.net_diameter) {
    // Already tried network-wide: consume a retry.
    if (pending.retries_left == 0) {
      ++stats_.discoveries_failed;
      stats_.data_dropped += pending.queue.size();
      pending_.erase(it);
      LOG_DEBUG(kTag, sim_->now())
          << "node " << self_ << " discovery for " << dst << " failed";
      return;
    }
    --pending.retries_left;
    next_ttl = params_.net_diameter;
  }
  pending.last_ttl = next_ttl;
  send_rreq(dst, next_ttl);
}

void AodvAgent::flush_queue(NodeId dst) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (it->second.timeout != sim::kInvalidEventId) sim_->cancel(it->second.timeout);
  std::deque<AppPayloadPtr> queue = std::move(it->second.queue);
  pending_.erase(it);
  for (AppPayloadPtr& app : queue) {
    // Re-enter send(); the route is present so this transmits directly
    // (unless it broke again, which re-queues — correct either way).
    --stats_.data_originated;  // don't double-count
    send(dst, std::move(app));
  }
}

void AodvAgent::learn_route(NodeId dst, NodeId via, std::uint8_t hops) {
  if (dst == self_) return;
  // Treat like a hello-derived route: no sequence information.
  const Route* existing = table_.find(dst);
  const bool better = existing == nullptr || !existing->valid ||
                      existing->expires <= sim_->now() ||
                      hops <= existing->hop_count;
  if (better) {
    Route& r = table_.update(dst, via, hops, existing ? existing->dst_seq : 0,
                             existing ? existing->seq_valid : false,
                             sim_->now() + params_.active_route_timeout);
    (void)r;
    if (pending_.count(dst) != 0) flush_queue(dst);
  }
}

bool AodvAgent::has_route(NodeId dst) {
  return table_.find_active(dst, sim_->now()) != nullptr;
}

int AodvAgent::route_hops(NodeId dst) {
  const Route* r = table_.find_active(dst, sim_->now());
  return r == nullptr ? -1 : static_cast<int>(r->hop_count);
}

void AodvAgent::on_frame(const net::Frame& frame) {
  // Tag dispatch (net::FramePayload::kind): other protocols' frames and
  // untagged payloads fall to default, exactly like a dynamic_cast miss.
  switch (static_cast<FrameKind>(frame.payload->kind)) {
    case FrameKind::kRreq:
      handle_rreq(frame.sender,
                  *static_cast<const Rreq*>(frame.payload.get()));
      break;
    case FrameKind::kRrep:
      if (frame.link_dst == self_) {
        handle_rrep(frame.sender,
                    *static_cast<const Rrep*>(frame.payload.get()));
      }
      break;
    case FrameKind::kRerr:
      if (frame.link_dst == self_ || frame.link_dst == net::kBroadcast) {
        handle_rerr(frame.sender,
                    *static_cast<const Rerr*>(frame.payload.get()));
      }
      break;
    case FrameKind::kData: {
      if (frame.link_dst != self_) break;
      DataMsg copy = *static_cast<const DataMsg*>(frame.payload.get());
      copy.hops_traveled = static_cast<std::uint8_t>(copy.hops_traveled + 1);
      // Receiving data refreshes the neighbor route and the route to src.
      table_.update(frame.sender, frame.sender, 1, 0, false,
                    sim_->now() + params_.active_route_timeout);
      table_.refresh(copy.src, sim_->now() + params_.active_route_timeout);
      route_data(std::move(copy));
      break;
    }
    default:
      break;
  }
}

void AodvAgent::handle_rreq(NodeId from, const Rreq& rreq) {
  if (rreq.origin == self_) return;  // our own flood echoed back
  if (!rreq_seen_.insert(rreq.origin, rreq.bcast_id, sim_->now())) return;

  // Route to the previous hop (1 hop, no sequence info).
  table_.update(from, from, 1, 0, false,
                sim_->now() + params_.active_route_timeout);

  // Reverse route to the originator (RFC 3561 §6.5).
  const auto origin_hops = static_cast<std::uint8_t>(rreq.hop_count + 1);
  if (table_.is_better(rreq.origin, rreq.origin_seq, true, origin_hops,
                       sim_->now())) {
    table_.update(rreq.origin, from, origin_hops, rreq.origin_seq, true,
                  sim_->now() + params_.net_traversal_time() * 2.0);
  }
  if (pending_.count(rreq.origin) != 0 && has_route(rreq.origin)) {
    flush_queue(rreq.origin);
  }

  if (rreq.dst == self_) {
    // RFC 3561 §6.6.1: destination bumps its sequence number if the RREQ's
    // view is newer.
    if (rreq.dst_seq_valid &&
        static_cast<std::int32_t>(rreq.dst_seq - own_seq_) > 0) {
      own_seq_ = rreq.dst_seq;
    }
    ++own_seq_;
    Rrep rrep;
    rrep.route_dst = self_;
    rrep.dst_seq = own_seq_;
    rrep.origin = rreq.origin;
    rrep.hop_count = 0;
    rrep.lifetime = params_.my_route_timeout;
    ++stats_.rrep_sent;
    net_->unicast(self_, from, net_->pools().make_from(std::move(rrep)),
                  kRrepBytes);
    return;
  }

  // Intermediate node with a fresh-enough route replies on behalf of dst.
  if (Route* route = table_.find_active(rreq.dst, sim_->now());
      route != nullptr && route->seq_valid &&
      (!rreq.dst_seq_valid ||
       static_cast<std::int32_t>(route->dst_seq - rreq.dst_seq) >= 0)) {
    Rrep rrep;
    rrep.route_dst = rreq.dst;
    rrep.dst_seq = route->dst_seq;
    rrep.origin = rreq.origin;
    rrep.hop_count = route->hop_count;
    rrep.lifetime = route->expires - sim_->now();
    // Gratuitous precursor bookkeeping (RFC 3561 §6.6.2).
    table_.add_precursor(rreq.dst, from);
    ++stats_.rrep_sent;
    net_->unicast(self_, from, net_->pools().make_from(std::move(rrep)),
                  kRrepBytes);
    return;
  }

  // Rebroadcast with decremented TTL.
  if (rreq.ttl > 1) {
    Rreq fwd = rreq;
    fwd.ttl = static_cast<std::uint8_t>(rreq.ttl - 1);
    fwd.hop_count = static_cast<std::uint8_t>(rreq.hop_count + 1);
    ++stats_.rreq_forwarded;
    net_->broadcast(self_, net_->pools().make_from(std::move(fwd)), kRreqBytes);
  }
}

void AodvAgent::handle_rrep(NodeId from, const Rrep& rrep) {
  // Route to the previous hop.
  table_.update(from, from, 1, 0, false,
                sim_->now() + params_.active_route_timeout);

  const auto hops = static_cast<std::uint8_t>(rrep.hop_count + 1);
  if (table_.is_better(rrep.route_dst, rrep.dst_seq, true, hops, sim_->now())) {
    table_.update(rrep.route_dst, from, hops, rrep.dst_seq, true,
                  sim_->now() + rrep.lifetime);
  }

  if (rrep.origin == self_) {
    flush_queue(rrep.route_dst);
    return;
  }

  // Forward toward the originator along the reverse route.
  Route* reverse = table_.find_active(rrep.origin, sim_->now());
  if (reverse == nullptr) return;  // reverse path expired — RREP dies here
  if (!net_->link_usable(self_, reverse->next_hop)) {
    handle_link_break(reverse->next_hop);
    return;
  }
  // Precursor lists: the node we forward to will route through us.
  table_.add_precursor(rrep.route_dst, reverse->next_hop);
  if (Route* forward = table_.find_active(rrep.route_dst, sim_->now())) {
    table_.add_precursor(forward->next_hop, reverse->next_hop);
  }
  Rrep fwd = rrep;
  fwd.hop_count = hops;
  ++stats_.rrep_forwarded;
  net_->unicast(self_, reverse->next_hop, net_->pools().make_from(std::move(fwd)),
                kRrepBytes);
}

void AodvAgent::reset() {
  for (auto& [dst, pending] : pending_) {
    if (pending.timeout != sim::kInvalidEventId) sim_->cancel(pending.timeout);
    stats_.data_dropped += pending.queue.size();
  }
  pending_.clear();
  table_.clear();
  rreq_seen_.clear();
  // own_seq_ / next_bcast_id_ deliberately survive (see header).
}

void AodvAgent::handle_rerr(NodeId from, const Rerr& rerr) {
  std::vector<NodeId> lost;
  for (const auto& [dst, seq] : rerr.unreachable) {
    const Route* route = table_.find(dst);
    if (route != nullptr && route->valid && route->next_hop == from) {
      table_.invalidate(dst);
      lost.push_back(dst);
    }
  }
  if (!lost.empty()) send_rerr_to_precursors(lost);
}

void AodvAgent::handle_link_break(NodeId next_hop) {
  // Buffer-reusing sweep: no reentrancy hazard because send_rerr only
  // schedules frames, it never re-enters handle_link_break synchronously.
  table_.destinations_via(next_hop, sim_->now(), &via_scratch_);
  for (const NodeId dst : via_scratch_) table_.invalidate(dst);
  table_.invalidate(next_hop);
  if (!via_scratch_.empty()) send_rerr_to_precursors(via_scratch_);
}

void AodvAgent::send_rerr_to_precursors(const std::vector<NodeId>& lost_dsts) {
  // Collect precursors across all lost destinations; one RERR per precursor.
  std::vector<NodeId> precursors;
  Rerr rerr;
  for (const NodeId dst : lost_dsts) {
    const Route* route = table_.find(dst);
    if (route == nullptr) continue;
    rerr.unreachable.emplace_back(dst, route->dst_seq);
    for (const NodeId p : route->precursors) {
      if (std::find(precursors.begin(), precursors.end(), p) ==
          precursors.end()) {
        precursors.push_back(p);
      }
    }
  }
  if (rerr.unreachable.empty() || precursors.empty()) return;
  const std::size_t bytes = rerr_bytes(rerr);
  const net::Ref<Rerr> payload = net_->pools().make_from(std::move(rerr));
  for (const NodeId p : precursors) {
    if (net_->link_usable(self_, p)) {
      ++stats_.rerr_sent;
      net_->unicast(self_, p, payload, bytes);
    }
  }
}

void AodvAgent::route_data(DataMsg data) {
  if (data.dst == self_) {
    ++stats_.data_delivered;
    if (on_deliver_) {
      on_deliver_(data.src, std::move(data.app), int{data.hops_traveled});
    }
    return;
  }
  Route* route = table_.find_active(data.dst, sim_->now());
  if (route == nullptr) {
    ++stats_.data_dropped;
    // RFC 3561 §6.11 case (ii): data for a destination we cannot reach.
    Rerr rerr;
    const Route* stale = table_.find(data.dst);
    rerr.unreachable.emplace_back(data.dst, stale != nullptr ? stale->dst_seq : 0);
    const std::size_t bytes = rerr_bytes(rerr);
    ++stats_.rerr_sent;
    net_->broadcast(self_, net_->pools().make_from(std::move(rerr)), bytes);
    return;
  }
  if (!net_->link_usable(self_, route->next_hop)) {
    handle_link_break(route->next_hop);
    ++stats_.data_dropped;
    return;
  }
  table_.refresh(data.dst, sim_->now() + params_.active_route_timeout);
  table_.refresh(route->next_hop, sim_->now() + params_.active_route_timeout);
  table_.refresh(data.src, sim_->now() + params_.active_route_timeout);
  ++stats_.data_forwarded;
  const std::size_t bytes = data_bytes(data);
  net_->unicast(self_, route->next_hop,
                net_->pools().make_from(std::move(data)), bytes);
}

}  // namespace p2p::routing
