// Routing service interface — what the application layer (and the flood
// service's cross-layer hint) sees, independent of the routing protocol
// underneath. AODV (on-demand) and DSDV (proactive) both implement it,
// which is exactly the experiment of Oliveira et al. [13 in the paper]:
// evaluating ad-hoc routing protocols under a peer-to-peer application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "net/types.hpp"

namespace p2p::routing {

class RoutingService {
 public:
  /// Delivered application data: (source, payload, hop distance traveled).
  using DeliverFn =
      std::function<void(net::NodeId src, net::AppPayloadPtr app, int hops)>;

  virtual ~RoutingService() = default;

  virtual void set_deliver_handler(DeliverFn fn) = 0;

  /// Unicast `app` toward `dst`. Best effort: on-demand protocols may
  /// buffer during discovery; proactive ones drop when no route exists.
  virtual void send(net::NodeId dst, net::AppPayloadPtr app) = 0;

  /// Cross-layer hint from the controlled broadcast: a flooded message
  /// from `dst` arrived via `via` after `hops` hops. Protocols are free
  /// to ignore it (DSDV does — its tables are proactively maintained).
  virtual void learn_route(net::NodeId dst, net::NodeId via,
                           std::uint8_t hops) = 0;

  /// Drop all volatile protocol state (routes, pending discoveries, caches)
  /// without sending anything — the node crashed. Monotonic identifiers
  /// (sequence numbers, broadcast ids) survive so the reborn node never
  /// reuses a stale id. Default: nothing to drop.
  virtual void reset() {}

  /// True if a usable route to dst currently exists.
  virtual bool has_route(net::NodeId dst) = 0;
  /// Hop count of the current route, or -1.
  virtual int route_hops(net::NodeId dst) = 0;

  /// Protocol-independent telemetry (the routing-overhead comparison of
  /// bench/ablation_routing).
  struct Telemetry {
    std::uint64_t control_messages_sent = 0;  // RREQ/RREP/RERR or updates
    std::uint64_t data_delivered = 0;
    std::uint64_t data_dropped = 0;
  };
  virtual Telemetry telemetry() const = 0;

  /// Approximate bytes of volatile protocol state (routing tables, route
  /// caches, duplicate caches) held by this agent — the per-node memory
  /// the mega-scale telemetry sums fleet-wide. Default: unaccounted.
  virtual std::size_t memory_bytes() const { return 0; }
};

}  // namespace p2p::routing
