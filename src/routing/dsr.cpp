#include "routing/dsr.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace p2p::routing {

DsrAgent::DsrAgent(sim::Simulator& simulator, net::Network& network,
                   NodeId self, const DsrParams& params)
    : sim_(&simulator),
      net_(&network),
      self_(self),
      params_(params),
      rreq_seen_(params.request_id_cache_ttl) {
  net_->attach_listener(self_, this);
}

DsrAgent::~DsrAgent() {
  for (auto& [dst, pending] : pending_) {
    if (pending.timeout != sim::kInvalidEventId) sim_->cancel(pending.timeout);
  }
}

// ------------------------------------------------------------------ cache

const DsrAgent::CachedRoute* DsrAgent::fresh_route(NodeId dst) {
  const auto it = cache_.find(dst);
  if (it == cache_.end()) return nullptr;
  if (it->second.learned + params_.route_lifetime <= sim_->now()) {
    cache_.erase(it);
    return nullptr;
  }
  return &it->second;
}

void DsrAgent::cache_route(std::vector<NodeId> full_path) {
  P2P_ASSERT(full_path.size() >= 2);
  P2P_ASSERT(full_path.front() == self_);
  const NodeId dst = full_path.back();
  auto& entry = cache_[dst];
  const bool better = entry.path.empty() ||
                      full_path.size() <= entry.path.size() ||
                      entry.learned + params_.route_lifetime <= sim_->now();
  if (better) {
    entry.path = std::move(full_path);
    entry.learned = sim_->now();
  }
  // Prefix routes: every prefix of a cached path is itself a path.
  // (Deliberately not expanded eagerly; fresh_route() misses fall back to
  // discovery, keeping the cache small.)
}

void DsrAgent::purge_link(NodeId from, NodeId to) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    const auto& path = it->second.path;
    bool uses = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == from && path[i + 1] == to) {
        uses = true;
        break;
      }
    }
    it = uses ? cache_.erase(it) : std::next(it);
  }
}

// -------------------------------------------------------------- discovery

void DsrAgent::send(NodeId dst, net::AppPayloadPtr app) {
  P2P_ASSERT(dst != self_);
  if (const CachedRoute* route = fresh_route(dst)) {
    const NodeId next = route->path[1];
    if (net_->in_range(self_, next)) {
      ++stats_.cache_hits;
      DsrData data;
      data.route = route->path;
      data.next_index = 1;
      data.app = std::move(app);
      forward_data(std::move(data));
      return;
    }
    // First hop is already gone: purge and rediscover with the packet
    // queued (link-layer feedback, same as AODV's configuration).
    purge_link(self_, next);
  }
  auto& pending = pending_[dst];
  if (pending.queue.size() >= params_.send_queue_limit) {
    pending.queue.pop_front();
    ++stats_.data_dropped;
  }
  pending.queue.push_back(std::move(app));
  if (pending.timeout == sim::kInvalidEventId) start_discovery(dst);
}

void DsrAgent::learn_route(NodeId dst, NodeId via, std::uint8_t hops) {
  if (hops == 1 && via == dst) {
    cache_route({self_, dst});
    if (pending_.count(dst) != 0) flush_queue(dst);
  }
}

bool DsrAgent::has_route(NodeId dst) { return fresh_route(dst) != nullptr; }

int DsrAgent::route_hops(NodeId dst) {
  const CachedRoute* route = fresh_route(dst);
  return route == nullptr ? -1 : static_cast<int>(route->path.size() - 1);
}

void DsrAgent::start_discovery(NodeId dst) {
  auto& pending = pending_[dst];
  pending.retries_left = params_.discovery_retries;
  send_rreq(dst);
}

void DsrAgent::send_rreq(NodeId dst) {
  DsrRreq rreq;
  rreq.origin = self_;
  rreq.request_id = next_request_id_++;
  rreq.target = dst;
  rreq_seen_.insert(self_, rreq.request_id, sim_->now());
  ++stats_.rreq_originated;
  const std::size_t bytes = dsr_rreq_bytes(rreq);
  net_->broadcast(self_, net_->pools().make_from(std::move(rreq)), bytes);
  auto& pending = pending_[dst];
  pending.timeout = sim_->after(params_.discovery_timeout,
                                [this, dst] { discovery_timeout(dst); });
}

void DsrAgent::discovery_timeout(NodeId dst) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  it->second.timeout = sim::kInvalidEventId;
  if (fresh_route(dst) != nullptr) {
    flush_queue(dst);
    return;
  }
  if (it->second.retries_left == 0) {
    ++stats_.discoveries_failed;
    stats_.data_dropped += it->second.queue.size();
    pending_.erase(it);
    return;
  }
  --it->second.retries_left;
  send_rreq(dst);
}

void DsrAgent::flush_queue(NodeId dst) {
  const auto it = pending_.find(dst);
  if (it == pending_.end()) return;
  if (it->second.timeout != sim::kInvalidEventId) sim_->cancel(it->second.timeout);
  std::deque<net::AppPayloadPtr> queue = std::move(it->second.queue);
  pending_.erase(it);
  for (auto& app : queue) send(dst, std::move(app));
}

// --------------------------------------------------------------- handlers

void DsrAgent::handle_rreq(NodeId from, const DsrRreq& rreq) {
  (void)from;
  if (rreq.origin == self_) return;
  if (!rreq_seen_.insert(rreq.origin, rreq.request_id, sim_->now())) return;
  // Nodes already in the accumulated path don't process again (loop guard;
  // the id cache normally catches this first).
  if (std::find(rreq.path.begin(), rreq.path.end(), self_) != rreq.path.end()) {
    return;
  }

  if (rreq.target == self_) {
    // Build the full route origin .. self and source-route the reply back.
    std::vector<NodeId> route;
    route.reserve(rreq.path.size() + 2);
    route.push_back(rreq.origin);
    route.insert(route.end(), rreq.path.begin(), rreq.path.end());
    route.push_back(self_);
    // The reply walks the route backwards; we also learn the reverse path.
    {
      std::vector<NodeId> reverse(route.rbegin(), route.rend());
      cache_route(std::move(reverse));
    }
    DsrRrep rrep;
    rrep.route = std::move(route);
    rrep.next_index =
        static_cast<std::uint8_t>(rrep.route.size() - 2);  // our predecessor
    const NodeId next = rrep.route[rrep.next_index];
    ++stats_.rrep_sent;
    const std::size_t bytes = dsr_rrep_bytes(rrep);
    net_->unicast(self_, next, net_->pools().make_from(std::move(rrep)), bytes);
    return;
  }

  if (rreq.path.size() >= params_.max_route_len) return;
  DsrRreq fwd = rreq;
  fwd.path.push_back(self_);
  ++stats_.rreq_forwarded;
  const std::size_t bytes = dsr_rreq_bytes(fwd);
  net_->broadcast(self_, net_->pools().make_from(std::move(fwd)), bytes);
}

void DsrAgent::handle_rrep(const DsrRrep& rrep) {
  P2P_DASSERT(rrep.next_index < rrep.route.size());
  if (rrep.route[rrep.next_index] != self_) return;
  if (rrep.next_index == 0) {
    // We are the origin: cache the full forward route and drain the queue.
    std::vector<NodeId> route = rrep.route;
    const NodeId dst = route.back();
    cache_route(std::move(route));
    flush_queue(dst);
    return;
  }
  DsrRrep fwd = rrep;
  fwd.next_index = static_cast<std::uint8_t>(rrep.next_index - 1);
  const NodeId next = fwd.route[fwd.next_index];
  const std::size_t bytes = dsr_rrep_bytes(fwd);
  if (!net_->in_range(self_, next)) return;  // reply dies; origin retries
  net_->unicast(self_, next, net_->pools().make_from(std::move(fwd)), bytes);
}

void DsrAgent::handle_rerr(const DsrRerr& rerr) {
  purge_link(rerr.unreachable_from, rerr.unreachable_to);
  P2P_DASSERT(rerr.next_index < rerr.back_route.size());
  if (rerr.back_route[rerr.next_index] != self_) return;
  if (rerr.next_index == 0) return;  // reached the data source
  DsrRerr fwd = rerr;
  fwd.next_index = static_cast<std::uint8_t>(rerr.next_index - 1);
  const NodeId next = fwd.back_route[fwd.next_index];
  if (!net_->in_range(self_, next)) return;
  ++stats_.rerr_sent;
  const std::size_t bytes = dsr_rerr_bytes(fwd);
  net_->unicast(self_, next, net_->pools().make_from(std::move(fwd)), bytes);
}

bool DsrAgent::forward_data(DsrData data) {
  P2P_DASSERT(data.next_index < data.route.size());
  const NodeId next = data.route[data.next_index];
  P2P_DASSERT(net_->alive(self_) || true);
  if (!net_->in_range(self_, next)) {
    report_break(data, next);
    return false;
  }
  const std::size_t bytes = dsr_data_bytes(data);
  net_->unicast(self_, next, net_->pools().make_from(std::move(data)), bytes);
  return true;
}

void DsrAgent::report_break(const DsrData& data, NodeId broken_to) {
  purge_link(self_, broken_to);
  const NodeId src = data.route.front();
  if (src == self_) return;  // we are the source; our cache is purged
  // Back route: the prefix of the data route up to us, walked backwards.
  DsrRerr rerr;
  rerr.unreachable_from = self_;
  rerr.unreachable_to = broken_to;
  const auto self_pos = static_cast<std::size_t>(data.next_index) - 1;
  rerr.back_route.assign(data.route.begin(),
                         data.route.begin() +
                             static_cast<std::ptrdiff_t>(self_pos) + 1);
  if (rerr.back_route.size() < 2) return;
  rerr.next_index = static_cast<std::uint8_t>(rerr.back_route.size() - 2);
  const NodeId next = rerr.back_route[rerr.next_index];
  if (!net_->in_range(self_, next)) return;
  ++stats_.rerr_sent;
  const std::size_t bytes = dsr_rerr_bytes(rerr);
  net_->unicast(self_, next, net_->pools().make_from(std::move(rerr)), bytes);
}

void DsrAgent::handle_data(DsrData data) {
  if (data.route[data.next_index] != self_) return;
  if (data.next_index + 1U == data.route.size()) {
    ++stats_.data_delivered;
    if (on_deliver_) {
      on_deliver_(data.route.front(), std::move(data.app),
                  static_cast<int>(data.route.size() - 1));
    }
    return;
  }
  ++stats_.data_forwarded;
  data.next_index = static_cast<std::uint8_t>(data.next_index + 1);
  if (!forward_data(std::move(data))) ++stats_.data_dropped;
}

void DsrAgent::on_frame(const net::Frame& frame) {
  switch (static_cast<FrameKind>(frame.payload->kind)) {
    case FrameKind::kDsrRreq:
      handle_rreq(frame.sender,
                  *static_cast<const DsrRreq*>(frame.payload.get()));
      break;
    case FrameKind::kDsrRrep:
      if (frame.link_dst == self_) {
        handle_rrep(*static_cast<const DsrRrep*>(frame.payload.get()));
      }
      break;
    case FrameKind::kDsrRerr:
      if (frame.link_dst == self_) {
        handle_rerr(*static_cast<const DsrRerr*>(frame.payload.get()));
      }
      break;
    case FrameKind::kDsrData:
      if (frame.link_dst == self_) {
        handle_data(*static_cast<const DsrData*>(frame.payload.get()));
      }
      break;
    default:
      break;
  }
}

std::size_t DsrAgent::memory_bytes() const {
  constexpr std::size_t kMapNodeOverhead = 2 * sizeof(void*);
  std::size_t bytes = rreq_seen_.memory_bytes();
  for (const auto& [dst, cached] : cache_) {
    bytes += sizeof(dst) + sizeof(cached) + kMapNodeOverhead +
             cached.path.capacity() * sizeof(NodeId);
  }
  bytes += pending_.size() *
           (sizeof(NodeId) + sizeof(Pending) + kMapNodeOverhead);
  return bytes;
}

}  // namespace p2p::routing
