#include "content/catalog.hpp"

#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace p2p::content {

Placement::Placement(const ZipfLaw& law, std::uint32_t num_members,
                     sim::RngStream rng, bool exact_quota)
    : num_files_(law.num_files()), holdings_(num_members, 0) {
  P2P_ASSERT_MSG(num_files_ <= 64, "Placement supports up to 64 files");
  if (num_members == 0) return;
  if (exact_quota) {
    std::vector<std::uint32_t> members(num_members);
    std::iota(members.begin(), members.end(), 0);
    for (FileId k = 1; k <= num_files_; ++k) {
      auto quota = static_cast<std::uint32_t>(
          std::lround(law.frequency(k) * static_cast<double>(num_members)));
      if (quota < 1) quota = 1;  // every file exists somewhere
      if (quota > num_members) quota = num_members;
      rng.shuffle(members);
      for (std::uint32_t i = 0; i < quota; ++i) {
        holdings_[members[i]] |= (1ULL << (k - 1));
      }
    }
  } else {
    for (FileId k = 1; k <= num_files_; ++k) {
      const double p = law.frequency(k);
      for (std::uint32_t m = 0; m < num_members; ++m) {
        if (rng.chance(p)) holdings_[m] |= (1ULL << (k - 1));
      }
    }
  }
}

bool Placement::holds(std::uint32_t member, FileId file) const {
  P2P_ASSERT(member < holdings_.size());
  P2P_ASSERT(file >= 1 && file <= num_files_);
  return (holdings_[member] >> (file - 1)) & 1ULL;
}

std::vector<FileId> Placement::files_of(std::uint32_t member) const {
  P2P_ASSERT(member < holdings_.size());
  std::vector<FileId> out;
  for (FileId k = 1; k <= num_files_; ++k) {
    if ((holdings_[member] >> (k - 1)) & 1ULL) out.push_back(k);
  }
  return out;
}

std::uint32_t Placement::copies_of(FileId file) const {
  P2P_ASSERT(file >= 1 && file <= num_files_);
  std::uint32_t count = 0;
  for (const std::uint64_t mask : holdings_) {
    count += static_cast<std::uint32_t>((mask >> (file - 1)) & 1ULL);
  }
  return count;
}

}  // namespace p2p::content
