#include "content/zipf.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace p2p::content {

ZipfLaw::ZipfLaw(std::uint32_t num_files, double max_frequency)
    : num_files_(num_files), max_frequency_(max_frequency) {
  P2P_ASSERT(num_files >= 1);
  P2P_ASSERT(max_frequency > 0.0 && max_frequency <= 1.0);
  popularity_cdf_.resize(num_files);
  double total = 0.0;
  for (std::uint32_t k = 1; k <= num_files; ++k) {
    total += 1.0 / static_cast<double>(k);
    popularity_cdf_[k - 1] = total;
  }
  for (double& v : popularity_cdf_) v /= total;
}

double ZipfLaw::frequency(FileId rank) const {
  P2P_ASSERT(rank >= 1 && rank <= num_files_);
  return max_frequency_ / static_cast<double>(rank);
}

FileId ZipfLaw::sample_by_popularity(sim::RngStream& rng) const {
  const double u = rng.uniform01();
  const auto it =
      std::lower_bound(popularity_cdf_.begin(), popularity_cdf_.end(), u);
  const auto idx = static_cast<std::uint32_t>(it - popularity_cdf_.begin());
  return std::min(idx, num_files_ - 1) + 1;
}

}  // namespace p2p::content
