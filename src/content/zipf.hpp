// Zipf-law content popularity (paper §7.2).
//
// "Different files are distributed in the network following a Zipf law
// with maximum frequency MAXFREQ of 40%. This means that the most popular
// file will be present in 40% of all nodes, the second most popular one in
// 40%/2 = 20%, the third in 40%/3, and so on."
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace p2p::content {

/// 1-based popularity rank; rank 1 is the most popular file.
using FileId = std::uint32_t;

class ZipfLaw {
 public:
  /// `max_frequency` in (0, 1]; `num_files` >= 1.
  ZipfLaw(std::uint32_t num_files, double max_frequency);

  std::uint32_t num_files() const noexcept { return num_files_; }

  /// Presence probability of the file with the given rank (1-based).
  double frequency(FileId rank) const;

  /// Draw a file according to popularity (P(rank) ∝ 1/rank) — used by
  /// popularity-weighted query workloads.
  FileId sample_by_popularity(sim::RngStream& rng) const;

 private:
  std::uint32_t num_files_;
  double max_frequency_;
  std::vector<double> popularity_cdf_;  // normalized 1/k weights
};

}  // namespace p2p::content
