// File placement: which node holds which files.
#pragma once

#include <cstdint>
#include <vector>

#include "content/zipf.hpp"
#include "sim/rng.hpp"

namespace p2p::content {

/// Immutable per-run placement of the catalog onto the P2P member nodes.
class Placement {
 public:
  /// Assign files to `num_members` nodes: member m holds file of rank k
  /// with independent probability `law.frequency(k)`. To match the paper's
  /// wording exactly ("the most popular file will be present in 40% of all
  /// nodes"), `exact_quota` instead places the file on a uniform random
  /// subset of round(freq * members) nodes.
  Placement(const ZipfLaw& law, std::uint32_t num_members,
            sim::RngStream rng, bool exact_quota = true);

  std::uint32_t num_members() const noexcept {
    return static_cast<std::uint32_t>(holdings_.size());
  }
  std::uint32_t num_files() const noexcept { return num_files_; }

  bool holds(std::uint32_t member, FileId file) const;

  /// Files of one member, as a bitset-backed list of ranks.
  std::vector<FileId> files_of(std::uint32_t member) const;

  /// Number of members holding `file`.
  std::uint32_t copies_of(FileId file) const;

 private:
  std::uint32_t num_files_;
  // holdings_[member] is a bitmask over file ranks (catalog is small: the
  // paper uses 20 files; we support up to 64).
  std::vector<std::uint64_t> holdings_;
};

}  // namespace p2p::content
