#include "scenario/experiment.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace p2p::scenario {

ExperimentResult run_experiment(
    const Parameters& base, std::size_t num_seeds, std::size_t threads,
    const std::function<void(std::size_t, std::size_t)>& on_run_done) {
  P2P_ASSERT(num_seeds >= 1);
  ExperimentResult result;
  result.ranks.resize(base.num_files);

  std::mutex agg_mutex;
  std::atomic<std::size_t> next_seed_index{0};
  std::size_t done = 0;

  const auto aggregate = [&](const RunResult& run) {
    std::scoped_lock lock(agg_mutex);
    ++result.runs;
    result.connect_curve.add_run(run.connect_received_per_member());
    result.ping_curve.add_run(run.ping_received_per_member());
    result.query_curve.add_run(run.query_received_per_member());
    for (std::size_t k = 0; k < run.per_file.size() && k < result.ranks.size();
         ++k) {
      const FileRankStats& f = run.per_file[k];
      RankAggregate& agg = result.ranks[k];
      if (f.requests > 0) {
        agg.answers_per_request.add(f.answers_per_request());
        agg.answered_fraction.add(f.answered_fraction());
      }
      if (f.physical_samples > 0) agg.min_distance.add(f.mean_min_physical());
      if (f.p2p_samples > 0) agg.min_p2p_hops.add(f.mean_min_p2p());
    }
    result.frames_transmitted.add(static_cast<double>(run.frames_transmitted));
    result.energy_consumed_j.add(run.energy_consumed_j);
    result.routing_control.add(static_cast<double>(run.routing_control_messages));
    result.overlay_clustering.add(run.overlay_final.clustering);
    result.overlay_path_length.add(run.overlay_final.path_length);
    result.overlay_components.add(static_cast<double>(run.overlay_final.components));
    result.masters.add(static_cast<double>(run.masters));
    result.slaves.add(static_cast<double>(run.slaves));
    result.events_processed.add(static_cast<double>(run.events_processed));
    result.connections_established.add(
        static_cast<double>(run.connections_established));
    result.connections_closed.add(static_cast<double>(run.connections_closed));
    ++done;
    if (on_run_done) on_run_done(done, num_seeds);
  };

  const auto worker = [&] {
    for (;;) {
      const std::size_t idx = next_seed_index.fetch_add(1);
      if (idx >= num_seeds) return;
      Parameters params = base;
      params.seed = base.seed + idx;
      SimulationRun run(params);
      const RunResult r = run.run();
      aggregate(r);
    }
  };

  std::size_t pool = threads;
  if (pool == 0) {
    pool = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool = std::min(pool, num_seeds);

  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) workers.emplace_back(worker);
    for (auto& t : workers) t.join();
  }
  return result;
}

std::size_t bench_seed_count() {
  if (const char* env = std::getenv("P2P_BENCH_SEEDS")) {
    if (const auto v = util::parse_int(env); v && *v >= 1) {
      return static_cast<std::size_t>(*v);
    }
  }
  return kPaperSeeds;
}

}  // namespace p2p::scenario
