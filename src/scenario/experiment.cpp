#include "scenario/experiment.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace p2p::scenario {

namespace {

/// Fold one run into the experiment aggregate. Called single-threaded,
/// in seed order — the floating-point accumulation order is therefore a
/// pure function of the parameters, never of thread scheduling.
void aggregate(ExperimentResult* result, const RunResult& run) {
  ++result->runs;
  result->connect_curve.add_run(run.connect_received_per_member());
  result->ping_curve.add_run(run.ping_received_per_member());
  result->query_curve.add_run(run.query_received_per_member());
  for (std::size_t k = 0;
       k < run.per_file.size() && k < result->ranks.size(); ++k) {
    const FileRankStats& f = run.per_file[k];
    RankAggregate& agg = result->ranks[k];
    if (f.requests > 0) {
      agg.answers_per_request.add(f.answers_per_request());
      agg.answered_fraction.add(f.answered_fraction());
    }
    if (f.physical_samples > 0) agg.min_distance.add(f.mean_min_physical());
    if (f.p2p_samples > 0) agg.min_p2p_hops.add(f.mean_min_p2p());
  }
  result->frames_transmitted.add(static_cast<double>(run.frames_transmitted));
  result->energy_consumed_j.add(run.energy_consumed_j);
  result->routing_control.add(static_cast<double>(run.routing_control_messages));
  result->overlay_clustering.add(run.overlay_final.clustering);
  result->overlay_path_length.add(run.overlay_final.path_length);
  result->overlay_components.add(static_cast<double>(run.overlay_final.components));
  result->masters.add(static_cast<double>(run.masters));
  result->slaves.add(static_cast<double>(run.slaves));
  result->events_processed.add(static_cast<double>(run.events_processed));
  result->connections_established.add(
      static_cast<double>(run.connections_established));
  result->connections_closed.add(static_cast<double>(run.connections_closed));
  result->churn_deaths.add(static_cast<double>(run.churn_deaths));
  result->query_success_rate.add(run.query_success_rate());
  result->overlay_disrupted_s.add(run.overlay_disrupted_s);
  if (run.overlay_repairs > 0) {
    result->mean_repair_time_s.add(run.mean_repair_time_s);
  }
  result->orphaned_servents.add(static_cast<double>(run.orphaned_servents));
  result->invariant_violations.add(
      static_cast<double>(run.invariant_violations));
}

/// The per-seed telemetry record for one finished run (shared by the
/// batch worker and run_single_seed so the two paths can never drift).
SeedTelemetry make_seed_telemetry(std::size_t seed_index, std::uint64_t seed,
                                  double wall, const RunResult& run) {
  SeedTelemetry t;
  t.seed_index = seed_index;
  t.seed = seed;
  t.wall_seconds = wall;
  t.events_processed = run.events_processed;
  t.events_per_sec =
      wall > 0.0 ? static_cast<double>(run.events_processed) / wall : 0.0;
  t.frames_tx = run.frames_transmitted;
  t.frames_rx = run.frames_delivered;
  t.frames_lost = run.frames_lost;
  t.peak_queue_depth = run.peak_queue_depth;
  t.queue_pushes = run.queue_pushes;
  t.queue_pops = run.queue_pops;
  t.queue_tombstones_purged = run.queue_tombstones_purged;
  t.queue_compactions = run.queue_compactions;
  t.queue_ladder_spills = run.queue_ladder_spills;
  t.queue_ladder_rebuckets = run.queue_ladder_rebuckets;
  t.queue_peak_raw = run.queue_peak_raw;
  t.payload_acquires = run.payload_acquires;
  t.payload_slab_allocs = run.payload_slab_allocs;
  t.payload_peak_live = run.payload_peak_live;
  t.net_memory_bytes = run.net_memory_bytes;
  t.routing_memory_bytes = run.routing_memory_bytes;
  t.servent_memory_bytes = run.servent_memory_bytes;
  t.churn_deaths = run.churn_deaths;
  t.invariant_violations = run.invariant_violations;
  t.overlay_disrupted_s = run.overlay_disrupted_s;
  return t;
}

}  // namespace

ExperimentResult run_experiment_with(
    const Parameters& base, std::size_t num_seeds, std::size_t threads,
    const std::function<RunResult(const Parameters&)>& run_fn,
    const SeedDoneFn& on_run_done, RunTelemetry* telemetry) {
  P2P_ASSERT(num_seeds >= 1);
  P2P_ASSERT(run_fn != nullptr);
  using Clock = std::chrono::steady_clock;
  const auto experiment_start = Clock::now();

  if (telemetry != nullptr) telemetry->reset(num_seeds);

  // One slot per seed; workers write disjoint slots, so the only shared
  // mutable state is the work counter and the failure latch.
  std::vector<RunResult> slots(num_seeds);
  std::atomic<std::size_t> next_seed_index{0};
  std::atomic<bool> failed{false};
  std::mutex failure_mutex;
  std::exception_ptr first_failure;
  std::size_t failed_seed_index = 0;

  const auto worker = [&] {
    for (;;) {
      const std::size_t idx = next_seed_index.fetch_add(1);
      if (idx >= num_seeds || failed.load(std::memory_order_relaxed)) return;
      Parameters params = base;
      params.seed = base.seed + idx;
      const auto start = Clock::now();
      try {
        slots[idx] = run_fn(params);
      } catch (...) {
        std::scoped_lock lock(failure_mutex);
        if (!first_failure) {
          first_failure = std::current_exception();
          failed_seed_index = idx;
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (telemetry != nullptr) {
        const double wall =
            std::chrono::duration<double>(Clock::now() - start).count();
        telemetry->set(
            idx, make_seed_telemetry(idx, params.seed, wall, slots[idx]));
      }
      if (on_run_done) on_run_done(idx, num_seeds);  // no lock held
    }
  };

  std::size_t pool = threads;
  if (pool == 0) {
    pool = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool = std::min(pool, num_seeds);

  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) workers.emplace_back(worker);
    for (auto& t : workers) t.join();
  }

  if (first_failure) {
    try {
      std::rethrow_exception(first_failure);
    } catch (const std::exception& e) {
      throw ExperimentError(failed_seed_index, base.seed + failed_seed_index,
                            e.what());
    } catch (...) {
      throw ExperimentError(failed_seed_index, base.seed + failed_seed_index,
                            "unknown exception");
    }
  }

  // Seed-order aggregation: identical accumulation order for any pool size.
  ExperimentResult result;
  result.ranks.resize(base.num_files);
  for (std::size_t idx = 0; idx < num_seeds; ++idx) {
    aggregate(&result, slots[idx]);
  }

  if (telemetry != nullptr) {
    telemetry->set_threads_used(pool);
    telemetry->set_total_wall_seconds(
        std::chrono::duration<double>(Clock::now() - experiment_start).count());
  }
  return result;
}

ExperimentResult run_experiment(const Parameters& base, std::size_t num_seeds,
                                std::size_t threads,
                                const SeedDoneFn& on_run_done,
                                RunTelemetry* telemetry) {
  return run_experiment_with(
      base, num_seeds, threads,
      [](const Parameters& params) { return SimulationRun(params).run(); },
      on_run_done, telemetry);
}

RunResult run_single_seed(const Parameters& params, SeedTelemetry* telemetry) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  RunResult result;
  try {
    result = SimulationRun(params).run();
  } catch (const std::exception& e) {
    throw ExperimentError(0, params.seed, e.what());
  } catch (...) {
    throw ExperimentError(0, params.seed, "unknown exception");
  }
  if (telemetry != nullptr) {
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    *telemetry = make_seed_telemetry(0, params.seed, wall, result);
  }
  return result;
}

std::size_t bench_seed_count() {
  if (const char* env = std::getenv("P2P_BENCH_SEEDS")) {
    if (const auto v = util::parse_int(env); v && *v >= 1) {
      return static_cast<std::size_t>(*v);
    }
  }
  return kPaperSeeds;
}

}  // namespace p2p::scenario
