// One complete simulated world: build, run, collect.
//
// A SimulationRun owns every component of one world (simulator, network,
// routing agents, servents, content placement) — nothing is shared with
// other runs, so the experiment driver can execute runs on parallel
// threads without any synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "content/catalog.hpp"
#include "core/counters.hpp"
#include "core/servent.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "graph/metrics.hpp"
#include "mobility/model.hpp"
#include "net/network.hpp"
#include "routing/flood.hpp"
#include "routing/service.hpp"
#include "scenario/parameters.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace p2p::scenario {

/// Per-file-rank query outcome aggregates for one run.
struct FileRankStats {
  std::uint64_t requests = 0;
  std::uint64_t answered = 0;       // requests with >= 1 answer
  std::uint64_t answers_total = 0;  // sum of answers over requests
  double sum_min_physical = 0.0;    // over answered requests w/ a distance
  std::uint64_t physical_samples = 0;
  double sum_min_p2p = 0.0;
  std::uint64_t p2p_samples = 0;

  double answers_per_request() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(answers_total) /
                               static_cast<double>(requests);
  }
  double mean_min_physical() const noexcept {
    return physical_samples == 0
               ? 0.0
               : sum_min_physical / static_cast<double>(physical_samples);
  }
  double mean_min_p2p() const noexcept {
    return p2p_samples == 0 ? 0.0
                            : sum_min_p2p / static_cast<double>(p2p_samples);
  }
  double answered_fraction() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(answered) /
                               static_cast<double>(requests);
  }
};

struct RunResult {
  std::size_t num_nodes = 0;
  std::size_t num_members = 0;

  /// Per-member message counters, in member order.
  std::vector<core::MessageCounters> counters;
  /// Per-file-rank query stats (index = rank - 1).
  std::vector<FileRankStats> per_file;

  // Network/energy totals.
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  double energy_consumed_j = 0.0;
  std::uint64_t events_processed = 0;
  std::size_t peak_queue_depth = 0;  // event-queue high-water mark (live)

  // Event-queue operation counters, summed over the main Simulator and
  // every shard (sim::EventQueue::Stats). Fixed-seed deterministic and
  // thread-count invariant — the pop order, and hence every push/pop/
  // cancel a run performs, is identical across backends and thread
  // counts. queue_peak_raw is the physical-storage high-water mark
  // (tombstones included; backend-dependent purge timing, unlike the
  // live peak_queue_depth above).
  std::uint64_t queue_pushes = 0;
  std::uint64_t queue_pops = 0;
  std::uint64_t queue_tombstones_purged = 0;
  std::uint64_t queue_compactions = 0;
  std::uint64_t queue_ladder_spills = 0;
  std::uint64_t queue_ladder_rebuckets = 0;
  std::size_t queue_peak_raw = 0;

  // Routing totals (protocol-independent; see RoutingService::Telemetry).
  std::uint64_t routing_control_messages = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;

  // Payload-pool accounting (net::PayloadPools::stats()): acquisitions
  // served, slab growths (allocations NOT avoided), and the high-water
  // mark of live payloads. Fixed-seed deterministic and thread-count
  // invariant — pools are per-run, never shared across runs or threads.
  std::uint64_t payload_acquires = 0;
  std::uint64_t payload_slab_allocs = 0;
  std::size_t payload_peak_live = 0;

  // Model-memory accounting (capacity-based, bytes), split by layer so
  // mega-scale telemetry can attribute growth: the network's dense
  // per-node arrays + spatial index + blackout ledger, the summed
  // routing-agent state (tables, caches, pending discoveries), and the
  // summed member-servent base state (handshake tables, connections,
  // duplicate caches). All first-touch allocated — growth must track what
  // the run actually did, not the population squared.
  std::size_t net_memory_bytes = 0;
  std::size_t routing_memory_bytes = 0;
  std::size_t servent_memory_bytes = 0;

  // Churn/fault accounting (all 0 when fault injection is disabled).
  std::uint64_t churn_deaths = 0;
  std::uint64_t churn_recoveries = 0;
  std::uint64_t link_blackouts = 0;
  std::uint64_t loss_bursts = 0;
  // Overlay repair under churn ("Figure C" family): time the live-member
  // overlay spent fragmented, how many disruptions were repaired, and the
  // mean time from fragmentation to repair (monitor-tick resolution).
  double overlay_disrupted_s = 0.0;
  std::uint64_t overlay_repairs = 0;
  double mean_repair_time_s = 0.0;
  // Live members that finished the run with zero references.
  std::size_t orphaned_servents = 0;
  // Cross-layer invariant checker (0 when disabled — and on healthy runs).
  std::uint64_t invariant_violations = 0;

  /// Fraction of completed requests that got >= 1 answer (query success
  /// rate; the churn experiments plot this against churn_rate).
  double query_success_rate() const noexcept {
    std::uint64_t requests = 0, answered = 0;
    for (const auto& f : per_file) {
      requests += f.requests;
      answered += f.answered;
    }
    return requests == 0 ? 0.0
                         : static_cast<double>(answered) /
                               static_cast<double>(requests);
  }

  // Overlay reconfiguration volume: connection (reference) set-ups and
  // tear-downs summed over all members — the cost the paper's algorithms
  // try to control.
  std::uint64_t connections_established = 0;
  std::uint64_t connections_closed = 0;

  // Overlay structure: periodic samples + final snapshot.
  std::vector<graph::SmallWorldMetrics> overlay_samples;
  graph::SmallWorldMetrics overlay_final;
  graph::SmallWorldMetrics physical_final;

  // Hybrid role census at the end (0 for other algorithms).
  std::size_t masters = 0;
  std::size_t slaves = 0;

  // Convenience extracts for the figure benches.
  std::vector<double> connect_received_per_member() const;
  std::vector<double> ping_received_per_member() const;
  std::vector<double> query_received_per_member() const;
};

class SimulationRun final : public core::QueryRecorder {
 public:
  explicit SimulationRun(const Parameters& params);
  ~SimulationRun() override;

  SimulationRun(const SimulationRun&) = delete;
  SimulationRun& operator=(const SimulationRun&) = delete;

  /// Build the world, simulate `params.duration_s` seconds, collect.
  RunResult run();

  /// QueryRecorder: every member reports completed requests here.
  void on_request_complete(core::FileId file, int answers,
                           int min_physical_hops, int min_p2p_hops) override;

  // Introspection for tests (valid after build(), which run() calls).
  void build();
  sim::Simulator& simulator() noexcept { return sim_; }
  net::Network& network() noexcept { return *network_; }
  /// Shard count this run executes with (1 = sequential single-Simulator).
  std::size_t shard_count() const noexcept { return num_shards_; }
  core::Servent& servent(std::size_t member_index);
  std::size_t member_count() const noexcept { return members_.size(); }
  net::NodeId member_node(std::size_t member_index) const;
  const content::Placement& placement() const noexcept { return *placement_; }

  /// Overlay graph over members: edge wherever at least one side holds a
  /// reference (references are usable one-way).
  graph::Graph overlay_graph() const;

  // ---- fault seams (also used as FaultInjector hooks) -------------------
  /// Kill `id` now: network down, routing/flood/dup-cache state dropped,
  /// servent (if a started member) silently loses all overlay state.
  void crash_node(net::NodeId id);
  /// Revive `id`: network up; a crashed member servent rejoins fresh.
  void recover_node(net::NodeId id);

  /// Non-null after build() when fault injection is enabled.
  const fault::FaultInjector* injector() const noexcept {
    return injector_.get();
  }
  /// Non-null after build() when invariant_check_interval_s > 0.
  fault::InvariantChecker* invariant_checker() noexcept {
    return checker_.get();
  }

 private:
  void sample_overlay();
  void fault_monitor_tick();
  RunResult collect();
  /// The Simulator node `id`'s events run on: its home shard's when
  /// sharded, the single sequential one otherwise.
  sim::Simulator& sim_for(net::NodeId id) noexcept {
    return num_shards_ > 1 ? *shard_sims_[home_shard_[id]] : sim_;
  }

  Parameters params_;
  sim::RngManager rngs_;
  sim::Simulator sim_;  // sequential world; global (non-node) events when sharded
  // Sharded execution (effective_sim_shards() > 1): one Simulator per
  // spatial shard, every node's events on its home shard's queue. Declared
  // before network_ (like sim_) so queued frames outlive nothing they use;
  // lane pools are holder-counted past ~Network either way.
  std::vector<std::unique_ptr<sim::Simulator>> shard_sims_;
  std::vector<std::uint32_t> home_shard_;  // node -> shard (empty when seq.)
  std::size_t num_shards_ = 1;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<routing::RoutingService>> routing_;
  std::vector<std::unique_ptr<routing::FloodService>> flood_;
  std::vector<net::NodeId> members_;  // member index -> node id
  // Inverse of members_ (kInvalidNode for non-members), precomputed by
  // build() so overlay_graph() — called per monitor tick — does not
  // reallocate and refill an O(num_nodes) map on every call.
  std::vector<std::uint32_t> node_to_member_;
  std::vector<std::unique_ptr<core::Servent>> servents_;
  std::unique_ptr<content::Placement> placement_;
  std::vector<FileRankStats> per_file_;
  // Per-shard request stats: on_request_complete fires from servent code
  // inside shard windows, where lanes run concurrently — each lane
  // accumulates privately and collect() merges (pure sums, order-free).
  std::vector<std::vector<FileRankStats>> per_file_lanes_;
  std::vector<graph::SmallWorldMetrics> overlay_samples_;

  // Fault machinery (constructed only when enabled — zero-cost otherwise).
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::InvariantChecker> checker_;
  std::vector<core::Servent*> servent_of_node_;  // nullptr for non-members
  std::vector<char> crashed_member_;  // member servent is down right now
  // Overlay-repair bookkeeping (fault monitor).
  bool overlay_fragmented_ = false;
  sim::SimTime fragmented_since_ = 0.0;
  double repair_time_total_ = 0.0;
  std::uint64_t overlay_repairs_ = 0;

  bool built_ = false;
};

}  // namespace p2p::scenario
