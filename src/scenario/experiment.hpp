// Multi-seed experiment driver.
//
// The paper repeats every simulation 33 times; we run the repetitions on
// a pool of worker threads (each run is a fully isolated world) and
// aggregate: sorted per-node curves for the Figures 7-12 message plots,
// per-file-rank means for Figures 5-6, plus network/overlay summaries
// with 95% confidence intervals.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "scenario/parameters.hpp"
#include "scenario/run.hpp"
#include "stats/running_stat.hpp"
#include "stats/sorted_curve.hpp"

namespace p2p::scenario {

struct RankAggregate {
  stats::RunningStat answers_per_request;  // per-run means
  stats::RunningStat min_distance;         // per-run mean min physical hops
  stats::RunningStat min_p2p_hops;
  stats::RunningStat answered_fraction;
};

struct ExperimentResult {
  std::size_t runs = 0;

  // Figures 7-12: per-node received-message curves (rank-ordered).
  stats::SortedCurve connect_curve;
  stats::SortedCurve ping_curve;
  stats::SortedCurve query_curve;

  // Figures 5-6: per file rank (index = rank - 1).
  std::vector<RankAggregate> ranks;

  // Cross-run summaries.
  stats::RunningStat frames_transmitted;
  stats::RunningStat energy_consumed_j;
  stats::RunningStat routing_control;  // control messages sent (RREQ/RREP/RERR or DSDV updates)
  stats::RunningStat overlay_clustering;   // final-snapshot values
  stats::RunningStat overlay_path_length;
  stats::RunningStat overlay_components;
  stats::RunningStat masters;
  stats::RunningStat slaves;
  stats::RunningStat events_processed;
  stats::RunningStat connections_established;  // reconfiguration volume
  stats::RunningStat connections_closed;
};

/// Run `num_seeds` repetitions of `base` with seeds base.seed, base.seed+1,
/// ..., on up to `threads` workers (0 = hardware concurrency). The
/// optional `on_run_done` callback fires from worker threads under the
/// aggregation lock (safe for progress printing).
ExperimentResult run_experiment(
    const Parameters& base, std::size_t num_seeds, std::size_t threads = 0,
    const std::function<void(std::size_t done, std::size_t total)>&
        on_run_done = {});

/// Number of repetitions the paper uses.
inline constexpr std::size_t kPaperSeeds = 33;

/// Reads P2P_BENCH_SEEDS from the environment (bench harness knob);
/// falls back to kPaperSeeds.
std::size_t bench_seed_count();

}  // namespace p2p::scenario
