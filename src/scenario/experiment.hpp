// Multi-seed experiment driver.
//
// The paper repeats every simulation 33 times; we run the repetitions on
// a pool of worker threads (each run is a fully isolated world) and
// aggregate: sorted per-node curves for the Figures 7-12 message plots,
// per-file-rank means for Figures 5-6, plus network/overlay summaries
// with 95% confidence intervals.
//
// Determinism contract: workers deposit each seed's RunResult in a slot
// indexed by seed offset, and aggregation happens single-threaded in seed
// order once the pool drains — so `threads=N` is bit-identical to
// `threads=1` for every field of ExperimentResult. A worker-thread
// exception is captured, the pool is drained, and the failure is
// rethrown on the caller thread as an ExperimentError naming the seed
// (instead of std::terminate). See docs/determinism.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/parameters.hpp"
#include "scenario/run.hpp"
#include "scenario/telemetry.hpp"
#include "stats/running_stat.hpp"
#include "stats/sorted_curve.hpp"

namespace p2p::scenario {

struct RankAggregate {
  stats::RunningStat answers_per_request;  // per-run means
  stats::RunningStat min_distance;         // per-run mean min physical hops
  stats::RunningStat min_p2p_hops;
  stats::RunningStat answered_fraction;
};

struct ExperimentResult {
  std::size_t runs = 0;

  // Figures 7-12: per-node received-message curves (rank-ordered).
  stats::SortedCurve connect_curve;
  stats::SortedCurve ping_curve;
  stats::SortedCurve query_curve;

  // Figures 5-6: per file rank (index = rank - 1).
  std::vector<RankAggregate> ranks;

  // Cross-run summaries.
  stats::RunningStat frames_transmitted;
  stats::RunningStat energy_consumed_j;
  stats::RunningStat routing_control;  // control messages sent (RREQ/RREP/RERR or DSDV updates)
  stats::RunningStat overlay_clustering;   // final-snapshot values
  stats::RunningStat overlay_path_length;
  stats::RunningStat overlay_components;
  stats::RunningStat masters;
  stats::RunningStat slaves;
  stats::RunningStat events_processed;
  stats::RunningStat connections_established;  // reconfiguration volume
  stats::RunningStat connections_closed;

  // "Figure C" family: overlay behavior under churn/faults. All zero-count
  // (or zero-valued) when fault injection is disabled.
  stats::RunningStat churn_deaths;
  stats::RunningStat query_success_rate;   // answered / completed requests
  stats::RunningStat overlay_disrupted_s;  // live overlay fragmented time
  stats::RunningStat mean_repair_time_s;   // only over runs with repairs
  stats::RunningStat orphaned_servents;
  stats::RunningStat invariant_violations;
};

/// Thrown on the caller thread when a repetition fails inside a worker.
class ExperimentError : public std::runtime_error {
 public:
  ExperimentError(std::size_t seed_index, std::uint64_t seed,
                  const std::string& what)
      : std::runtime_error("seed " + std::to_string(seed) + " (index " +
                           std::to_string(seed_index) + ") failed: " + what),
        seed_index_(seed_index),
        seed_(seed) {}

  std::size_t seed_index() const noexcept { return seed_index_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::size_t seed_index_;
  std::uint64_t seed_;
};

/// Per-seed completion callback. Fires on the worker thread that finished
/// the repetition, with no lock held; `seed_index` identifies the seed
/// (base.seed + seed_index), so indices arrive in completion order, not
/// seed order, and each index is reported exactly once.
using SeedDoneFn =
    std::function<void(std::size_t seed_index, std::size_t total)>;

/// Run `num_seeds` repetitions of `base` with seeds base.seed, base.seed+1,
/// ..., on up to `threads` workers (0 = hardware concurrency). Results are
/// aggregated in seed order regardless of thread count (bit-identical to a
/// sequential run). Throws ExperimentError if any repetition throws. If
/// `telemetry` is non-null it is reset and filled with per-seed timings.
ExperimentResult run_experiment(const Parameters& base, std::size_t num_seeds,
                                std::size_t threads = 0,
                                const SeedDoneFn& on_run_done = {},
                                RunTelemetry* telemetry = nullptr);

/// run_experiment with the single-repetition body replaced by `run_fn`
/// (called with the per-seed Parameters). Test seam for crash isolation
/// and scheduling behavior; run_experiment forwards to this with the real
/// SimulationRun body.
ExperimentResult run_experiment_with(
    const Parameters& base, std::size_t num_seeds, std::size_t threads,
    const std::function<RunResult(const Parameters&)>& run_fn,
    const SeedDoneFn& on_run_done = {}, RunTelemetry* telemetry = nullptr);

/// Run exactly ONE repetition — the scenario as given, seed = params.seed
/// — with the same crash isolation as run_experiment: any exception from
/// inside the run is rethrown as ExperimentError (seed_index 0) instead of
/// propagating raw. Fills `telemetry` (if non-null) exactly as the batch
/// worker would for a one-seed experiment. This is the serving daemon's
/// unit of work (src/serve): a served (config, seed) result is by
/// construction identical to the batch path's repetition of that seed.
RunResult run_single_seed(const Parameters& params,
                          SeedTelemetry* telemetry = nullptr);

/// Number of repetitions the paper uses.
inline constexpr std::size_t kPaperSeeds = 33;

/// Reads P2P_BENCH_SEEDS from the environment (bench harness knob);
/// falls back to kPaperSeeds.
std::size_t bench_seed_count();

}  // namespace p2p::scenario
