#include "scenario/cache.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/rng.hpp"  // fnv1a

namespace p2p::scenario {

namespace {

void put(std::ostream& os, const char* key, double v) {
  os << key << '=' << v << '\n';
}
void put(std::ostream& os, const char* key, std::uint64_t v) {
  os << key << '=' << v << '\n';
}

void write_stat(std::ostream& os, const stats::RunningStat& s) {
  os << s.count() << ' ' << s.mean() << ' ' << s.variance() << ' ' << s.min()
     << ' ' << s.max();
}

bool read_stat(std::istream& is, stats::RunningStat* s) {
  std::uint64_t n = 0;
  double mean = 0.0, var = 0.0, lo = 0.0, hi = 0.0;
  if (!(is >> n >> mean >> var >> lo >> hi)) return false;
  *s = stats::RunningStat::restore(n, mean, var, lo, hi);
  return true;
}

void write_curve(std::ostream& os, const char* name,
                 const stats::SortedCurve& curve) {
  os << "curve " << name << ' ' << curve.runs() << ' ' << curve.points()
     << '\n';
  for (const auto& s : curve.positions()) {
    write_stat(os, s);
    os << '\n';
  }
}

bool read_curve(std::istream& is, const std::string& expect_name,
                stats::SortedCurve* curve) {
  std::string tag, name;
  std::size_t runs = 0, points = 0;
  if (!(is >> tag >> name >> runs >> points)) return false;
  if (tag != "curve" || name != expect_name) return false;
  std::vector<stats::RunningStat> positions(points);
  for (auto& s : positions) {
    if (!read_stat(is, &s)) return false;
  }
  *curve = stats::SortedCurve::restore(std::move(positions), runs);
  return true;
}

// ---- checksummed entry I/O (shared by experiment + seed entries) -------
//
// On-disk layout: "p2pmanet-cache <version> <fnv1a-hex-of-payload>\n"
// followed by the payload. Readers verify the checksum before trusting a
// byte: a truncated, torn, or corrupted entry is a miss, never a crash.
// Writers publish via a process-private temp file + rename, so concurrent
// writers (threads in one daemon, or entirely separate processes racing on
// one key) each publish a complete entry and one of them wins.

bool read_checksummed(const std::string& path, const char* version,
                      std::string* payload) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string contents = buffer.str();

  const std::size_t header_end = contents.find('\n');
  if (header_end == std::string::npos) return false;
  std::istringstream header(contents.substr(0, header_end));
  std::string magic, got_version, checksum_hex;
  if (!(header >> magic >> got_version >> checksum_hex)) return false;
  if (magic != "p2pmanet-cache" || got_version != version) return false;
  std::string body = contents.substr(header_end + 1);
  std::uint64_t expected = 0;
  try {
    expected = std::stoull(checksum_hex, nullptr, 16);
  } catch (...) {
    return false;
  }
  if (sim::fnv1a(body) != expected) return false;
  *payload = std::move(body);
  return true;
}

void write_checksummed(const std::string& path, const char* version,
                       const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(cache_directory(), ec);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return;
    file << "p2pmanet-cache " << version << ' ' << std::hex
         << sim::fnv1a(payload) << '\n'
         << payload;
    if (!file) {
      file.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace

std::string canonical_parameters(const Parameters& p, std::size_t num_seeds) {
  std::ostringstream os;
  os.precision(17);
  // Bump this tag whenever a code change alters simulation behavior; it
  // invalidates every cached experiment. v6: portable in-house RNG
  // distributions replaced the std::*_distribution draws. v7: batched
  // broadcast delivery — all message/energy metrics are bit-identical to
  // v6, but events_processed (a serialized stat) counts one arrival event
  // per broadcast instead of one per receiver, so v6 entries would report
  // stale kernel telemetry. v8: fault-injection subsystem — zero-fault
  // runs are bit-identical to v7, but churned runs changed semantics
  // (exponential downtime, per-node RNG streams, crashed nodes now lose
  // protocol state) and v7 entries lack the churn-metric stats.
  os << "code-v8\n";
  put(os, "area_width", p.area_width);
  put(os, "area_height", p.area_height);
  put(os, "radio_range", p.radio_range);
  put(os, "num_nodes", static_cast<std::uint64_t>(p.num_nodes));
  put(os, "p2p_fraction", p.p2p_fraction);
  put(os, "duration_s", p.duration_s);
  put(os, "seed", p.seed);
  put(os, "mobile", static_cast<std::uint64_t>(p.mobile));
  put(os, "mobility_kind", static_cast<std::uint64_t>(p.mobility_kind));
  put(os, "max_speed", p.max_speed);
  put(os, "min_speed", p.min_speed);
  put(os, "max_pause", p.max_pause);
  put(os, "num_files", static_cast<std::uint64_t>(p.num_files));
  put(os, "max_frequency", p.max_frequency);
  put(os, "algorithm", static_cast<std::uint64_t>(p.algorithm));
  // Algorithm-scoped behavior revisions: invalidate only the affected
  // algorithm's cached experiments.
  if (p.algorithm == core::AlgorithmKind::kRandom) {
    put(os, "random_code_rev", std::uint64_t{2});  // rev 2: capacity check in random_needed
  }
  put(os, "maxnconn", static_cast<std::uint64_t>(p.p2p.maxnconn));
  put(os, "nhops_initial", static_cast<std::uint64_t>(p.p2p.nhops_initial));
  put(os, "maxnhops", static_cast<std::uint64_t>(p.p2p.maxnhops));
  put(os, "nhops_basic", static_cast<std::uint64_t>(p.p2p.nhops_basic));
  put(os, "maxdist", static_cast<std::uint64_t>(p.p2p.maxdist));
  put(os, "maxnslaves", static_cast<std::uint64_t>(p.p2p.maxnslaves));
  put(os, "query_ttl", static_cast<std::uint64_t>(p.p2p.query_ttl));
  put(os, "timer_initial", p.p2p.timer_initial);
  put(os, "maxtimer", p.p2p.maxtimer);
  put(os, "maxtimer_master", p.p2p.maxtimer_master);
  put(os, "ping_interval", p.p2p.ping_interval);
  put(os, "pong_timeout", p.p2p.pong_timeout);
  put(os, "silence_timeout", p.p2p.silence_timeout);
  put(os, "offer_window", p.p2p.offer_window);
  put(os, "handshake_timeout", p.p2p.handshake_timeout);
  put(os, "query_response_wait", p.p2p.query_response_wait);
  put(os, "query_gap_min", p.p2p.query_gap_min);
  put(os, "query_gap_max", p.p2p.query_gap_max);
  put(os, "query_by_popularity",
      static_cast<std::uint64_t>(p.p2p.query_by_popularity));
  put(os, "enable_queries", static_cast<std::uint64_t>(p.p2p.enable_queries));
  put(os, "routing_protocol", static_cast<std::uint64_t>(p.routing_protocol));
  put(os, "dsdv_interval", p.dsdv.periodic_update_interval);
  put(os, "dsdv_stale", p.dsdv.route_stale_timeout);
  // Later-added knobs are emitted only when they deviate from defaults so
  // that existing cache entries for default scenarios remain valid (they
  // are behavioral no-ops at their defaults).
  {
    const routing::DsrParams dsr_defaults;
    if (p.dsr.route_lifetime != dsr_defaults.route_lifetime ||
        p.dsr.discovery_retries != dsr_defaults.discovery_retries) {
      put(os, "dsr_lifetime", p.dsr.route_lifetime);
      put(os, "dsr_retries",
          static_cast<std::uint64_t>(p.dsr.discovery_retries));
    }
  }
  put(os, "churn_rate", p.churn_death_rate_per_hour);
  put(os, "churn_down", p.churn_down_time);
  // Fault-injection knobs, non-default-only (their defaults are exact
  // behavioral no-ops, so fault-free entries keep their keys).
  {
    const fault::FaultParams fault_defaults;
    if (p.fault.churn_rate_per_hour != fault_defaults.churn_rate_per_hour ||
        p.fault.mean_uptime_s != fault_defaults.mean_uptime_s ||
        p.fault.mean_downtime_s != fault_defaults.mean_downtime_s) {
      put(os, "fault_churn_rate", p.fault.churn_rate_per_hour);
      put(os, "fault_mean_uptime", p.fault.mean_uptime_s);
      put(os, "fault_mean_downtime", p.fault.mean_downtime_s);
    }
    if (p.fault.blackouts_enabled()) {
      put(os, "fault_blackout_rate", p.fault.blackout_rate_per_hour);
      put(os, "fault_blackout_duration", p.fault.blackout_duration_s);
    }
    if (p.fault.bursts_enabled()) {
      put(os, "fault_burst_rate", p.fault.burst_rate_per_hour);
      put(os, "fault_burst_duration", p.fault.burst_duration_s);
      put(os, "fault_burst_loss", p.fault.burst_loss_probability);
    }
    if (p.fault.crash_run_enabled()) {
      // Crashing runs never produce a cache entry, but the key must still
      // differ so a crash-configured request can never alias a healthy
      // cached result for the same scenario.
      put(os, "fault_crash_run_at", p.fault.crash_run_at_s);
    }
    if (p.invariant_check_interval_s != 0.0) {
      put(os, "invariant_check_interval", p.invariant_check_interval_s);
    }
    if (p.fault_monitor_interval_s != 10.0) {
      put(os, "fault_monitor_interval", p.fault_monitor_interval_s);
    }
  }
  put(os, "aodv_art", p.aodv.active_route_timeout);
  put(os, "aodv_my_rt", p.aodv.my_route_timeout);
  put(os, "aodv_ntt", p.aodv.node_traversal_time);
  put(os, "aodv_retries", static_cast<std::uint64_t>(p.aodv.rreq_retries));
  put(os, "mac_bw", p.mac.bandwidth_bps);
  put(os, "mac_loss", p.mac.loss_probability);
  put(os, "mac_jitter", p.mac.jitter_max_s);
  if (p.mac.gray_zone_fraction != 0.0) {
    put(os, "mac_gray_zone", p.mac.gray_zone_fraction);
  }
  put(os, "battery", p.energy.battery_j);
  put(os, "qualifier_dist", static_cast<std::uint64_t>(p.qualifier_dist));
  put(os, "overlay_sample_interval", p.overlay_sample_interval_s);
  put(os, "join_stagger", p.join_stagger_s);
  // The shard count is a model parameter (spatial decomposition + per-shard
  // RNG streams); sim_threads is pure execution and never enters the key.
  // Non-default-only: 1 effective shard is the legacy sequential schedule,
  // so existing cache entries keep their keys.
  if (p.effective_sim_shards() > 1) {
    put(os, "sim_shards", static_cast<std::uint64_t>(p.effective_sim_shards()));
  }
  // The event-queue backend gate never changes results (both backends pop
  // in the identical (time, seq) order), but a pinned non-default value is
  // still recorded so a sweep that overrides it gets distinct manifests.
  // Non-default-only: existing cache entries keep their keys.
  if (p.ladder_queue_min_nodes != Parameters{}.ladder_queue_min_nodes) {
    put(os, "ladder_queue_min_nodes",
        static_cast<std::uint64_t>(p.ladder_queue_min_nodes));
  }
  put(os, "num_seeds", static_cast<std::uint64_t>(num_seeds));
  return os.str();
}

std::string cache_key(const Parameters& params, std::size_t num_seeds) {
  const std::string canon = canonical_parameters(params, num_seeds);
  std::ostringstream os;
  os << std::hex << sim::fnv1a(canon) << '-'
     << sim::fnv1a(canon + "salt");
  return os.str();
}

std::string cache_directory() {
  if (const char* env = std::getenv("P2P_BENCH_CACHE")) return env;
  return "bench_cache";
}

namespace {
std::string cache_path(const Parameters& params, std::size_t num_seeds) {
  return cache_directory() + "/" + cache_key(params, num_seeds) + ".txt";
}
}  // namespace

std::string manifest_path(const Parameters& params, std::size_t num_seeds) {
  return cache_directory() + "/" + cache_key(params, num_seeds) +
         ".runs.jsonl";
}

bool load_cached(const Parameters& params, std::size_t num_seeds,
                 ExperimentResult* result) {
  // Header line: "p2pmanet-cache v2 <fnv1a-hex-of-payload>". A truncated,
  // torn, or otherwise corrupted entry fails the checksum and is treated
  // as a miss, never a crash.
  std::string payload;
  if (!read_checksummed(cache_path(params, num_seeds), "v2", &payload)) {
    return false;
  }

  std::istringstream is(payload);
  ExperimentResult r;
  std::string tag;
  std::size_t runs = 0;
  if (!(is >> tag >> runs) || tag != "runs") return false;
  r.runs = runs;
  if (!read_curve(is, "connect", &r.connect_curve)) return false;
  if (!read_curve(is, "ping", &r.ping_curve)) return false;
  if (!read_curve(is, "query", &r.query_curve)) return false;

  std::size_t num_ranks = 0;
  if (!(is >> tag >> num_ranks) || tag != "ranks") return false;
  r.ranks.resize(num_ranks);
  for (auto& rank : r.ranks) {
    if (!read_stat(is, &rank.answers_per_request)) return false;
    if (!read_stat(is, &rank.min_distance)) return false;
    if (!read_stat(is, &rank.min_p2p_hops)) return false;
    if (!read_stat(is, &rank.answered_fraction)) return false;
  }
  for (auto* stat :
       {&r.frames_transmitted, &r.energy_consumed_j, &r.routing_control,
        &r.overlay_clustering, &r.overlay_path_length, &r.overlay_components,
        &r.masters, &r.slaves, &r.events_processed}) {
    if (!read_stat(is, stat)) return false;
  }
  // Optional trailing stats (added after the v4 format shipped); absent in
  // older entries, which simply report zero reconfiguration telemetry.
  if (!read_stat(is, &r.connections_established)) {
    r.connections_established = stats::RunningStat{};
    r.connections_closed = stats::RunningStat{};
  } else if (!read_stat(is, &r.connections_closed)) {
    r.connections_closed = stats::RunningStat{};
  }
  // Churn-metric block (code-v8); all-or-nothing, empty when absent.
  {
    stats::RunningStat* churn_stats[] = {
        &r.churn_deaths,       &r.query_success_rate, &r.overlay_disrupted_s,
        &r.mean_repair_time_s, &r.orphaned_servents,  &r.invariant_violations};
    bool complete = true;
    for (auto* stat : churn_stats) {
      if (!read_stat(is, stat)) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      for (auto* stat : churn_stats) *stat = stats::RunningStat{};
    }
  }
  *result = std::move(r);
  return true;
}

void store_cached(const Parameters& params, std::size_t num_seeds,
                  const ExperimentResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "runs " << result.runs << '\n';
  write_curve(os, "connect", result.connect_curve);
  write_curve(os, "ping", result.ping_curve);
  write_curve(os, "query", result.query_curve);
  os << "ranks " << result.ranks.size() << '\n';
  for (const auto& rank : result.ranks) {
    write_stat(os, rank.answers_per_request);
    os << '\n';
    write_stat(os, rank.min_distance);
    os << '\n';
    write_stat(os, rank.min_p2p_hops);
    os << '\n';
    write_stat(os, rank.answered_fraction);
    os << '\n';
  }
  for (const auto* stat :
       {&result.frames_transmitted, &result.energy_consumed_j,
        &result.routing_control, &result.overlay_clustering,
        &result.overlay_path_length, &result.overlay_components,
        &result.masters, &result.slaves, &result.events_processed,
        &result.connections_established, &result.connections_closed,
        &result.churn_deaths, &result.query_success_rate,
        &result.overlay_disrupted_s, &result.mean_repair_time_s,
        &result.orphaned_servents, &result.invariant_violations}) {
    write_stat(os, *stat);
    os << '\n';
  }

  write_checksummed(cache_path(params, num_seeds), "v2", os.str());
}

std::string seed_cache_path(const Parameters& params) {
  return cache_directory() + "/" + cache_key(params, 1) + ".seed.txt";
}

bool load_cached_seed_line(const Parameters& params, std::string* line) {
  std::string payload;
  if (!read_checksummed(seed_cache_path(params), "seed-v1", &payload)) {
    return false;
  }
  // Payload is the line plus the trailing newline the writer appended.
  if (payload.empty() || payload.back() != '\n') return false;
  payload.pop_back();
  if (payload.find('\n') != std::string::npos) return false;
  *line = std::move(payload);
  return true;
}

void store_cached_seed_line(const Parameters& params,
                            const std::string& line) {
  write_checksummed(seed_cache_path(params), "seed-v1", line + "\n");
}

ExperimentResult run_experiment_cached(const Parameters& params,
                                       std::size_t num_seeds,
                                       std::size_t threads,
                                       const SeedDoneFn& on_run_done,
                                       RunTelemetry* telemetry) {
  ExperimentResult result;
  if (load_cached(params, num_seeds, &result)) return result;
  RunTelemetry local;
  RunTelemetry* tel = telemetry != nullptr ? telemetry : &local;
  result = run_experiment(params, num_seeds, threads, on_run_done, tel);
  store_cached(params, num_seeds, result);
  // Run manifest rides along with the cache entry (best-effort).
  tel->set_cache_key(cache_key(params, num_seeds));
  tel->write_jsonl(manifest_path(params, num_seeds));
  return result;
}

}  // namespace p2p::scenario
