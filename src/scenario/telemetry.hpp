// Per-seed run telemetry for the experiment engine.
//
// Every repetition of an experiment records how long it took on the wall
// clock, how fast the event loop ran, and how much traffic the simulated
// network carried. The collection serializes to a JSONL manifest (one
// header object, then one object per seed) that is written next to the
// experiment-cache entry and can be printed by `p2pmanet_sim
// --telemetry`. Schema: docs/determinism.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace p2p::scenario {

struct SeedTelemetry {
  std::size_t seed_index = 0;   // 0-based offset from the base seed
  std::uint64_t seed = 0;       // the actual master seed of the run
  double wall_seconds = 0.0;    // wall-clock time of this repetition
  std::uint64_t events_processed = 0;
  double events_per_sec = 0.0;  // events_processed / wall_seconds
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_lost = 0;
  std::size_t peak_queue_depth = 0;  // event-queue high-water mark (live)
  // Event-queue operation counters (RunResult::queue_*; zero only before
  // the run scheduled anything, so the block is emitted to the manifest
  // only when queue_pushes is non-zero and pre-queue-telemetry manifests
  // stay byte-stable). Fixed-seed deterministic and thread-count
  // invariant; the ladder/compaction counters depend on the backend the
  // run selected (scenario::Parameters::ladder_queue_min_nodes).
  std::uint64_t queue_pushes = 0;
  std::uint64_t queue_pops = 0;
  std::uint64_t queue_tombstones_purged = 0;
  std::uint64_t queue_compactions = 0;
  std::uint64_t queue_ladder_spills = 0;
  std::uint64_t queue_ladder_rebuckets = 0;
  std::size_t queue_peak_raw = 0;
  // Payload-pool accounting (zero only when the run sent no overlay
  // messages; emitted to the manifest only when non-zero so pre-pool
  // manifests stay byte-stable). Thread-count invariant.
  std::uint64_t payload_acquires = 0;
  std::uint64_t payload_slab_allocs = 0;
  std::size_t payload_peak_live = 0;
  // Model-memory accounting (capacity-based, bytes; see RunResult). Zero
  // only when unmeasured; emitted to the manifest only when non-zero so
  // pre-memory-telemetry manifests stay byte-stable.
  std::size_t net_memory_bytes = 0;
  std::size_t routing_memory_bytes = 0;
  std::size_t servent_memory_bytes = 0;
  // Fault telemetry (all zero on fault-free runs; emitted to the manifest
  // only when any is non-zero, keeping fault-free manifests byte-stable).
  std::uint64_t churn_deaths = 0;
  std::uint64_t invariant_violations = 0;
  double overlay_disrupted_s = 0.0;
};

/// One JSONL line for one seed, exactly the bytes RunTelemetry::to_jsonl
/// emits for that seed (no trailing newline). With `include_timing` false
/// the nondeterministic fields (wall_s, events_per_sec) are omitted — the
/// serving daemon's wire format, where a line must be byte-identical
/// whether the result was freshly computed or replayed from cache.
std::string seed_line_json(const SeedTelemetry& seed,
                           bool include_timing = true);

/// Telemetry for one multi-seed experiment. Workers fill disjoint
/// seed-indexed slots (no locking needed); the caller reads after the
/// experiment returns.
class RunTelemetry {
 public:
  /// Prepare `num_seeds` empty slots. Called by run_experiment.
  void reset(std::size_t num_seeds);

  /// Record one seed's telemetry (thread-safe for distinct indices).
  void set(std::size_t seed_index, const SeedTelemetry& t);

  const std::vector<SeedTelemetry>& per_seed() const noexcept {
    return seeds_;
  }

  /// Experiment-level fields, filled by run_experiment / the cache layer.
  void set_threads_used(std::size_t n) noexcept { threads_used_ = n; }
  std::size_t threads_used() const noexcept { return threads_used_; }
  void set_total_wall_seconds(double s) noexcept { total_wall_seconds_ = s; }
  double total_wall_seconds() const noexcept { return total_wall_seconds_; }
  void set_cache_key(std::string key) { cache_key_ = std::move(key); }
  const std::string& cache_key() const noexcept { return cache_key_; }

  /// Sum of per-seed events / sum of per-seed wall time (0 if no data).
  double aggregate_events_per_sec() const noexcept;

  /// JSONL manifest: header line + one line per recorded seed.
  std::string to_jsonl() const;

  /// Best-effort write of to_jsonl() to `path`. Returns success.
  bool write_jsonl(const std::string& path) const;

 private:
  std::vector<SeedTelemetry> seeds_;
  std::size_t threads_used_ = 0;
  double total_wall_seconds_ = 0.0;
  std::string cache_key_;
};

}  // namespace p2p::scenario
