// Experiment result cache.
//
// Figures 5-12 are different projections of the *same* 33-seed experiment
// per (algorithm, node count): the paper's authors post-processed one set
// of ns-2 traces per scenario, and so do we. The first figure bench to
// need a configuration runs it and stores the aggregated result; the
// others load it. Keyed by a hash of every result-affecting parameter, so
// changing any parameter (or the seed count) invalidates the entry.
//
// Cache location: $P2P_BENCH_CACHE, else ./bench_cache. Delete the
// directory to force recomputation.
#pragma once

#include <string>

#include "scenario/experiment.hpp"
#include "scenario/parameters.hpp"

namespace p2p::scenario {

/// Canonical textual form of every result-affecting parameter; hashing
/// this yields the cache key.
std::string canonical_parameters(const Parameters& params,
                                 std::size_t num_seeds);

std::string cache_key(const Parameters& params, std::size_t num_seeds);

/// Directory used by the cache (created on store).
std::string cache_directory();

/// Path of the JSONL run manifest written next to a cache entry.
std::string manifest_path(const Parameters& params, std::size_t num_seeds);

/// Load a previously stored result. Returns false on miss, checksum
/// mismatch (torn/truncated file), or parse error — never throws.
bool load_cached(const Parameters& params, std::size_t num_seeds,
                 ExperimentResult* result);

/// Persist a result. Atomic (temp file + rename) so concurrent bench
/// processes cannot tear an entry; best-effort: failures only mean
/// recomputation later.
void store_cached(const Parameters& params, std::size_t num_seeds,
                  const ExperimentResult& result);

// ---- per-seed result cache (serving daemon's dedup unit) ---------------
//
// The daemon (src/serve) serves single (config, seed) results, so its
// cache entry is one seed's deterministic telemetry line (see
// scenario::seed_line_json with timing off), keyed by the same canonical
// parameter hash as the experiment cache with num_seeds = 1 and
// params.seed = the seed. Entries use the same torn-file-is-a-miss
// checksummed format and the same atomic temp-file + rename publish, so
// any number of daemon workers OR separate processes can race on one
// entry: exactly one complete file wins, readers never see a tear.

/// Path of the (config, seed) entry for params (params.seed is the seed).
std::string seed_cache_path(const Parameters& params);

/// Load a served seed line. False on miss/corruption; never throws.
bool load_cached_seed_line(const Parameters& params, std::string* line);

/// Persist a served seed line (atomic publish, best-effort).
void store_cached_seed_line(const Parameters& params,
                            const std::string& line);

/// run_experiment with the cache wrapped around it; prints nothing. On a
/// cache miss the freshly computed experiment's telemetry manifest is
/// written next to the entry (see manifest_path); pass `telemetry` to
/// also receive it in-process.
ExperimentResult run_experiment_cached(const Parameters& params,
                                       std::size_t num_seeds,
                                       std::size_t threads = 0,
                                       const SeedDoneFn& on_run_done = {},
                                       RunTelemetry* telemetry = nullptr);

}  // namespace p2p::scenario
