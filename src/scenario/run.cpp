#include "scenario/run.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "content/zipf.hpp"
#include "core/factory.hpp"
#include "routing/aodv.hpp"
#include "routing/dsdv.hpp"
#include "routing/dsr.hpp"
#include "core/hybrid.hpp"
#include "mobility/gauss_markov.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/random_waypoint.hpp"
#include "scenario/payload_clone.hpp"
#include "sim/sharded.hpp"
#include "util/assert.hpp"

namespace p2p::scenario {

SimulationRun::SimulationRun(const Parameters& params)
    : params_(params), rngs_(params.seed) {}

SimulationRun::~SimulationRun() = default;

void SimulationRun::build() {
  P2P_ASSERT_MSG(!built_, "build() called twice");
  built_ = true;

  // Backend choice must precede the first scheduled event (joins, mobility
  // samplers and routing agents below all push). Every shard Simulator
  // gets the same choice so thread sweeps compare identical executions.
  const sim::QueueBackend queue_backend = params_.use_ladder_queue()
                                              ? sim::QueueBackend::kLadder
                                              : sim::QueueBackend::kHeap;
  sim_.set_queue_backend(queue_backend);

  num_shards_ = params_.effective_sim_shards();
  if (num_shards_ > 1) {
    // The invariant checker is a per-frame NetObserver — incompatible with
    // concurrent lanes (see Network::set_observer).
    P2P_ASSERT_MSG(params_.invariant_check_interval_s == 0.0,
                   "invariant checker requires sim_shards == 1");
    shard_sims_.reserve(num_shards_);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      shard_sims_.push_back(std::make_unique<sim::Simulator>());
      shard_sims_.back()->set_queue_backend(queue_backend);
    }
  }

  net::NetworkParams net_params;
  net_params.region = {params_.area_width, params_.area_height};
  net_params.range = params_.radio_range;
  net_params.mac = params_.mac;
  net_params.max_speed_hint = params_.mobile ? params_.max_speed : 0.01;
  network_ = std::make_unique<net::Network>(sim_, net_params,
                                            rngs_.stream("mac"));

  // Physical nodes first (mobility stream draws and add_node order exactly
  // as before the loop was split — add_node pushes no events).
  for (std::size_t i = 0; i < params_.num_nodes; ++i) {
    std::unique_ptr<mobility::MobilityModel> model;
    if (params_.mobile &&
        params_.mobility_kind == MobilityKind::kRandomWaypoint) {
      mobility::RandomWaypointParams rwp;
      rwp.region = net_params.region;
      rwp.max_speed = params_.max_speed;
      rwp.min_speed = params_.min_speed;
      rwp.max_pause = params_.max_pause;
      model = std::make_unique<mobility::RandomWaypoint>(
          rwp, rngs_.stream("mobility", i));
    } else if (params_.mobile &&
               params_.mobility_kind == MobilityKind::kRandomDirection) {
      mobility::RandomDirectionParams rdp;
      rdp.region = net_params.region;
      rdp.max_speed = params_.max_speed;
      rdp.min_speed = params_.min_speed;
      rdp.max_pause = params_.max_pause;
      model = std::make_unique<mobility::RandomDirection>(
          rdp, rngs_.stream("mobility", i));
    } else if (params_.mobile &&
               params_.mobility_kind == MobilityKind::kGaussMarkov) {
      mobility::GaussMarkovParams gmp;
      gmp.region = net_params.region;
      gmp.mean_speed = 0.7 * params_.max_speed;
      model = std::make_unique<mobility::GaussMarkov>(
          gmp, rngs_.stream("mobility", i));
    } else {
      auto rng = rngs_.stream("mobility", i);
      model = std::make_unique<mobility::StaticModel>(geo::Vec2{
          rng.uniform(0.0, params_.area_width),
          rng.uniform(0.0, params_.area_height)});
    }
    network_->add_node(std::move(model), params_.energy);
  }

  // Shard assignment: 2-D tiling of the region by t=0 positions. A node's
  // home shard is FIXED for the whole run — correctness never depends on
  // the tiling (cross-shard frames go through the barrier merge), only the
  // cross-shard traffic ratio does, and under the paper's mobility bounds
  // nodes drift slowly enough that the t=0 tiling keeps most frames
  // in-lane for the full hour.
  if (num_shards_ > 1) {
    std::size_t lo = 1;  // largest divisor <= sqrt(num_shards_)
    for (std::size_t d = 1; d * d <= num_shards_; ++d) {
      if (num_shards_ % d == 0) lo = d;
    }
    const std::size_t hi = num_shards_ / lo;
    const std::size_t cols = params_.area_width >= params_.area_height ? hi : lo;
    const std::size_t rows = num_shards_ / cols;
    const double tile_w = params_.area_width / static_cast<double>(cols);
    const double tile_h = params_.area_height / static_cast<double>(rows);
    home_shard_.resize(params_.num_nodes);
    for (net::NodeId i = 0; i < params_.num_nodes; ++i) {
      const geo::Vec2 pos = network_->position_of(i);
      auto tx = static_cast<std::size_t>(pos.x / tile_w);
      auto ty = static_cast<std::size_t>(pos.y / tile_h);
      if (tx >= cols) tx = cols - 1;
      if (ty >= rows) ty = rows - 1;
      home_shard_[i] = static_cast<std::uint32_t>(ty * cols + tx);
    }
    std::vector<sim::Simulator*> raw_sims;
    std::vector<sim::RngStream> mac_rngs;
    raw_sims.reserve(num_shards_);
    mac_rngs.reserve(num_shards_);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      raw_sims.push_back(shard_sims_[s].get());
      mac_rngs.push_back(rngs_.stream("mac", s));
    }
    network_->enable_sharding(std::move(raw_sims), home_shard_,
                              std::move(mac_rngs), &clone_frame_payload);
  }

  // Routing stack, each agent on its node's home Simulator.
  for (std::size_t i = 0; i < params_.num_nodes; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    sim::Simulator& node_sim = sim_for(id);
    if (params_.routing_protocol == RoutingProtocol::kDsdv) {
      // Each agent attaches itself to the network as a LinkListener.
      auto agent = std::make_unique<routing::DsdvAgent>(node_sim, *network_,
                                                        id, params_.dsdv);
      routing_.push_back(std::move(agent));
    } else if (params_.routing_protocol == RoutingProtocol::kDsr) {
      routing_.push_back(std::make_unique<routing::DsrAgent>(
          node_sim, *network_, id, params_.dsr));
    } else {
      auto ap = params_.aodv;
      ap.population_hint = params_.num_nodes;  // routing-table backend pick
      routing_.push_back(
          std::make_unique<routing::AodvAgent>(node_sim, *network_, id, ap));
    }
    flood_.push_back(std::make_unique<routing::FloodService>(
        node_sim, *network_, id, routing_.back().get()));
  }

  // Pick the P2P members: a seeded random subset of 75% of the nodes.
  std::vector<net::NodeId> ids(params_.num_nodes);
  std::iota(ids.begin(), ids.end(), 0U);
  {
    auto rng = rngs_.stream("members");
    rng.shuffle(ids);
  }
  const std::size_t m = params_.num_members();
  members_.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(m));
  std::sort(members_.begin(), members_.end());
  // Inverse map, built once: overlay_graph() runs on every monitor tick
  // and sample, so a per-call O(num_nodes) rebuild would reintroduce a
  // whole-population scan on the fault-monitor path.
  node_to_member_.assign(params_.num_nodes, net::kInvalidNode);
  for (std::size_t idx = 0; idx < members_.size(); ++idx) {
    node_to_member_[members_[idx]] = static_cast<std::uint32_t>(idx);
  }

  // Content placement over members.
  const content::ZipfLaw law(params_.num_files, params_.max_frequency);
  placement_ = std::make_unique<content::Placement>(
      law, static_cast<std::uint32_t>(m), rngs_.stream("placement"));
  per_file_.assign(params_.num_files, FileRankStats{});
  if (num_shards_ > 1) {
    per_file_lanes_.assign(num_shards_,
                           std::vector<FileRankStats>(params_.num_files));
  }

  // Qualifiers (Hybrid): a capability ranking over the members.
  std::vector<std::uint32_t> qualifiers(m);
  std::iota(qualifiers.begin(), qualifiers.end(), 1U);
  {
    auto rng = rngs_.stream("qualifier");
    rng.shuffle(qualifiers);
    if (params_.qualifier_dist == QualifierDist::kTwoClass) {
      // 20% strong devices keep high ranks; the rest get rank 0 buckets
      // (ties broken by node id inside the algorithm).
      for (std::size_t i = 0; i < m; ++i) {
        const bool strong = qualifiers[i] > static_cast<std::uint32_t>(0.8 * static_cast<double>(m));
        qualifiers[i] = strong ? qualifiers[i] : 0;
      }
    }
  }

  // Servents.
  for (std::size_t idx = 0; idx < m; ++idx) {
    const net::NodeId id = members_[idx];
    core::ServentContext ctx;
    ctx.sim = &sim_for(id);
    ctx.net = network_.get();
    ctx.routing = routing_[id].get();
    ctx.flood = flood_[id].get();
    ctx.self = id;
    auto servent =
        core::make_servent(params_.algorithm, ctx, params_.p2p,
                           rngs_.stream("servent", idx), qualifiers[idx]);
    servent->set_placement(placement_.get(),
                           static_cast<std::uint32_t>(idx));
    servent->set_query_recorder(this);
    servents_.push_back(std::move(servent));
  }

  // Joins staggered within [0, join_stagger_s); each join runs on the
  // member's home Simulator so its whole protocol cascade stays in-lane.
  auto join_rng = rngs_.stream("join");
  for (std::size_t idx = 0; idx < servents_.size(); ++idx) {
    const double offset = params_.join_stagger_s > 0.0
                              ? join_rng.uniform(0.0, params_.join_stagger_s)
                              : 0.0;
    core::Servent* raw = servents_[idx].get();
    sim_for(members_[idx]).at(offset, [raw] { raw->start(); });
  }

  // Periodic overlay sampling via a self-rescheduling functor.
  if (params_.overlay_sample_interval_s > 0.0) {
    struct Sampler {
      SimulationRun* run;
      double interval;
      void operator()() const {
        run->sample_overlay();
        run->sim_.after(interval, *this);
      }
    };
    sim_.after(params_.overlay_sample_interval_s,
               Sampler{this, params_.overlay_sample_interval_s});
  }

  // Node -> servent map for the fault seams (nullptr for non-members).
  servent_of_node_.assign(params_.num_nodes, nullptr);
  for (std::size_t idx = 0; idx < m; ++idx) {
    servent_of_node_[members_[idx]] = servents_[idx].get();
  }
  crashed_member_.assign(params_.num_nodes, 0);

  // Invariant checker (off by default; observational only).
  if (params_.invariant_check_interval_s > 0.0) {
    checker_ = std::make_unique<fault::InvariantChecker>(*network_);
    for (auto& servent : servents_) checker_->add_servent(servent.get());
    for (auto& agent : routing_) {
      if (auto* aodv = dynamic_cast<routing::AodvAgent*>(agent.get())) {
        checker_->add_aodv(aodv);
      }
    }
    for (auto& flood : flood_) checker_->add_flood(flood.get());
    network_->set_observer(checker_.get());
    struct Sweeper {
      SimulationRun* run;
      double interval;
      void operator()() const {
        run->checker_->sweep(run->sim_.now());
        run->sim_.after(interval, *this);
      }
    };
    sim_.after(params_.invariant_check_interval_s,
               Sweeper{this, params_.invariant_check_interval_s});
  }

  // Fault injection: churn, link blackouts, loss bursts. The legacy
  // churn_death_rate_per_hour knob folds into the fault plan when the new
  // churn fields are untouched.
  fault::FaultParams fparams = params_.fault;
  if (!fparams.churn_enabled() && params_.churn_death_rate_per_hour > 0.0) {
    fparams.churn_rate_per_hour = params_.churn_death_rate_per_hour;
    fparams.mean_downtime_s = params_.churn_down_time;
  }
  if (fparams.enabled()) {
    fault::FaultPlan plan = fault::FaultPlan::compile(
        fparams, params_.num_nodes, params_.duration_s, rngs_);
    fault::FaultHooks hooks;
    hooks.on_crash = [this](net::NodeId id) { crash_node(id); };
    hooks.on_recover = [this](net::NodeId id) { recover_node(id); };
    hooks.on_boundary = [this](sim::SimTime now) {
      if (checker_) checker_->sweep(now);
    };
    injector_ = std::make_unique<fault::FaultInjector>(
        sim_, *network_, std::move(plan), std::move(hooks));
    injector_->arm();
    if (params_.fault_monitor_interval_s > 0.0) {
      struct Monitor {
        SimulationRun* run;
        double interval;
        void operator()() const {
          run->fault_monitor_tick();
          run->sim_.after(interval, *this);
        }
      };
      sim_.after(params_.fault_monitor_interval_s,
                 Monitor{this, params_.fault_monitor_interval_s});
    }
  }

  // Injected worker crash: abort the repetition itself at a fixed sim
  // time. Sequential execution only — the exception must unwind on the
  // thread that called run() (Parameters::apply rejects it when sharded).
  if (params_.fault.crash_run_enabled()) {
    P2P_ASSERT_MSG(num_shards_ == 1,
                   "fault crash_run_at requires sequential execution");
    sim_.after(params_.fault.crash_run_at_s, [] {
      throw std::runtime_error(
          "injected worker crash (fault crash_run_at)");
    });
  }
}

void SimulationRun::crash_node(net::NodeId id) {
  P2P_ASSERT(id < params_.num_nodes);
  network_->set_failed(id, true);
  // Volatile state dies with the node; monotonic ids survive inside each
  // component (see FloodService::on_crash / RoutingService::reset).
  flood_[id]->on_crash();
  routing_[id]->reset();
  if (core::Servent* s = servent_of_node_[id]; s != nullptr && s->started()) {
    s->crash();
    crashed_member_[id] = 1;
  }
  if (checker_) checker_->note_node_down(id, sim_.now());
}

void SimulationRun::recover_node(net::NodeId id) {
  P2P_ASSERT(id < params_.num_nodes);
  network_->set_failed(id, false);
  if (checker_) checker_->note_node_up(id, sim_.now());
  // Only servents crash_node() stopped are restarted here — a servent whose
  // join event has not fired yet starts through that event instead.
  if (crashed_member_[id] != 0) {
    crashed_member_[id] = 0;
    servent_of_node_[id]->rejoin();
  }
}

void SimulationRun::fault_monitor_tick() {
  // Overlay connectivity restricted to live, running members: fragmented
  // means some live member cannot reach some other live member over the
  // reference graph. Dead members are excluded — losing them is not a
  // failure the overlay can repair.
  std::vector<std::uint32_t> live;  // member indices
  for (std::size_t idx = 0; idx < members_.size(); ++idx) {
    if (network_->alive(members_[idx]) && servents_[idx]->started()) {
      live.push_back(static_cast<std::uint32_t>(idx));
    }
  }
  bool fragmented = false;
  if (live.size() > 1) {
    const graph::Graph g = overlay_graph();
    // BFS from the first live member over live members only.
    std::vector<char> seen(members_.size(), 0);
    std::vector<char> is_live(members_.size(), 0);
    for (const auto idx : live) is_live[idx] = 1;
    std::vector<std::uint32_t> queue{live.front()};
    seen[live.front()] = 1;
    std::size_t reached = 1;
    while (!queue.empty()) {
      const std::uint32_t v = queue.back();
      queue.pop_back();
      for (const auto w : g.neighbors(v)) {
        if (is_live[w] == 0 || seen[w] != 0) continue;
        seen[w] = 1;
        ++reached;
        queue.push_back(w);
      }
    }
    fragmented = reached < live.size();
  }
  const sim::SimTime now = sim_.now();
  if (fragmented && !overlay_fragmented_) {
    overlay_fragmented_ = true;
    fragmented_since_ = now;
  } else if (!fragmented && overlay_fragmented_) {
    overlay_fragmented_ = false;
    repair_time_total_ += now - fragmented_since_;
    ++overlay_repairs_;
  }
}

graph::Graph SimulationRun::overlay_graph() const {
  // Vertices are member indices; an edge exists wherever at least one
  // endpoint holds a reference to the other. node_to_member_ is the
  // inverse map precomputed by build().
  graph::Graph g(members_.size());
  for (std::size_t idx = 0; idx < servents_.size(); ++idx) {
    for (const net::NodeId peer : servents_[idx]->connections().peers()) {
      if (peer < node_to_member_.size() &&
          node_to_member_[peer] != net::kInvalidNode) {
        g.add_edge(static_cast<graph::Vertex>(idx), node_to_member_[peer]);
      }
    }
  }
  return g;
}

void SimulationRun::sample_overlay() {
  overlay_samples_.push_back(graph::analyze(overlay_graph()));
}

void SimulationRun::on_request_complete(core::FileId file, int answers,
                                        int min_physical_hops,
                                        int min_p2p_hops) {
  P2P_ASSERT(file >= 1 && file <= per_file_.size());
  // Inside a shard window this runs concurrently with other lanes:
  // accumulate into the calling lane's private copy (merged at collect).
  const std::size_t shard = network_->current_shard();
  FileRankStats& stats = shard == net::Network::kNoShard
                             ? per_file_[file - 1]
                             : per_file_lanes_[shard][file - 1];
  ++stats.requests;
  if (answers > 0) {
    ++stats.answered;
    stats.answers_total += static_cast<std::uint64_t>(answers);
    if (min_physical_hops >= 0) {
      stats.sum_min_physical += min_physical_hops;
      ++stats.physical_samples;
    }
    if (min_p2p_hops >= 0) {
      stats.sum_min_p2p += min_p2p_hops;
      ++stats.p2p_samples;
    }
  }
}

core::Servent& SimulationRun::servent(std::size_t member_index) {
  P2P_ASSERT(member_index < servents_.size());
  return *servents_[member_index];
}

net::NodeId SimulationRun::member_node(std::size_t member_index) const {
  P2P_ASSERT(member_index < members_.size());
  return members_[member_index];
}

RunResult SimulationRun::run() {
  if (!built_) build();
  if (num_shards_ > 1) {
    std::vector<sim::Simulator*> shards;
    shards.reserve(shard_sims_.size());
    for (const auto& s : shard_sims_) shards.push_back(s.get());
    sim::ShardedExecutor executor(std::move(shards), &sim_,
                                  net::min_frame_latency(params_.mac),
                                  params_.sim_threads);
    sim::ShardedExecutor::Callbacks cb;
    cb.before_window = [this](sim::SimTime start, sim::SimTime end) {
      network_->begin_window(start, end);
    };
    cb.after_window = [this](sim::SimTime end) { network_->end_window(end); };
    cb.enter_shard = [this](std::size_t s) { network_->enter_shard(s); };
    cb.exit_shard = [this] { network_->exit_shard(); };
    executor.run(params_.duration_s, cb);
  } else {
    sim_.run_until(params_.duration_s);
  }
  return collect();
}

RunResult SimulationRun::collect() {
  RunResult result;
  result.num_nodes = params_.num_nodes;
  result.num_members = members_.size();
  result.counters.reserve(servents_.size());
  for (const auto& servent : servents_) {
    result.counters.push_back(servent->counters());
    result.connections_established += servent->connections_established();
    result.connections_closed += servent->connections_closed();
  }
  // Fold per-lane request stats into the sequential accumulator (pure
  // sums, so the merge is exact and order-free).
  for (const auto& lane : per_file_lanes_) {
    for (std::size_t f = 0; f < lane.size(); ++f) {
      FileRankStats& dst = per_file_[f];
      const FileRankStats& src = lane[f];
      dst.requests += src.requests;
      dst.answered += src.answered;
      dst.answers_total += src.answers_total;
      dst.sum_min_physical += src.sum_min_physical;
      dst.physical_samples += src.physical_samples;
      dst.sum_min_p2p += src.sum_min_p2p;
      dst.p2p_samples += src.p2p_samples;
    }
  }
  per_file_lanes_.clear();
  result.per_file = per_file_;

  result.frames_transmitted = network_->frames_transmitted();
  result.frames_delivered = network_->frames_delivered();
  result.frames_lost = network_->frames_lost();
  for (std::size_t i = 0; i < params_.num_nodes; ++i) {
    result.energy_consumed_j +=
        network_->energy(static_cast<net::NodeId>(i)).consumed_j();
    const auto telemetry = routing_[i]->telemetry();
    result.routing_control_messages += telemetry.control_messages_sent;
    result.data_delivered += telemetry.data_delivered;
    result.data_dropped += telemetry.data_dropped;
  }
  // Sharded runs sum over the global queue plus every shard queue: event
  // counts are additive, and the summed per-queue high-water marks bound
  // (and in practice track) total resident events.
  result.events_processed = sim_.events_processed();
  result.peak_queue_depth = sim_.peak_events_pending();
  const auto add_queue_stats = [&result](const sim::Simulator& s) {
    const sim::EventQueue::Stats& q = s.queue_stats();
    result.queue_pushes += s.events_scheduled();
    result.queue_pops += q.pops;
    result.queue_tombstones_purged += q.tombstones_purged;
    result.queue_compactions += q.compactions;
    result.queue_ladder_spills += q.ladder_spills;
    result.queue_ladder_rebuckets += q.ladder_rebuckets;
    result.queue_peak_raw += s.peak_raw_events_pending();
  };
  add_queue_stats(sim_);
  for (const auto& shard : shard_sims_) {
    result.events_processed += shard->events_processed();
    result.peak_queue_depth += shard->peak_events_pending();
    add_queue_stats(*shard);
  }

  result.net_memory_bytes = network_->memory_bytes();
  for (const auto& agent : routing_) {
    result.routing_memory_bytes += agent->memory_bytes();
  }
  for (const auto& servent : servents_) {
    result.servent_memory_bytes += servent->memory_bytes();
  }

  const net::PayloadPools::Stats pool_stats = network_->pool_stats();
  result.payload_acquires = pool_stats.acquires;
  result.payload_slab_allocs = pool_stats.slab_allocs;
  result.payload_peak_live = pool_stats.peak_live;

  if (injector_) {
    const fault::FaultStats& fstats = injector_->stats();
    result.churn_deaths = fstats.crashes;
    result.churn_recoveries = fstats.recoveries;
    result.link_blackouts = fstats.blackouts;
    result.loss_bursts = fstats.bursts;
    // A disruption still open at the end counts as disrupted time (but not
    // as a completed repair).
    double disrupted = repair_time_total_;
    if (overlay_fragmented_) disrupted += sim_.now() - fragmented_since_;
    result.overlay_disrupted_s = disrupted;
    result.overlay_repairs = overlay_repairs_;
    result.mean_repair_time_s =
        overlay_repairs_ == 0
            ? 0.0
            : repair_time_total_ / static_cast<double>(overlay_repairs_);
    for (std::size_t idx = 0; idx < servents_.size(); ++idx) {
      const net::NodeId id = members_[idx];
      if (network_->alive(id) && servents_[idx]->started() &&
          servents_[idx]->connections().size() == 0) {
        ++result.orphaned_servents;
      }
    }
  }
  if (checker_) {
    result.invariant_violations = checker_->violations_total();
    // Diagnostic escape hatch: dump recorded violations to stderr so a
    // failing zero-violation assertion can be triaged without a debugger.
    if (result.invariant_violations > 0 &&
        std::getenv("P2P_DUMP_VIOLATIONS") != nullptr) {
      for (const fault::Violation& v : checker_->violations()) {
        std::fprintf(stderr, "violation t=%.3f node=%u %s: %s\n", v.time,
                     v.node, fault::invariant_kind_name(v.kind),
                     v.detail.c_str());
      }
    }
  }

  result.overlay_samples = overlay_samples_;
  result.overlay_final = graph::analyze(overlay_graph());
  result.physical_final = graph::analyze(graph::Graph(
      network_->adjacency_snapshot()));

  if (params_.algorithm == core::AlgorithmKind::kHybrid) {
    for (const auto& servent : servents_) {
      const auto& hybrid = static_cast<const core::HybridServent&>(*servent);
      if (hybrid.state() == core::HybridState::kMaster) ++result.masters;
      if (hybrid.state() == core::HybridState::kSlave) ++result.slaves;
    }
  }
  return result;
}

std::vector<double> RunResult::connect_received_per_member() const {
  std::vector<double> out;
  out.reserve(counters.size());
  for (const auto& c : counters) {
    out.push_back(static_cast<double>(c.connect_received()));
  }
  return out;
}

std::vector<double> RunResult::ping_received_per_member() const {
  std::vector<double> out;
  out.reserve(counters.size());
  for (const auto& c : counters) {
    out.push_back(static_cast<double>(c.ping_received()));
  }
  return out;
}

std::vector<double> RunResult::query_received_per_member() const {
  std::vector<double> out;
  out.reserve(counters.size());
  for (const auto& c : counters) {
    out.push_back(static_cast<double>(c.query_received()));
  }
  return out;
}

}  // namespace p2p::scenario
