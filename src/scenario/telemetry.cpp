#include "scenario/telemetry.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace p2p::scenario {

void RunTelemetry::reset(std::size_t num_seeds) {
  seeds_.assign(num_seeds, SeedTelemetry{});
  threads_used_ = 0;
  total_wall_seconds_ = 0.0;
}

void RunTelemetry::set(std::size_t seed_index, const SeedTelemetry& t) {
  P2P_ASSERT(seed_index < seeds_.size());
  seeds_[seed_index] = t;
}

double RunTelemetry::aggregate_events_per_sec() const noexcept {
  std::uint64_t events = 0;
  double wall = 0.0;
  for (const auto& s : seeds_) {
    events += s.events_processed;
    wall += s.wall_seconds;
  }
  return wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
}

namespace {

/// Shared body of the per-seed line; `os` carries the manifest's fixed
/// 6-digit float formatting so both callers emit identical bytes.
void write_seed_line(std::ostream& os, const SeedTelemetry& s,
                     bool include_timing) {
  os << "{\"type\":\"seed\",\"index\":" << s.seed_index
     << ",\"seed\":" << s.seed;
  if (include_timing) {
    os << ",\"wall_s\":" << s.wall_seconds;
  }
  os << ",\"events\":" << s.events_processed;
  if (include_timing) {
    os << ",\"events_per_sec\":" << s.events_per_sec;
  }
  os << ",\"frames_tx\":" << s.frames_tx << ",\"frames_rx\":" << s.frames_rx
     << ",\"frames_lost\":" << s.frames_lost
     << ",\"peak_queue_depth\":" << s.peak_queue_depth;
  if (s.queue_pushes != 0) {
    os << ",\"queue_pushes\":" << s.queue_pushes
       << ",\"queue_pops\":" << s.queue_pops
       << ",\"queue_tombstones_purged\":" << s.queue_tombstones_purged
       << ",\"queue_compactions\":" << s.queue_compactions
       << ",\"queue_ladder_spills\":" << s.queue_ladder_spills
       << ",\"queue_ladder_rebuckets\":" << s.queue_ladder_rebuckets
       << ",\"queue_peak_raw\":" << s.queue_peak_raw;
  }
  if (s.payload_acquires != 0) {
    os << ",\"payload_acquires\":" << s.payload_acquires
       << ",\"payload_slab_allocs\":" << s.payload_slab_allocs
       << ",\"payload_peak_live\":" << s.payload_peak_live;
  }
  if (s.net_memory_bytes != 0 || s.routing_memory_bytes != 0 ||
      s.servent_memory_bytes != 0) {
    os << ",\"net_memory_bytes\":" << s.net_memory_bytes
       << ",\"routing_memory_bytes\":" << s.routing_memory_bytes
       << ",\"servent_memory_bytes\":" << s.servent_memory_bytes;
  }
  if (s.churn_deaths != 0 || s.invariant_violations != 0 ||
      s.overlay_disrupted_s != 0.0) {
    os << ",\"churn_deaths\":" << s.churn_deaths
       << ",\"invariant_violations\":" << s.invariant_violations
       << ",\"overlay_disrupted_s\":" << s.overlay_disrupted_s;
  }
  os << "}";
}

}  // namespace

std::string seed_line_json(const SeedTelemetry& seed, bool include_timing) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  write_seed_line(os, seed, include_timing);
  return os.str();
}

std::string RunTelemetry::to_jsonl() const {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\"type\":\"experiment\",\"seeds\":" << seeds_.size()
     << ",\"threads\":" << threads_used_
     << ",\"wall_s\":" << total_wall_seconds_
     << ",\"events_per_sec\":" << aggregate_events_per_sec();
  if (!cache_key_.empty()) os << ",\"cache_key\":\"" << cache_key_ << "\"";
  os << "}\n";
  for (const auto& s : seeds_) {
    write_seed_line(os, s, /*include_timing=*/true);
    os << "\n";
  }
  return os.str();
}

bool RunTelemetry::write_jsonl(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_jsonl();
  return static_cast<bool>(os);
}

}  // namespace p2p::scenario
