// Full scenario description — paper Table 2 plus everything beneath it.
//
// Defaults reproduce the paper's setup: 100 m x 100 m area, 10 m radio
// range, 50 nodes with 75% of them in the P2P overlay, random-waypoint
// mobility at <= 1 m/s with <= 100 s pauses, 20 Zipf-distributed files
// with MAXFREQ 40%, 3600 simulated seconds.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "fault/params.hpp"
#include "net/energy.hpp"
#include "net/mac.hpp"
#include "routing/aodv.hpp"
#include "routing/dsdv.hpp"
#include "routing/dsr.hpp"
#include "util/config.hpp"

namespace p2p::scenario {

enum class QualifierDist : std::uint8_t {
  kUniformPermutation,  // a random total order (default)
  kTwoClass,            // 20% strong devices, 80% weak (notebooks vs PDAs)
};

enum class RoutingProtocol : std::uint8_t {
  kAodv,  // on-demand, what the paper used (best on high mobility [13])
  kDsdv,  // proactive comparison protocol (bench/ablation_routing)
  kDsr,   // on-demand source routing, the third protocol of [13]
};

enum class MobilityKind : std::uint8_t {
  kRandomWaypoint,   // the paper's model (human walking)
  kRandomDirection,  // edge-biased alternative [Camp 2002]
  kGaussMarkov,      // smooth AR(1) speed/heading [Camp 2002]
};

struct Parameters {
  // ---- world ----
  double area_width = 100.0;
  double area_height = 100.0;
  double radio_range = 10.0;
  std::size_t num_nodes = 50;
  double p2p_fraction = 0.75;
  double duration_s = 3600.0;
  std::uint64_t seed = 1;

  // ---- mobility ([Camp 2002]; the paper uses Random Waypoint) ----
  bool mobile = true;
  MobilityKind mobility_kind = MobilityKind::kRandomWaypoint;
  double max_speed = 1.0;
  double min_speed = 0.05;
  double max_pause = 100.0;

  // ---- content (§7.2) ----
  std::uint32_t num_files = 20;
  double max_frequency = 0.40;

  // ---- layers ----
  core::AlgorithmKind algorithm = core::AlgorithmKind::kRegular;
  core::P2pParams p2p;
  RoutingProtocol routing_protocol = RoutingProtocol::kAodv;
  routing::AodvParams aodv;
  routing::DsdvParams dsdv;
  routing::DsrParams dsr;
  net::MacParams mac;
  net::EnergyParams energy;
  QualifierDist qualifier_dist = QualifierDist::kUniformPermutation;

  // ---- churn (future-work experiments, §8) ----
  // Legacy aliases for fault.churn_rate_per_hour / fault.mean_downtime_s;
  // kept for existing configs, folded into `fault` when it is untouched.
  double churn_death_rate_per_hour = 0.0;
  sim::SimTime churn_down_time = 120.0;  // how long a failed node stays down

  // ---- fault injection (src/fault: churn, blackouts, loss bursts) ----
  fault::FaultParams fault;
  // Cross-layer invariant sweep interval; 0 disables the checker entirely
  // (it is also swept at every fault boundary when enabled).
  double invariant_check_interval_s = 0.0;
  // Overlay-repair / orphan sampling cadence while faults are active.
  double fault_monitor_interval_s = 10.0;

  // ---- measurement ----
  double overlay_sample_interval_s = 300.0;  // overlay-graph metric samples
  double join_stagger_s = 2.0;               // servents join within [0, x)

  // ---- parallel execution (conservative sharded DES; sim/sharded.hpp) ----
  // sim_threads is pure execution: any value >= 1 produces bit-identical
  // results for a given shard count. sim_shards selects the MODEL — the
  // spatial decomposition and per-shard RNG streams — so changing it (or
  // letting it auto-derive differently) is a different deterministic
  // schedule, like changing the seed. 1 thread with the default shard
  // derivation (0) keeps the single-Simulator sequential path, byte-for-
  // byte identical to pre-parallel builds.
  std::size_t sim_threads = 1;
  // 0 = auto: 1 shard when sim_threads == 1 (the legacy path); otherwise a
  // population-scaled count (64 at >= 8192 nodes, else 8) independent of
  // sim_threads so thread sweeps compare the same model.
  std::size_t sim_shards = 0;
  // Event-queue backend gate (cf. RoutingTable's population_hint and
  // NeighborIndex's incremental_index_min_nodes): populations at or above
  // this threshold use the O(1)-amortized ladder queue, smaller ones keep
  // the 4-ary heap, whose constants win below the crossover (methodology:
  // docs/performance.md). Both backends pop in the identical strict
  // (time, seq) order, so results are bit-identical either way — this is
  // a pure execution knob. 0 forces the ladder everywhere; a huge value
  // forces the heap.
  std::size_t ladder_queue_min_nodes = 8192;

  /// Whether this scenario's population selects the ladder event queue.
  bool use_ladder_queue() const noexcept {
    return num_nodes >= ladder_queue_min_nodes;
  }

  /// The shard count actually used for this scenario (resolves the 0-auto
  /// rule above). 1 means sequential execution.
  std::size_t effective_sim_shards() const noexcept {
    if (sim_shards > 0) return sim_shards;
    if (sim_threads <= 1) return 1;
    return num_nodes >= 8192 ? 64 : 8;
  }

  /// Number of P2P members for the current node count.
  std::size_t num_members() const noexcept {
    const auto m = static_cast<std::size_t>(
        static_cast<double>(num_nodes) * p2p_fraction + 0.5);
    return m == 0 ? 1 : m;
  }

  /// Apply "key=value" overrides (keys listed in docs/parameters; unknown
  /// keys are reported via the return value). Returns empty string on
  /// success, else a description of the first problem.
  std::string apply(const util::Config& config);

  /// One-line summary for bench headers.
  std::string summary() const;
};

}  // namespace p2p::scenario
