#include "scenario/payload_clone.hpp"

#include "core/messages.hpp"
#include "routing/dsdv.hpp"
#include "routing/dsr.hpp"
#include "routing/messages.hpp"
#include "util/assert.hpp"

namespace p2p::scenario {

namespace {

net::AppPayloadPtr clone_app(const net::AppPayload& src,
                             net::PayloadPools& pools) {
  using core::MsgType;
  switch (static_cast<MsgType>(src.kind)) {
    case MsgType::kConnectProbe:
      return pools.make_from(static_cast<const core::ConnectProbe&>(src));
    case MsgType::kConnectOffer:
      return pools.make_from(static_cast<const core::ConnectOffer&>(src));
    case MsgType::kConnectRequest:
      return pools.make_from(static_cast<const core::ConnectRequest&>(src));
    case MsgType::kConnectAck:
      return pools.make_from(static_cast<const core::ConnectAck&>(src));
    case MsgType::kPing:
      return pools.make_from(static_cast<const core::Ping&>(src));
    case MsgType::kPong:
      return pools.make_from(static_cast<const core::Pong&>(src));
    case MsgType::kQuery:
      return pools.make_from(static_cast<const core::Query&>(src));
    case MsgType::kQueryHit:
      return pools.make_from(static_cast<const core::QueryHit&>(src));
    case MsgType::kCapture:
      return pools.make_from(static_cast<const core::Capture&>(src));
    case MsgType::kSlaveRequest:
      return pools.make_from(static_cast<const core::SlaveRequest&>(src));
    case MsgType::kSlaveAccept:
      return pools.make_from(static_cast<const core::SlaveAccept&>(src));
    case MsgType::kSlaveConfirm:
      return pools.make_from(static_cast<const core::SlaveConfirm&>(src));
    case MsgType::kSlaveReject:
      return pools.make_from(static_cast<const core::SlaveReject&>(src));
    case MsgType::kBye:
      return pools.make_from(static_cast<const core::Bye&>(src));
  }
  P2P_ASSERT_MSG(false, "unknown app payload kind");
  return {};
}

}  // namespace

net::FramePayloadPtr clone_frame_payload(const net::FramePayload& src,
                                         net::PayloadPools& pools) {
  using routing::FrameKind;
  switch (static_cast<FrameKind>(src.kind)) {
    case FrameKind::kRreq:
      return pools.make_from(static_cast<const routing::Rreq&>(src));
    case FrameKind::kRrep:
      return pools.make_from(static_cast<const routing::Rrep&>(src));
    case FrameKind::kRerr:
      return pools.make_from(static_cast<const routing::Rerr&>(src));
    case FrameKind::kData: {
      const auto& data = static_cast<const routing::DataMsg&>(src);
      auto ref = pools.make_from(data);
      if (data.app) ref.edit()->app = clone_app(*data.app, pools);
      return ref;
    }
    case FrameKind::kFlood: {
      const auto& flood = static_cast<const routing::FloodMsg&>(src);
      auto ref = pools.make_from(flood);
      if (flood.app) ref.edit()->app = clone_app(*flood.app, pools);
      return ref;
    }
    case FrameKind::kDsdvUpdate:
      return pools.make_from(static_cast<const routing::DsdvUpdate&>(src));
    case FrameKind::kDsrRreq:
      return pools.make_from(static_cast<const routing::DsrRreq&>(src));
    case FrameKind::kDsrRrep:
      return pools.make_from(static_cast<const routing::DsrRrep&>(src));
    case FrameKind::kDsrRerr:
      return pools.make_from(static_cast<const routing::DsrRerr&>(src));
    case FrameKind::kDsrData: {
      const auto& data = static_cast<const routing::DsrData&>(src);
      auto ref = pools.make_from(data);
      if (data.app) ref.edit()->app = clone_app(*data.app, pools);
      return ref;
    }
  }
  P2P_ASSERT_MSG(false, "unknown frame payload kind");
  return {};
}

}  // namespace p2p::scenario
