// Deep-copy of frame payloads between per-shard payload pools.
//
// Sharded execution (net::Network::enable_sharding) keeps one PayloadPools
// per lane so refcounts stay non-atomic; a frame crossing shards must be
// re-materialized in the destination lane's pools. The Network layer never
// inspects payloads, so the scenario layer — which links against every
// concrete message type — supplies this cloner.
#pragma once

#include "net/payload.hpp"
#include "net/types.hpp"

namespace p2p::scenario {

/// net::Network::FrameCloner: clones `src` (and any nested app payload)
/// into `pools`. Called only at window barriers, single-threaded.
net::FramePayloadPtr clone_frame_payload(const net::FramePayload& src,
                                         net::PayloadPools& pools);

}  // namespace p2p::scenario
