#include "scenario/parameters.hpp"

#include <set>
#include <sstream>

#include "core/factory.hpp"
#include "util/strings.hpp"

namespace p2p::scenario {

std::string Parameters::apply(const util::Config& config) {
  // Daemon-hardened application: every key must be known AND parse as its
  // declared type. The pre-serving behavior — a typo'd key or a value like
  // "fifty" silently keeping the default — is exactly wrong for untrusted
  // input: the caller believes an override took effect when it did not.
  // The first problem is reported ("key 'x': ..."); later getters no-op.
  std::string err;
  std::set<std::string, std::less<>> pending;
  for (auto& key : config.keys()) pending.insert(std::move(key));

  const auto take = [&](const char* key) -> std::optional<std::string> {
    pending.erase(key);
    return config.get_string(key);
  };
  const auto get_d = [&](const char* key, double* out) {
    const auto s = take(key);
    if (!s || !err.empty()) return;
    if (const auto v = util::parse_double(*s)) *out = *v;
    else err = std::string("key '") + key + "': invalid number '" + *s + "'";
  };
  const auto get_u64 = [&](const char* key, std::uint64_t* out) {
    const auto s = take(key);
    if (!s || !err.empty()) return;
    const auto v = util::parse_int(*s);
    if (!v || *v < 0) {
      err = std::string("key '") + key + "': invalid non-negative integer '" +
            *s + "'";
      return;
    }
    *out = static_cast<std::uint64_t>(*v);
  };
  const auto get_sz = [&](const char* key, std::size_t* out) {
    std::uint64_t v = *out;  // untouched unless present and valid
    get_u64(key, &v);
    *out = static_cast<std::size_t>(v);
  };
  const auto get_i = [&](const char* key, int* out) {
    const auto s = take(key);
    if (!s || !err.empty()) return;
    const auto v = util::parse_int(*s);
    if (!v || *v < -2147483648LL || *v > 2147483647LL) {
      err = std::string("key '") + key + "': invalid integer '" + *s + "'";
      return;
    }
    *out = static_cast<int>(*v);
  };
  const auto get_b = [&](const char* key, bool* out) {
    const auto s = take(key);
    if (!s || !err.empty()) return;
    if (const auto v = util::parse_bool(*s)) *out = *v;
    else err = std::string("key '") + key + "': invalid boolean '" + *s + "'";
  };

  get_d("area_width", &area_width);
  get_d("area_height", &area_height);
  get_d("radio_range", &radio_range);
  get_sz("num_nodes", &num_nodes);
  get_d("p2p_fraction", &p2p_fraction);
  get_d("duration_s", &duration_s);
  get_u64("seed", &seed);

  get_b("mobile", &mobile);
  if (const auto v = take("mobility"); v && err.empty()) {
    if (*v == "waypoint") mobility_kind = MobilityKind::kRandomWaypoint;
    else if (*v == "direction") mobility_kind = MobilityKind::kRandomDirection;
    else if (*v == "gauss_markov") mobility_kind = MobilityKind::kGaussMarkov;
    else return "unknown mobility: " + *v;
  }
  get_d("max_speed", &max_speed);
  get_d("min_speed", &min_speed);
  get_d("max_pause", &max_pause);

  {
    std::uint64_t files = num_files;
    get_u64("num_files", &files);
    num_files = static_cast<std::uint32_t>(files);
  }
  get_d("max_frequency", &max_frequency);

  if (const auto v = take("algorithm"); v && err.empty()) {
    const auto kind = core::parse_algorithm(*v);
    if (!kind) return "unknown algorithm: " + *v;
    algorithm = *kind;
  }

  get_i("maxnconn", &p2p.maxnconn);
  get_i("nhops_initial", &p2p.nhops_initial);
  get_i("maxnhops", &p2p.maxnhops);
  get_i("nhops_basic", &p2p.nhops_basic);
  get_i("maxdist", &p2p.maxdist);
  get_i("maxnslaves", &p2p.maxnslaves);
  get_i("query_ttl", &p2p.query_ttl);
  get_d("timer_initial", &p2p.timer_initial);
  get_d("maxtimer", &p2p.maxtimer);
  get_d("maxtimer_master", &p2p.maxtimer_master);
  get_d("ping_interval", &p2p.ping_interval);
  get_d("pong_timeout", &p2p.pong_timeout);
  get_d("silence_timeout", &p2p.silence_timeout);
  get_d("offer_window", &p2p.offer_window);
  get_d("handshake_timeout", &p2p.handshake_timeout);
  get_d("query_response_wait", &p2p.query_response_wait);
  get_d("query_gap_min", &p2p.query_gap_min);
  get_d("query_gap_max", &p2p.query_gap_max);
  get_b("query_by_popularity", &p2p.query_by_popularity);
  get_b("enable_queries", &p2p.enable_queries);

  if (const auto v = take("routing_protocol"); v && err.empty()) {
    if (*v == "aodv") routing_protocol = RoutingProtocol::kAodv;
    else if (*v == "dsdv") routing_protocol = RoutingProtocol::kDsdv;
    else if (*v == "dsr") routing_protocol = RoutingProtocol::kDsr;
    else return "unknown routing_protocol: " + *v;
  }
  get_d("aodv_active_route_timeout", &aodv.active_route_timeout);
  get_d("dsdv_update_interval", &dsdv.periodic_update_interval);
  get_d("dsdv_stale_timeout", &dsdv.route_stale_timeout);
  get_d("mac_bandwidth_bps", &mac.bandwidth_bps);
  get_d("mac_loss_probability", &mac.loss_probability);
  get_d("mac_gray_zone_fraction", &mac.gray_zone_fraction);
  get_d("battery_j", &energy.battery_j);
  get_d("churn_death_rate_per_hour", &churn_death_rate_per_hour);
  get_d("churn_down_time", &churn_down_time);

  get_d("churn_rate", &fault.churn_rate_per_hour);
  get_d("mean_uptime", &fault.mean_uptime_s);
  get_d("mean_downtime", &fault.mean_downtime_s);
  get_d("link_blackout_rate", &fault.blackout_rate_per_hour);
  get_d("link_blackout_duration", &fault.blackout_duration_s);
  get_d("loss_burst_rate", &fault.burst_rate_per_hour);
  get_d("loss_burst_duration", &fault.burst_duration_s);
  get_d("loss_burst_loss", &fault.burst_loss_probability);
  get_d("crash_run_at", &fault.crash_run_at_s);
  get_d("invariant_check_interval", &invariant_check_interval_s);
  get_d("fault_monitor_interval", &fault_monitor_interval_s);

  if (const auto v = take("qualifier_dist"); v && err.empty()) {
    if (*v == "uniform") qualifier_dist = QualifierDist::kUniformPermutation;
    else if (*v == "two_class") qualifier_dist = QualifierDist::kTwoClass;
    else return "unknown qualifier_dist: " + *v;
  }
  get_d("overlay_sample_interval_s", &overlay_sample_interval_s);
  get_d("join_stagger_s", &join_stagger_s);

  get_sz("sim_threads", &sim_threads);
  get_sz("sim_shards", &sim_shards);
  get_sz("ladder_queue_min_nodes", &ladder_queue_min_nodes);

  if (!err.empty()) return err;
  if (!pending.empty()) return "unknown key: " + *pending.begin();

  // Range validation. Every rule here exists because the daemon feeds this
  // from the network: a value that would wedge the simulator (zero area,
  // negative duration, probability > 1) must be an error, not a 100%-CPU
  // surprise discovered inside a worker.
  if (num_nodes == 0) return "num_nodes must be > 0";
  if (area_width <= 0.0 || area_height <= 0.0) {
    return "area dimensions must be > 0";
  }
  if (radio_range <= 0.0) return "radio_range must be > 0";
  if (duration_s <= 0.0) return "duration_s must be > 0";
  if (p2p_fraction <= 0.0 || p2p_fraction > 1.0) {
    return "p2p_fraction must be in (0, 1]";
  }
  if (min_speed < 0.0 || max_speed < min_speed) {
    return "need 0 <= min_speed <= max_speed";
  }
  if (max_pause < 0.0) return "max_pause must be >= 0";
  if (num_files == 0) return "num_files must be > 0";
  if (max_frequency <= 0.0 || max_frequency > 1.0) {
    return "max_frequency must be in (0, 1]";
  }
  if (mac.bandwidth_bps <= 0.0) return "mac_bandwidth_bps must be > 0";
  if (mac.loss_probability < 0.0 || mac.loss_probability > 1.0) {
    return "mac_loss_probability must be in [0, 1]";
  }
  if (mac.gray_zone_fraction < 0.0 || mac.gray_zone_fraction > 1.0) {
    return "mac_gray_zone_fraction must be in [0, 1]";
  }
  if (energy.battery_j <= 0.0) return "battery_j must be > 0";
  if (churn_death_rate_per_hour < 0.0 || fault.churn_rate_per_hour < 0.0 ||
      fault.blackout_rate_per_hour < 0.0 || fault.burst_rate_per_hour < 0.0) {
    return "fault rates must be >= 0";
  }
  if (fault.mean_uptime_s < 0.0 || fault.mean_downtime_s < 0.0 ||
      fault.blackout_duration_s < 0.0 || fault.burst_duration_s < 0.0 ||
      churn_down_time < 0.0) {
    return "fault durations must be >= 0";
  }
  if (fault.burst_loss_probability < 0.0 ||
      fault.burst_loss_probability > 1.0) {
    return "loss_burst_loss must be in [0, 1]";
  }
  if (invariant_check_interval_s < 0.0 || fault_monitor_interval_s < 0.0 ||
      overlay_sample_interval_s < 0.0 || join_stagger_s < 0.0) {
    return "intervals must be >= 0";
  }
  if (sim_threads == 0) return "sim_threads must be > 0";
  if (fault.crash_run_enabled() && effective_sim_shards() > 1) {
    return "crash_run_at requires sequential execution (sim_shards <= 1)";
  }
  return {};
}

std::string Parameters::summary() const {
  std::ostringstream os;
  os << core::algorithm_name(algorithm) << " | " << num_nodes << " nodes ("
     << num_members() << " p2p), " << area_width << "x" << area_height
     << " m, range " << radio_range << " m, " << duration_s << " s, seed "
     << seed;
  return os.str();
}

}  // namespace p2p::scenario
