#include "util/config.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace p2p::util {

bool Config::parse_ini(std::string_view text, std::string* error) {
  std::string section;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        if (error != nullptr) {
          std::ostringstream os;
          os << "line " << lineno << ": malformed section header";
          *error = os.str();
        }
        return false;
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "line " << lineno << ": expected key=value";
        *error = os.str();
      }
      return false;
    }
    std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "line " << lineno << ": empty key";
        *error = os.str();
      }
      return false;
    }
    if (!section.empty()) key = section + "." + key;
    set(std::move(key), value);
  }
  return true;
}

bool Config::parse_override(std::string_view kv, std::string* error) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string_view::npos || trim(kv.substr(0, eq)).empty()) {
    if (error != nullptr) *error = "override must be key=value";
    return false;
  }
  set(std::string(trim(kv.substr(0, eq))), std::string(trim(kv.substr(eq + 1))));
  return true;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const noexcept {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::get_string(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<long long> Config::get_int(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  return parse_int(*s);
}

std::optional<double> Config::get_double(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  return parse_double(*s);
}

std::optional<bool> Config::get_bool(std::string_view key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  return parse_bool(*s);
}

std::string Config::get_string_or(std::string_view key, std::string_view fallback) const {
  return get_string(key).value_or(std::string(fallback));
}

long long Config::get_int_or(std::string_view key, long long fallback) const {
  return get_int(key).value_or(fallback);
}

double Config::get_double_or(std::string_view key, double fallback) const {
  return get_double(key).value_or(fallback);
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  return get_bool(key).value_or(fallback);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace p2p::util
