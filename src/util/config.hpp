// Key/value configuration store with typed accessors and INI-style parsing.
//
// Scenario parameters (paper Table 2 plus the timers the paper leaves
// unspecified) have strongly-typed defaults in scenario/parameters.hpp;
// Config is the stringly-typed layer used to override them from files or
// command lines ("key=value" pairs).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace p2p::util {

class Config {
 public:
  Config() = default;

  /// Parse INI-style text: `key = value` lines, `#`/`;` comments,
  /// `[section]` headers turn keys into "section.key".
  /// Returns false (and stops) on the first malformed line; `error` gets a
  /// human-readable description.
  bool parse_ini(std::string_view text, std::string* error = nullptr);

  /// Parse a single "key=value" override (as given on a command line).
  bool parse_override(std::string_view kv, std::string* error = nullptr);

  void set(std::string key, std::string value);
  bool contains(std::string_view key) const noexcept;

  std::optional<std::string> get_string(std::string_view key) const;
  std::optional<long long> get_int(std::string_view key) const;
  std::optional<double> get_double(std::string_view key) const;
  std::optional<bool> get_bool(std::string_view key) const;

  std::string get_string_or(std::string_view key, std::string_view fallback) const;
  long long get_int_or(std::string_view key, long long fallback) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  /// Keys in lexicographic order (stable dumps for EXPERIMENTS.md).
  std::vector<std::string> keys() const;

  std::size_t size() const noexcept { return values_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace p2p::util
