// Assertion macros for programming-error checks.
//
// Recoverable conditions (bad input files, protocol violations from remote
// peers, ...) are reported via status returns; P2P_ASSERT is strictly for
// invariants whose violation means the program itself is wrong.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace p2p::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) noexcept {
  std::fprintf(stderr, "p2pmanet assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace p2p::util

// Always-on assertion (simulation correctness beats the few ns it costs).
#define P2P_ASSERT(expr)                                               \
  ((expr) ? static_cast<void>(0)                                       \
          : ::p2p::util::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define P2P_ASSERT_MSG(expr, msg)                                      \
  ((expr) ? static_cast<void>(0)                                       \
          : ::p2p::util::assert_fail(#expr, __FILE__, __LINE__, (msg)))

// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define P2P_DASSERT(expr) static_cast<void>(0)
#else
#define P2P_DASSERT(expr) P2P_ASSERT(expr)
#endif
