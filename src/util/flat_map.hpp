// Open-addressed hash map for dense-id keyed per-node state.
//
// The mega-scale rule is that every per-node structure must be O(touched),
// not O(n): a routing table holds Route entries for the destinations a
// node actually learned, a blackout ledger holds the links actually
// suppressed — never an array indexed by the whole population. This map is
// the shared representation: linear probing over a power-of-two slot
// array, Fibonacci hashing, backward-shift deletion (no tombstones), and
// no per-entry heap nodes. Keys and values live in parallel arrays so a
// probe walks a dense key array (16 NodeId keys per cache line) and only
// touches the value array on a hit — lookups stay cheap even when T is a
// fat struct like a routing Route.
//
// Determinism: slot layout is a pure function of the insert/erase history
// (no pointer hashing, no randomized seeds), so iteration order — and
// anything derived from it — is bit-identical across runs and platforms.
// Callers that need a canonical order (e.g. ascending destinations for
// RERR emission) sort the extracted keys; iteration here is for sweeps
// whose output order is normalized by the caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace p2p::util {

/// `EmptyKey` is a reserved key value that must never be inserted (for
/// NodeId keys use kInvalidNode, for packed pair keys use ~0).
template <typename Key, typename T, Key EmptyKey>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Value for `key`, or nullptr.
  T* find(Key key) noexcept {
    if (keys_.empty()) return nullptr;
    const std::size_t i = probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }
  const T* find(Key key) const noexcept {
    if (keys_.empty()) return nullptr;
    const std::size_t i = probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }

  /// Value for `key`, default-constructing it on first touch. Sets
  /// `*inserted` (if non-null) to whether this was a first touch.
  T& get_or_insert(Key key, bool* inserted = nullptr) {
    P2P_ASSERT(key != EmptyKey);
    // Grow at 5/8 load: linear probing degrades sharply past ~2/3 (a miss
    // at 7/8 load walks ~30 slots on average); the extra slots are cheap
    // because keys and values are split and only keys are probed.
    if (keys_.empty() || (size_ + 1) * 8 > keys_.size() * 5) grow();
    const std::size_t i = probe(key);
    if (keys_[i] == key) {
      if (inserted != nullptr) *inserted = false;
      return values_[i];
    }
    keys_[i] = key;
    values_[i] = T{};
    ++size_;
    if (inserted != nullptr) *inserted = true;
    return values_[i];
  }

  /// Remove `key` if present (backward-shift: later probes stay reachable
  /// without tombstones). Returns whether it was present.
  bool erase(Key key) noexcept {
    if (keys_.empty()) return false;
    std::size_t i = probe(key);
    if (keys_[i] != key) return false;
    const std::size_t mask = keys_.size() - 1;
    for (;;) {
      keys_[i] = EmptyKey;
      values_[i] = T{};
      std::size_t j = i;
      for (;;) {
        j = (j + 1) & mask;
        if (keys_[j] == EmptyKey) {
          --size_;
          return true;
        }
        const std::size_t h = home(keys_[j], mask);
        // Move j back into the hole iff its probe path passes through i.
        if (((j - h) & mask) >= ((j - i) & mask)) {
          keys_[i] = keys_[j];
          values_[i] = std::move(values_[j]);
          i = j;
          break;
        }
      }
    }
  }

  /// Drop every entry; slot storage (capacity) is retained.
  void clear() noexcept {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != EmptyKey) {
        keys_[i] = EmptyKey;
        values_[i] = T{};
      }
    }
    size_ = 0;
  }

  /// Visit every entry in slot order (deterministic, NOT sorted):
  /// fn(Key, T&) / fn(Key, const T&).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != EmptyKey) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != EmptyKey) fn(keys_[i], values_[i]);
    }
  }

  /// Bytes resident in the slot arrays (memory accounting).
  std::size_t memory_bytes() const noexcept {
    return keys_.size() * sizeof(Key) + values_.size() * sizeof(T);
  }

 private:
  static std::size_t home(Key key, std::size_t mask) noexcept {
    // Fibonacci multiplicative hash; the high bits land on [0, mask].
    const std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> 32) & mask;
  }
  /// Slot containing `key`, or the empty slot where it would go.
  std::size_t probe(Key key) const noexcept {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = home(key, mask);
    while (keys_[i] != EmptyKey && keys_[i] != key) {
      i = (i + 1) & mask;
    }
    return i;
  }
  void grow() {
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<T> old_values = std::move(values_);
    const std::size_t cap = old_keys.empty() ? 16 : old_keys.size() * 2;
    keys_.assign(cap, EmptyKey);
    values_.assign(cap, T{});
    const std::size_t mask = cap - 1;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] == EmptyKey) continue;
      std::size_t i = home(old_keys[s], mask);
      while (keys_[i] != EmptyKey) i = (i + 1) & mask;
      keys_[i] = old_keys[s];
      values_[i] = std::move(old_values[s]);
    }
  }

  // Parallel arrays, power-of-two size, linear probing.
  std::vector<Key> keys_;
  std::vector<T> values_;
  std::size_t size_ = 0;
};

}  // namespace p2p::util
