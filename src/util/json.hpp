// Minimal JSON reader/writer for the serving daemon's wire protocol.
//
// The daemon (src/serve) exchanges newline-delimited JSON with untrusted
// clients, so this parser is written for hostile input: bounded nesting
// depth, no recursion past that bound, every syntax error reported with a
// byte offset, and no exceptions on any input. It builds a small DOM in
// which every scalar also keeps its *raw source text*, so a value can be
// re-emitted byte-for-byte (the field-projection path splices raw number
// spans instead of round-tripping through double formatting).
//
// This is deliberately not a general JSON library: no unicode validation
// beyond \uXXXX pass-through, numbers parsed with strtod semantics, and
// object keys kept in source order (duplicates: last one wins on lookup).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2p::util {

class JsonValue {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;  // decoded (escapes resolved) for Kind::kString
  std::string raw;     // exact source span of this value (scalars only)
  std::vector<JsonValue> array;
  // Source order preserved; lookup scans (objects here are tiny).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_bool() const noexcept { return kind == Kind::kBool; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_object() const noexcept { return kind == Kind::kObject; }

  /// Member of an object (nullptr when absent or not an object). With
  /// duplicate keys the last occurrence wins, matching common parsers.
  const JsonValue* find(std::string_view key) const noexcept {
    const JsonValue* hit = nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) hit = &v;
    }
    return hit;
  }

  /// Number as a non-negative integer (nullopt when not a number, not
  /// integral, negative, or too large for uint64).
  std::optional<unsigned long long> as_uint() const noexcept;
};

/// Parse one JSON value spanning the whole of `text` (surrounding
/// whitespace allowed, trailing garbage is an error). Returns false and
/// fills `error` ("offset N: message") on any malformed input; never
/// throws. `max_depth` bounds array/object nesting.
bool parse_json(std::string_view text, JsonValue* out, std::string* error,
                std::size_t max_depth = 32);

/// Append the JSON string literal for `s` (quotes included, control
/// characters and '"'/'\\' escaped) to `out`.
void append_json_string(std::string* out, std::string_view s);

/// Convenience: quoted/escaped copy of `s`.
std::string json_quote(std::string_view s);

}  // namespace p2p::util
