#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace p2p::util {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view s) noexcept {
  const std::string v = to_lower(trim(s));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace p2p::util
