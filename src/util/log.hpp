// Minimal leveled logger.
//
// Simulation components tag records with a component name ("aodv", "p2p",
// ...). The global level gates emission; per-component overrides allow
// focused debugging of a single layer. Logging from simulation code should
// go through the LOG_* macros so that disabled levels cost a single branch.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace p2p::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parse "trace" / "debug" / "info" / "warn" / "error" / "off".
/// Unknown strings map to kInfo.
LogLevel parse_log_level(std::string_view s) noexcept;

const char* log_level_name(LogLevel level) noexcept;

class Logger {
 public:
  static Logger& instance() noexcept;

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Route records to a file instead of stderr. Empty path resets to stderr.
  void set_output_file(const std::string& path);

  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Emit one record. `sim_time` < 0 means "outside simulation".
  void write(LogLevel level, std::string_view component, double sim_time,
             std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  void* file_ = nullptr;  // FILE*; void* keeps <cstdio> out of the header
};

/// Stream-style record builder used by the LOG_* macros.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component, double sim_time)
      : level_(level), component_(component), sim_time_(sim_time) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { Logger::instance().write(level_, component_, sim_time_, os_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  double sim_time_;
  std::ostringstream os_;
};

}  // namespace p2p::util

#define P2P_LOG(level, component, sim_time)                       \
  if (!::p2p::util::Logger::instance().enabled(level)) {          \
  } else                                                          \
    ::p2p::util::LogRecord(level, component, sim_time)

#define LOG_TRACE(component, t) P2P_LOG(::p2p::util::LogLevel::kTrace, component, t)
#define LOG_DEBUG(component, t) P2P_LOG(::p2p::util::LogLevel::kDebug, component, t)
#define LOG_INFO(component, t) P2P_LOG(::p2p::util::LogLevel::kInfo, component, t)
#define LOG_WARN(component, t) P2P_LOG(::p2p::util::LogLevel::kWarn, component, t)
#define LOG_ERROR(component, t) P2P_LOG(::p2p::util::LogLevel::kError, component, t)
