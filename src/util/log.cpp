#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace p2p::util {
namespace {
std::mutex g_log_mutex;
}  // namespace

LogLevel parse_log_level(std::string_view s) noexcept {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off" || s == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::set_output_file(const std::string& path) {
  std::scoped_lock lock(g_log_mutex);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
  if (!path.empty()) {
    file_ = std::fopen(path.c_str(), "w");
  }
}

void Logger::write(LogLevel level, std::string_view component, double sim_time,
                   std::string_view message) {
  std::scoped_lock lock(g_log_mutex);
  auto* out = file_ != nullptr ? static_cast<std::FILE*>(file_) : stderr;
  if (sim_time >= 0.0) {
    std::fprintf(out, "[%10.4f] %-5s %-8.*s %.*s\n", sim_time,
                 log_level_name(level), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(out, "[      ----] %-5s %-8.*s %.*s\n", log_level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace p2p::util
