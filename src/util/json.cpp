#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace p2p::util {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      fill_error(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      fill_error(error);
      return false;
    }
    return true;
  }

 private:
  bool parse_value(JsonValue* out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        return parse_string_value(out);
      case 't':
      case 'f':
        return parse_bool(out);
      case 'n':
        return parse_null(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }
  }

  bool parse_object(JsonValue* out, std::size_t depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(&key, nullptr)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, std::size_t depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(JsonValue* out) {
    const std::size_t start = pos_;
    out->kind = JsonValue::Kind::kString;
    if (!parse_string(&out->string, nullptr)) return false;
    out->raw = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  /// Decode a JSON string literal starting at pos_ (on the opening '"').
  bool parse_string(std::string* out, const void*) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (requests are config keys and
          // INI values — exotic unicode only needs to not corrupt state).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!skip_digits()) return fail("expected digit");
    if (peek() == '.') {
      ++pos_;
      if (!skip_digits()) return fail("expected digit after '.'");
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!skip_digits()) return fail("expected exponent digit");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->raw = std::string(text_.substr(start, pos_ - start));
    out->number = std::strtod(out->raw.c_str(), nullptr);
    if (!std::isfinite(out->number)) return fail("number out of range");
    return true;
  }

  bool parse_bool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      out->raw = "true";
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      out->raw = "false";
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      out->raw = "null";
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool skip_digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  /// One-past-the-end reads as '\0' so callers can compare freely.
  char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool fail(const char* message) {
    if (error_message_ == nullptr) {
      error_message_ = message;
      error_pos_ = pos_;
    }
    return false;
  }

  void fill_error(std::string* error) const {
    if (error == nullptr) return;
    char buf[128];
    std::snprintf(buf, sizeof buf, "offset %zu: %s", error_pos_,
                  error_message_ != nullptr ? error_message_ : "parse error");
    *error = buf;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  const char* error_message_ = nullptr;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<unsigned long long> JsonValue::as_uint() const noexcept {
  if (kind != Kind::kNumber) return std::nullopt;
  if (number < 0.0 || number != std::floor(number)) return std::nullopt;
  // Exact uint64 representation tops out at 2^53 for doubles; seeds and
  // counts live far below that.
  if (number > 9007199254740992.0) return std::nullopt;
  return static_cast<unsigned long long>(number);
}

bool parse_json(std::string_view text, JsonValue* out, std::string* error,
                std::size_t max_depth) {
  Parser parser(text, max_depth);
  return parser.parse(out, error);
}

void append_json_string(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_json_string(&out, s);
  return out;
}

}  // namespace p2p::util
