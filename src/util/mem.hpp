// Process-memory probes for the mega-scale benches and memory telemetry.
//
// Two views, deliberately distinct:
//  - peak_rss_bytes(): OS-reported high-water mark of resident memory for
//    the whole process (getrusage). This is the number the megascale bench
//    records — it captures everything, allocator slack included, and is
//    what actually limits how many nodes fit on a machine.
//  - current_rss_bytes(): instantaneous resident set (/proc/self/statm),
//    useful for before/after deltas around a single build.
//
// Both return 0 on platforms where the probe is unavailable rather than
// failing — callers treat 0 as "not measured".
#pragma once

#include <cstddef>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>

#include <cstdio>
#endif

namespace p2p::util {

/// Peak resident set size of this process, in bytes (0 if unavailable).
inline std::size_t peak_rss_bytes() noexcept {
#if defined(__linux__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Current resident set size of this process, in bytes (0 if unavailable).
inline std::size_t current_rss_bytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

}  // namespace p2p::util
