// Small string utilities shared across modules (no std::format in gcc 12's
// libstdc++, so we keep a few sstream-based helpers here).
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace p2p::util {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Parse helpers returning nullopt on any syntax error (recoverable input
/// errors must not assert).
std::optional<long long> parse_int(std::string_view s) noexcept;
std::optional<double> parse_double(std::string_view s) noexcept;
std::optional<bool> parse_bool(std::string_view s) noexcept;

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Join values with a separator using operator<<.
template <typename Range>
std::string join(const Range& values, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& v : values) {
    if (!first) os << sep;
    first = false;
    os << v;
  }
  return os.str();
}

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace p2p::util
