// Cross-layer invariant checker — the correctness oracle for faulted (and
// unfaulted) runs.
//
// Five invariant classes, validated on a configurable interval and at
// every fault boundary:
//   1. no frame is ever delivered to a dead node (checked online via the
//      NetObserver hook — the network filters dead receivers, so a report
//      here means that filter broke);
//   2. overlay connection symmetry: a non-Basic connection held by A
//      toward B implies B holds one toward A, modulo a grace window (a
//      silent close is only noticed by the peer's silence timeout);
//   3. routing-table entries never point at a long-dead next hop with an
//      expiry no legitimate refresh could have produced (reverse traffic
//      from the destination may keep re-arming a route whose next hop is
//      dead — that self-heals on first use — but every refresh is bounded
//      by the route-lifetime constants, so an expiry further out than that
//      bound on a route through a long-dead neighbor is corruption);
//   4. dup-cache internal consistency: insertion times never exceed the
//      current time and the expiry FIFO stays time-ordered;
//   5. per-node consumed energy is monotonically non-decreasing.
//
// The checker is observational: it never mutates simulation state, so
// enabling it cannot change message/energy metrics (it does add sweep
// events, which shifts events_processed — the scenario cache keys on the
// check interval for that reason).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/servent.hpp"
#include "net/dup_cache.hpp"
#include "net/network.hpp"
#include "net/types.hpp"
#include "routing/aodv.hpp"
#include "routing/flood.hpp"
#include "sim/time.hpp"

namespace p2p::fault {

enum class InvariantKind : std::uint8_t {
  kDeliveryToDeadNode,
  kAsymmetricOverlayEdge,
  kStaleRouteToDeadNeighbor,
  kDupCacheCorrupt,
  kEnergyDecreased,
};

const char* invariant_kind_name(InvariantKind kind) noexcept;

struct Violation {
  sim::SimTime time = 0.0;
  net::NodeId node = net::kInvalidNode;
  InvariantKind kind = InvariantKind::kDeliveryToDeadNode;
  std::string detail;  // human-readable context (peer, age, ...)
};

struct InvariantConfig {
  // A one-sided symmetric edge must persist this long before it counts as
  // a violation: a silent close (kTooFar, timeouts, crash) legitimately
  // leaves the peer holding the edge until its own maintenance notices
  // (at most silence_timeout, plus ping/pong latency).
  double asymmetry_grace_s = 300.0;
  // How long its next hop must have been dead before a valid unexpired
  // route is even considered suspicious.
  double stale_route_grace_s = 25.0;
  // The longest lifetime any legitimate refresh can grant a route entry
  // (my_route_timeout, 20 s default, plus slack). A route through a
  // long-dead neighbor whose expiry lies further in the future than this
  // bound cannot have been produced by the protocol.
  double route_lifetime_bound_s = 30.0;
};

class InvariantChecker final : public net::NetObserver {
 public:
  explicit InvariantChecker(net::Network& network,
                            const InvariantConfig& config = {});

  // ---- registration (scenario build time) ----
  void add_servent(core::Servent* servent);
  void add_aodv(routing::AodvAgent* agent);
  void add_flood(routing::FloodService* flood);

  // ---- fault-boundary notifications (injector hooks) ----
  void note_node_down(net::NodeId id, sim::SimTime now);
  void note_node_up(net::NodeId id, sim::SimTime now);

  /// Full cross-layer sweep (invariants 2-5) at the current time.
  void sweep(sim::SimTime now);

  // ---- per-invariant checks. sweep() drives these; they are public so
  // the negative tests can feed deliberately corrupted state directly. ----
  void check_dup_cache(net::NodeId node, const net::DupCache& cache,
                       sim::SimTime now);
  void check_energy(net::NodeId node, double consumed_j, sim::SimTime now);

  // ---- NetObserver (invariant 1, online) ----
  void on_transmit(double time, net::NodeId node, net::NodeId dst,
                   std::size_t bytes) override;
  void on_deliver(double time, net::NodeId node, net::NodeId sender,
                  std::size_t bytes) override;
  void on_drop(double time, net::NodeId sender, net::NodeId dst,
               std::size_t bytes) override;

  /// Recorded violations (capped; see violations_total for the count).
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Exact number of violations observed, including any past the cap.
  std::uint64_t violations_total() const noexcept { return violations_total_; }
  std::uint64_t sweeps_run() const noexcept { return sweeps_; }

 private:
  void report(sim::SimTime time, net::NodeId node, InvariantKind kind,
              std::string detail);
  void sweep_overlay_symmetry(sim::SimTime now);
  void sweep_routing_tables(sim::SimTime now);

  net::Network* net_;
  InvariantConfig config_;
  std::vector<core::Servent*> servents_;
  std::unordered_map<net::NodeId, core::Servent*> servent_by_node_;
  std::vector<routing::AodvAgent*> aodv_;
  std::vector<routing::FloodService*> floods_;

  // First time a node was observed/reported dead (erased on recovery).
  std::unordered_map<net::NodeId, sim::SimTime> down_since_;
  // Last registered rebirth per node (note_node_up). An edge established
  // before its peer's last rebirth may legitimately stay one-sided forever:
  // the reborn peer answers pings (it must — Basic references depend on
  // unconditional pongs), so the holder never learns the peer forgot it.
  // Such edges degrade to Basic-like references; only one-sidedness that no
  // registered fault explains is a violation.
  std::unordered_map<net::NodeId, sim::SimTime> last_up_;
  // First time a one-sided directed edge (a->b) was observed.
  std::unordered_map<std::uint64_t, sim::SimTime> asym_since_;
  // Last consumed_j per node (invariant 5).
  std::vector<double> last_energy_;

  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  std::uint64_t sweeps_ = 0;
};

}  // namespace p2p::fault
