#include "fault/plan.hpp"

#include <algorithm>
#include <tuple>

namespace p2p::fault {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeRecover: return "node-recover";
    case FaultKind::kLinkBlackout: return "link-blackout";
    case FaultKind::kLossBurstStart: return "loss-burst-start";
    case FaultKind::kLossBurstEnd: return "loss-burst-end";
  }
  return "?";
}

FaultPlan FaultPlan::compile(const FaultParams& params, std::size_t num_nodes,
                             sim::SimTime horizon, sim::RngManager& rngs) {
  FaultPlan plan;
  if (!params.enabled() || num_nodes == 0 || horizon <= 0.0) return plan;

  // Node churn: each node alternates exponential up and down times, drawn
  // from its own stream so node counts and per-node rates are independent.
  if (params.churn_enabled()) {
    const double mean_up = params.mean_uptime_s > 0.0
                               ? params.mean_uptime_s
                               : 3600.0 / params.churn_rate_per_hour;
    const double mean_down =
        params.mean_downtime_s > 0.0 ? params.mean_downtime_s : 1.0;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      auto rng = rngs.stream("fault-churn", i);
      const auto id = static_cast<net::NodeId>(i);
      sim::SimTime t = rng.exponential(mean_up);
      while (t < horizon) {
        plan.events_.push_back({t, FaultKind::kNodeCrash, id,
                                net::kInvalidNode, 0.0});
        const sim::SimTime down = rng.exponential(mean_down);
        if (t + down >= horizon) break;  // stays down past the end
        t += down;
        plan.events_.push_back({t, FaultKind::kNodeRecover, id,
                                net::kInvalidNode, 0.0});
        t += rng.exponential(mean_up);
      }
    }
  }

  // Link blackouts: Poisson arrivals over the whole network; each picks a
  // random (distinct) node pair and an exponential duration. The injector
  // handles the expiry itself (single event per blackout).
  if (params.blackouts_enabled() && num_nodes >= 2) {
    auto rng = rngs.stream("fault-blackout");
    const double mean_gap = 3600.0 / params.blackout_rate_per_hour;
    const auto n = static_cast<std::int64_t>(num_nodes);
    sim::SimTime t = rng.exponential(mean_gap);
    while (t < horizon) {
      const auto a = static_cast<net::NodeId>(rng.uniform_int(0, n - 1));
      auto b = static_cast<net::NodeId>(rng.uniform_int(0, n - 2));
      if (b >= a) ++b;  // distinct pair, uniform over all ordered pairs
      const double duration = rng.exponential(params.blackout_duration_s);
      plan.events_.push_back({t, FaultKind::kLinkBlackout, a, b, duration});
      t += rng.exponential(mean_gap);
    }
  }

  // Gilbert-Elliott bursts: the channel alternates a good state (base MAC
  // loss only) and a bad state (extra loss), both with exponential sojourn.
  if (params.bursts_enabled()) {
    auto rng = rngs.stream("fault-burst");
    const double mean_good = 3600.0 / params.burst_rate_per_hour;
    sim::SimTime t = rng.exponential(mean_good);
    while (t < horizon) {
      plan.events_.push_back({t, FaultKind::kLossBurstStart, net::kInvalidNode,
                              net::kInvalidNode,
                              params.burst_loss_probability});
      const sim::SimTime bad = rng.exponential(params.burst_duration_s);
      if (t + bad >= horizon) break;
      t += bad;
      plan.events_.push_back({t, FaultKind::kLossBurstEnd, net::kInvalidNode,
                              net::kInvalidNode, 0.0});
      t += rng.exponential(mean_good);
    }
  }

  // Total deterministic order: ties broken by (kind, a, b) so the merged
  // schedule never depends on the per-process emission order above.
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.time, x.kind, x.a, x.b) <
                     std::tie(y.time, y.kind, y.a, y.b);
            });
  return plan;
}

}  // namespace p2p::fault
