// Fault-model knobs (§8 "future work" experiments made concrete).
//
// Three independent fault processes, all driven by named RNG streams so a
// faulted run stays bit-reproducible across thread counts (see
// docs/determinism.md and docs/faults.md):
//   * node churn   — crash/recover cycles per node (exponential up/down);
//   * link blackouts — a random pair loses its link for a while (an
//     obstacle, interference, a directional fade);
//   * loss bursts  — Gilbert-Elliott channel: the whole channel drops into
//     a high-loss "bad" state with exponential sojourn times.
//
// This header is standalone (no simulator/network includes) so that
// scenario::Parameters can embed it without a dependency cycle.
#pragma once

namespace p2p::fault {

struct FaultParams {
  // ---- node churn ----
  // Expected crashes per node per hour; 0 disables churn.
  double churn_rate_per_hour = 0.0;
  // Mean up time in seconds; when > 0 it overrides churn_rate_per_hour
  // (mean_uptime_s == 3600 / rate).
  double mean_uptime_s = 0.0;
  // Mean down time (exponential) before the node is reborn.
  double mean_downtime_s = 120.0;

  // ---- per-link blackouts ----
  // Expected blackout events per hour network-wide; 0 disables.
  double blackout_rate_per_hour = 0.0;
  // Mean blackout duration in seconds (exponential).
  double blackout_duration_s = 30.0;

  // ---- Gilbert-Elliott loss bursts ----
  // Expected transitions into the bad state per hour; 0 disables.
  double burst_rate_per_hour = 0.0;
  // Mean bad-state sojourn in seconds (exponential).
  double burst_duration_s = 10.0;
  // Extra loss probability while the bad state is active. Composes with
  // the base MAC loss: p_eff = 1 - (1 - p_base) * (1 - p_burst).
  double burst_loss_probability = 0.8;

  // ---- injected worker crash (crash-isolation testing) ----
  // Throw out of the run itself at this simulated time; < 0 disables.
  // Unlike the processes above this is NOT a modeled network fault — it
  // aborts the repetition, exercising the crash-isolated worker paths
  // (ExperimentError in batch mode, a structured per-seed error from the
  // serving daemon). Sequential execution only (rejected when the
  // scenario shards; an exception may not cross shard worker threads).
  double crash_run_at_s = -1.0;

  bool crash_run_enabled() const noexcept { return crash_run_at_s >= 0.0; }

  bool churn_enabled() const noexcept {
    return churn_rate_per_hour > 0.0 || mean_uptime_s > 0.0;
  }
  bool blackouts_enabled() const noexcept {
    return blackout_rate_per_hour > 0.0 && blackout_duration_s > 0.0;
  }
  bool bursts_enabled() const noexcept {
    return burst_rate_per_hour > 0.0 && burst_duration_s > 0.0 &&
           burst_loss_probability > 0.0;
  }
  /// Any fault process active? When false the scenario builds no fault
  /// machinery at all (pay-for-what-you-use).
  bool enabled() const noexcept {
    return churn_enabled() || blackouts_enabled() || bursts_enabled();
  }
};

}  // namespace p2p::fault
