// A FaultPlan is the compiled, deterministic schedule of every fault the
// scenario will inject: node crashes/recoveries, link blackouts, and
// channel loss-burst transitions, sorted by time.
//
// Compilation draws from dedicated named RNG streams — ("fault-churn", i)
// per node, "fault-blackout", "fault-burst" — so adding or removing a
// fault process never perturbs any other random consumer (the stream
// isolation rule of docs/determinism.md). The plan is a pure function of
// (FaultParams, node count, horizon, master seed); the injector then
// walks it against the simulator clock.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/params.hpp"
#include "net/types.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace p2p::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,       // a = node
  kNodeRecover,     // a = node
  kLinkBlackout,    // a, b = endpoints; value = duration (s)
  kLossBurstStart,  // value = extra loss probability
  kLossBurstEnd,
};

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  sim::SimTime time = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  net::NodeId a = net::kInvalidNode;
  net::NodeId b = net::kInvalidNode;
  double value = 0.0;

  friend bool operator==(const FaultEvent& x, const FaultEvent& y) noexcept {
    return x.time == y.time && x.kind == y.kind && x.a == y.a && x.b == y.b &&
           x.value == y.value;
  }
};

class FaultPlan {
 public:
  /// Compile the schedule for `num_nodes` nodes over [0, horizon).
  /// Deterministic: same params + same RngManager seed => same plan.
  static FaultPlan compile(const FaultParams& params, std::size_t num_nodes,
                           sim::SimTime horizon, sim::RngManager& rngs);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;  // sorted by (time, kind, a, b)
};

}  // namespace p2p::fault
