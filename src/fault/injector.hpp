// Walks a compiled FaultPlan against the simulator clock and applies each
// fault to the network, delegating the protocol-state consequences (wiping
// a crashed node's routing tables, overlay links and dup caches; re-joining
// on recovery) to scenario-provided hooks so this layer stays decoupled
// from the servent types.
//
// One self-rescheduling cursor event drains the plan: at each firing every
// plan entry with the current timestamp is applied, the boundary hook runs
// once (the invariant checker sweeps at every fault boundary), and the
// cursor re-arms for the next distinct time. Cost when the plan is empty:
// zero events.
#pragma once

#include <cstdint>
#include <functional>

#include "fault/plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace p2p::fault {

/// Scenario-level reactions to fault events. All optional.
struct FaultHooks {
  /// Node was just administratively failed; clear its volatile protocol
  /// state (routing tables, overlay connections, dup caches).
  std::function<void(net::NodeId)> on_crash;
  /// Node was just revived; restart its protocol stack.
  std::function<void(net::NodeId)> on_recover;
  /// All faults at one timestamp have been applied (invariant sweep point).
  std::function<void(sim::SimTime)> on_boundary;
};

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t crashes_skipped = 0;  // node already down (battery death)
  std::uint64_t blackouts = 0;
  std::uint64_t bursts = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& simulator, net::Network& network,
                FaultPlan plan, FaultHooks hooks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule the cursor for the first plan entry. Call once after build.
  void arm();

  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void fire();
  void apply(const FaultEvent& event);

  sim::Simulator* sim_;
  net::Network* net_;
  FaultPlan plan_;
  FaultHooks hooks_;
  std::size_t cursor_ = 0;
  FaultStats stats_;
};

}  // namespace p2p::fault
