#include "fault/injector.hpp"

#include <utility>

#include "util/log.hpp"

namespace p2p::fault {

namespace {
constexpr const char* kTag = "fault";
}

FaultInjector::FaultInjector(sim::Simulator& simulator, net::Network& network,
                             FaultPlan plan, FaultHooks hooks)
    : sim_(&simulator),
      net_(&network),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)) {}

void FaultInjector::arm() {
  if (plan_.empty()) return;
  sim_->at(plan_.events().front().time, [this] { fire(); });
}

void FaultInjector::fire() {
  const auto& events = plan_.events();
  const sim::SimTime now = sim_->now();
  while (cursor_ < events.size() && events[cursor_].time <= now) {
    apply(events[cursor_]);
    ++cursor_;
  }
  if (hooks_.on_boundary) hooks_.on_boundary(now);
  if (cursor_ < events.size()) {
    sim_->at(events[cursor_].time, [this] { fire(); });
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      if (!net_->alive(event.a)) {
        // Battery death beat us to it; the paired recover event still
        // clears the administrative flag (a drained node stays dead).
        ++stats_.crashes_skipped;
        net_->set_failed(event.a, true);
        return;
      }
      net_->set_failed(event.a, true);
      ++stats_.crashes;
      LOG_DEBUG(kTag, sim_->now()) << "node " << event.a << " crashed";
      if (hooks_.on_crash) hooks_.on_crash(event.a);
      break;
    case FaultKind::kNodeRecover:
      net_->set_failed(event.a, false);
      ++stats_.recoveries;
      LOG_DEBUG(kTag, sim_->now()) << "node " << event.a << " recovered";
      if (hooks_.on_recover) hooks_.on_recover(event.a);
      break;
    case FaultKind::kLinkBlackout:
      net_->set_link_blackout(event.a, event.b, sim_->now() + event.value);
      ++stats_.blackouts;
      LOG_DEBUG(kTag, sim_->now()) << "link " << event.a << "-" << event.b
                                   << " black for " << event.value << " s";
      break;
    case FaultKind::kLossBurstStart:
      net_->set_burst_loss(event.value);
      ++stats_.bursts;
      break;
    case FaultKind::kLossBurstEnd:
      net_->set_burst_loss(0.0);
      break;
  }
}

}  // namespace p2p::fault
