#include "fault/invariants.hpp"

#include <sstream>
#include <utility>

#include "util/log.hpp"

namespace p2p::fault {

namespace {
constexpr const char* kTag = "invariant";
// Recording cap: a genuinely broken build could report per delivery; keep
// the vector bounded while the total count stays exact.
constexpr std::size_t kMaxRecorded = 1024;

std::uint64_t edge_key(net::NodeId a, net::NodeId b) noexcept {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

const char* invariant_kind_name(InvariantKind kind) noexcept {
  switch (kind) {
    case InvariantKind::kDeliveryToDeadNode: return "delivery-to-dead-node";
    case InvariantKind::kAsymmetricOverlayEdge: return "asymmetric-overlay-edge";
    case InvariantKind::kStaleRouteToDeadNeighbor:
      return "stale-route-to-dead-neighbor";
    case InvariantKind::kDupCacheCorrupt: return "dup-cache-corrupt";
    case InvariantKind::kEnergyDecreased: return "energy-decreased";
  }
  return "?";
}

InvariantChecker::InvariantChecker(net::Network& network,
                                   const InvariantConfig& config)
    : net_(&network), config_(config) {}

void InvariantChecker::add_servent(core::Servent* servent) {
  servents_.push_back(servent);
  servent_by_node_.emplace(servent->self(), servent);
}

void InvariantChecker::add_aodv(routing::AodvAgent* agent) {
  aodv_.push_back(agent);
}

void InvariantChecker::add_flood(routing::FloodService* flood) {
  floods_.push_back(flood);
}

void InvariantChecker::note_node_down(net::NodeId id, sim::SimTime now) {
  down_since_.emplace(id, now);  // keep the earliest death time
}

void InvariantChecker::note_node_up(net::NodeId id, sim::SimTime now) {
  down_since_.erase(id);
  last_up_[id] = now;
}

void InvariantChecker::report(sim::SimTime time, net::NodeId node,
                              InvariantKind kind, std::string detail) {
  ++violations_total_;
  LOG_DEBUG(kTag, time) << "node " << node << " " << invariant_kind_name(kind)
                        << ": " << detail;
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back({time, node, kind, std::move(detail)});
  }
}

// ---------------------------------------------------------------- online

void InvariantChecker::on_transmit(double /*time*/, net::NodeId /*node*/,
                                   net::NodeId /*dst*/, std::size_t /*bytes*/) {}

void InvariantChecker::on_deliver(double time, net::NodeId node,
                                  net::NodeId sender, std::size_t /*bytes*/) {
  if (!net_->alive(node)) {
    std::ostringstream os;
    os << "frame from " << sender << " delivered to dead node";
    report(time, node, InvariantKind::kDeliveryToDeadNode, os.str());
  }
}

void InvariantChecker::on_drop(double /*time*/, net::NodeId /*sender*/,
                               net::NodeId /*dst*/, std::size_t /*bytes*/) {}

// ---------------------------------------------------------------- sweeps

void InvariantChecker::sweep(sim::SimTime now) {
  ++sweeps_;
  // Battery deaths are not announced by the injector; pick them up here so
  // the stale-route clock starts at the first sweep that sees them.
  for (net::NodeId id = 0; id < net_->size(); ++id) {
    if (!net_->alive(id)) {
      down_since_.emplace(id, now);
    } else {
      down_since_.erase(id);
    }
  }

  sweep_overlay_symmetry(now);
  sweep_routing_tables(now);
  for (const routing::FloodService* flood : floods_) {
    check_dup_cache(flood->self(), flood->dup_cache(), now);
  }
  for (const routing::AodvAgent* agent : aodv_) {
    check_dup_cache(agent->self(), agent->rreq_cache(), now);
  }
  for (const core::Servent* servent : servents_) {
    check_dup_cache(servent->self(), servent->seen_queries(), now);
  }
  for (net::NodeId id = 0; id < net_->size(); ++id) {
    check_energy(id, net_->energy(id).consumed_j(), now);
  }
}

void InvariantChecker::sweep_overlay_symmetry(sim::SimTime now) {
  for (const core::Servent* servent : servents_) {
    const net::NodeId self = servent->self();
    if (!net_->alive(self)) continue;
    for (const net::NodeId peer : servent->connections().peers()) {
      const core::Connection* conn = servent->connections().find(peer);
      if (conn == nullptr || conn->kind == core::ConnKind::kBasic) {
        continue;  // Basic references are asymmetric by design
      }
      const auto it = servent_by_node_.find(peer);
      if (it == servent_by_node_.end()) continue;  // peer not a member
      const std::uint64_t key = edge_key(self, peer);
      if (it->second->connections().connected(self)) {
        asym_since_.erase(key);
        continue;
      }
      // An edge older than its peer's last rebirth is explained by that
      // registered fault: the reborn peer forgot it but keeps answering
      // pings, so the holder can never notice (see last_up_ in the header).
      const auto up = last_up_.find(peer);
      if (up != last_up_.end() && conn->established <= up->second) {
        asym_since_.erase(key);
        continue;
      }
      const auto [pos, fresh] = asym_since_.emplace(key, now);
      if (!fresh && now - pos->second > config_.asymmetry_grace_s) {
        std::ostringstream os;
        os << core::conn_kind_name(conn->kind) << " edge to " << peer
           << " one-sided for " << now - pos->second << " s";
        report(now, self, InvariantKind::kAsymmetricOverlayEdge, os.str());
        pos->second = now;  // re-report only after another full grace period
      }
    }
  }
}

void InvariantChecker::sweep_routing_tables(sim::SimTime now) {
  for (routing::AodvAgent* agent : aodv_) {
    if (!net_->alive(agent->self())) continue;  // dead tables are wiped/frozen
    for (const auto& [dst, route] : agent->table().all()) {
      if (!route.valid || route.expires <= now) continue;
      const auto it = down_since_.find(route.next_hop);
      if (it == down_since_.end()) continue;
      const double dead_for = now - it->second;
      // Reverse traffic from `dst` legitimately re-arms this route even
      // while the next hop is dead (it self-heals on first send attempt),
      // but no refresh can push the expiry past the lifetime bound.
      if (dead_for > config_.stale_route_grace_s &&
          route.expires > now + config_.route_lifetime_bound_s) {
        std::ostringstream os;
        os << "active route to " << dst << " via " << route.next_hop
           << ", dead for " << dead_for << " s, expires in "
           << route.expires - now << " s";
        report(now, agent->self(), InvariantKind::kStaleRouteToDeadNeighbor,
               os.str());
      }
    }
  }
}

void InvariantChecker::check_dup_cache(net::NodeId node,
                                       const net::DupCache& cache,
                                       sim::SimTime now) {
  std::string why;
  if (!cache.validate(now, &why)) {
    report(now, node, InvariantKind::kDupCacheCorrupt, std::move(why));
  }
}

void InvariantChecker::check_energy(net::NodeId node, double consumed_j,
                                    sim::SimTime now) {
  if (last_energy_.size() <= node) last_energy_.resize(node + 1, 0.0);
  if (consumed_j + 1e-9 < last_energy_[node]) {
    std::ostringstream os;
    os << "consumed energy fell from " << last_energy_[node] << " to "
       << consumed_j << " J";
    report(now, node, InvariantKind::kEnergyDecreased, os.str());
    return;  // keep the high-water mark so the fall is reported once
  }
  if (consumed_j > last_energy_[node]) last_energy_[node] = consumed_j;
}

}  // namespace p2p::fault
