// p2pd — experiment-serving daemon (and its line-mode client).
//
//   p2pd --socket PATH [--workers N] [--max-queue N] [--max-seeds N]
//   p2pd --client --socket PATH
//
// Daemon mode binds a Unix-domain socket and serves the newline-delimited
// JSON protocol documented in docs/serving.md. Client mode connects to a
// running daemon, forwards stdin line-by-line, and prints every response
// line until the peer closes — so scripts (tools/p2pd_client.sh) need no
// nc/socat. Client exit status: 0 on clean close, 1 on connect failure.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "util/strings.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --socket PATH [--workers N] [--max-queue N] [--max-seeds N]\n"
               "       " << argv0 << " --client --socket PATH\n";
  return 2;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Forward stdin to the daemon, then half-close and stream responses until
// the daemon closes. Requests are sent up front (the protocol is
// line-oriented and the daemon answers in order), which keeps the client
// a straight pipe with no select loop.
int run_client(const std::string& socket_path) {
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    std::cerr << "p2pd: cannot connect to " << socket_path << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  std::string line;
  while (std::getline(std::cin, line)) {
    line += '\n';
    if (!write_all(fd, line.data(), line.size())) break;
  }
  ::shutdown(fd, SHUT_WR);
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    std::cout.write(chunk, n);
  }
  std::cout.flush();
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using p2p::util::parse_int;

  p2p::serve::ServerOptions options;
  bool client = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--client") {
      client = true;
    } else if (arg == "--socket") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.socket_path = v;
    } else if (arg == "--workers" || arg == "--max-queue" ||
               arg == "--max-seeds") {
      const char* v = next();
      const auto n = v ? parse_int(v) : std::nullopt;
      if (!n || *n <= 0) return usage(argv[0]);
      if (arg == "--workers") options.workers = static_cast<std::size_t>(*n);
      else if (arg == "--max-queue") options.max_queue = static_cast<std::size_t>(*n);
      else options.limits.max_seeds = static_cast<std::size_t>(*n);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);
  if (client) return run_client(options.socket_path);

  p2p::serve::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "p2pd: " << error << "\n";
    return 1;
  }
  std::cerr << "p2pd: serving on " << server.options().socket_path << " ("
            << server.options().workers << " worker"
            << (server.options().workers == 1 ? "" : "s") << ")\n";
  server.run();
  return 0;
}
