#!/usr/bin/env sh
# p2pd_client.sh — talk to a running p2pd daemon from the shell.
#
#   tools/p2pd_client.sh /tmp/p2pd.sock '{"config":{"num_nodes":30},"seeds":[1,2]}'
#   tools/p2pd_client.sh /tmp/p2pd.sock STATS
#   echo '{"seeds":[7]}' | tools/p2pd_client.sh /tmp/p2pd.sock
#
# Requests come from $2 (one line) or stdin (any number of lines);
# responses stream to stdout. Uses `p2pd --client` (set P2PD_BIN to point
# at the binary; defaults to ./build/tools/p2pd), so no nc/socat needed.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 SOCKET_PATH [REQUEST_LINE]" >&2
  exit 2
fi

sock=$1
bin=${P2PD_BIN:-./build/tools/p2pd}

if [ ! -x "$bin" ]; then
  echo "$0: p2pd binary not found at $bin (set P2PD_BIN)" >&2
  exit 1
fi

if [ "$#" -ge 2 ]; then
  printf '%s\n' "$2" | "$bin" --client --socket "$sock"
else
  "$bin" --client --socket "$sock"
fi
