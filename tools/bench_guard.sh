#!/usr/bin/env sh
# bench_guard: assert the perf harness's fixed-seed counters are unchanged.
#
# Runs the smoke-scale bench suites and compares every deterministic
# counter (ops, queries, answers, events, frames_delivered, peak_queue —
# everything except wall time) against a checked-in expectations file. A
# mismatch means a hot-path edit changed observable behavior, not just
# speed; it must either be fixed or the expectations regenerated *and the
# drift justified in the PR* (see docs/performance.md).
#
# Usage:
#   tools/bench_guard.sh [--update] <expected-file> <bench-bin>...
#
# Each bench binary is run as `<bin> --smoke --label guard --out <tmp>`
# (every perf binary's default suite covers all its workloads, so no
# per-binary flags are needed). --update rewrites <expected-file> from the
# current binaries instead of comparing (for intentional, reviewed counter
# changes).
set -eu

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
if [ $# -lt 2 ]; then
  echo "usage: $0 [--update] <expected-file> <bench-bin>..." >&2
  exit 2
fi
expected="$1"
shift

tmpdir="${TMPDIR:-/tmp}"
raw="$tmpdir/bench_guard_$$.jsonl"
norm="$tmpdir/bench_guard_$$.norm"
trap 'rm -f "$raw" "$norm"' EXIT
: > "$raw"

for bin in "$@"; do
  "$bin" --smoke --label guard --out "$raw" > /dev/null
done

# Strip the timing fields: keep bench name + every deterministic counter,
# in emission order, one canonical line per bench.
awk '{
  line = $0
  out = ""
  while (match(line, /"(bench|ops|frames|queries|answers|connect_msgs|msgs|events|frames_delivered|peak_queue|threads|sim_shards)":("[^"]*"|[0-9]+)/)) {
    pair = substr(line, RSTART, RLENGTH)
    out = (out == "") ? pair : out " " pair
    line = substr(line, RSTART + RLENGTH)
  }
  print out
}' "$raw" > "$norm"

if [ "$update" = 1 ]; then
  cp "$norm" "$expected"
  echo "bench_guard: wrote $(wc -l < "$expected" | tr -d ' ') expectation lines to $expected"
  exit 0
fi

if ! diff -u "$expected" "$norm"; then
  echo "bench_guard: FIXED-SEED COUNTER DRIFT (see diff above)." >&2
  echo "A hot-path change altered observable behavior. If intentional," >&2
  echo "regenerate with: tools/bench_guard.sh --update $expected <bins...>" >&2
  exit 1
fi
echo "bench_guard: all fixed-seed counters match $expected"
