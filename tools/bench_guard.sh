#!/usr/bin/env sh
# bench_guard: assert the perf harness's fixed-seed counters are unchanged.
#
# Runs the smoke-scale bench suites and compares every deterministic
# counter (ops, events, frames_delivered, peak_queue — everything except
# wall time) against a checked-in expectations file. A mismatch means a
# hot-path edit changed observable behavior, not just speed; it must
# either be fixed or the expectations regenerated *and the drift justified
# in the PR* (see docs/performance.md).
#
# Usage:
#   tools/bench_guard.sh [--update] <hotpath-bin> <aodv-storm-bin> <expected-file>
#
# --update rewrites <expected-file> from the current binaries instead of
# comparing (for intentional, reviewed counter changes).
set -eu

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
if [ $# -ne 3 ]; then
  echo "usage: $0 [--update] <hotpath-bin> <aodv-storm-bin> <expected-file>" >&2
  exit 2
fi
hotpath_bin="$1"
aodv_bin="$2"
expected="$3"

tmpdir="${TMPDIR:-/tmp}"
raw="$tmpdir/bench_guard_$$.jsonl"
norm="$tmpdir/bench_guard_$$.norm"
trap 'rm -f "$raw" "$norm"' EXIT
: > "$raw"

"$hotpath_bin" --smoke --suite all --label guard --out "$raw" > /dev/null
"$aodv_bin" --smoke --label guard --out "$raw" > /dev/null

# Strip the timing fields: keep bench name + every deterministic counter,
# in emission order, one canonical line per bench.
awk '{
  line = $0
  out = ""
  while (match(line, /"(bench|ops|frames|events|frames_delivered|peak_queue)":("[^"]*"|[0-9]+)/)) {
    pair = substr(line, RSTART, RLENGTH)
    out = (out == "") ? pair : out " " pair
    line = substr(line, RSTART + RLENGTH)
  }
  print out
}' "$raw" > "$norm"

if [ "$update" = 1 ]; then
  cp "$norm" "$expected"
  echo "bench_guard: wrote $(wc -l < "$expected" | tr -d ' ') expectation lines to $expected"
  exit 0
fi

if ! diff -u "$expected" "$norm"; then
  echo "bench_guard: FIXED-SEED COUNTER DRIFT (see diff above)." >&2
  echo "A hot-path change altered observable behavior. If intentional," >&2
  echo "regenerate with: tools/bench_guard.sh --update $hotpath_bin $aodv_bin $expected" >&2
  exit 1
fi
echo "bench_guard: all fixed-seed counters match $expected"
