#!/usr/bin/env python3
"""Collapse BENCH_*.json JSONL records into one throughput-over-labels table.

Every perf binary appends one JSON object per benchmark run to the
BENCH_*.json files at the repo root (see docs/performance.md), labeled by
PR tag or git hash. tools/bench.sh --compare answers "did label B regress
against label A?"; this script answers the longitudinal question — how has
each bench's headline throughput moved across *all* recorded labels — in
one table, so a PR description can quote the whole perf trajectory without
hand-grepping JSONL.

Conventions (shared with tools/bench.sh):
  * headline rate = the FIRST ops_per_sec / frames_per_sec /
    queries_per_sec field in the record's own key order (JSON objects are
    read order-preserving) — secondary rates like msgs_per_sec or
    events_per_sec never become the headline;
  * row key = bench name, suffixed "@tN" when the record carries
    "threads":N > 1 — a parallel run is a different experiment from the
    sequential run of the same bench and gets its own row;
  * the latest record per (bench, label, threads) wins — files are append
    -only, so re-recording a label supersedes the stale snapshot;
  * column order = order of each label's first appearance in file+line
    order, i.e. chronological for append-only files.

Usage:
  tools/bench_trajectory.py [FILE...] [--labels L1,L2,...] [--csv]

With no FILE arguments, reads every BENCH_*.json in the repo root.
--labels restricts and re-orders the columns; --csv emits
comma-separated output for spreadsheets instead of the aligned table.
Pure stdlib; malformed lines are skipped with a warning on stderr.
"""

import argparse
import glob
import json
import os
import re
import sys

HEADLINE_RE = re.compile(r"^(ops|frames|queries)_per_sec$")


def headline_rate(record):
    """First ops/frames/queries _per_sec field in the record's key order."""
    for key, value in record.items():
        if HEADLINE_RE.match(key) and isinstance(value, (int, float)):
            return float(value)
    return None


def row_key(record):
    bench = record.get("bench")
    if not isinstance(bench, str) or not bench:
        return None
    threads = record.get("threads", 1)
    if isinstance(threads, int) and threads > 1:
        return "%s@t%d" % (bench, threads)
    return bench


def load(paths):
    """-> (rows, labels): rows maps key -> {label: rate}, both append-ordered."""
    rows = {}
    labels = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    print("%s:%d: skipping malformed line" % (path, lineno),
                          file=sys.stderr)
                    continue
                key = row_key(record)
                label = record.get("label")
                rate = headline_rate(record)
                if key is None or not isinstance(label, str) or rate is None:
                    continue
                if label not in labels:
                    labels.append(label)
                # Latest record per (bench, label, threads) wins.
                rows.setdefault(key, {})[label] = rate
    return rows, labels


def fmt_rate(rate):
    if rate is None:
        return "-"
    return "%.0f" % rate


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="throughput-over-labels table from BENCH_*.json JSONL")
    parser.add_argument("files", nargs="*",
                        help="JSONL record files (default: repo BENCH_*.json)")
    parser.add_argument("--labels",
                        help="comma-separated label subset, in column order")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of an aligned table")
    args = parser.parse_args(argv)

    paths = args.files
    if not paths:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json records found", file=sys.stderr)
        return 2

    rows, labels = load(paths)
    if args.labels:
        wanted = [l for l in args.labels.split(",") if l]
        missing = [l for l in wanted if l not in labels]
        if missing:
            print("label(s) never recorded: %s" % ", ".join(missing),
                  file=sys.stderr)
        labels = [l for l in wanted if l in labels]
    if not rows or not labels:
        print("no usable records in: %s" % ", ".join(paths), file=sys.stderr)
        return 2

    header = ["bench"] + labels
    table = [[key] + [fmt_rate(rows[key].get(l)) for l in labels]
             for key in sorted(rows)]

    if args.csv:
        for line in [header] + table:
            print(",".join(line))
        return 0

    widths = [max(len(row[i]) for row in [header] + table)
              for i in range(len(header))]
    print("  ".join(header[i].ljust(widths[i]) if i == 0
                    else header[i].rjust(widths[i])
                    for i in range(len(header))))
    for row in table:
        print("  ".join(row[i].ljust(widths[i]) if i == 0
                        else row[i].rjust(widths[i])
                        for i in range(len(row))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
