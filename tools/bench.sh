#!/usr/bin/env sh
# Record a perf snapshot, or compare two recorded labels.
#
# Record mode: build the bench preset, run the harness suites (hotpath's
# kernel + wireless storms, the aodv_storm route-discovery storm, the
# overlay_storm full-stack tier, the megascale 10k-100k tier, and the
# serve_smoke daemon front-end tier), and append one JSON record per
# benchmark to BENCH_kernel.json, BENCH_hotpath.json, BENCH_overlay.json,
# BENCH_megascale.json and BENCH_serve.json at the repo root (JSON Lines;
# see docs/performance.md).
#
# Compare mode: read those JSONL files back and print per-bench throughput
# deltas between two labels, failing when anything regressed — so a perf
# regression is caught when the records land, not by a later PR's
# archaeology. Benches recorded under only one of the two labels (e.g. a
# freshly added tier with no older record) are reported as
# "(only in <label>)" instead of being silently skipped.
#
# Usage:
#   tools/bench.sh [label]
#       label  tag stored in each record (default: current git short hash)
#   tools/bench.sh --compare <label-a> <label-b> [--threshold PCT]
#       Compare the headline throughput (ops/frames/queries _per_sec) of
#       label-b against label-a for every bench that has records under both
#       labels (the most recent record per label wins). Records made with
#       different sim_threads counts are never paired: a record's "threads"
#       field (absent = 1) is part of the comparison key, so a 4-thread
#       run only ever compares against another 4-thread run — parallel
#       speedup must not masquerade as (or mask) a hot-path change.
#       Exit 1 if any bench is more than PCT slower in label-b (default 5),
#       or if any paired bench's peak_queue counter differs between the
#       labels: peak_queue is a fixed-seed determinism counter (identical
#       on both queue backends and every thread count), so drift means the
#       event history changed — a correctness failure, not a perf delta.
#   tools/bench.sh --threads <list> [label] [--smoke]
#       Thread-scaling sweep: run the megascale tier once per thread count
#       in <list> (comma-separated, e.g. 1,2,4,8) with the shard
#       decomposition pinned (--sim-shards 64), append every record under
#       the single given label to BENCH_megascale.json, and print a
#       speedup/efficiency table (events/s per scale per thread count,
#       baseline = the sweep's own 1-thread run). --smoke sweeps the
#       bounded 10k smoke slice instead of the full 10k/50k/100k tier.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--compare" ]; then
  shift
  if [ $# -lt 2 ]; then
    echo "usage: tools/bench.sh --compare <label-a> <label-b> [--threshold PCT]" >&2
    exit 2
  fi
  label_a="$1"
  label_b="$2"
  shift 2
  threshold=5
  if [ "${1:-}" = "--threshold" ]; then
    if [ $# -lt 2 ]; then
      echo "--threshold needs a value" >&2
      exit 2
    fi
    threshold="$2"
  fi
  # Only feed awk the record files that exist (BENCH_overlay.json appears
  # the first time the overlay tier is recorded).
  set --
  for f in "$repo/BENCH_kernel.json" "$repo/BENCH_hotpath.json" \
           "$repo/BENCH_overlay.json" "$repo/BENCH_megascale.json" \
           "$repo/BENCH_serve.json"; do
    [ -f "$f" ] && set -- "$@" "$f"
  done
  if [ $# -eq 0 ]; then
    echo "no BENCH_*.json records found in $repo" >&2
    exit 2
  fi
  awk -v A="$label_a" -v B="$label_b" -v THR="$threshold" '
    {
      bench = ""; label = ""; rate = ""
      if (match($0, /"bench":"[^"]*"/)) {
        bench = substr($0, RSTART + 9, RLENGTH - 10)
      }
      if (match($0, /"label":"[^"]*"/)) {
        label = substr($0, RSTART + 9, RLENGTH - 10)
      }
      # Thread count is part of the identity of a record: a parallel run
      # and a sequential run of the same bench are different experiments
      # ("threads" is emitted only when > 1; absent means 1). Suffixing
      # the key pairs like with like and reports unmatched thread counts
      # as one-sided records instead of comparing apples to oranges.
      if (match($0, /"threads":[0-9]+/)) {
        t = substr($0, RSTART + 10, RLENGTH - 10) + 0
        if (t > 1) bench = bench "@t" t
      }
      # Headline throughput: the suite-specific <unit>_per_sec field
      # (kernel: ops_per_sec, wireless storms: frames_per_sec, overlay
      # storms: queries_per_sec). Secondary rates (msgs_per_sec) are
      # deliberately not headline material.
      if (match($0, /"(ops|frames|queries)_per_sec":[0-9.]+/)) {
        pair = substr($0, RSTART, RLENGTH)
        sub(/^"[a-z]+_per_sec":/, "", pair)
        rate = pair + 0
      }
      # peak_queue is a fixed-seed counter (live high-water mark of the
      # event queue), not a throughput: identical workload => identical
      # value, on either queue backend and any thread count. Track it per
      # (bench, label) so the END block can flag drift as determinism
      # breakage, not as a perf delta.
      pq = ""
      if (match($0, /"peak_queue":[0-9]+/)) {
        pq = substr($0, RSTART + 13, RLENGTH - 13) + 0
      }
      if (bench == "" || label == "" || rate == "") next
      # Later records override earlier ones: compare the freshest snapshot
      # recorded under each label.
      if (label == A) { a[bench] = rate; seen[bench] = 1
                        if (pq != "") { pa[bench] = pq } else { delete pa[bench] } }
      if (label == B) { b[bench] = rate; seen[bench] = 1
                        if (pq != "") { pb[bench] = pq } else { delete pb[bench] } }
    }
    END {
      n = 0; fail = 0
      printf "%-34s %14s %14s %9s\n", "bench", A, B, "delta"
      for (bench in seen) order[++n] = bench
      # Stable output order (asort is gawk-only; insertion sort is fine
      # at this scale).
      for (i = 2; i <= n; ++i) {
        for (j = i; j > 1 && order[j] < order[j-1]; --j) {
          t = order[j]; order[j] = order[j-1]; order[j-1] = t
        }
      }
      for (i = 1; i <= n; ++i) {
        bench = order[i]
        if (!(bench in a) || !(bench in b)) {
          # One-sided record: a bench only present under one label (new
          # tier, renamed bench, retired workload). Say so explicitly —
          # a silent skip would hide a bench that stopped being recorded.
          printf "%-34s %14s %14s  (only in %s)\n", bench,
                 (bench in a) ? sprintf("%.0f", a[bench]) : "-",
                 (bench in b) ? sprintf("%.0f", b[bench]) : "-",
                 (bench in a) ? A : B
          continue
        }
        if (a[bench] == 0 || b[bench] == 0) {
          # A zero headline rate (wall time too coarse to resolve, or a
          # workload that completed zero units) carries no signal — and
          # dividing by it would abort the whole comparison. Report, do
          # not fail: only a real measured regression may exit non-zero.
          printf "%-34s %14.0f %14.0f  (no data)\n", bench, a[bench],
                 b[bench]
          continue
        }
        delta = (b[bench] - a[bench]) / a[bench] * 100.0
        flag = ""
        if (delta < -THR) { flag = "  << REGRESSION"; fail = 1 }
        # peak_queue drift between labels of the same workload means the
        # event history itself changed — a determinism break (or an
        # unflagged model change), never a legitimate perf delta. Hard
        # failure: a backend or parallelism change must reproduce the
        # pending-set high-water mark exactly.
        if ((bench in pa) && (bench in pb) && pa[bench] != pb[bench]) {
          flag = flag sprintf("  << PEAK_QUEUE DRIFT (%d -> %d)",
                              pa[bench], pb[bench])
          drift = 1
        }
        printf "%-34s %14.0f %14.0f %+8.1f%%%s\n", bench, a[bench], b[bench],
               delta, flag
      }
      if (n == 0) {
        printf "no records found for labels %s / %s\n", A, B
        exit 2
      }
      if (drift) {
        printf "FAIL: peak_queue drifted between %s and %s — same workload must\n", A, B
        printf "      reproduce the same pending-set high-water mark (determinism)\n"
      }
      if (fail) {
        printf "FAIL: at least one bench regressed more than %s%% (%s -> %s)\n",
               THR, A, B
      }
      if (fail || drift) exit 1
    }
  ' "$@"
  exit $?
fi

if [ "${1:-}" = "--threads" ]; then
  shift
  if [ $# -lt 1 ]; then
    echo "usage: tools/bench.sh --threads <list> [label] [--smoke]" >&2
    exit 2
  fi
  threads_list="$1"
  shift
  sweep_label=""
  sweep_smoke=""
  while [ $# -gt 0 ]; do
    case "$1" in
      --smoke) sweep_smoke="--smoke" ;;
      *) sweep_label="$1" ;;
    esac
    shift
  done
  [ -n "$sweep_label" ] || \
    sweep_label="$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)"

  cmake --preset bench -S "$repo" >/dev/null
  cmake --build --preset bench -j --target megascale >/dev/null

  sweep_raw="${TMPDIR:-/tmp}/bench_sweep_$$.jsonl"
  trap 'rm -f "$sweep_raw"' EXIT
  : > "$sweep_raw"
  # Every sweep run pins --sim-shards 64: the shard decomposition is a
  # model parameter, so the whole sweep (the 1-thread baseline included)
  # replays ONE event history and differs only in who executes it — the
  # speedups below are pure execution scaling, and every counter column
  # is bit-identical across rows by construction.
  for t in $(echo "$threads_list" | tr ',' ' '); do
    echo "== megascale sweep: sim_threads=$t =="
    "$repo/build-bench/bench/megascale" --label "$sweep_label" \
      --sim-threads "$t" --sim-shards 64 $sweep_smoke \
      --out "$repo/BENCH_megascale.json" | tee -a "$sweep_raw"
  done

  echo
  echo "thread scaling (label '$sweep_label', sim_shards=64, host: $(nproc) core(s))"
  awk '
    {
      bench = ""; rate = ""; t = 1
      if (match($0, /"bench":"[^"]*"/)) {
        bench = substr($0, RSTART + 9, RLENGTH - 10)
      }
      if (match($0, /"events_per_sec":[0-9.]+/)) {
        rate = substr($0, RSTART + 17, RLENGTH - 17) + 0
      }
      if (match($0, /"threads":[0-9]+/)) {
        t = substr($0, RSTART + 10, RLENGTH - 10) + 0
      }
      if (bench == "" || rate == "") next
      rates[bench, t] = rate
      if (!(bench in seen)) { seen[bench] = 1; order[++n] = bench }
      if (!((t, "t") in tseen)) { tseen[t, "t"] = 1; tlist[++tn] = t }
    }
    END {
      for (i = 2; i <= tn; ++i) {
        for (j = i; j > 1 && tlist[j] < tlist[j-1]; --j) {
          x = tlist[j]; tlist[j] = tlist[j-1]; tlist[j-1] = x
        }
      }
      printf "%-22s %8s %14s %9s %11s\n",
             "bench", "threads", "events_per_s", "speedup", "efficiency"
      for (i = 1; i <= n; ++i) {
        bench = order[i]
        base = rates[bench, 1]
        for (k = 1; k <= tn; ++k) {
          t = tlist[k]
          if (!((bench, t) in rates)) continue
          r = rates[bench, t]
          if (base > 0) {
            printf "%-22s %8d %14.0f %8.2fx %10.0f%%\n",
                   bench, t, r, r / base, r / base / t * 100.0
          } else {
            printf "%-22s %8d %14.0f %9s %11s\n", bench, t, r, "-", "-"
          }
        }
      }
    }
  ' "$sweep_raw"
  exit 0
fi

label="${1:-$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)}"

cmake --preset bench -S "$repo" >/dev/null
cmake --build --preset bench -j --target hotpath --target aodv_storm \
  --target overlay_storm --target megascale --target serve_smoke >/dev/null

"$repo/build-bench/bench/hotpath" --suite kernel --label "$label" \
  --out "$repo/BENCH_kernel.json"
"$repo/build-bench/bench/hotpath" --suite hotpath --label "$label" \
  --out "$repo/BENCH_hotpath.json"
"$repo/build-bench/bench/aodv_storm" --label "$label" \
  --out "$repo/BENCH_hotpath.json"
"$repo/build-bench/bench/overlay_storm" --label "$label" \
  --out "$repo/BENCH_overlay.json"
"$repo/build-bench/bench/megascale" --label "$label" \
  --out "$repo/BENCH_megascale.json"
# Serving tier: requests/s through the daemon front end against a warm
# cache (a throwaway cache dir keeps the record independent of whatever
# the figure benches have cached).
serve_cache="$(mktemp -d)"
P2P_BENCH_CACHE="$serve_cache" "$repo/build-bench/bench/serve_smoke" \
  --label "$label" --out "$repo/BENCH_serve.json"
rm -rf "$serve_cache"
echo "appended records labeled '$label' to BENCH_kernel.json / BENCH_hotpath.json / BENCH_overlay.json / BENCH_megascale.json / BENCH_serve.json"
