#!/usr/bin/env sh
# Record a perf snapshot: build the bench preset, run both harness suites,
# and append one JSON record per benchmark to BENCH_kernel.json and
# BENCH_hotpath.json at the repo root (JSON Lines; see docs/performance.md).
#
# Usage: tools/bench.sh [label]
#   label  tag stored in each record (default: current git short hash)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
label="${1:-$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)}"

cmake --preset bench -S "$repo" >/dev/null
cmake --build --preset bench -j --target hotpath >/dev/null

bin="$repo/build-bench/bench/hotpath"
"$bin" --suite kernel  --label "$label" --out "$repo/BENCH_kernel.json"
"$bin" --suite hotpath --label "$label" --out "$repo/BENCH_hotpath.json"
echo "appended records labeled '$label' to BENCH_kernel.json / BENCH_hotpath.json"
