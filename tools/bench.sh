#!/usr/bin/env sh
# Record a perf snapshot, or compare two recorded labels.
#
# Record mode: build the bench preset, run the harness suites (hotpath's
# kernel + wireless storms, the aodv_storm route-discovery storm, the
# overlay_storm full-stack tier, and the megascale 10k-100k tier), and
# append one JSON record per benchmark to BENCH_kernel.json,
# BENCH_hotpath.json, BENCH_overlay.json and BENCH_megascale.json at the
# repo root (JSON Lines; see docs/performance.md).
#
# Compare mode: read those JSONL files back and print per-bench throughput
# deltas between two labels, failing when anything regressed — so a perf
# regression is caught when the records land, not by a later PR's
# archaeology. Benches recorded under only one of the two labels (e.g. a
# freshly added tier with no older record) are reported as
# "(only in <label>)" instead of being silently skipped.
#
# Usage:
#   tools/bench.sh [label]
#       label  tag stored in each record (default: current git short hash)
#   tools/bench.sh --compare <label-a> <label-b> [--threshold PCT]
#       Compare the headline throughput (ops/frames/queries _per_sec) of
#       label-b against label-a for every bench that has records under both
#       labels (the most recent record per label wins). Exit 1 if any bench
#       is more than PCT slower in label-b (default 5).
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--compare" ]; then
  shift
  if [ $# -lt 2 ]; then
    echo "usage: tools/bench.sh --compare <label-a> <label-b> [--threshold PCT]" >&2
    exit 2
  fi
  label_a="$1"
  label_b="$2"
  shift 2
  threshold=5
  if [ "${1:-}" = "--threshold" ]; then
    if [ $# -lt 2 ]; then
      echo "--threshold needs a value" >&2
      exit 2
    fi
    threshold="$2"
  fi
  # Only feed awk the record files that exist (BENCH_overlay.json appears
  # the first time the overlay tier is recorded).
  set --
  for f in "$repo/BENCH_kernel.json" "$repo/BENCH_hotpath.json" \
           "$repo/BENCH_overlay.json" "$repo/BENCH_megascale.json"; do
    [ -f "$f" ] && set -- "$@" "$f"
  done
  if [ $# -eq 0 ]; then
    echo "no BENCH_*.json records found in $repo" >&2
    exit 2
  fi
  awk -v A="$label_a" -v B="$label_b" -v THR="$threshold" '
    {
      bench = ""; label = ""; rate = ""
      if (match($0, /"bench":"[^"]*"/)) {
        bench = substr($0, RSTART + 9, RLENGTH - 10)
      }
      if (match($0, /"label":"[^"]*"/)) {
        label = substr($0, RSTART + 9, RLENGTH - 10)
      }
      # Headline throughput: the suite-specific <unit>_per_sec field
      # (kernel: ops_per_sec, wireless storms: frames_per_sec, overlay
      # storms: queries_per_sec). Secondary rates (msgs_per_sec) are
      # deliberately not headline material.
      if (match($0, /"(ops|frames|queries)_per_sec":[0-9.]+/)) {
        pair = substr($0, RSTART, RLENGTH)
        sub(/^"[a-z]+_per_sec":/, "", pair)
        rate = pair + 0
      }
      if (bench == "" || label == "" || rate == "") next
      # Later records override earlier ones: compare the freshest snapshot
      # recorded under each label.
      if (label == A) { a[bench] = rate; seen[bench] = 1 }
      if (label == B) { b[bench] = rate; seen[bench] = 1 }
    }
    END {
      n = 0; fail = 0
      printf "%-34s %14s %14s %9s\n", "bench", A, B, "delta"
      for (bench in seen) order[++n] = bench
      # Stable output order (asort is gawk-only; insertion sort is fine
      # at this scale).
      for (i = 2; i <= n; ++i) {
        for (j = i; j > 1 && order[j] < order[j-1]; --j) {
          t = order[j]; order[j] = order[j-1]; order[j-1] = t
        }
      }
      for (i = 1; i <= n; ++i) {
        bench = order[i]
        if (!(bench in a) || !(bench in b)) {
          # One-sided record: a bench only present under one label (new
          # tier, renamed bench, retired workload). Say so explicitly —
          # a silent skip would hide a bench that stopped being recorded.
          printf "%-34s %14s %14s  (only in %s)\n", bench,
                 (bench in a) ? sprintf("%.0f", a[bench]) : "-",
                 (bench in b) ? sprintf("%.0f", b[bench]) : "-",
                 (bench in a) ? A : B
          continue
        }
        if (a[bench] == 0 || b[bench] == 0) {
          # A zero headline rate (wall time too coarse to resolve, or a
          # workload that completed zero units) carries no signal — and
          # dividing by it would abort the whole comparison. Report, do
          # not fail: only a real measured regression may exit non-zero.
          printf "%-34s %14.0f %14.0f  (no data)\n", bench, a[bench],
                 b[bench]
          continue
        }
        delta = (b[bench] - a[bench]) / a[bench] * 100.0
        flag = ""
        if (delta < -THR) { flag = "  << REGRESSION"; fail = 1 }
        printf "%-34s %14.0f %14.0f %+8.1f%%%s\n", bench, a[bench], b[bench],
               delta, flag
      }
      if (n == 0) {
        printf "no records found for labels %s / %s\n", A, B
        exit 2
      }
      if (fail) {
        printf "FAIL: at least one bench regressed more than %s%% (%s -> %s)\n",
               THR, A, B
        exit 1
      }
    }
  ' "$@"
  exit $?
fi

label="${1:-$(git -C "$repo" rev-parse --short HEAD 2>/dev/null || echo dev)}"

cmake --preset bench -S "$repo" >/dev/null
cmake --build --preset bench -j --target hotpath --target aodv_storm \
  --target overlay_storm --target megascale >/dev/null

"$repo/build-bench/bench/hotpath" --suite kernel --label "$label" \
  --out "$repo/BENCH_kernel.json"
"$repo/build-bench/bench/hotpath" --suite hotpath --label "$label" \
  --out "$repo/BENCH_hotpath.json"
"$repo/build-bench/bench/aodv_storm" --label "$label" \
  --out "$repo/BENCH_hotpath.json"
"$repo/build-bench/bench/overlay_storm" --label "$label" \
  --out "$repo/BENCH_overlay.json"
"$repo/build-bench/bench/megascale" --label "$label" \
  --out "$repo/BENCH_megascale.json"
echo "appended records labeled '$label' to BENCH_kernel.json / BENCH_hotpath.json / BENCH_overlay.json / BENCH_megascale.json"
